/**
 * @file
 * etc_lab executable: persistent-result-store campaign orchestration
 * (run / resume / merge / report / list), the campaign service
 * (serve / submit / status / fetch), and the static-analysis
 * front end (analyze / lint -- the masked-fault prover's ACE/AVF
 * report and the assembly lint gate, nonzero exit on findings). All
 * logic lives in bench/lab.cc so the registry and rendering are
 * shared with the bench_fig* drivers.
 */

#include "bench/lab.hh"

int
main(int argc, char **argv)
{
    return etc::bench::labMain(argc, argv);
}
