/**
 * @file
 * etc_lab executable: persistent-result-store campaign orchestration
 * (run / resume / merge / report / list) and the campaign service
 * (serve / submit / status / fetch). All logic lives in bench/lab.cc
 * so the registry and rendering are shared with the bench_fig*
 * drivers.
 */

#include "bench/lab.hh"

int
main(int argc, char **argv)
{
    return etc::bench::labMain(argc, argv);
}
