/**
 * @file
 * The Program container: assembled code, function table, label maps,
 * and the initial data segment.
 *
 * The machine is Harvard-style: instructions are addressed by index
 * (branch/jump targets are absolute instruction indices), while data
 * lives in a byte-addressed memory starting at DATA_BASE. This keeps
 * the fault model focused on *values*, which is all the paper injects
 * into, and makes "jump went wild" trivially detectable.
 */

#ifndef ETC_ASM_PROGRAM_HH
#define ETC_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace etc::assembly {

/** Base address of the static data segment. */
constexpr uint32_t DATA_BASE = 0x10000000;

/** Highest stack address + 4; $sp is initialized here and grows down. */
constexpr uint32_t STACK_TOP = 0x7ffffffc;

/** Bytes of stack the simulator considers valid. */
constexpr uint32_t STACK_SIZE = 1u << 20;

/** One contiguous region of initialized (or reserved) data. */
struct DataChunk
{
    uint32_t addr = 0;             //!< absolute start address
    std::vector<uint8_t> bytes;    //!< initial contents (zeroed if reserved)
};

/** Half-open instruction-index range of one function. */
struct FunctionInfo
{
    std::string name;
    uint32_t begin = 0; //!< index of first instruction
    uint32_t end = 0;   //!< one past the last instruction
};

/**
 * A fully assembled program, ready for simulation and analysis.
 */
class Program
{
  public:
    /** All instructions, branch targets resolved to absolute indices. */
    std::vector<isa::Instruction> code;

    /** Function table, sorted by begin index, non-overlapping. */
    std::vector<FunctionInfo> functions;

    /** Code labels: name -> instruction index. */
    std::map<std::string, uint32_t> codeLabels;

    /** Data labels: name -> absolute data address. */
    std::map<std::string, uint32_t> dataLabels;

    /** Initial data segment contents. */
    std::vector<DataChunk> data;

    /** Instruction index where execution starts. */
    uint32_t entry = 0;

    /** First address past the static data (heap would start here). */
    uint32_t dataEnd = DATA_BASE;

    /** @return the number of instructions. */
    uint32_t size() const { return static_cast<uint32_t>(code.size()); }

    /**
     * @return the index into functions of the function containing
     *         instruction @p index, or std::nullopt if none does.
     */
    std::optional<size_t> functionContaining(uint32_t index) const;

    /** @return the function table entry named @p name, if present. */
    std::optional<size_t> functionByName(const std::string &name) const;

    /** Look up a data label's address; panics if absent. */
    uint32_t dataAddress(const std::string &label) const;

    /**
     * Validate internal consistency: every control-transfer target is
     * within the code, every function range is well-formed, data chunks
     * do not overlap. Panics on violation (library bug, not user error).
     */
    void validate() const;

    /** Full disassembly listing with function headers and labels. */
    std::string disassemble() const;
};

} // namespace etc::assembly

#endif // ETC_ASM_PROGRAM_HH
