#include "asm/builder.hh"

#include <cstring>

#include "support/logging.hh"

namespace etc::assembly {

using namespace isa;

ProgramBuilder::ProgramBuilder()
{
    prog_.dataEnd = DATA_BASE;
}

uint32_t
ProgramBuilder::dataBytes(const std::string &label,
                          const std::vector<uint8_t> &bytes)
{
    // Keep every chunk word-aligned so later words/floats stay aligned.
    uint32_t addr = (prog_.dataEnd + 3u) & ~3u;
    if (prog_.dataLabels.count(label))
        fatal("duplicate data label '", label, "'");
    prog_.dataLabels[label] = addr;
    DataChunk chunk;
    chunk.addr = addr;
    chunk.bytes = bytes;
    prog_.dataEnd = addr + static_cast<uint32_t>(bytes.size());
    prog_.data.push_back(std::move(chunk));
    return addr;
}

uint32_t
ProgramBuilder::dataWords(const std::string &label,
                          const std::vector<int32_t> &words)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(words.size() * 4);
    for (int32_t w : words) {
        auto u = static_cast<uint32_t>(w);
        bytes.push_back(static_cast<uint8_t>(u));
        bytes.push_back(static_cast<uint8_t>(u >> 8));
        bytes.push_back(static_cast<uint8_t>(u >> 16));
        bytes.push_back(static_cast<uint8_t>(u >> 24));
    }
    return dataBytes(label, bytes);
}

uint32_t
ProgramBuilder::dataFloats(const std::string &label,
                           const std::vector<float> &values)
{
    std::vector<int32_t> words;
    words.reserve(values.size());
    for (float f : values) {
        int32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        words.push_back(bits);
    }
    return dataWords(label, words);
}

uint32_t
ProgramBuilder::dataSpace(const std::string &label, uint32_t nbytes)
{
    return dataBytes(label, std::vector<uint8_t>(nbytes, 0));
}

void
ProgramBuilder::beginFunction(const std::string &name)
{
    if (inFunction_)
        fatal("beginFunction('", name, "'): function '", currentFunction_,
              "' still open");
    if (prog_.codeLabels.count(name))
        fatal("duplicate function/label name '", name, "'");
    inFunction_ = true;
    currentFunction_ = name;
    functionStart_ = here();
    prog_.codeLabels[name] = functionStart_;
}

void
ProgramBuilder::endFunction()
{
    if (!inFunction_)
        fatal("endFunction: no function open");
    FunctionInfo fn;
    fn.name = currentFunction_;
    fn.begin = functionStart_;
    fn.end = here();
    if (fn.begin == fn.end)
        fatal("function '", fn.name, "' is empty");
    prog_.functions.push_back(std::move(fn));
    inFunction_ = false;
}

Label
ProgramBuilder::newLabel()
{
    Label label;
    label.id = nextLabelId_++;
    labelPos_.push_back(UINT32_MAX);
    return label;
}

void
ProgramBuilder::bind(Label label)
{
    if (!label.valid() || label.id >= labelPos_.size())
        panic("bind: invalid label");
    if (labelPos_[label.id] != UINT32_MAX)
        panic("bind: label ", label.id, " bound twice");
    labelPos_[label.id] = here();
}

void
ProgramBuilder::emit(const Instruction &ins)
{
    if (finished_)
        panic("emit after finish()");
    if (!inFunction_)
        fatal("instruction emitted outside any function");
    prog_.code.push_back(ins);
}

uint32_t
ProgramBuilder::here() const
{
    return static_cast<uint32_t>(prog_.code.size());
}

void
ProgramBuilder::emitBranch(Instruction ins, Label target)
{
    if (!target.valid() || target.id >= labelPos_.size())
        panic("branch to invalid label");
    fixups_.emplace_back(here(), target.id);
    emit(ins);
}

// --- integer ALU -----------------------------------------------------

#define ETC_R3_METHOD(name, OPC)                                          \
    void ProgramBuilder::name(Reg rd, Reg rs, Reg rt)                     \
    {                                                                     \
        emit(make::r3(Opcode::OPC, rd, rs, rt));                          \
    }

ETC_R3_METHOD(add, ADD)
ETC_R3_METHOD(sub, SUB)
ETC_R3_METHOD(mul, MUL)
ETC_R3_METHOD(div, DIV)
ETC_R3_METHOD(rem, REM)
ETC_R3_METHOD(and_, AND)
ETC_R3_METHOD(or_, OR)
ETC_R3_METHOD(xor_, XOR)
ETC_R3_METHOD(nor, NOR)
ETC_R3_METHOD(slt, SLT)
ETC_R3_METHOD(sltu, SLTU)
ETC_R3_METHOD(sllv, SLLV)
ETC_R3_METHOD(srlv, SRLV)
ETC_R3_METHOD(srav, SRAV)
#undef ETC_R3_METHOD

#define ETC_R2I_METHOD(name, OPC)                                         \
    void ProgramBuilder::name(Reg rd, Reg rs, int32_t imm)                \
    {                                                                     \
        emit(make::r2i(Opcode::OPC, rd, rs, imm));                        \
    }

ETC_R2I_METHOD(addi, ADDI)
ETC_R2I_METHOD(andi, ANDI)
ETC_R2I_METHOD(ori, ORI)
ETC_R2I_METHOD(xori, XORI)
ETC_R2I_METHOD(slti, SLTI)
ETC_R2I_METHOD(sll, SLL)
ETC_R2I_METHOD(srl, SRL)
ETC_R2I_METHOD(sra, SRA)
#undef ETC_R2I_METHOD

void
ProgramBuilder::li(Reg rd, int32_t value)
{
    emit(make::r2i(Opcode::ADDI, rd, REG_ZERO, value));
}

void
ProgramBuilder::la(Reg rd, const std::string &dataLabel)
{
    auto it = prog_.dataLabels.find(dataLabel);
    if (it == prog_.dataLabels.end())
        fatal("la: unknown data label '", dataLabel, "'");
    li(rd, static_cast<int32_t>(it->second));
}

void
ProgramBuilder::move(Reg rd, Reg rs)
{
    emit(make::r3(Opcode::OR, rd, rs, REG_ZERO));
}

// --- memory ----------------------------------------------------------

#define ETC_MEM_METHOD(name, OPC)                                         \
    void ProgramBuilder::name(Reg rd, int32_t offset, Reg base)           \
    {                                                                     \
        emit(make::mem(Opcode::OPC, rd, base, offset));                   \
    }

ETC_MEM_METHOD(lw, LW)
ETC_MEM_METHOD(lh, LH)
ETC_MEM_METHOD(lhu, LHU)
ETC_MEM_METHOD(lb, LB)
ETC_MEM_METHOD(lbu, LBU)
ETC_MEM_METHOD(sw, SW)
ETC_MEM_METHOD(sh, SH)
ETC_MEM_METHOD(sb, SB)
ETC_MEM_METHOD(lwc1, LWC1)
ETC_MEM_METHOD(swc1, SWC1)
#undef ETC_MEM_METHOD

// --- control flow ----------------------------------------------------

void
ProgramBuilder::beq(Reg rs, Reg rt, Label target)
{
    emitBranch(make::br2(Opcode::BEQ, rs, rt, 0), target);
}

void
ProgramBuilder::bne(Reg rs, Reg rt, Label target)
{
    emitBranch(make::br2(Opcode::BNE, rs, rt, 0), target);
}

void
ProgramBuilder::blez(Reg rs, Label target)
{
    emitBranch(make::br1(Opcode::BLEZ, rs, 0), target);
}

void
ProgramBuilder::bgtz(Reg rs, Label target)
{
    emitBranch(make::br1(Opcode::BGTZ, rs, 0), target);
}

void
ProgramBuilder::bltz(Reg rs, Label target)
{
    emitBranch(make::br1(Opcode::BLTZ, rs, 0), target);
}

void
ProgramBuilder::bgez(Reg rs, Label target)
{
    emitBranch(make::br1(Opcode::BGEZ, rs, 0), target);
}

void
ProgramBuilder::blt(Reg rs, Reg rt, Label target)
{
    slt(REG_AT, rs, rt);
    bne(REG_AT, REG_ZERO, target);
}

void
ProgramBuilder::bge(Reg rs, Reg rt, Label target)
{
    slt(REG_AT, rs, rt);
    beq(REG_AT, REG_ZERO, target);
}

void
ProgramBuilder::bgt(Reg rs, Reg rt, Label target)
{
    slt(REG_AT, rt, rs);
    bne(REG_AT, REG_ZERO, target);
}

void
ProgramBuilder::ble(Reg rs, Reg rt, Label target)
{
    slt(REG_AT, rt, rs);
    beq(REG_AT, REG_ZERO, target);
}

void
ProgramBuilder::j(Label target)
{
    emitBranch(make::jmp(Opcode::J, 0), target);
}

void
ProgramBuilder::call(const std::string &function)
{
    callFixups_.emplace_back(here(), function);
    emit(make::jmp(Opcode::JAL, 0));
}

void
ProgramBuilder::ret()
{
    emit(make::jr(REG_RA));
}

void
ProgramBuilder::jr(Reg rs)
{
    emit(make::jr(rs));
}

// --- floating point --------------------------------------------------

#define ETC_F3_METHOD(name, OPC)                                          \
    void ProgramBuilder::name(Reg fd, Reg fs, Reg ft)                     \
    {                                                                     \
        emit(make::r3(Opcode::OPC, fd, fs, ft));                          \
    }

ETC_F3_METHOD(adds, ADDS)
ETC_F3_METHOD(subs, SUBS)
ETC_F3_METHOD(muls, MULS)
ETC_F3_METHOD(divs, DIVS)
#undef ETC_F3_METHOD

#define ETC_F2_METHOD(name, OPC)                                          \
    void ProgramBuilder::name(Reg fd, Reg fs)                             \
    {                                                                     \
        Instruction ins;                                                  \
        ins.op = Opcode::OPC;                                             \
        ins.rd = fd;                                                      \
        ins.rs = fs;                                                      \
        emit(ins);                                                        \
    }

ETC_F2_METHOD(abss, ABSS)
ETC_F2_METHOD(negs, NEGS)
ETC_F2_METHOD(movs, MOVS)
ETC_F2_METHOD(sqrts, SQRTS)
ETC_F2_METHOD(cvtsw, CVTSW)
ETC_F2_METHOD(cvtws, CVTWS)
#undef ETC_F2_METHOD

#define ETC_FCMP_METHOD(name, OPC)                                        \
    void ProgramBuilder::name(Reg fs, Reg ft)                             \
    {                                                                     \
        Instruction ins;                                                  \
        ins.op = Opcode::OPC;                                             \
        ins.rs = fs;                                                      \
        ins.rt = ft;                                                      \
        emit(ins);                                                        \
    }

ETC_FCMP_METHOD(ceqs, CEQS)
ETC_FCMP_METHOD(clts, CLTS)
ETC_FCMP_METHOD(cles, CLES)
#undef ETC_FCMP_METHOD

void
ProgramBuilder::bc1t(Label target)
{
    Instruction ins;
    ins.op = Opcode::BC1T;
    emitBranch(ins, target);
}

void
ProgramBuilder::bc1f(Label target)
{
    Instruction ins;
    ins.op = Opcode::BC1F;
    emitBranch(ins, target);
}

void
ProgramBuilder::mtc1(Reg rs, Reg fd)
{
    Instruction ins;
    ins.op = Opcode::MTC1;
    ins.rd = fd;
    ins.rs = rs;
    emit(ins);
}

void
ProgramBuilder::mfc1(Reg rd, Reg fs)
{
    Instruction ins;
    ins.op = Opcode::MFC1;
    ins.rd = rd;
    ins.rs = fs;
    emit(ins);
}

void
ProgramBuilder::lif(Reg fd, float value)
{
    int32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    li(REG_AT, bits);
    mtc1(REG_AT, fd);
}

// --- system ----------------------------------------------------------

void
ProgramBuilder::nop()
{
    emit(make::nop());
}

void
ProgramBuilder::halt()
{
    emit(make::halt());
}

void
ProgramBuilder::outb(Reg rs)
{
    emit(make::r1(Opcode::OUTB, rs));
}

void
ProgramBuilder::outw(Reg rs)
{
    emit(make::r1(Opcode::OUTW, rs));
}

// --- finish ----------------------------------------------------------

Program
ProgramBuilder::finish(const std::string &entryFunction)
{
    if (finished_)
        panic("finish() called twice");
    if (inFunction_)
        fatal("finish: function '", currentFunction_, "' still open");

    for (auto [instrIdx, labelId] : fixups_) {
        if (labelPos_[labelId] == UINT32_MAX)
            fatal("unbound label referenced by instruction ", instrIdx);
        prog_.code[instrIdx].target = labelPos_[labelId];
    }
    for (const auto &[instrIdx, name] : callFixups_) {
        auto it = prog_.codeLabels.find(name);
        if (it == prog_.codeLabels.end())
            fatal("call to unknown function '", name, "'");
        prog_.code[instrIdx].target = it->second;
    }
    auto entry = prog_.codeLabels.find(entryFunction);
    if (entry == prog_.codeLabels.end())
        fatal("entry function '", entryFunction, "' not defined");
    prog_.entry = entry->second;

    prog_.validate();
    finished_ = true;
    return std::move(prog_);
}

} // namespace etc::assembly
