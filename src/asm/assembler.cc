#include "asm/assembler.hh"

#include <cctype>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "isa/instruction.hh"
#include "support/logging.hh"

namespace etc::assembly {

using namespace isa;

namespace {

/** One source line split into label / mnemonic / operand fields. */
struct ParsedLine
{
    int number = 0;
    std::string label;               // without ':'
    std::string mnem;                // lower-cased mnemonic or directive
    std::vector<std::string> operands;
};

[[noreturn]] void
errorAt(int line, const std::string &msg)
{
    fatal("assembler: line ", line, ": ", msg);
}

std::string
strip(const std::string &text)
{
    size_t begin = 0, end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/** Split operand text on commas not inside a string literal. */
std::vector<std::string>
splitOperands(const std::string &text, int line)
{
    std::vector<std::string> out;
    std::string current;
    bool inString = false;
    for (size_t i = 0; i < text.size(); ++i) {
        char ch = text[i];
        if (ch == '"' && (i == 0 || text[i - 1] != '\\'))
            inString = !inString;
        if (ch == ',' && !inString) {
            out.push_back(strip(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    if (inString)
        errorAt(line, "unterminated string literal");
    std::string last = strip(current);
    if (!last.empty())
        out.push_back(last);
    return out;
}

ParsedLine
parseLine(const std::string &raw, int number)
{
    ParsedLine out;
    out.number = number;

    // Strip comments ('#' outside string literals).
    std::string text;
    bool inString = false;
    for (size_t i = 0; i < raw.size(); ++i) {
        char ch = raw[i];
        if (ch == '"' && (i == 0 || raw[i - 1] != '\\'))
            inString = !inString;
        if (ch == '#' && !inString)
            break;
        text += ch;
    }
    text = strip(text);
    if (text.empty())
        return out;

    // Leading label?
    size_t colon = std::string::npos;
    inString = false;
    for (size_t i = 0; i < text.size(); ++i) {
        char ch = text[i];
        if (ch == '"')
            inString = !inString;
        if (ch == ':' && !inString) {
            colon = i;
            break;
        }
        if (std::isspace(static_cast<unsigned char>(ch)))
            break; // first token is a mnemonic, not a label
    }
    if (colon != std::string::npos) {
        out.label = strip(text.substr(0, colon));
        if (out.label.empty())
            errorAt(number, "empty label");
        text = strip(text.substr(colon + 1));
    }
    if (text.empty())
        return out;

    size_t space = text.find_first_of(" \t");
    out.mnem = text.substr(0, space);
    for (auto &ch : out.mnem)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    if (space != std::string::npos)
        out.operands = splitOperands(strip(text.substr(space + 1)), number);
    return out;
}

int64_t
parseInt(const std::string &text, int line)
{
    if (text.empty())
        errorAt(line, "expected an integer");
    try {
        size_t pos = 0;
        long long value = std::stoll(text, &pos, 0);
        if (pos != text.size())
            errorAt(line, "bad integer '" + text + "'");
        return value;
    } catch (const std::exception &) {
        errorAt(line, "bad integer '" + text + "'");
    }
}

RegId
parseRegOrDie(const std::string &text, int line)
{
    auto reg = parseReg(text);
    if (!reg)
        errorAt(line, "bad register '" + text + "'");
    return *reg;
}

/** Parse "offset($base)" or "($base)" or "label". */
struct MemOperand
{
    bool isLabel = false;
    std::string label;
    int32_t offset = 0;
    RegId base = REG_ZERO;
};

MemOperand
parseMemOperand(const std::string &text, int line)
{
    MemOperand out;
    size_t open = text.find('(');
    if (open == std::string::npos) {
        out.isLabel = true;
        out.label = text;
        return out;
    }
    size_t close = text.find(')', open);
    if (close == std::string::npos)
        errorAt(line, "missing ')' in memory operand '" + text + "'");
    std::string offText = strip(text.substr(0, open));
    if (!offText.empty())
        out.offset = static_cast<int32_t>(parseInt(offText, line));
    out.base = parseRegOrDie(strip(text.substr(open + 1, close - open - 1)),
                             line);
    return out;
}

std::vector<uint8_t>
parseAsciiz(const std::string &text, int line)
{
    std::string t = strip(text);
    if (t.size() < 2 || t.front() != '"' || t.back() != '"')
        errorAt(line, ".asciiz expects a quoted string");
    std::vector<uint8_t> bytes;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
        char ch = t[i];
        if (ch == '\\' && i + 2 < t.size()) {
            ++i;
            switch (t[i]) {
              case 'n': ch = '\n'; break;
              case 't': ch = '\t'; break;
              case '0': ch = '\0'; break;
              case '\\': ch = '\\'; break;
              case '"': ch = '"'; break;
              default:
                errorAt(line, "unknown escape in string");
            }
        }
        bytes.push_back(static_cast<uint8_t>(ch));
    }
    bytes.push_back(0);
    return bytes;
}

/** @return true if @p text is a non-empty string of decimal digits. */
bool
isNumericLabel(const std::string &text)
{
    return !text.empty() &&
           text.find_first_not_of("0123456789") == std::string::npos;
}

/** How many real instructions a mnemonic expands to. */
unsigned
expansionSize(const std::string &mnem)
{
    if (mnem == "blt" || mnem == "bge" || mnem == "bgt" || mnem == "ble")
        return 2;
    return 1;
}

bool
isPseudo(const std::string &mnem)
{
    return mnem == "li" || mnem == "la" || mnem == "move" ||
           mnem == "blt" || mnem == "bge" || mnem == "bgt" ||
           mnem == "ble";
}

} // namespace

Program
assemble(const std::string &source, const std::string &entryFunction)
{
    std::vector<ParsedLine> lines;
    {
        std::istringstream iss(source);
        std::string raw;
        int number = 0;
        while (std::getline(iss, raw))
            lines.push_back(parseLine(raw, ++number));
    }

    Program prog;
    prog.dataEnd = DATA_BASE;

    // ---- pass 1: lay out data, bind all labels, count instructions ----
    enum class Segment { Text, Data };
    Segment seg = Segment::Text;
    uint32_t instrCount = 0;

    auto alignData = [&](uint32_t alignment) {
        prog.dataEnd = (prog.dataEnd + alignment - 1) & ~(alignment - 1);
    };

    auto addChunk = [&](std::vector<uint8_t> bytes) {
        DataChunk chunk;
        chunk.addr = prog.dataEnd;
        chunk.bytes = std::move(bytes);
        prog.dataEnd += static_cast<uint32_t>(chunk.bytes.size());
        prog.data.push_back(std::move(chunk));
    };

    struct PendingFunction
    {
        std::string name;
        uint32_t begin;
    };
    std::optional<PendingFunction> openFunction;

    for (const auto &line : lines) {
        if (!line.label.empty()) {
            if (seg == Segment::Text) {
                // Purely numeric code labels would be ambiguous with
                // absolute-index branch targets (see codeTarget).
                if (isNumericLabel(line.label))
                    errorAt(line.number,
                            "numeric code label '" + line.label +
                                "' conflicts with absolute branch "
                                "targets");
                // Re-binding at the same address is allowed so that
                // `.func f` followed by an explicit `f:` label works.
                auto it = prog.codeLabels.find(line.label);
                if (it != prog.codeLabels.end() &&
                    it->second != instrCount)
                    errorAt(line.number,
                            "duplicate label '" + line.label + "'");
                prog.codeLabels[line.label] = instrCount;
            } else {
                alignData(4);
                if (prog.dataLabels.count(line.label))
                    errorAt(line.number,
                            "duplicate label '" + line.label + "'");
                prog.dataLabels[line.label] = prog.dataEnd;
            }
        }
        if (line.mnem.empty())
            continue;

        if (line.mnem == ".text") {
            seg = Segment::Text;
        } else if (line.mnem == ".data") {
            seg = Segment::Data;
        } else if (line.mnem == ".func") {
            if (line.operands.size() != 1)
                errorAt(line.number, ".func expects a name");
            if (openFunction)
                errorAt(line.number, "nested .func");
            openFunction = PendingFunction{line.operands[0], instrCount};
            if (!prog.codeLabels.count(line.operands[0]))
                prog.codeLabels[line.operands[0]] = instrCount;
        } else if (line.mnem == ".endfunc") {
            if (!openFunction)
                errorAt(line.number, ".endfunc without .func");
            FunctionInfo fn;
            fn.name = openFunction->name;
            fn.begin = openFunction->begin;
            fn.end = instrCount;
            if (fn.begin == fn.end)
                errorAt(line.number,
                        "function '" + fn.name + "' is empty");
            prog.functions.push_back(std::move(fn));
            openFunction.reset();
        } else if (line.mnem == ".word") {
            if (seg != Segment::Data)
                errorAt(line.number, ".word outside .data");
            alignData(4);
            std::vector<uint8_t> bytes;
            for (const auto &opnd : line.operands) {
                auto u = static_cast<uint32_t>(
                    parseInt(opnd, line.number));
                for (int b = 0; b < 4; ++b)
                    bytes.push_back(static_cast<uint8_t>(u >> (8 * b)));
            }
            addChunk(std::move(bytes));
        } else if (line.mnem == ".float") {
            if (seg != Segment::Data)
                errorAt(line.number, ".float outside .data");
            alignData(4);
            std::vector<uint8_t> bytes;
            for (const auto &opnd : line.operands) {
                float f = 0.0f;
                try {
                    f = std::stof(opnd);
                } catch (const std::exception &) {
                    errorAt(line.number, "bad float '" + opnd + "'");
                }
                uint32_t u;
                std::memcpy(&u, &f, sizeof(u));
                for (int b = 0; b < 4; ++b)
                    bytes.push_back(static_cast<uint8_t>(u >> (8 * b)));
            }
            addChunk(std::move(bytes));
        } else if (line.mnem == ".byte") {
            if (seg != Segment::Data)
                errorAt(line.number, ".byte outside .data");
            std::vector<uint8_t> bytes;
            for (const auto &opnd : line.operands)
                bytes.push_back(
                    static_cast<uint8_t>(parseInt(opnd, line.number)));
            addChunk(std::move(bytes));
        } else if (line.mnem == ".space") {
            if (seg != Segment::Data)
                errorAt(line.number, ".space outside .data");
            if (line.operands.size() != 1)
                errorAt(line.number, ".space expects a size");
            alignData(4);
            addChunk(std::vector<uint8_t>(
                static_cast<size_t>(parseInt(line.operands[0],
                                             line.number)),
                0));
        } else if (line.mnem == ".asciiz") {
            if (seg != Segment::Data)
                errorAt(line.number, ".asciiz outside .data");
            if (line.operands.size() != 1)
                errorAt(line.number, ".asciiz expects one string");
            addChunk(parseAsciiz(line.operands[0], line.number));
        } else if (line.mnem == ".align") {
            if (seg != Segment::Data)
                errorAt(line.number, ".align outside .data");
            auto amount = static_cast<uint32_t>(
                parseInt(line.operands.at(0), line.number));
            alignData(std::max(1u, amount));
        } else if (line.mnem[0] == '.') {
            errorAt(line.number, "unknown directive '" + line.mnem + "'");
        } else {
            if (seg != Segment::Text)
                errorAt(line.number, "instruction outside .text");
            instrCount += expansionSize(line.mnem);
        }
    }
    if (openFunction)
        fatal("assembler: function '", openFunction->name,
              "' never closed with .endfunc");

    // ---- pass 2: emit instructions with all labels known --------------
    auto codeTarget = [&](const std::string &label, int line) {
        // A purely numeric operand is an absolute instruction index --
        // the syntax Instruction::toString() emits for control
        // transfers, so disassembled text reassembles identically.
        // Parsed base-10 (parseInt's base-0 would read "010" as
        // octal); pass 1 rejects numeric code labels, so the two
        // syntaxes cannot collide. validate() range-checks every
        // resolved target below.
        if (isNumericLabel(label)) {
            try {
                unsigned long index = std::stoul(label, nullptr, 10);
                if (index > UINT32_MAX)
                    throw std::out_of_range(label);
                return static_cast<uint32_t>(index);
            } catch (const std::exception &) {
                errorAt(line, "branch target '" + label +
                                  "' out of range");
            }
        }
        auto it = prog.codeLabels.find(label);
        if (it == prog.codeLabels.end())
            errorAt(line, "unknown code label '" + label + "'");
        return it->second;
    };

    for (const auto &line : lines) {
        if (line.mnem.empty() || line.mnem[0] == '.')
            continue;
        const auto &ops = line.operands;
        auto need = [&](size_t n) {
            if (ops.size() != n)
                errorAt(line.number,
                        "'" + line.mnem + "' expects " +
                            std::to_string(n) + " operands");
        };
        auto reg = [&](size_t i) { return parseRegOrDie(ops[i],
                                                        line.number); };
        auto immAt = [&](size_t i) {
            return static_cast<int32_t>(parseInt(ops[i], line.number));
        };

        if (isPseudo(line.mnem)) {
            if (line.mnem == "li") {
                need(2);
                prog.code.push_back(
                    make::r2i(Opcode::ADDI, reg(0), REG_ZERO, immAt(1)));
            } else if (line.mnem == "la") {
                need(2);
                auto it = prog.dataLabels.find(ops[1]);
                if (it == prog.dataLabels.end())
                    errorAt(line.number,
                            "unknown data label '" + ops[1] + "'");
                prog.code.push_back(
                    make::r2i(Opcode::ADDI, reg(0), REG_ZERO,
                              static_cast<int32_t>(it->second)));
            } else if (line.mnem == "move") {
                need(2);
                prog.code.push_back(
                    make::r3(Opcode::OR, reg(0), reg(1), REG_ZERO));
            } else {
                // blt/bge/bgt/ble rs, rt, label
                need(3);
                RegId rs = reg(0), rt = reg(1);
                uint32_t target = codeTarget(ops[2], line.number);
                bool swap = line.mnem == "bgt" || line.mnem == "ble";
                bool onSet = line.mnem == "blt" || line.mnem == "bgt";
                prog.code.push_back(make::r3(Opcode::SLT, REG_AT,
                                             swap ? rt : rs,
                                             swap ? rs : rt));
                prog.code.push_back(
                    make::br2(onSet ? Opcode::BNE : Opcode::BEQ, REG_AT,
                              REG_ZERO, target));
            }
            continue;
        }

        auto opcode = opcodeFromMnemonic(line.mnem);
        if (!opcode)
            errorAt(line.number, "unknown mnemonic '" + line.mnem + "'");

        Instruction ins;
        ins.op = *opcode;
        switch (format(*opcode)) {
          case Format::None:
            need(0);
            break;
          case Format::R3:
          case Format::F3:
            need(3);
            ins.rd = reg(0);
            ins.rs = reg(1);
            ins.rt = reg(2);
            break;
          case Format::R2I:
            need(3);
            ins.rd = reg(0);
            ins.rs = reg(1);
            ins.imm = immAt(2);
            break;
          case Format::RI:
            need(2);
            ins.rd = reg(0);
            ins.imm = immAt(1);
            break;
          case Format::Mem:
          case Format::FMem: {
            need(2);
            ins.rd = reg(0);
            MemOperand m = parseMemOperand(ops[1], line.number);
            if (m.isLabel) {
                auto it = prog.dataLabels.find(m.label);
                if (it == prog.dataLabels.end())
                    errorAt(line.number,
                            "unknown data label '" + m.label + "'");
                ins.rs = REG_ZERO;
                ins.imm = static_cast<int32_t>(it->second);
            } else {
                ins.rs = m.base;
                ins.imm = m.offset;
            }
            break;
          }
          case Format::Br2:
            need(3);
            ins.rs = reg(0);
            ins.rt = reg(1);
            ins.target = codeTarget(ops[2], line.number);
            break;
          case Format::Br1:
            need(2);
            ins.rs = reg(0);
            ins.target = codeTarget(ops[1], line.number);
            break;
          case Format::Jmp:
          case Format::FBr:
            need(1);
            ins.target = codeTarget(ops[0], line.number);
            break;
          case Format::JmpR:
          case Format::R1:
            need(1);
            ins.rs = reg(0);
            break;
          case Format::JmpLR:
            need(2);
            ins.rd = reg(0);
            ins.rs = reg(1);
            break;
          case Format::F2:
            need(2);
            ins.rd = reg(0);
            ins.rs = reg(1);
            break;
          case Format::FCmp:
            need(2);
            ins.rs = reg(0);
            ins.rt = reg(1);
            break;
          case Format::MoveToFp:
            need(2);
            ins.rs = reg(0);
            ins.rd = reg(1);
            break;
          case Format::MoveFromFp:
            need(2);
            ins.rd = reg(0);
            ins.rs = reg(1);
            break;
        }
        prog.code.push_back(ins);
    }

    auto entry = prog.codeLabels.find(entryFunction);
    if (entry == prog.codeLabels.end())
        fatal("assembler: entry function '", entryFunction,
              "' not defined");
    prog.entry = entry->second;

    prog.validate();
    return prog;
}

} // namespace etc::assembly
