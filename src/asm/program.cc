#include "asm/program.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace etc::assembly {

std::optional<size_t>
Program::functionContaining(uint32_t index) const
{
    for (size_t i = 0; i < functions.size(); ++i)
        if (index >= functions[i].begin && index < functions[i].end)
            return i;
    return std::nullopt;
}

std::optional<size_t>
Program::functionByName(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i)
        if (functions[i].name == name)
            return i;
    return std::nullopt;
}

uint32_t
Program::dataAddress(const std::string &label) const
{
    auto it = dataLabels.find(label);
    if (it == dataLabels.end())
        panic("Program::dataAddress: unknown data label '", label, "'");
    return it->second;
}

void
Program::validate() const
{
    for (uint32_t i = 0; i < size(); ++i) {
        const auto &ins = code[i];
        if (ins.isControl() && ins.op != isa::Opcode::JR &&
            ins.op != isa::Opcode::JALR) {
            if (ins.target >= size())
                panic("instruction ", i, " (", ins.toString(),
                      ") targets out-of-range index ", ins.target);
        }
    }
    uint32_t prevEnd = 0;
    for (const auto &fn : functions) {
        if (fn.begin >= fn.end)
            panic("function '", fn.name, "' has empty range");
        if (fn.begin < prevEnd)
            panic("function '", fn.name, "' overlaps the previous one");
        if (fn.end > size())
            panic("function '", fn.name, "' extends past code end");
        prevEnd = fn.end;
    }
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    for (const auto &chunk : data)
        spans.emplace_back(chunk.addr,
                           chunk.addr +
                               static_cast<uint32_t>(chunk.bytes.size()));
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i)
        if (spans[i].first < spans[i - 1].second)
            panic("data chunks overlap at 0x", std::hex, spans[i].first);
    if (entry >= size() && size() > 0)
        panic("entry point ", entry, " out of range");
}

std::string
Program::disassemble() const
{
    // Build reverse label map for annotation.
    std::map<uint32_t, std::vector<std::string>> labelsAt;
    for (const auto &[name, idx] : codeLabels)
        labelsAt[idx].push_back(name);

    std::ostringstream oss;
    for (uint32_t i = 0; i < size(); ++i) {
        for (const auto &fn : functions)
            if (fn.begin == i)
                oss << "# ---- function " << fn.name << " ----\n";
        if (auto it = labelsAt.find(i); it != labelsAt.end())
            for (const auto &name : it->second)
                oss << name << ":\n";
        oss << "  [" << i << "]  " << code[i].toString() << '\n';
    }
    return oss.str();
}

} // namespace etc::assembly
