/**
 * @file
 * ProgramBuilder: a programmatic assembler.
 *
 * The seven workload kernels are emitted through this API rather than
 * parsed from text; it gives compile-time checking of register names
 * and keeps kernels readable. The textual Assembler (assembler.hh)
 * shares the same Program output model.
 *
 * Conventions:
 *  - labels are created with newLabel() and placed with bind();
 *  - calls go through call(functionName); returns via ret();
 *  - the ISA carries full 32-bit immediates, so li/la are single
 *    instructions (documented in DESIGN.md as a simulation-width
 *    convenience).
 */

#ifndef ETC_ASM_BUILDER_HH
#define ETC_ASM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/instruction.hh"

namespace etc::assembly {

/** Opaque code-label handle returned by ProgramBuilder::newLabel(). */
struct Label
{
    uint32_t id = UINT32_MAX;
    bool valid() const { return id != UINT32_MAX; }
};

/**
 * Incrementally builds a Program: data segment, functions, labeled
 * control flow. finish() resolves all fixups and validates.
 */
class ProgramBuilder
{
  public:
    using Reg = isa::RegId;

    ProgramBuilder();

    /// @name Data segment
    /// @{
    /** Reserve and initialize 32-bit words; @return start address. */
    uint32_t dataWords(const std::string &label,
                       const std::vector<int32_t> &words);
    /** Reserve and initialize raw bytes; @return start address. */
    uint32_t dataBytes(const std::string &label,
                       const std::vector<uint8_t> &bytes);
    /** Reserve and initialize IEEE-754 floats; @return start address. */
    uint32_t dataFloats(const std::string &label,
                        const std::vector<float> &values);
    /** Reserve @p nbytes of zeroed space; @return start address. */
    uint32_t dataSpace(const std::string &label, uint32_t nbytes);
    /// @}

    /// @name Functions and labels
    /// @{
    /** Open a function; its name becomes a code label. */
    void beginFunction(const std::string &name);
    /** Close the currently open function. */
    void endFunction();
    /** Create an unplaced label. */
    Label newLabel();
    /** Place @p label at the next emitted instruction. */
    void bind(Label label);
    /// @}

    /// @name Integer ALU
    /// @{
    void add(Reg rd, Reg rs, Reg rt);
    void sub(Reg rd, Reg rs, Reg rt);
    void mul(Reg rd, Reg rs, Reg rt);
    void div(Reg rd, Reg rs, Reg rt);
    void rem(Reg rd, Reg rs, Reg rt);
    void and_(Reg rd, Reg rs, Reg rt);
    void or_(Reg rd, Reg rs, Reg rt);
    void xor_(Reg rd, Reg rs, Reg rt);
    void nor(Reg rd, Reg rs, Reg rt);
    void slt(Reg rd, Reg rs, Reg rt);
    void sltu(Reg rd, Reg rs, Reg rt);
    void sllv(Reg rd, Reg rs, Reg rt);
    void srlv(Reg rd, Reg rs, Reg rt);
    void srav(Reg rd, Reg rs, Reg rt);
    void addi(Reg rd, Reg rs, int32_t imm);
    void andi(Reg rd, Reg rs, int32_t imm);
    void ori(Reg rd, Reg rs, int32_t imm);
    void xori(Reg rd, Reg rs, int32_t imm);
    void slti(Reg rd, Reg rs, int32_t imm);
    void sll(Reg rd, Reg rs, int32_t shamt);
    void srl(Reg rd, Reg rs, int32_t shamt);
    void sra(Reg rd, Reg rs, int32_t shamt);
    /** Load 32-bit immediate (single instruction in this ISA). */
    void li(Reg rd, int32_t value);
    /** Load the address of a data label. */
    void la(Reg rd, const std::string &dataLabel);
    /** Register copy. */
    void move(Reg rd, Reg rs);
    /// @}

    /// @name Memory
    /// @{
    void lw(Reg rd, int32_t offset, Reg base);
    void lh(Reg rd, int32_t offset, Reg base);
    void lhu(Reg rd, int32_t offset, Reg base);
    void lb(Reg rd, int32_t offset, Reg base);
    void lbu(Reg rd, int32_t offset, Reg base);
    void sw(Reg rd, int32_t offset, Reg base);
    void sh(Reg rd, int32_t offset, Reg base);
    void sb(Reg rd, int32_t offset, Reg base);
    /// @}

    /// @name Control flow
    /// @{
    void beq(Reg rs, Reg rt, Label target);
    void bne(Reg rs, Reg rt, Label target);
    void blez(Reg rs, Label target);
    void bgtz(Reg rs, Label target);
    void bltz(Reg rs, Label target);
    void bgez(Reg rs, Label target);
    /** Pseudo: branch if rs < rt (signed), via slt into $at. */
    void blt(Reg rs, Reg rt, Label target);
    /** Pseudo: branch if rs >= rt (signed). */
    void bge(Reg rs, Reg rt, Label target);
    /** Pseudo: branch if rs > rt (signed). */
    void bgt(Reg rs, Reg rt, Label target);
    /** Pseudo: branch if rs <= rt (signed). */
    void ble(Reg rs, Reg rt, Label target);
    void j(Label target);
    /** Call a function by name (resolved at finish()). */
    void call(const std::string &function);
    /** Return: jr $ra. */
    void ret();
    void jr(Reg rs);
    /// @}

    /// @name Floating point (pass isa::fpReg(n) for FP operands)
    /// @{
    void adds(Reg fd, Reg fs, Reg ft);
    void subs(Reg fd, Reg fs, Reg ft);
    void muls(Reg fd, Reg fs, Reg ft);
    void divs(Reg fd, Reg fs, Reg ft);
    void abss(Reg fd, Reg fs);
    void negs(Reg fd, Reg fs);
    void movs(Reg fd, Reg fs);
    void sqrts(Reg fd, Reg fs);
    void cvtsw(Reg fd, Reg fs);
    void cvtws(Reg fd, Reg fs);
    void ceqs(Reg fs, Reg ft);
    void clts(Reg fs, Reg ft);
    void cles(Reg fs, Reg ft);
    void bc1t(Label target);
    void bc1f(Label target);
    void lwc1(Reg fd, int32_t offset, Reg base);
    void swc1(Reg fd, int32_t offset, Reg base);
    void mtc1(Reg rs, Reg fd);
    void mfc1(Reg rd, Reg fs);
    /** Pseudo: load a float constant via li + mtc1 (clobbers $at). */
    void lif(Reg fd, float value);
    /// @}

    /// @name System
    /// @{
    void nop();
    void halt();
    void outb(Reg rs);
    void outw(Reg rs);
    /// @}

    /** Emit a raw instruction (escape hatch for tests). */
    void emit(const isa::Instruction &ins);

    /** @return the index the next instruction will get. */
    uint32_t here() const;

    /**
     * Resolve all label and call fixups, close the function table,
     * validate, and return the finished Program.
     *
     * @param entryFunction the function where execution begins
     */
    Program finish(const std::string &entryFunction = "main");

  private:
    void emitBranch(isa::Instruction ins, Label target);

    Program prog_;
    uint32_t nextLabelId_ = 0;
    std::vector<uint32_t> labelPos_;            // label id -> instr index
    std::vector<std::pair<uint32_t, uint32_t>> fixups_; // instr, label id
    std::vector<std::pair<uint32_t, std::string>> callFixups_;
    bool inFunction_ = false;
    std::string currentFunction_;
    uint32_t functionStart_ = 0;
    bool finished_ = false;
};

} // namespace etc::assembly

#endif // ETC_ASM_BUILDER_HH
