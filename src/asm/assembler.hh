/**
 * @file
 * A two-pass textual assembler for the target ISA.
 *
 * Accepted syntax (MIPS-flavoured):
 *
 *   .data
 *   table:   .word 1, 2, 3
 *   buffer:  .space 64
 *   scale:   .float 0.5, 2.0
 *   text:    .asciiz "hello"
 *   .text
 *   .func main
 *   main:    li   $t0, 10
 *   loop:    addi $t0, $t0, -1
 *            bgtz $t0, loop
 *            halt
 *   .endfunc
 *
 * Supported pseudo-instructions: li, la, move, blt, bge, bgt, ble
 * (the comparison pseudos expand to slt + branch via $at, exactly as
 * the ProgramBuilder does). Comments start with '#'.
 *
 * Errors are reported via etc::fatal() with a line number.
 */

#ifndef ETC_ASM_ASSEMBLER_HH
#define ETC_ASM_ASSEMBLER_HH

#include <string>

#include "asm/program.hh"

namespace etc::assembly {

/**
 * Assemble source text into a Program.
 *
 * @param source        full assembly listing
 * @param entryFunction function where execution starts (default "main")
 * @return the assembled, validated program
 * @throws FatalError on any syntax or semantic error
 */
Program assemble(const std::string &source,
                 const std::string &entryFunction = "main");

} // namespace etc::assembly

#endif // ETC_ASM_ASSEMBLER_HH
