#include "isa/encoding.hh"

namespace etc::isa {

uint64_t
encode(const Instruction &ins)
{
    // For control transfers imm and target share the low word; an
    // instruction never uses both.
    uint32_t low = ins.isControl() || format(ins.op) == Format::FBr
                       ? ins.target
                       : static_cast<uint32_t>(ins.imm);
    return (uint64_t{static_cast<uint8_t>(ins.op)} << 56) |
           (uint64_t{ins.rd} << 48) | (uint64_t{ins.rs} << 40) |
           (uint64_t{ins.rt} << 32) | uint64_t{low};
}

std::optional<Instruction>
decode(uint64_t word)
{
    auto opByte = static_cast<uint8_t>(word >> 56);
    if (opByte >= NUM_OPCODES)
        return std::nullopt;

    Instruction ins;
    ins.op = static_cast<Opcode>(opByte);
    ins.rd = static_cast<RegId>((word >> 48) & 0xff);
    ins.rs = static_cast<RegId>((word >> 40) & 0xff);
    ins.rt = static_cast<RegId>((word >> 32) & 0xff);
    if (ins.rd >= NUM_REGS || ins.rs >= NUM_REGS || ins.rt >= NUM_REGS)
        return std::nullopt;

    auto low = static_cast<uint32_t>(word & 0xffffffffull);
    if (ins.isControl() || format(ins.op) == Format::FBr)
        ins.target = low;
    else
        ins.imm = static_cast<int32_t>(low);
    return ins;
}

} // namespace etc::isa
