/**
 * @file
 * Register identifiers for the MIPS-like target ISA.
 *
 * The analysis layer wants a single flat register namespace, so integer
 * registers, floating-point registers, and the FP condition flag are
 * mapped onto one RegId space:
 *
 *   [0, 32)   integer registers $zero .. $ra
 *   [32, 64)  single-precision FP registers $f0 .. $f31
 *   64        the FP condition flag written by c.xx.s, read by bc1t/f
 */

#ifndef ETC_ISA_REGISTERS_HH
#define ETC_ISA_REGISTERS_HH

#include <cstdint>
#include <optional>
#include <string>

namespace etc::isa {

/** Flat register identifier (int regs, FP regs, then the FP flag). */
using RegId = uint8_t;

constexpr RegId NUM_INT_REGS = 32;
constexpr RegId NUM_FP_REGS = 32;
constexpr RegId FP_FLAG_REG = NUM_INT_REGS + NUM_FP_REGS; //!< = 64
constexpr RegId NUM_REGS = FP_FLAG_REG + 1;               //!< = 65

/** Conventional integer register numbers (MIPS o32 names). */
enum IntReg : RegId
{
    REG_ZERO = 0, REG_AT = 1, REG_V0 = 2, REG_V1 = 3,
    REG_A0 = 4, REG_A1 = 5, REG_A2 = 6, REG_A3 = 7,
    REG_T0 = 8, REG_T1 = 9, REG_T2 = 10, REG_T3 = 11,
    REG_T4 = 12, REG_T5 = 13, REG_T6 = 14, REG_T7 = 15,
    REG_S0 = 16, REG_S1 = 17, REG_S2 = 18, REG_S3 = 19,
    REG_S4 = 20, REG_S5 = 21, REG_S6 = 22, REG_S7 = 23,
    REG_T8 = 24, REG_T9 = 25, REG_K0 = 26, REG_K1 = 27,
    REG_GP = 28, REG_SP = 29, REG_FP_ = 30, REG_RA = 31,
};

/** @return the flat RegId of single-precision FP register @p n. */
constexpr RegId
fpReg(unsigned n)
{
    return static_cast<RegId>(NUM_INT_REGS + n);
}

/** @return true if @p reg names an integer register. */
constexpr bool
isIntReg(RegId reg)
{
    return reg < NUM_INT_REGS;
}

/** @return true if @p reg names a floating-point register. */
constexpr bool
isFpReg(RegId reg)
{
    return reg >= NUM_INT_REGS && reg < NUM_INT_REGS + NUM_FP_REGS;
}

/**
 * @return the canonical assembly name of a register
 *         ("$t0", "$f5", "$fcc").
 */
std::string regName(RegId reg);

/**
 * Parse a register name with or without the leading '$'.
 * Accepts symbolic ("$t0"), numeric ("$8"), FP ("$f12"), and "$fcc".
 *
 * @return the RegId, or std::nullopt if the text is not a register.
 */
std::optional<RegId> parseReg(const std::string &text);

} // namespace etc::isa

#endif // ETC_ISA_REGISTERS_HH
