#include "isa/instruction.hh"

#include <sstream>

#include "support/logging.hh"

namespace etc::isa {

std::optional<RegId>
Instruction::def() const
{
    switch (format(op)) {
      case Format::R3:
      case Format::R2I:
      case Format::RI:
      case Format::JmpLR:
      case Format::MoveToFp:
      case Format::MoveFromFp:
        return rd;
      case Format::Mem:
      case Format::FMem:
        return isLoad() ? std::optional<RegId>(rd) : std::nullopt;
      case Format::F3:
      case Format::F2:
        return rd;
      case Format::FCmp:
        return FP_FLAG_REG;
      case Format::Jmp:
        return op == Opcode::JAL ? std::optional<RegId>(REG_RA)
                                 : std::nullopt;
      default:
        return std::nullopt;
    }
}

RegList
Instruction::uses() const
{
    RegList list;
    switch (format(op)) {
      case Format::R3:
      case Format::F3:
        list.push(rs);
        list.push(rt);
        break;
      case Format::R2I:
      case Format::F2:
      case Format::JmpR:
      case Format::JmpLR:
      case Format::R1:
      case Format::MoveToFp:
      case Format::MoveFromFp:
        list.push(rs);
        break;
      case Format::Mem:
      case Format::FMem:
        list.push(rs);          // address base
        if (isStore())
            list.push(rd);      // stored data
        break;
      case Format::Br2:
      case Format::FCmp:
        list.push(rs);
        list.push(rt);
        break;
      case Format::Br1:
        list.push(rs);
        break;
      case Format::FBr:
        list.push(FP_FLAG_REG);
        break;
      case Format::RI:
      case Format::Jmp:
      case Format::None:
        break;
    }
    return list;
}

std::optional<RegId>
Instruction::addressUse() const
{
    if (isLoad() || isStore())
        return rs;
    return std::nullopt;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << mnemonic(op);
    auto reg = [](RegId r) { return regName(r); };
    switch (format(op)) {
      case Format::None:
        break;
      case Format::R3:
      case Format::F3:
        oss << ' ' << reg(rd) << ", " << reg(rs) << ", " << reg(rt);
        break;
      case Format::R2I:
        oss << ' ' << reg(rd) << ", " << reg(rs) << ", " << imm;
        break;
      case Format::RI:
        oss << ' ' << reg(rd) << ", " << imm;
        break;
      case Format::Mem:
      case Format::FMem:
        oss << ' ' << reg(rd) << ", " << imm << '(' << reg(rs) << ')';
        break;
      case Format::Br2:
        oss << ' ' << reg(rs) << ", " << reg(rt) << ", " << target;
        break;
      case Format::Br1:
        oss << ' ' << reg(rs) << ", " << target;
        break;
      case Format::Jmp:
      case Format::FBr:
        oss << ' ' << target;
        break;
      case Format::JmpR:
      case Format::R1:
        oss << ' ' << reg(rs);
        break;
      case Format::JmpLR:
        oss << ' ' << reg(rd) << ", " << reg(rs);
        break;
      case Format::F2:
        oss << ' ' << reg(rd) << ", " << reg(rs);
        break;
      case Format::FCmp:
        oss << ' ' << reg(rs) << ", " << reg(rt);
        break;
      case Format::MoveToFp:
        oss << ' ' << reg(rs) << ", " << reg(rd);
        break;
      case Format::MoveFromFp:
        oss << ' ' << reg(rd) << ", " << reg(rs);
        break;
    }
    return oss.str();
}

namespace make {

Instruction
r3(Opcode op, RegId rd, RegId rs, RegId rt)
{
    Instruction ins;
    ins.op = op;
    ins.rd = rd;
    ins.rs = rs;
    ins.rt = rt;
    return ins;
}

Instruction
r2i(Opcode op, RegId rd, RegId rs, int32_t imm)
{
    Instruction ins;
    ins.op = op;
    ins.rd = rd;
    ins.rs = rs;
    ins.imm = imm;
    return ins;
}

Instruction
ri(Opcode op, RegId rd, int32_t imm)
{
    Instruction ins;
    ins.op = op;
    ins.rd = rd;
    ins.imm = imm;
    return ins;
}

Instruction
mem(Opcode op, RegId data, RegId base, int32_t offset)
{
    Instruction ins;
    ins.op = op;
    ins.rd = data;
    ins.rs = base;
    ins.imm = offset;
    return ins;
}

Instruction
br2(Opcode op, RegId rs, RegId rt, uint32_t target)
{
    Instruction ins;
    ins.op = op;
    ins.rs = rs;
    ins.rt = rt;
    ins.target = target;
    return ins;
}

Instruction
br1(Opcode op, RegId rs, uint32_t target)
{
    Instruction ins;
    ins.op = op;
    ins.rs = rs;
    ins.target = target;
    return ins;
}

Instruction
jmp(Opcode op, uint32_t target)
{
    Instruction ins;
    ins.op = op;
    ins.target = target;
    return ins;
}

Instruction
jr(RegId rs)
{
    Instruction ins;
    ins.op = Opcode::JR;
    ins.rs = rs;
    return ins;
}

Instruction
jalr(RegId rd, RegId rs)
{
    Instruction ins;
    ins.op = Opcode::JALR;
    ins.rd = rd;
    ins.rs = rs;
    return ins;
}

Instruction
r1(Opcode op, RegId rs)
{
    Instruction ins;
    ins.op = op;
    ins.rs = rs;
    return ins;
}

Instruction
nop()
{
    return Instruction{};
}

Instruction
halt()
{
    Instruction ins;
    ins.op = Opcode::HALT;
    return ins;
}

} // namespace make

} // namespace etc::isa
