/**
 * @file
 * Opcode enumeration and static traits for the target ISA.
 *
 * The traits table is the single source of truth consumed by the
 * assembler (mnemonics & operand formats), the simulator (semantics
 * dispatch), the dataflow analysis (instruction class), and the fault
 * injector (which instructions produce an injectable result).
 */

#ifndef ETC_ISA_OPCODES_HH
#define ETC_ISA_OPCODES_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace etc::isa {

/**
 * Operand format, dictating assembly syntax and which of the rd/rs/rt/imm
 * fields of Instruction are meaningful.
 */
enum class Format : uint8_t
{
    None,   //!< op                         (nop, halt)
    R3,     //!< op rd, rs, rt
    R2I,    //!< op rd, rs, imm
    RI,     //!< op rd, imm                 (lui)
    Mem,    //!< op rd, imm(rs)             (rd = data reg for ld & st)
    Br2,    //!< op rs, rt, label
    Br1,    //!< op rs, label
    Jmp,    //!< op label                   (j, jal)
    JmpR,   //!< op rs                      (jr)
    JmpLR,  //!< op rd, rs                  (jalr)
    R1,     //!< op rs                      (outb, outw)
    F3,     //!< op fd, fs, ft
    F2,     //!< op fd, fs
    FCmp,   //!< op fs, ft  (writes $fcc)
    FBr,    //!< op label   (reads $fcc)
    FMem,   //!< op fd, imm(rs)
    MoveToFp,   //!< op rs, fd  (mtc1: int reg bits -> fp reg)
    MoveFromFp, //!< op rd, fs  (mfc1: fp reg bits -> int reg)
};

/**
 * Coarse semantic class used by the analysis and the injector.
 */
enum class InstrClass : uint8_t
{
    IntAlu,     //!< integer arithmetic/logic; taggable per the paper
    FpAlu,      //!< floating-point arithmetic; taggable per the paper
    FpCmp,      //!< FP compare writing $fcc; feeds control directly
    Load,       //!< memory read
    Store,      //!< memory write
    Branch,     //!< conditional control transfer
    Jump,       //!< unconditional control transfer (j, jr)
    Call,       //!< jal / jalr
    RegMove,    //!< mtc1 / mfc1 bit moves between files
    Output,     //!< writes the output stream
    System,     //!< nop / halt
};

/**
 * The X-macro table: mnemonic token, enumerator, format, class.
 * Order defines the binary opcode value; append only.
 */
#define ETC_ISA_OPCODE_TABLE(X)                                            \
    /* integer ALU */                                                      \
    X(add,   ADD,   R3,   IntAlu)                                          \
    X(sub,   SUB,   R3,   IntAlu)                                          \
    X(mul,   MUL,   R3,   IntAlu)                                          \
    X(div,   DIV,   R3,   IntAlu)                                          \
    X(rem,   REM,   R3,   IntAlu)                                          \
    X(and,   AND,   R3,   IntAlu)                                          \
    X(or,    OR,    R3,   IntAlu)                                          \
    X(xor,   XOR,   R3,   IntAlu)                                          \
    X(nor,   NOR,   R3,   IntAlu)                                          \
    X(slt,   SLT,   R3,   IntAlu)                                          \
    X(sltu,  SLTU,  R3,   IntAlu)                                          \
    X(sllv,  SLLV,  R3,   IntAlu)                                          \
    X(srlv,  SRLV,  R3,   IntAlu)                                          \
    X(srav,  SRAV,  R3,   IntAlu)                                          \
    X(addi,  ADDI,  R2I,  IntAlu)                                          \
    X(andi,  ANDI,  R2I,  IntAlu)                                          \
    X(ori,   ORI,   R2I,  IntAlu)                                          \
    X(xori,  XORI,  R2I,  IntAlu)                                          \
    X(slti,  SLTI,  R2I,  IntAlu)                                          \
    X(sltiu, SLTIU, R2I,  IntAlu)                                          \
    X(sll,   SLL,   R2I,  IntAlu)                                          \
    X(srl,   SRL,   R2I,  IntAlu)                                          \
    X(sra,   SRA,   R2I,  IntAlu)                                          \
    X(lui,   LUI,   RI,   IntAlu)                                          \
    /* memory */                                                           \
    X(lw,    LW,    Mem,  Load)                                            \
    X(lh,    LH,    Mem,  Load)                                            \
    X(lhu,   LHU,   Mem,  Load)                                            \
    X(lb,    LB,    Mem,  Load)                                            \
    X(lbu,   LBU,   Mem,  Load)                                            \
    X(sw,    SW,    Mem,  Store)                                           \
    X(sh,    SH,    Mem,  Store)                                           \
    X(sb,    SB,    Mem,  Store)                                           \
    /* control */                                                          \
    X(beq,   BEQ,   Br2,  Branch)                                          \
    X(bne,   BNE,   Br2,  Branch)                                          \
    X(blez,  BLEZ,  Br1,  Branch)                                          \
    X(bgtz,  BGTZ,  Br1,  Branch)                                          \
    X(bltz,  BLTZ,  Br1,  Branch)                                          \
    X(bgez,  BGEZ,  Br1,  Branch)                                          \
    X(j,     J,     Jmp,  Jump)                                            \
    X(jal,   JAL,   Jmp,  Call)                                            \
    X(jr,    JR,    JmpR, Jump)                                            \
    X(jalr,  JALR,  JmpLR, Call)                                           \
    /* floating point */                                                   \
    X(add.s, ADDS,  F3,   FpAlu)                                           \
    X(sub.s, SUBS,  F3,   FpAlu)                                           \
    X(mul.s, MULS,  F3,   FpAlu)                                           \
    X(div.s, DIVS,  F3,   FpAlu)                                           \
    X(abs.s, ABSS,  F2,   FpAlu)                                           \
    X(neg.s, NEGS,  F2,   FpAlu)                                           \
    X(mov.s, MOVS,  F2,   FpAlu)                                           \
    X(sqrt.s, SQRTS, F2,  FpAlu)                                           \
    X(cvt.s.w, CVTSW, F2, FpAlu)                                           \
    X(cvt.w.s, CVTWS, F2, FpAlu)                                           \
    X(c.eq.s, CEQS, FCmp, FpCmp)                                           \
    X(c.lt.s, CLTS, FCmp, FpCmp)                                           \
    X(c.le.s, CLES, FCmp, FpCmp)                                           \
    X(bc1t,  BC1T,  FBr,  Branch)                                          \
    X(bc1f,  BC1F,  FBr,  Branch)                                          \
    X(lwc1,  LWC1,  FMem, Load)                                            \
    X(swc1,  SWC1,  FMem, Store)                                           \
    X(mtc1,  MTC1,  MoveToFp,   RegMove)                                   \
    X(mfc1,  MFC1,  MoveFromFp, RegMove)                                   \
    /* system */                                                           \
    X(nop,   NOP,   None, System)                                          \
    X(halt,  HALT,  None, System)                                          \
    X(outb,  OUTB,  R1,   Output)                                          \
    X(outw,  OUTW,  R1,   Output)

/** Every opcode in the ISA. */
enum class Opcode : uint8_t
{
#define ETC_X(mnem, enumName, fmt, cls) enumName,
    ETC_ISA_OPCODE_TABLE(ETC_X)
#undef ETC_X
};

/** Total number of opcodes. */
constexpr unsigned NUM_OPCODES = 0
#define ETC_X(mnem, enumName, fmt, cls) +1
    ETC_ISA_OPCODE_TABLE(ETC_X)
#undef ETC_X
    ;

/** @return the assembler mnemonic for @p op. */
const char *mnemonic(Opcode op);

/** @return the operand format of @p op. */
Format format(Opcode op);

namespace detail {

/** Opcode -> class, indexable without the full traits lookup. */
inline constexpr std::array<InstrClass, NUM_OPCODES> INSTR_CLASS = {{
#define ETC_X(mnem, enumName, fmt, cls) InstrClass::cls,
    ETC_ISA_OPCODE_TABLE(ETC_X)
#undef ETC_X
}};

/** Cold path for an out-of-range opcode value; throws PanicError. */
[[noreturn]] void badOpcode(unsigned index);

} // namespace detail

/**
 * @return the semantic class of @p op.
 *
 * Inline: this sits on every interpreter dispatch (isControl() decides
 * whether the PC advances sequentially), so it must not cost a
 * cross-TU call per retired instruction.
 */
inline InstrClass
instrClass(Opcode op)
{
    auto index = static_cast<unsigned>(op);
    if (index >= NUM_OPCODES)
        detail::badOpcode(index);
    return detail::INSTR_CLASS[index];
}

/** Look up an opcode from its mnemonic. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &mnem);

/** @return true if @p cls is a register-writing ALU class (taggable). */
constexpr bool
isAluClass(InstrClass cls)
{
    return cls == InstrClass::IntAlu || cls == InstrClass::FpAlu;
}

/** @return true if @p op transfers control (branch/jump/call). */
inline bool
isControlTransfer(Opcode op)
{
    InstrClass cls = instrClass(op);
    return cls == InstrClass::Branch || cls == InstrClass::Jump ||
           cls == InstrClass::Call;
}

} // namespace etc::isa

#endif // ETC_ISA_OPCODES_HH
