/**
 * @file
 * Fixed-width binary encoding of instructions.
 *
 * The simulator executes decoded Instruction values directly; the binary
 * form exists so programs can be round-tripped to disk and so the fault
 * model could in principle target instruction words. For simulation
 * convenience we use a 64-bit word:
 *
 *   bits [63:56]  opcode
 *   bits [55:48]  rd
 *   bits [47:40]  rs
 *   bits [39:32]  rt
 *   bits [31:0]   imm (for control transfers: the absolute target)
 */

#ifndef ETC_ISA_ENCODING_HH
#define ETC_ISA_ENCODING_HH

#include <cstdint>
#include <optional>

#include "isa/instruction.hh"

namespace etc::isa {

/** Encode @p ins into its 64-bit binary form. */
uint64_t encode(const Instruction &ins);

/**
 * Decode a 64-bit word back into an Instruction.
 *
 * @return std::nullopt if the opcode byte or register fields are
 *         out of range for the ISA.
 */
std::optional<Instruction> decode(uint64_t word);

} // namespace etc::isa

#endif // ETC_ISA_ENCODING_HH
