#include "isa/registers.hh"

#include <array>
#include <cctype>

#include "support/logging.hh"

namespace etc::isa {

namespace {

const std::array<const char *, NUM_INT_REGS> intNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

} // namespace

std::string
regName(RegId reg)
{
    if (isIntReg(reg))
        return std::string("$") + intNames[reg];
    if (isFpReg(reg))
        return "$f" + std::to_string(reg - NUM_INT_REGS);
    if (reg == FP_FLAG_REG)
        return "$fcc";
    panic("regName: invalid register id ", int{reg});
}

std::optional<RegId>
parseReg(const std::string &text)
{
    std::string name = text;
    if (!name.empty() && name[0] == '$')
        name = name.substr(1);
    if (name.empty())
        return std::nullopt;

    if (name == "fcc")
        return FP_FLAG_REG;

    // FP registers: f0 .. f31.
    if (name.size() >= 2 && name[0] == 'f' &&
        std::isdigit(static_cast<unsigned char>(name[1]))) {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return std::nullopt;
            n = n * 10 + (name[i] - '0');
        }
        if (n < NUM_FP_REGS)
            return fpReg(static_cast<unsigned>(n));
        return std::nullopt;
    }

    // Numeric integer registers: 0 .. 31.
    if (std::isdigit(static_cast<unsigned char>(name[0]))) {
        int n = 0;
        for (char ch : name) {
            if (!std::isdigit(static_cast<unsigned char>(ch)))
                return std::nullopt;
            n = n * 10 + (ch - '0');
        }
        if (n < NUM_INT_REGS)
            return static_cast<RegId>(n);
        return std::nullopt;
    }

    // Symbolic integer registers.
    for (RegId i = 0; i < NUM_INT_REGS; ++i)
        if (name == intNames[i])
            return i;
    return std::nullopt;
}

} // namespace etc::isa
