#include "isa/opcodes.hh"

#include <array>
#include <unordered_map>

#include "support/logging.hh"

namespace etc::isa {

namespace {

struct OpTraits
{
    const char *mnem;
    Format fmt;
    InstrClass cls;
};

const std::array<OpTraits, NUM_OPCODES> traits = {{
#define ETC_X(mnem, enumName, fmt, cls)                                    \
    OpTraits{#mnem, Format::fmt, InstrClass::cls},
    ETC_ISA_OPCODE_TABLE(ETC_X)
#undef ETC_X
}};

const OpTraits &
lookup(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    if (idx >= traits.size())
        panic("invalid opcode value ", idx);
    return traits[idx];
}

} // namespace

const char *
mnemonic(Opcode op)
{
    return lookup(op).mnem;
}

Format
format(Opcode op)
{
    return lookup(op).fmt;
}

void
detail::badOpcode(unsigned index)
{
    panic("invalid opcode value ", index);
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &mnem)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (size_t i = 0; i < traits.size(); ++i)
            m.emplace(traits[i].mnem, static_cast<Opcode>(i));
        return m;
    }();
    auto it = map.find(mnem);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

} // namespace etc::isa
