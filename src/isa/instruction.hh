/**
 * @file
 * The Instruction value type: one decoded three-address instruction.
 *
 * Field meaning depends on the opcode's Format (see opcodes.hh):
 *
 *   rd   destination register (or data register for loads/stores)
 *   rs   first source (or memory base register)
 *   rt   second source
 *   imm  immediate / memory offset
 *   target  resolved absolute instruction index for control transfers
 *
 * FP operands are stored in the flat RegId space (fpReg(n)), so the
 * analysis layer never needs to know which file a register lives in.
 */

#ifndef ETC_ISA_INSTRUCTION_HH
#define ETC_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace etc::isa {

/** A short, allocation-free list of register ids (max 3 entries). */
class RegList
{
  public:
    /** Append a register id. */
    void
    push(RegId reg)
    {
        if (count_ >= regs_.size())
            return; // cannot happen for well-formed instructions
        regs_[count_++] = reg;
    }

    const RegId *begin() const { return regs_.data(); }
    const RegId *end() const { return regs_.data() + count_; }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    RegId operator[](size_t i) const { return regs_[i]; }

    /** @return true if @p reg is in the list. */
    bool
    contains(RegId reg) const
    {
        for (RegId r : *this)
            if (r == reg)
                return true;
        return false;
    }

  private:
    std::array<RegId, 3> regs_{};
    uint8_t count_ = 0;
};

/**
 * One decoded instruction. Plain value type; copies freely.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegId rd = 0;       //!< destination / memory data register
    RegId rs = 0;       //!< source 1 / memory base
    RegId rt = 0;       //!< source 2
    int32_t imm = 0;    //!< immediate or memory offset
    uint32_t target = 0; //!< resolved instruction index (control xfer)

    /** @return the register this instruction defines, if any. */
    std::optional<RegId> def() const;

    /** @return all registers this instruction reads. */
    RegList uses() const;

    /**
     * @return the register used for address computation (memory base),
     *         if this is a load or store.
     */
    std::optional<RegId> addressUse() const;

    /** @return true if this instruction reads memory. */
    bool isLoad() const { return instrClass(op) == InstrClass::Load; }

    /** @return true if this instruction writes memory. */
    bool isStore() const { return instrClass(op) == InstrClass::Store; }

    /** @return true for conditional branches (two successors). */
    bool
    isConditionalBranch() const
    {
        return instrClass(op) == InstrClass::Branch;
    }

    /** @return true for any control transfer (branch, jump, call). */
    bool isControl() const { return isControlTransfer(op); }

    /**
     * @return true if the instruction is an ALU operation producing a
     *         register result -- the class the paper's analysis may tag
     *         as low-reliability.
     */
    bool
    isAlu() const
    {
        return isAluClass(instrClass(op));
    }

    /** Render canonical assembly text (targets as absolute indices). */
    std::string toString() const;

    /**
     * Structural equality (all fields). Spelled out rather than
     * `= default` so the header also compiles as C++17 (defaulted
     * comparisons are C++20-only); the build itself pins C++20 in
     * CMakeLists.txt.
     */
    bool
    operator==(const Instruction &other) const
    {
        return op == other.op && rd == other.rd && rs == other.rs &&
               rt == other.rt && imm == other.imm &&
               target == other.target;
    }

    bool
    operator!=(const Instruction &other) const
    {
        return !(*this == other);
    }
};

// MSVC reports __cplusplus as 199711L unless /Zc:__cplusplus is set;
// _MSVC_LANG always carries the real language level there.
#if (defined(_MSVC_LANG) && _MSVC_LANG < 201703L) || \
    (!defined(_MSVC_LANG) && __cplusplus < 201703L)
#error "etc requires at least C++17 (C++20 preferred; see CMakeLists.txt)"
#endif

/** Convenience factories used by tests and the ProgramBuilder. */
namespace make {

Instruction r3(Opcode op, RegId rd, RegId rs, RegId rt);
Instruction r2i(Opcode op, RegId rd, RegId rs, int32_t imm);
Instruction ri(Opcode op, RegId rd, int32_t imm);
Instruction mem(Opcode op, RegId data, RegId base, int32_t offset);
Instruction br2(Opcode op, RegId rs, RegId rt, uint32_t target);
Instruction br1(Opcode op, RegId rs, uint32_t target);
Instruction jmp(Opcode op, uint32_t target);
Instruction jr(RegId rs);
Instruction jalr(RegId rd, RegId rs);
Instruction r1(Opcode op, RegId rs);
Instruction nop();
Instruction halt();

} // namespace make

} // namespace etc::isa

#endif // ETC_ISA_INSTRUCTION_HH
