/**
 * @file
 * ErrorToleranceStudy: the library's top-level API, tying together the
 * paper's whole pipeline for one application:
 *
 *   workload program
 *     -> CVar static analysis (tag low-reliability instructions)
 *     -> fault-free profiling (Table 3 numbers, golden output)
 *     -> fault-injection campaigns at chosen error counts, with the
 *        protection either ON (inject only into tagged instructions)
 *        or OFF (inject into every result)
 *     -> outcome classification (Table 2) + per-trial fidelity
 *        (Figures 1-6).
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   auto workload = workloads::createWorkload("susan");
 *   core::ErrorToleranceStudy study(*workload, {});
 *   auto cell = study.runCell(100, core::ProtectionMode::Protected);
 *   std::cout << cell.failureRate() << '\n';
 * @endcode
 */

#ifndef ETC_CORE_STUDY_HH
#define ETC_CORE_STUDY_HH

#include <memory>
#include <optional>
#include <vector>

#include "analysis/control_protection.hh"
#include "fault/campaign.hh"
#include "sim/profiler.hh"
#include "workloads/workload.hh"

namespace etc::core {

/** Whether the CVar protection is applied during injection. */
enum class ProtectionMode
{
    Protected,   //!< inject only into tagged (low-reliability) results
    Unprotected, //!< inject into every register-writing instruction
};

/** Study-wide configuration. */
struct StudyConfig
{
    /** CVar analysis options (paper defaults). */
    analysis::ProtectionConfig protection;

    /** Trials per campaign cell. */
    unsigned trials = 20;

    /** Master seed; every cell derives deterministically from it. */
    uint64_t seed = 0xe77;

    /** Timeout at budgetFactor x the golden instruction count. */
    double budgetFactor = 10.0;

    /**
     * Worker threads per campaign cell (0 = all cores). Cell results
     * are bit-identical for every thread count; see CampaignRunner.
     */
    unsigned threads = 1;

    /**
     * Memory fault model. Lenient matches the paper's SimpleScalar
     * platform; Strict is the bounds-checking ablation.
     */
    sim::MemoryModel memoryModel = sim::MemoryModel::Lenient;

    /**
     * Retired instructions between golden-run checkpoints; trials
     * fast-forward past their fault-free prefix by restoring the
     * nearest one (see sim/checkpoint.hh). 0 disables checkpointing
     * (full-replay trials). Either way, cell results are bit-identical.
     */
    uint64_t checkpointInterval =
        fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL;
};

/** Aggregated results of one (error count, mode) campaign cell. */
struct CellSummary
{
    unsigned errors = 0;
    ProtectionMode mode = ProtectionMode::Protected;
    unsigned trials = 0;
    unsigned completed = 0;
    unsigned crashed = 0;
    unsigned timedOut = 0;

    /** Fidelity score of each completed trial. */
    std::vector<workloads::FidelityScore> fidelities;

    /** Wall-clock seconds the campaign took (perf tracking only). */
    double wallSeconds = 0.0;

    /** Dynamic instructions summed over all trials. With trial
     *  fast-forwarding, restored prefixes count as executed, so this
     *  is thread- and checkpoint-invariant. */
    uint64_t totalInstructions = 0;

    /** Campaign throughput (perf tracking only; 0 if untimed). */
    double
    trialsPerSecond() const
    {
        return wallSeconds > 0.0 ? trials / wallSeconds : 0.0;
    }

    /** Fraction of trials that crashed or timed out. */
    double
    failureRate() const
    {
        return trials
                   ? static_cast<double>(crashed + timedOut) / trials
                   : 0.0;
    }

    /** Mean fidelity metric over completed trials. */
    double meanFidelity() const;

    /** Fraction of *all* trials that completed with acceptable
     *  fidelity. */
    double acceptableRate() const;
};

/**
 * One application's full error-tolerance characterization.
 */
class ErrorToleranceStudy
{
  public:
    /**
     * Run the static analysis and the fault-free profile.
     *
     * @param workload the application (not owned; must outlive this)
     * @param config   study configuration
     */
    ErrorToleranceStudy(const workloads::Workload &workload,
                        StudyConfig config);

    /** The CVar analysis result (tags, CVar sets, static counts). */
    const analysis::ProtectionResult &protection() const
    {
        return protection_;
    }

    /** Fault-free dynamic statistics (Table 3 row). */
    const sim::DynamicProfile &profile() const { return profile_; }

    /** The fault-free output stream. */
    const std::vector<uint8_t> &goldenOutput() const;

    /** Dynamic instruction count of the fault-free run. */
    uint64_t goldenInstructions() const;

    /**
     * Run one campaign cell.
     *
     * @param errors         bit flips per trial
     * @param mode           protection on/off
     * @param trialsOverride nonzero to override config.trials
     */
    CellSummary runCell(unsigned errors, ProtectionMode mode,
                        unsigned trialsOverride = 0);

    const workloads::Workload &workload() const { return workload_; }
    const StudyConfig &config() const { return config_; }

  private:
    fault::CampaignRunner &runner(ProtectionMode mode);

    const workloads::Workload &workload_;
    StudyConfig config_;
    analysis::ProtectionResult protection_;
    sim::DynamicProfile profile_;
    std::unique_ptr<fault::CampaignRunner> protectedRunner_;
    std::unique_ptr<fault::CampaignRunner> unprotectedRunner_;
};

} // namespace etc::core

#endif // ETC_CORE_STUDY_HH
