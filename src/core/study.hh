/**
 * @file
 * ErrorToleranceStudy: the library's top-level API, tying together the
 * paper's whole pipeline for one application:
 *
 *   workload program
 *     -> CVar static analysis (tag low-reliability instructions)
 *     -> fault-free profiling (Table 3 numbers, golden output)
 *     -> fault-injection campaigns at chosen error counts under a
 *        named injection policy (see fault/policy.hh) -- the paper's
 *        two points are the legacy "protected" (inject only into
 *        tagged instructions) and "unprotected" (inject into every
 *        result) policies
 *     -> outcome classification (Table 2) + per-trial fidelity
 *        (Figures 1-6).
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   auto workload = workloads::createWorkload("susan");
 *   core::ErrorToleranceStudy study(*workload, {});
 *   auto cell = study.runCell(100, "protected");
 *   std::cout << cell.failureRate() << '\n';
 * @endcode
 */

#ifndef ETC_CORE_STUDY_HH
#define ETC_CORE_STUDY_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/control_protection.hh"
#include "fault/campaign.hh"
#include "fault/policy.hh"
#include "sim/profiler.hh"
#include "workloads/workload.hh"

namespace etc::store {
struct CellKey;
struct ShardRecord;
class ResultStore;
} // namespace etc::store

namespace etc::core {

/**
 * Deprecated binary protection switch, kept as a thin alias for the
 * two legacy injection policies. New code names policies directly
 * ("protected", "unprotected", "control-only", ...); every enum
 * overload below forwards to the policy-name API.
 */
enum class ProtectionMode
{
    Protected,   //!< alias for the "protected" policy
    Unprotected, //!< alias for the "unprotected" policy
};

/** @return the policy name the deprecated enum value aliases. */
const char *policyNameOf(ProtectionMode mode);

/** Study-wide configuration. */
struct StudyConfig
{
    /** CVar analysis options (paper defaults). */
    analysis::ProtectionConfig protection;

    /** Trials per campaign cell. */
    unsigned trials = 20;

    /** Master seed; every cell derives deterministically from it. */
    uint64_t seed = 0xe77;

    /** Timeout at budgetFactor x the golden instruction count. */
    double budgetFactor = 10.0;

    /**
     * Worker threads per campaign cell (0 = all cores). Cell results
     * are bit-identical for every thread count; see CampaignRunner.
     */
    unsigned threads = 1;

    /**
     * Memory fault model. Lenient matches the paper's SimpleScalar
     * platform; Strict is the bounds-checking ablation.
     */
    sim::MemoryModel memoryModel = sim::MemoryModel::Lenient;

    /**
     * Retired instructions between golden-run checkpoints; trials
     * fast-forward past their fault-free prefix by restoring the
     * nearest one (see sim/checkpoint.hh). 0 disables checkpointing
     * (full-replay trials). Either way, cell results are bit-identical.
     */
    uint64_t checkpointInterval =
        fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL;

    /**
     * Root directory of the persistent result store (see
     * store/result_store.hh). Empty disables persistence. With a
     * cache, runCell() first consults the store: a complete record
     * is returned without executing a single trial, stored shards of
     * a partially-computed cell are reused and only the missing
     * trial ranges run, and every freshly computed cell is persisted.
     * Thread count and checkpoint interval are not part of the cache
     * key -- results are bit-identical across both.
     */
    std::string cacheDir;

    /**
     * Trial lanes per gang on the checkpointed fast path (see
     * CampaignConfig::gangWidth): 0 forces scalar execution,
     * GANG_WIDTH_AUTO (default) lets the runner pick. Purely an
     * execution strategy -- cell results are bit-identical for every
     * width -- so it is, like the thread count, not part of the cache
     * key.
     */
    unsigned gangWidth = fault::GANG_WIDTH_AUTO;

    /**
     * Skip simulating trials whose every drawn flip the masked-fault
     * prover (analysis/vulnerability.hh) proved harmless (it lands in
     * provably dead bits of its site's register result), synthesizing
     * the exact simulator outcome instead. Results are
     * bit-identical on or off (and therefore, like the thread count
     * and checkpoint interval, it is not part of the cache key); the
     * skipped-trial count is reported as CellSummary::trialsPruned.
     */
    bool staticPrune = false;
};

/** Aggregated results of one (error count, policy) campaign cell. */
struct CellSummary
{
    unsigned errors = 0;
    std::string policy = fault::PROTECTED_POLICY;
    unsigned trials = 0;
    unsigned completed = 0;
    unsigned crashed = 0;
    unsigned timedOut = 0;

    /** Trials the static-prune fast path synthesized instead of
     *  simulating (counted under completed; 0 with pruning off). */
    uint64_t trialsPruned = 0;

    /** Fidelity score of each completed trial. */
    std::vector<workloads::FidelityScore> fidelities;

    /** Wall-clock seconds the campaign took (perf tracking only). */
    double wallSeconds = 0.0;

    /** Dynamic instructions summed over all trials. With trial
     *  fast-forwarding, restored prefixes count as executed, so this
     *  is thread- and checkpoint-invariant. */
    uint64_t totalInstructions = 0;

    /** Campaign throughput (perf tracking only; 0 if untimed). */
    double
    trialsPerSecond() const
    {
        return wallSeconds > 0.0 ? trials / wallSeconds : 0.0;
    }

    /** Fraction of trials that crashed or timed out. */
    double
    failureRate() const
    {
        return trials
                   ? static_cast<double>(crashed + timedOut) / trials
                   : 0.0;
    }

    /** Mean fidelity metric over completed trials. */
    double meanFidelity() const;

    /** Fraction of *all* trials that completed with acceptable
     *  fidelity. */
    double acceptableRate() const;
};

/**
 * One application's full error-tolerance characterization.
 */
class ErrorToleranceStudy
{
  public:
    /**
     * Run the static analysis and the fault-free profile.
     *
     * @param workload the application (not owned; must outlive this)
     * @param config   study configuration
     */
    ErrorToleranceStudy(const workloads::Workload &workload,
                        StudyConfig config);

    ~ErrorToleranceStudy();

    /** The CVar analysis result (tags, CVar sets, static counts). */
    const analysis::ProtectionResult &protection() const
    {
        return protection_;
    }

    /** Fault-free dynamic statistics (Table 3 row). */
    const sim::DynamicProfile &profile() const { return profile_; }

    /** The fault-free output stream. */
    const std::vector<uint8_t> &goldenOutput() const;

    /** Dynamic instruction count of the fault-free run. */
    uint64_t goldenInstructions() const;

    /**
     * Run one campaign cell.
     *
     * @param errors         bit flips per trial
     * @param policyName     registered injection policy
     * @param trialsOverride nonzero to override config.trials
     * @throws FatalError on an unregistered policy name
     */
    CellSummary runCell(unsigned errors, const std::string &policyName,
                        unsigned trialsOverride = 0);

    /** Deprecated enum alias of runCell(errors, policyName). */
    CellSummary runCell(unsigned errors, ProtectionMode mode,
                        unsigned trialsOverride = 0);

    /**
     * Run (or load) one shard of a cell: the trial stripe
     * [trials*index/count, trials*(index+1)/count).
     *
     * With a result store attached, the stripe is skipped when the
     * complete cell or this exact shard is already persisted, and is
     * written as a shard record otherwise -- `--shard i/N` across N
     * processes computes a cell cooperatively, and runCell() (or
     * `etc_lab merge`) later promotes the tiling shards into the
     * complete record, bit-identical to an uninterrupted run.
     *
     * @return the shard's partial summary (or the complete cell
     *         summary when the cell was already fully cached)
     */
    CellSummary runCellShard(unsigned errors,
                             const std::string &policyName,
                             unsigned trials, unsigned shardIndex,
                             unsigned shardCount);

    /** Deprecated enum alias of runCellShard(). */
    CellSummary runCellShard(unsigned errors, ProtectionMode mode,
                             unsigned trials, unsigned shardIndex,
                             unsigned shardCount);

    /** The [lo, hi) trial stripe of shard @p index out of @p count. */
    static std::pair<unsigned, unsigned> shardRange(unsigned trials,
                                                    unsigned index,
                                                    unsigned count);

    /** The canonical result-store key of one cell of this study. */
    store::CellKey cellKey(unsigned errors,
                           const std::string &policyName,
                           unsigned trials) const;

    /** Deprecated enum alias of cellKey(). */
    store::CellKey cellKey(unsigned errors, ProtectionMode mode,
                           unsigned trials) const;

    /** The attached result store, or nullptr when caching is off. */
    store::ResultStore *resultStore() { return store_.get(); }

    /** Trials actually simulated by this study (cache hits run 0). */
    uint64_t trialsExecuted() const { return trialsExecuted_; }

    const workloads::Workload &workload() const { return workload_; }
    const StudyConfig &config() const { return config_; }

    /** Change the gang width for subsequent cells. Purely an
     *  execution strategy (see StudyConfig::gangWidth): results and
     *  cache keys are unaffected, so it is safe to retune between
     *  cells -- the campaign daemon uses this to honor per-job
     *  widths on its shared per-experiment studies. */
    void setGangWidth(unsigned width) { config_.gangWidth = width; }

  private:
    fault::CampaignRunner &runner(const fault::InjectionPolicy &policy);

    /** Simulate trials [lo, hi) of a cell and score their fidelity. */
    CellSummary computeRange(unsigned errors,
                             const fault::InjectionPolicy &policy,
                             unsigned trials, unsigned lo, unsigned hi);

    /**
     * Assemble the summary of trials [lo, hi) from the usable stored
     * shards inside that range, simulating (and persisting) only the
     * gaps between them. Defined in study.cc (store types).
     */
    CellSummary assembleRange(const store::CellKey &key, unsigned errors,
                              const fault::InjectionPolicy &policy,
                              unsigned trials,
                              std::vector<store::ShardRecord> stored,
                              unsigned lo, unsigned hi);

    const workloads::Workload &workload_;
    StudyConfig config_;
    analysis::ProtectionResult protection_;
    sim::DynamicProfile profile_;
    std::map<std::string, std::unique_ptr<fault::CampaignRunner>>
        runners_; //!< one per policy, built on first use
    std::unique_ptr<store::ResultStore> store_;
    uint64_t trialsExecuted_ = 0;
};

/**
 * The protection analysis a study of (@p workload, @p config) runs,
 * computable without any simulation (the report path uses this to
 * rebuild cache keys without executing anything).
 */
analysis::ProtectionResult computeStudyProtection(
    const workloads::Workload &workload, const StudyConfig &config);

/**
 * Build the canonical result-store key of one campaign cell. The key
 * content-addresses the program and the policy's injectable set (and,
 * for non-legacy policies, the policy's descriptor hash), so it never
 * aliases records across workload, analysis, or policy changes;
 * thread count and checkpoint interval are excluded because results
 * are bit-identical across both. Legacy policy keys are byte-stable
 * with the pre-policy ProtectionMode keys.
 */
store::CellKey makeCellKey(const workloads::Workload &workload,
                           const analysis::ProtectionResult &protection,
                           const StudyConfig &config, unsigned errors,
                           const fault::InjectionPolicy &policy,
                           unsigned trials);

/** makeCellKey() resolving @p policyName through the registry. */
store::CellKey makeCellKey(const workloads::Workload &workload,
                           const analysis::ProtectionResult &protection,
                           const StudyConfig &config, unsigned errors,
                           const std::string &policyName,
                           unsigned trials);

/** Deprecated enum alias of makeCellKey(). */
store::CellKey makeCellKey(const workloads::Workload &workload,
                           const analysis::ProtectionResult &protection,
                           const StudyConfig &config, unsigned errors,
                           ProtectionMode mode, unsigned trials);

} // namespace etc::core

#endif // ETC_CORE_STUDY_HH
