/**
 * @file
 * Archive query engine: cross-cell rollups computed entirely from the
 * result store and its secondary index, never re-simulating a trial.
 *
 * The store holds one record per campaign cell; this layer answers
 * the questions the paper's figures are built from -- "how does the
 * failure rate grow with error count?", "what did protection buy over
 * the unprotected baseline?", "what is the fidelity distribution?" --
 * over whatever cells a cache directory has accumulated, filtered by
 * any subset of the key axes (workload, policy, error count, seed,
 * trial count).
 *
 * One render path serves every surface: runQuery() returns both the
 * canonical single-line JSON envelope and a formatted text table
 * built from the same aggregates, and `etc_lab query --json` prints
 * the JSON bytes the daemon serves at GET /v1/query, so CI can cmp
 * the two (report/figures and analyze/analysis follow the same
 * contract).
 *
 * Determinism: aggregation folds decoded records in index
 * (fingerprint) order with integer tallies and bit-exact stored
 * doubles, and the envelope carries no timestamps, so a query over an
 * unchanged archive returns identical bytes from any process.
 */

#ifndef ETC_CORE_QUERY_HH
#define ETC_CORE_QUERY_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/table.hh"

namespace etc::store {
struct CellKey;
}

namespace etc::core {

/** Rollup kinds computable from the archive. */
enum class QueryAgg
{
    Cells,    //!< list matched cells (index only, no record loads)
    Coverage, //!< per workload x policy cell/trial totals (index only)
    Curve,    //!< outcome rates per workload x policy x error count
    Delta,    //!< per-policy outcome deltas against a base policy
    Cdf,      //!< fidelity distribution quantiles per workload x policy
    Avf,      //!< static AVF bounds joined with measured rates
};

/** @return the wire name of @p agg ("cells", "curve", ...). */
const char *queryAggName(QueryAgg agg);

/** Parse a wire name; throws QueryError on an unknown one. */
QueryAgg parseQueryAgg(const std::string &name);

/** Comma-separated list of every aggregation name (for usage text). */
std::string queryAggNames();

/** Rejected queries (unknown aggregation, filter the aggregation
 *  cannot run with, unknown workload). The service maps this to
 *  HTTP 400; the CLI prints it and exits nonzero. */
class QueryError : public std::runtime_error
{
  public:
    explicit QueryError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Conjunction of per-axis filters; empty/unset axes match any. */
struct QueryFilter
{
    std::string workload;              //!< exact workload name
    std::vector<std::string> policies; //!< any of these policy names
    std::vector<unsigned> errors;      //!< any of these error counts
    std::optional<uint64_t> seed;
    std::optional<unsigned> trials;

    bool matches(const store::CellKey &key) const;
};

struct QueryOptions
{
    QueryFilter filter;
    QueryAgg agg = QueryAgg::Cells;
    /** Baseline policy for QueryAgg::Delta. */
    std::string basePolicy = "protected";
};

/** One query's rendered results plus its cost counters. */
struct QueryReport
{
    /** The canonical JSON envelope (single line, no trailing
     *  newline): GET /v1/query serves exactly these bytes and
     *  `etc_lab query --json` prints them. */
    std::string json;

    /** The same aggregates as a column-aligned table (CLI default).
     *  Initialized with a placeholder header (Table rejects an empty
     *  one); runQuery() always replaces it with the agg's columns. */
    Table table = Table({"(empty)"});

    uint64_t cellsIndexed = 0;  //!< complete cells in the index
    uint64_t cellsMatched = 0;  //!< cells passing the filter
    uint64_t recordsLoaded = 0; //!< record bodies decoded
};

/**
 * Run one query over the archive at @p cacheRoot.
 *
 * Loads the secondary index, folds the matching stored records, and
 * renders the rollup. Never simulates: the store is only ever read
 * (an indexed-but-unreadable record warns and is skipped, exactly
 * like every other store read path).
 *
 * @throws QueryError on an invalid request (never on archive state)
 */
QueryReport runQuery(const std::string &cacheRoot,
                     const QueryOptions &options);

} // namespace etc::core

#endif // ETC_CORE_QUERY_HH
