#include "core/potential.hh"

#include "support/logging.hh"

namespace etc::core {

PotentialEstimate
estimatePotential(const sim::DynamicProfile &profile,
                  const ReliabilityCostModel &model)
{
    if (model.protectionOverhead < 1.0)
        fatal("cost model '", model.name,
              "': protection overhead must be >= 1");
    if (model.lowReliabilityCost <= 0.0 ||
        model.lowReliabilityCost > model.protectionOverhead)
        fatal("cost model '", model.name,
              "': low-reliability cost must be in (0, overhead]");

    PotentialEstimate out;
    out.taggedFraction = profile.taggedFraction();
    out.uniformCost = model.protectionOverhead;
    double protectedShare = 1.0 - out.taggedFraction;
    out.selectiveCost = protectedShare * model.protectionOverhead +
                        out.taggedFraction * model.lowReliabilityCost;
    return out;
}

const std::vector<ReliabilityCostModel> &
standardCostModels()
{
    static const std::vector<ReliabilityCostModel> models = {
        {"TMR (3x spatial redundancy)", 3.0, 1.0},
        {"DMR + retry", 2.2, 1.0},
        {"software duplication", 2.0, 1.0},
        {"TMR + cheap data silicon", 3.0, 0.7},
    };
    return models;
}

} // namespace etc::core
