#include "core/study.hh"

#include <chrono>

#include "sim/simulator.hh"
#include "support/logging.hh"

namespace etc::core {

double
CellSummary::meanFidelity() const
{
    if (fidelities.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : fidelities)
        sum += score.value;
    return sum / static_cast<double>(fidelities.size());
}

double
CellSummary::acceptableRate() const
{
    if (trials == 0)
        return 0.0;
    unsigned good = 0;
    for (const auto &score : fidelities)
        if (score.acceptable)
            ++good;
    return static_cast<double>(good) / trials;
}

ErrorToleranceStudy::ErrorToleranceStudy(
    const workloads::Workload &workload, StudyConfig config)
    : workload_(workload), config_(config)
{
    // Static analysis with the workload's eligibility annotations.
    analysis::ProtectionConfig protectionConfig = config_.protection;
    if (protectionConfig.eligibleFunctions.empty())
        protectionConfig.eligibleFunctions =
            workload_.eligibleFunctions();
    protection_ =
        analysis::computeControlProtection(workload_.program(),
                                           protectionConfig);

    // Fault-free profile with tag accounting (Table 3).
    sim::Simulator simulator(workload_.program());
    sim::Profiler profiler(protection_.tagged);
    auto result = simulator.run(0, &profiler);
    if (!result.completed())
        panic("study: fault-free run of '", workload_.name(),
              "' did not complete: ", result.toString());
    profile_ = profiler.profile();
}

fault::CampaignRunner &
ErrorToleranceStudy::runner(ProtectionMode mode)
{
    auto &slot = mode == ProtectionMode::Protected ? protectedRunner_
                                                   : unprotectedRunner_;
    if (!slot) {
        auto injectable =
            mode == ProtectionMode::Protected
                ? fault::injectableWithProtection(workload_.program(),
                                                  protection_.tagged)
                : fault::injectableWithoutProtection(workload_.program());
        slot = std::make_unique<fault::CampaignRunner>(
            workload_.program(), std::move(injectable),
            config_.memoryModel, config_.checkpointInterval);
    }
    return *slot;
}

const std::vector<uint8_t> &
ErrorToleranceStudy::goldenOutput() const
{
    // Both runners share the same golden run; build one if needed.
    auto *self = const_cast<ErrorToleranceStudy *>(this);
    return self->runner(ProtectionMode::Protected).goldenOutput();
}

uint64_t
ErrorToleranceStudy::goldenInstructions() const
{
    auto *self = const_cast<ErrorToleranceStudy *>(this);
    return self->runner(ProtectionMode::Protected).goldenInstructions();
}

CellSummary
ErrorToleranceStudy::runCell(unsigned errors, ProtectionMode mode,
                             unsigned trialsOverride)
{
    auto &campaignRunner = runner(mode);

    fault::CampaignConfig campaignConfig;
    campaignConfig.trials =
        trialsOverride ? trialsOverride : config_.trials;
    campaignConfig.errors = errors;
    campaignConfig.budgetFactor = config_.budgetFactor;
    campaignConfig.threads = config_.threads;
    // Derive a per-cell seed so cells are independent but reproducible.
    campaignConfig.seed = config_.seed ^
                          (uint64_t{errors} << 32) ^
                          (mode == ProtectionMode::Protected ? 0x1 : 0x2);

    auto started = std::chrono::steady_clock::now();
    auto result = campaignRunner.run(campaignConfig);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;

    CellSummary summary;
    summary.errors = errors;
    summary.mode = mode;
    summary.trials = result.trials;
    summary.completed = result.completed;
    summary.crashed = result.crashed;
    summary.timedOut = result.timedOut;
    summary.wallSeconds = elapsed.count();
    for (const auto &outcome : result.outcomes) {
        summary.totalInstructions += outcome.run.instructions;
        if (outcome.run.completed())
            summary.fidelities.push_back(workload_.scoreFidelity(
                campaignRunner.goldenOutput(), outcome.output));
    }
    return summary;
}

} // namespace etc::core
