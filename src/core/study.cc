#include "core/study.hh"

#include <chrono>
#include <stdexcept>

#include "sim/simulator.hh"
#include "store/result_store.hh"
#include "support/logging.hh"

namespace etc::core {

namespace {

/** Registry lookup with the library's FatalError contract. */
const fault::InjectionPolicy &
policyOrFatal(const std::string &name)
{
    try {
        return fault::resolveInjectionPolicy(name);
    } catch (const std::invalid_argument &error) {
        fatal("study: ", error.what());
    }
}

} // namespace

const char *
policyNameOf(ProtectionMode mode)
{
    return mode == ProtectionMode::Protected
               ? fault::PROTECTED_POLICY
               : fault::UNPROTECTED_POLICY;
}

double
CellSummary::meanFidelity() const
{
    if (fidelities.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : fidelities)
        sum += score.value;
    return sum / static_cast<double>(fidelities.size());
}

double
CellSummary::acceptableRate() const
{
    if (trials == 0)
        return 0.0;
    unsigned good = 0;
    for (const auto &score : fidelities)
        if (score.acceptable)
            ++good;
    return static_cast<double>(good) / trials;
}

analysis::ProtectionResult
computeStudyProtection(const workloads::Workload &workload,
                       const StudyConfig &config)
{
    // Static analysis with the workload's eligibility annotations.
    analysis::ProtectionConfig protectionConfig = config.protection;
    if (protectionConfig.eligibleFunctions.empty())
        protectionConfig.eligibleFunctions =
            workload.eligibleFunctions();
    return analysis::computeControlProtection(workload.program(),
                                              protectionConfig);
}

store::CellKey
makeCellKey(const workloads::Workload &workload,
            const analysis::ProtectionResult &protection,
            const StudyConfig &config, unsigned errors,
            const fault::InjectionPolicy &policy, unsigned trials)
{
    auto injectable = policy.injectableBitmap(workload.program(),
                                              protection.tagged);
    store::CellKey key;
    key.workload = workload.name();
    key.policy = policy.name;
    key.errors = errors;
    key.trials = trials;
    key.seed = config.seed;
    key.budgetFactor = config.budgetFactor;
    key.memoryModel = store::memoryModelName(config.memoryModel);
    key.programHash =
        store::fingerprintProgram(workload.program(), injectable);
    // Legacy policies keep the pre-policy canonical form (no policy
    // hash), so stores written before the policy layer keep serving;
    // every other policy folds its behavior hash into the key.
    key.policyHash = policy.legacy ? "" : policy.descriptorHashHex();
    return key;
}

store::CellKey
makeCellKey(const workloads::Workload &workload,
            const analysis::ProtectionResult &protection,
            const StudyConfig &config, unsigned errors,
            const std::string &policyName, unsigned trials)
{
    return makeCellKey(workload, protection, config, errors,
                       policyOrFatal(policyName), trials);
}

store::CellKey
makeCellKey(const workloads::Workload &workload,
            const analysis::ProtectionResult &protection,
            const StudyConfig &config, unsigned errors,
            ProtectionMode mode, unsigned trials)
{
    return makeCellKey(workload, protection, config, errors,
                       std::string(policyNameOf(mode)), trials);
}

ErrorToleranceStudy::ErrorToleranceStudy(
    const workloads::Workload &workload, StudyConfig config)
    : workload_(workload), config_(config)
{
    protection_ = computeStudyProtection(workload_, config_);
    if (!config_.cacheDir.empty())
        store_ = std::make_unique<store::ResultStore>(config_.cacheDir);

    // Fault-free profile with tag accounting (Table 3).
    sim::Simulator simulator(workload_.program());
    sim::Profiler profiler(protection_.tagged);
    auto result = simulator.run(0, &profiler);
    if (!result.completed())
        panic("study: fault-free run of '", workload_.name(),
              "' did not complete: ", result.toString());
    profile_ = profiler.profile();
}

ErrorToleranceStudy::~ErrorToleranceStudy() = default;

fault::CampaignRunner &
ErrorToleranceStudy::runner(const fault::InjectionPolicy &policy)
{
    auto &slot = runners_[policy.name];
    if (!slot) {
        auto injectable = policy.injectableBitmap(workload_.program(),
                                                  protection_.tagged);
        slot = std::make_unique<fault::CampaignRunner>(
            workload_.program(), std::move(injectable),
            config_.memoryModel, config_.checkpointInterval,
            policy.resultKinds, policy.bitModel, config_.staticPrune);
    }
    return *slot;
}

const std::vector<uint8_t> &
ErrorToleranceStudy::goldenOutput() const
{
    // All runners share the same golden run; build one if needed.
    auto *self = const_cast<ErrorToleranceStudy *>(this);
    return self->runner(policyOrFatal(fault::PROTECTED_POLICY))
        .goldenOutput();
}

uint64_t
ErrorToleranceStudy::goldenInstructions() const
{
    auto *self = const_cast<ErrorToleranceStudy *>(this);
    return self->runner(policyOrFatal(fault::PROTECTED_POLICY))
        .goldenInstructions();
}

CellSummary
ErrorToleranceStudy::computeRange(unsigned errors,
                                  const fault::InjectionPolicy &policy,
                                  unsigned trials, unsigned lo,
                                  unsigned hi)
{
    auto &campaignRunner = runner(policy);

    fault::CampaignConfig campaignConfig;
    campaignConfig.trials = trials;
    campaignConfig.errors = errors;
    campaignConfig.budgetFactor = config_.budgetFactor;
    campaignConfig.threads = config_.threads;
    campaignConfig.gangWidth = config_.gangWidth;
    // Derive a per-cell seed so cells are independent but
    // reproducible; the policy salt keeps the legacy streams (0x1 /
    // 0x2) bit-identical and gives every other policy its own stream.
    campaignConfig.seed = config_.seed ^
                          (uint64_t{errors} << 32) ^ policy.seedSalt();

    auto started = std::chrono::steady_clock::now();
    auto result = campaignRunner.runRange(campaignConfig, lo, hi);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    trialsExecuted_ += result.trials;

    CellSummary summary;
    summary.errors = errors;
    summary.policy = policy.name;
    summary.trials = result.trials;
    summary.completed = result.completed;
    summary.crashed = result.crashed;
    summary.timedOut = result.timedOut;
    summary.trialsPruned = result.trialsPruned;
    summary.wallSeconds = elapsed.count();
    for (const auto &outcome : result.outcomes) {
        summary.totalInstructions += outcome.run.instructions;
        if (outcome.run.completed())
            summary.fidelities.push_back(workload_.scoreFidelity(
                campaignRunner.goldenOutput(), outcome.output));
    }
    return summary;
}

store::CellKey
ErrorToleranceStudy::cellKey(unsigned errors,
                             const std::string &policyName,
                             unsigned trials) const
{
    return makeCellKey(workload_, protection_, config_, errors,
                       policyName, trials);
}

store::CellKey
ErrorToleranceStudy::cellKey(unsigned errors, ProtectionMode mode,
                             unsigned trials) const
{
    return cellKey(errors, std::string(policyNameOf(mode)), trials);
}

std::pair<unsigned, unsigned>
ErrorToleranceStudy::shardRange(unsigned trials, unsigned index,
                                unsigned count)
{
    if (count == 0 || index >= count)
        fatal("shard index ", index, " out of range for ", count,
              " shards");
    auto lo = static_cast<unsigned>(uint64_t{trials} * index / count);
    auto hi =
        static_cast<unsigned>(uint64_t{trials} * (index + 1) / count);
    return {lo, hi};
}

CellSummary
ErrorToleranceStudy::assembleRange(const store::CellKey &key,
                                   unsigned errors,
                                   const fault::InjectionPolicy &policy,
                                   unsigned trials,
                                   std::vector<store::ShardRecord> stored,
                                   unsigned lo, unsigned hi)
{
    // Keep every stored shard inside [lo, hi) that extends the
    // covered prefix, and compute (and persist) the gaps between
    // them. Shards from an incompatible split (overlapping the
    // prefix or crossing the range bounds) are ignored; their trials
    // recompute to the same bits anyway.
    std::vector<store::ShardRecord> pieces;
    unsigned covered = lo;
    auto computePiece = [&](unsigned a, unsigned b) {
        auto partial = computeRange(errors, policy, trials, a, b);
        store_->storeShard(key, a, b, partial);
        pieces.push_back(
            store::ShardRecord{key, a, b, std::move(partial)});
    };
    for (auto &shard : stored) {
        if (shard.lo < covered || shard.hi > hi)
            continue;
        if (shard.lo > covered)
            computePiece(covered, shard.lo);
        covered = shard.hi;
        pieces.push_back(std::move(shard));
    }
    if (covered < hi)
        computePiece(covered, hi);

    // Counters sum exactly and fidelities concatenate in trial order
    // (pieces are built sorted), so the assembled summary is
    // bit-identical to computing [lo, hi) in one pass.
    CellSummary merged;
    merged.errors = errors;
    merged.policy = policy.name;
    for (const auto &piece : pieces) {
        merged.trials += piece.summary.trials;
        merged.completed += piece.summary.completed;
        merged.crashed += piece.summary.crashed;
        merged.timedOut += piece.summary.timedOut;
        merged.trialsPruned += piece.summary.trialsPruned;
        merged.totalInstructions += piece.summary.totalInstructions;
        merged.wallSeconds += piece.summary.wallSeconds;
        merged.fidelities.insert(merged.fidelities.end(),
                                 piece.summary.fidelities.begin(),
                                 piece.summary.fidelities.end());
    }
    return merged;
}

CellSummary
ErrorToleranceStudy::runCell(unsigned errors,
                             const std::string &policyName,
                             unsigned trialsOverride)
{
    const fault::InjectionPolicy &policy = policyOrFatal(policyName);
    unsigned trials = trialsOverride ? trialsOverride : config_.trials;
    if (!store_)
        return computeRange(errors, policy, trials, 0, trials);

    auto key = makeCellKey(workload_, protection_, config_, errors,
                           policy, trials);
    if (auto cached = store_->loadCell(key)) {
        // Reclaim shards a kill between storeCell and dropShards (or
        // a concurrent stripe worker) may have left behind.
        store_->dropShards(key);
        return *cached;
    }

    auto shards = store_->loadShards(key);
    auto summary =
        shards.empty()
            ? computeRange(errors, policy, trials, 0, trials)
            : assembleRange(key, errors, policy, trials,
                            std::move(shards), 0, trials);
    store_->storeCell(key, summary);
    store_->dropShards(key);
    return summary;
}

CellSummary
ErrorToleranceStudy::runCell(unsigned errors, ProtectionMode mode,
                             unsigned trialsOverride)
{
    return runCell(errors, std::string(policyNameOf(mode)),
                   trialsOverride);
}

CellSummary
ErrorToleranceStudy::runCellShard(unsigned errors,
                                  const std::string &policyName,
                                  unsigned trials, unsigned shardIndex,
                                  unsigned shardCount)
{
    const fault::InjectionPolicy &policy = policyOrFatal(policyName);
    auto [lo, hi] = shardRange(trials, shardIndex, shardCount);
    if (!store_)
        return computeRange(errors, policy, trials, lo, hi);

    auto key = makeCellKey(workload_, protection_, config_, errors,
                           policy, trials);
    if (auto cached = store_->loadCell(key))
        return *cached; // cell already complete; nothing to run
    if (auto shard = store_->loadShard(key, lo, hi))
        return std::move(shard->summary);

    // Reuse any stored sub-shards inside the stripe (e.g. chunks of
    // a killed run under a different split); only gaps simulate, and
    // only gaps are persisted, so no overlapping records are created.
    return assembleRange(key, errors, policy, trials,
                         store_->loadShards(key), lo, hi);
}

CellSummary
ErrorToleranceStudy::runCellShard(unsigned errors, ProtectionMode mode,
                                  unsigned trials, unsigned shardIndex,
                                  unsigned shardCount)
{
    return runCellShard(errors, std::string(policyNameOf(mode)), trials,
                        shardIndex, shardCount);
}

} // namespace etc::core
