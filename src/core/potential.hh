/**
 * @file
 * The paper's "Future Potential" model (Section 5.3): exploit error
 * tolerance for faster or cheaper reliability by running the tagged
 * (low-reliability) fraction of execution on unprotected hardware
 * while only the control-related remainder pays for redundancy.
 *
 * The model is the classic selective-redundancy cost account: if full
 * protection costs `protectionOverhead` per instruction (e.g. 3.0 for
 * TMR, ~2.0 for software duplication) and unprotected execution costs
 * `lowReliabilityCost` (1.0, or less for voltage-overscaled/cheaper
 * silicon), then protecting only the non-tagged fraction p costs
 *
 *     selective = p * protectionOverhead + (1-p) * lowReliabilityCost
 *
 * against `protectionOverhead` for uniform protection. The paper's
 * conclusion -- "the fraction of dynamic instructions related to
 * control structures is often small ... only moderate effort is
 * necessary" -- is this ratio evaluated on Table 3's fractions.
 */

#ifndef ETC_CORE_POTENTIAL_HH
#define ETC_CORE_POTENTIAL_HH

#include <string>

#include "sim/profiler.hh"

namespace etc::core {

/** Cost parameters of a protection scheme. */
struct ReliabilityCostModel
{
    std::string name = "TMR";
    /** Per-instruction cost of protected execution (>= 1). */
    double protectionOverhead = 3.0;
    /** Per-instruction cost of unprotected execution (> 0, <= 1). */
    double lowReliabilityCost = 1.0;
};

/** The cost account for one application under one scheme. */
struct PotentialEstimate
{
    double taggedFraction = 0.0;   //!< low-reliability share (Table 3)
    double uniformCost = 0.0;      //!< everything protected
    double selectiveCost = 0.0;    //!< only control protected

    /** Relative speedup (or cost reduction) from selectivity. */
    double
    speedup() const
    {
        return selectiveCost > 0.0 ? uniformCost / selectiveCost : 0.0;
    }

    /** Fraction of the protection budget saved. */
    double
    savings() const
    {
        return uniformCost > 0.0
                   ? 1.0 - selectiveCost / uniformCost
                   : 0.0;
    }
};

/**
 * Evaluate the selective-protection potential of a profiled workload.
 *
 * @param profile the fault-free dynamic profile (with tag accounting)
 * @param model   the protection scheme's cost parameters
 * @throws FatalError for non-sensical cost parameters
 */
PotentialEstimate estimatePotential(const sim::DynamicProfile &profile,
                                    const ReliabilityCostModel &model);

/** The three schemes the bench sweeps (TMR, DMR+retry, SW dup). */
const std::vector<ReliabilityCostModel> &standardCostModels();

} // namespace etc::core

#endif // ETC_CORE_POTENTIAL_HH
