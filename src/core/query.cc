#include "core/query.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "core/vulnerability_report.hh"
#include "fault/policy.hh"
#include "store/index.hh"
#include "store/json.hh"
#include "store/result_store.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "workloads/workload.hh"

namespace etc::core {

namespace {

/** Exact readable mirror (same idiom as the record codec). */
std::string
readableDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

constexpr struct
{
    QueryAgg agg;
    const char *name;
} AGG_NAMES[] = {
    {QueryAgg::Cells, "cells"},   {QueryAgg::Coverage, "coverage"},
    {QueryAgg::Curve, "curve"},   {QueryAgg::Delta, "delta"},
    {QueryAgg::Cdf, "cdf"},       {QueryAgg::Avf, "avf"},
};

/** Integer tallies summed across the cells of one rollup group.
 *  Rates derive from the sums (not from averaging per-cell rates),
 *  so groups mixing different trial counts stay exact. */
struct GroupStats
{
    uint64_t cells = 0;
    uint64_t trials = 0;
    uint64_t completed = 0;
    uint64_t crashed = 0;
    uint64_t timedOut = 0;
    uint64_t pruned = 0;
    uint64_t acceptable = 0;
    double fidelitySum = 0.0;
    std::vector<double> fidelities;

    void
    fold(const CellSummary &summary)
    {
        ++cells;
        trials += summary.trials;
        completed += summary.completed;
        crashed += summary.crashed;
        timedOut += summary.timedOut;
        pruned += summary.trialsPruned;
        for (const auto &score : summary.fidelities) {
            if (score.acceptable)
                ++acceptable;
            fidelitySum += score.value;
            fidelities.push_back(score.value);
        }
    }

    double
    failureRate() const
    {
        return trials ? static_cast<double>(crashed + timedOut) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    double
    acceptableRate() const
    {
        return trials ? static_cast<double>(acceptable) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    double
    meanFidelity() const
    {
        return fidelities.empty()
                   ? 0.0
                   : fidelitySum /
                         static_cast<double>(fidelities.size());
    }
};

/** Nearest-rank quantile over @p sorted (NaNs sorted last). */
double
quantile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t index =
        p <= 0.0 ? 0
                 : static_cast<size_t>(
                       std::ceil(p * static_cast<double>(sorted.size()))) -
                       1;
    return sorted[std::min(index, sorted.size() - 1)];
}

struct RowSet
{
    std::string json; //!< comma-joined row objects
    std::vector<std::vector<std::string>> table;

    void
    add(const store::JsonObjectWriter &row,
        std::vector<std::string> cells)
    {
        if (!json.empty())
            json += ',';
        json += row.str();
        table.push_back(std::move(cells));
    }
};

} // namespace

const char *
queryAggName(QueryAgg agg)
{
    for (const auto &entry : AGG_NAMES)
        if (entry.agg == agg)
            return entry.name;
    return "cells";
}

QueryAgg
parseQueryAgg(const std::string &name)
{
    for (const auto &entry : AGG_NAMES)
        if (name == entry.name)
            return entry.agg;
    throw QueryError("unknown aggregation \"" + name +
                     "\" (expected one of: " + queryAggNames() + ")");
}

std::string
queryAggNames()
{
    std::string names;
    for (const auto &entry : AGG_NAMES) {
        if (!names.empty())
            names += ", ";
        names += entry.name;
    }
    return names;
}

bool
QueryFilter::matches(const store::CellKey &key) const
{
    if (!workload.empty() && key.workload != workload)
        return false;
    if (!policies.empty() &&
        std::find(policies.begin(), policies.end(), key.policy) ==
            policies.end())
        return false;
    if (!errors.empty() &&
        std::find(errors.begin(), errors.end(), key.errors) ==
            errors.end())
        return false;
    if (seed && key.seed != *seed)
        return false;
    if (trials && key.trials != *trials)
        return false;
    return true;
}

QueryReport
runQuery(const std::string &cacheRoot, const QueryOptions &options)
{
    const char *aggName = queryAggName(options.agg);
    telemetry::TraceSpan span("query", aggName);
    auto start = std::chrono::steady_clock::now();
    telemetry::counter("etc_query_requests_total",
                       "agg=\"" + std::string(aggName) + "\"",
                       "Archive queries served, by aggregation")
        .add();

    // An invalid request must fail before any archive work.
    if (options.agg == QueryAgg::Avf) {
        if (options.filter.workload.empty())
            throw QueryError(
                "agg=avf requires a workload filter (the static "
                "analysis is per program)");
        const auto &names = workloads::workloadNames();
        if (std::find(names.begin(), names.end(),
                      options.filter.workload) == names.end())
            throw QueryError("unknown workload \"" +
                             options.filter.workload + "\"");
    }

    store::StoreIndex index(cacheRoot);
    index.load();

    QueryReport report;
    std::vector<std::pair<std::string, const store::CellKey *>> matched;
    for (const auto &[fingerprint, entry] : index.entries()) {
        if (!entry.complete)
            continue;
        ++report.cellsIndexed;
        if (options.filter.matches(entry.key))
            matched.emplace_back(fingerprint, &entry.key);
    }
    report.cellsMatched = matched.size();
    uint64_t trialsCovered = 0;
    for (const auto &[fingerprint, key] : matched)
        trialsCovered += key->trials;

    RowSet rows;
    std::vector<std::string> header;

    switch (options.agg) {
    case QueryAgg::Cells: {
        header = {"fingerprint", "workload", "policy",
                  "errors",      "trials",   "seed"};
        for (const auto &[fingerprint, key] : matched) {
            store::JsonObjectWriter row;
            row.field("fingerprint", fingerprint)
                .field("workload", key->workload)
                .field("policy", key->policy)
                .field("errors", uint64_t{key->errors})
                .field("trials", uint64_t{key->trials})
                .field("seed", store::hexU64(key->seed));
            rows.add(row, {fingerprint, key->workload, key->policy,
                           std::to_string(key->errors),
                           std::to_string(key->trials),
                           store::hexU64(key->seed)});
        }
        break;
    }

    case QueryAgg::Coverage: {
        header = {"workload", "policy", "cells", "error counts",
                  "trials"};
        struct Coverage
        {
            uint64_t cells = 0;
            uint64_t trials = 0;
            std::set<unsigned> errorCounts;
        };
        std::map<std::pair<std::string, std::string>, Coverage> groups;
        for (const auto &[fingerprint, key] : matched) {
            Coverage &cov = groups[{key->workload, key->policy}];
            ++cov.cells;
            cov.trials += key->trials;
            cov.errorCounts.insert(key->errors);
        }
        for (const auto &[group, cov] : groups) {
            store::JsonObjectWriter row;
            row.field("workload", group.first)
                .field("policy", group.second)
                .field("cells", cov.cells)
                .field("errorCounts", uint64_t{cov.errorCounts.size()})
                .field("trials", cov.trials);
            rows.add(row, {group.first, group.second,
                           std::to_string(cov.cells),
                           std::to_string(cov.errorCounts.size()),
                           std::to_string(cov.trials)});
        }
        break;
    }

    case QueryAgg::Curve: {
        header = {"workload", "policy",    "errors",
                  "cells",    "trials",    "completed",
                  "crashed",  "timed out", "pruned",
                  "failure",  "acceptable", "mean fidelity"};
        std::map<std::tuple<std::string, std::string, unsigned>,
                 GroupStats>
            groups;
        store::ResultStore cache(cacheRoot);
        for (const auto &[fingerprint, key] : matched) {
            auto summary = cache.loadCell(*key);
            if (!summary)
                continue;
            ++report.recordsLoaded;
            groups[{key->workload, key->policy, key->errors}].fold(
                *summary);
        }
        for (const auto &[group, stats] : groups) {
            const auto &[workload, policy, errors] = group;
            store::JsonObjectWriter row;
            row.field("workload", workload)
                .field("policy", policy)
                .field("errors", uint64_t{errors})
                .field("cells", stats.cells)
                .field("trials", stats.trials)
                .field("completed", stats.completed)
                .field("crashed", stats.crashed)
                .field("timedOut", stats.timedOut)
                .field("trialsPruned", stats.pruned)
                .field("failureRate",
                       readableDouble(stats.failureRate()))
                .field("acceptableRate",
                       readableDouble(stats.acceptableRate()))
                .field("meanFidelity",
                       readableDouble(stats.meanFidelity()));
            rows.add(row,
                     {workload, policy, std::to_string(errors),
                      std::to_string(stats.cells),
                      std::to_string(stats.trials),
                      std::to_string(stats.completed),
                      std::to_string(stats.crashed),
                      std::to_string(stats.timedOut),
                      std::to_string(stats.pruned),
                      formatPercent(stats.failureRate()),
                      formatPercent(stats.acceptableRate()),
                      formatDouble(stats.meanFidelity(), 3)});
        }
        break;
    }

    case QueryAgg::Delta: {
        header = {"workload",     "errors",
                  "policy",       "failure",
                  "base failure", "d-failure",
                  "acceptable",   "base acceptable",
                  "d-acceptable"};
        std::map<std::pair<std::string, unsigned>,
                 std::map<std::string, GroupStats>>
            groups;
        store::ResultStore cache(cacheRoot);
        for (const auto &[fingerprint, key] : matched) {
            auto summary = cache.loadCell(*key);
            if (!summary)
                continue;
            ++report.recordsLoaded;
            groups[{key->workload, key->errors}][key->policy].fold(
                *summary);
        }
        for (const auto &[group, byPolicy] : groups) {
            auto baseIt = byPolicy.find(options.basePolicy);
            if (baseIt == byPolicy.end())
                continue;
            const GroupStats &base = baseIt->second;
            for (const auto &[policy, stats] : byPolicy) {
                if (policy == options.basePolicy)
                    continue;
                double dFailure =
                    stats.failureRate() - base.failureRate();
                double dAcceptable =
                    stats.acceptableRate() - base.acceptableRate();
                store::JsonObjectWriter row;
                row.field("workload", group.first)
                    .field("errors", uint64_t{group.second})
                    .field("policy", policy)
                    .field("failureRate",
                           readableDouble(stats.failureRate()))
                    .field("baseFailureRate",
                           readableDouble(base.failureRate()))
                    .field("deltaFailureRate",
                           readableDouble(dFailure))
                    .field("acceptableRate",
                           readableDouble(stats.acceptableRate()))
                    .field("baseAcceptableRate",
                           readableDouble(base.acceptableRate()))
                    .field("deltaAcceptableRate",
                           readableDouble(dAcceptable))
                    .field("meanFidelity",
                           readableDouble(stats.meanFidelity()))
                    .field("baseMeanFidelity",
                           readableDouble(base.meanFidelity()));
                rows.add(row,
                         {group.first, std::to_string(group.second),
                          policy, formatPercent(stats.failureRate()),
                          formatPercent(base.failureRate()),
                          formatPercent(dFailure),
                          formatPercent(stats.acceptableRate()),
                          formatPercent(base.acceptableRate()),
                          formatPercent(dAcceptable)});
            }
        }
        break;
    }

    case QueryAgg::Cdf: {
        header = {"workload", "policy", "n",   "mean", "min",
                  "p10",      "p25",    "p50", "p75",  "p90",
                  "max"};
        std::map<std::pair<std::string, std::string>, GroupStats>
            groups;
        store::ResultStore cache(cacheRoot);
        for (const auto &[fingerprint, key] : matched) {
            auto summary = cache.loadCell(*key);
            if (!summary)
                continue;
            ++report.recordsLoaded;
            groups[{key->workload, key->policy}].fold(*summary);
        }
        for (auto &[group, stats] : groups) {
            if (stats.fidelities.empty())
                continue;
            // NaN scores (a workload with no defined fidelity for
            // that outcome) sort last so quantiles stay ordered.
            std::sort(stats.fidelities.begin(), stats.fidelities.end(),
                      [](double a, double b) {
                          if (std::isnan(a))
                              return false;
                          if (std::isnan(b))
                              return true;
                          return a < b;
                      });
            const auto &sorted = stats.fidelities;
            store::JsonObjectWriter row;
            row.field("workload", group.first)
                .field("policy", group.second)
                .field("count", uint64_t{sorted.size()})
                .field("mean", readableDouble(stats.meanFidelity()))
                .field("min", readableDouble(quantile(sorted, 0.0)))
                .field("p10", readableDouble(quantile(sorted, 0.10)))
                .field("p25", readableDouble(quantile(sorted, 0.25)))
                .field("p50", readableDouble(quantile(sorted, 0.50)))
                .field("p75", readableDouble(quantile(sorted, 0.75)))
                .field("p90", readableDouble(quantile(sorted, 0.90)))
                .field("max", readableDouble(quantile(sorted, 1.0)));
            rows.add(row,
                     {group.first, group.second,
                      std::to_string(sorted.size()),
                      formatDouble(stats.meanFidelity(), 3),
                      formatDouble(quantile(sorted, 0.0), 3),
                      formatDouble(quantile(sorted, 0.10), 3),
                      formatDouble(quantile(sorted, 0.25), 3),
                      formatDouble(quantile(sorted, 0.50), 3),
                      formatDouble(quantile(sorted, 0.75), 3),
                      formatDouble(quantile(sorted, 0.90), 3),
                      formatDouble(quantile(sorted, 1.0), 3)});
        }
        break;
    }

    case QueryAgg::Avf: {
        header = {"workload",  "policy",           "errors",
                  "avf lower", "avf upper",        "measured failure",
                  "measured acceptable"};
        std::set<std::string> policyNames;
        std::map<std::pair<std::string, unsigned>, GroupStats> groups;
        store::ResultStore cache(cacheRoot);
        for (const auto &[fingerprint, key] : matched) {
            if (!fault::findInjectionPolicy(key->policy))
                continue; // archived under a policy this build lacks
            auto summary = cache.loadCell(*key);
            if (!summary)
                continue;
            ++report.recordsLoaded;
            policyNames.insert(key->policy);
            groups[{key->policy, key->errors}].fold(*summary);
        }
        if (!policyNames.empty()) {
            // The one simulation here is the fault-free golden run
            // weighting the static sites; it executes zero injection
            // trials (etc_trials_simulated_total is untouched).
            auto workload =
                workloads::createWorkload(options.filter.workload);
            VulnerabilityReport analysis = buildVulnerabilityReport(
                *workload, std::vector<std::string>(
                               policyNames.begin(), policyNames.end()));
            for (const auto &policy : analysis.policies) {
                for (const auto &[group, stats] : groups) {
                    if (group.first != policy.policy)
                        continue;
                    store::JsonObjectWriter row;
                    row.field("workload", options.filter.workload)
                        .field("policy", policy.policy)
                        .field("errors", uint64_t{group.second})
                        .field("avfLower",
                               readableDouble(policy.avfLower()))
                        .field("avfUpper",
                               readableDouble(policy.avfUpper()))
                        .field("staticSites",
                               uint64_t{policy.staticSites})
                        .field("maskedSites",
                               uint64_t{policy.maskedSites})
                        .field("aceSites", uint64_t{policy.aceSites})
                        .field("failureRate",
                               readableDouble(stats.failureRate()))
                        .field("acceptableRate",
                               readableDouble(stats.acceptableRate()));
                    rows.add(row,
                             {options.filter.workload, policy.policy,
                              std::to_string(group.second),
                              formatPercent(policy.avfLower()),
                              formatPercent(policy.avfUpper()),
                              formatPercent(stats.failureRate()),
                              formatPercent(stats.acceptableRate())});
                }
            }
        }
        break;
    }
    }

    // One envelope for every surface: the daemon serves these bytes
    // verbatim and the CLI prints them, so the parity CI can cmp.
    store::JsonObjectWriter envelope;
    envelope.field("agg", aggName);
    if (!options.filter.workload.empty())
        envelope.field("workload", options.filter.workload);
    if (!options.filter.policies.empty()) {
        std::string list = "[";
        for (const auto &policy : options.filter.policies) {
            if (list.size() > 1)
                list += ',';
            list += store::jsonQuote(policy);
        }
        list += ']';
        envelope.rawField("policies", list);
    }
    if (!options.filter.errors.empty()) {
        std::string list = "[";
        for (unsigned errors : options.filter.errors) {
            if (list.size() > 1)
                list += ',';
            list += std::to_string(errors);
        }
        list += ']';
        envelope.rawField("errors", list);
    }
    if (options.filter.seed)
        envelope.field("seed", store::hexU64(*options.filter.seed));
    if (options.filter.trials)
        envelope.field("trials", uint64_t{*options.filter.trials});
    if (options.agg == QueryAgg::Delta)
        envelope.field("base", options.basePolicy);
    envelope.field("cellsIndexed", report.cellsIndexed)
        .field("cellsMatched", report.cellsMatched)
        .field("recordsLoaded", report.recordsLoaded)
        .field("trialsCovered", trialsCovered)
        .rawField("rows", "[" + rows.json + "]");
    report.json = envelope.str();

    report.table = Table(header);
    for (auto &row : rows.table)
        report.table.addRow(std::move(row));

    telemetry::histogram(
        "etc_query_seconds",
        "Wall time per archive query (index load to rendered rows)",
        {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    return report;
}

} // namespace etc::core
