#include "fault/campaign.hh"

#include <algorithm>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>

#include "analysis/vulnerability.hh"
#include "fault/trial_pool.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace etc::fault {

namespace {

/**
 * Engine-level campaign metrics. Observation only: counters tick
 * after outcomes are decided and never feed a plan, an RNG draw, or a
 * cache key, so tallies stay bit-identical with telemetry scraped or
 * ignored.
 */
struct EngineMetrics
{
    telemetry::Counter &trialsSimulated = telemetry::counter(
        "etc_trials_simulated_total",
        "Fault-injection trials actually executed by a simulator");
    telemetry::Counter &trialsPruned = telemetry::counter(
        "etc_trials_pruned_total",
        "Trials synthesized bit-identically by the static-prune "
        "prover instead of simulated");
    telemetry::Counter &trialInstructions = telemetry::counter(
        "etc_trial_instructions_total",
        "Instructions retired across simulated trials (including "
        "checkpoint-replayed prefixes)");
    telemetry::Counter &gangBatches = telemetry::counter(
        "etc_gang_batches_total",
        "Lockstep gang launches");
    telemetry::Counter &gangLaneSlots = telemetry::counter(
        "etc_gang_lane_slots_total",
        "Lane slots offered by gang launches (batches x width); "
        "occupancy = etc_gang_lanes_total / this");
    telemetry::Counter &gangLanes = telemetry::counter(
        "etc_gang_lanes_total",
        "Trials launched as gang lanes");
    telemetry::Counter &gangEvictions = telemetry::counter(
        "etc_gang_lane_evictions_total",
        "Lanes evicted from lockstep (diverged) and drained through "
        "the scalar simulator");
};

EngineMetrics &
engineMetrics()
{
    static EngineMetrics metrics;
    return metrics;
}

/** All flip-mask bits live: the "never prunable" site live mask. */
constexpr uint32_t LIVE_ALL = 0xffffffffu;

/**
 * Wraps the golden run's profiling hook and additionally records, per
 * injectable retire, the site's live mask (the bits a drawn flip must
 * avoid for the trial to stay provably golden).
 */
class PruneMaskRecorder : public sim::ExecHook
{
  public:
    PruneMaskRecorder(sim::ExecHook &inner,
                      const std::vector<bool> &injectable,
                      const std::vector<uint32_t> &staticLiveMasks,
                      std::vector<uint32_t> &masks)
        : inner_(inner), injectable_(injectable),
          staticLiveMasks_(staticLiveMasks), masks_(masks)
    {
    }

    void
    onRetire(uint32_t staticIdx, const isa::Instruction &ins,
             sim::Machine &machine, sim::Memory &memory) override
    {
        inner_.onRetire(staticIdx, ins, machine, memory);
        if (staticIdx < injectable_.size() && injectable_[staticIdx])
            masks_.push_back(staticLiveMasks_[staticIdx]);
    }

  private:
    sim::ExecHook &inner_;
    const std::vector<bool> &injectable_;
    const std::vector<uint32_t> &staticLiveMasks_;
    std::vector<uint32_t> &masks_;
};

/**
 * Per static site: the flip-mask bits that are (MAY-)live in the
 * site's register destination -- a drawn flip mask disjoint from it is
 * provably harmless (it lands in dead bits, or in bits the hardware
 * discards: $zero writes, flag bits >= 1). The prune fast path only
 * ever skips *register-kind* corruptions: flipResult() always performs
 * (and counts) a register flip, so the synthesized injected count
 * matches simulation exactly. Sites whose corruption would hit a
 * control or memory result instead get LIVE_ALL (never prunable), as
 * does every site when the prover cannot model the program's calls.
 */
std::vector<uint32_t>
computeSiteLiveMasks(const assembly::Program &program,
                     const std::vector<bool> &injectable,
                     unsigned resultKinds)
{
    analysis::BitFlowResult flow = analysis::computeBitFlow(program);
    std::vector<uint32_t> masks(program.size(), LIVE_ALL);
    for (uint32_t i = 0; i < program.size(); ++i) {
        if (!injectable[i])
            continue;
        const isa::Instruction &ins = program.code[i];
        // Mirror flipResult()'s fixed priority: only sites whose first
        // corruptible kind is the register destination are prunable.
        if (!(resultKinds & RK_REGISTER) || !ins.def())
            continue;
        isa::RegId def = *ins.def();
        // liveOut is already empty for $zero (its reads are constant)
        // and confined to bit 0 for the flag register, matching
        // exactly the bits Machine::writeFlat() lets a flip reach.
        masks[i] = flow.liveOut[i][def] &
                   analysis::registerStoredBits(def);
    }
    return masks;
}

} // namespace

CampaignRunner::CampaignRunner(const assembly::Program &program,
                               std::vector<bool> injectable,
                               sim::MemoryModel model,
                               uint64_t checkpointInterval,
                               unsigned resultKinds,
                               BitErrorModel bitModel, bool staticPrune)
    : program_(program), injectable_(std::move(injectable)),
      model_(model), resultKinds_(resultKinds), bitModel_(bitModel),
      checkpointInterval_(checkpointInterval), staticPrune_(staticPrune)
{
    if (injectable_.size() != program_.size())
        panic("CampaignRunner: injectable bitmap size mismatch");
    injectableBytes_ = sim::toByteMask(injectable_);

    std::vector<uint32_t> staticLiveMasks;
    if (staticPrune_)
        staticLiveMasks = computeSiteLiveMasks(program_, injectable_,
                                               resultKinds_);

    // Fault-free profiling run: golden output, dynamic length, and the
    // injectable dynamic count the sampler draws from. With
    // checkpointing enabled the same run also records the periodic
    // snapshots trials fast-forward to; with pruning enabled it also
    // records the per-retire live masks prunable plans are tested
    // against.
    telemetry::TraceSpan goldenSpan("engine", "golden-run");
    sim::Simulator simulator(program_, model_);
    sim::RunResult result;
    if (checkpointInterval_ > 0) {
        // The post-reset image is the snapshot baseline; only pages
        // the run itself writes go into the checkpoint deltas.
        simulator.memory().resetDirtyTracking();
        sim::CheckpointRecorder recorder(injectable_, checkpointInterval_,
                                         simulator, checkpoints_);
        if (staticPrune_) {
            PruneMaskRecorder pruneRecorder(recorder, injectable_,
                                            staticLiveMasks,
                                            siteLiveMasks_);
            result = simulator.run(0, &pruneRecorder);
        } else {
            result = simulator.run(0, &recorder);
        }
        injectableDynamic_ = recorder.injectableRetired();
    } else {
        InjectableCounter counter(injectable_);
        if (staticPrune_) {
            PruneMaskRecorder pruneRecorder(counter, injectable_,
                                            staticLiveMasks,
                                            siteLiveMasks_);
            result = simulator.run(0, &pruneRecorder);
        } else {
            result = simulator.run(0, &counter);
        }
        injectableDynamic_ = counter.count();
    }
    if (!result.completed())
        fatal("CampaignRunner: golden run did not complete: ",
              result.toString());
    golden_ = simulator.output();
    goldenInstructions_ = result.instructions;
    for (uint32_t liveMask : siteLiveMasks_)
        prunableDynamic_ += liveMask != LIVE_ALL ? 1 : 0;
    if (staticPrune_ && siteLiveMasks_.size() != injectableDynamic_)
        panic("CampaignRunner: prune mask table size ",
              siteLiveMasks_.size(), " != injectable dynamic count ",
              injectableDynamic_);
}

void
CampaignRunner::runTrialFastForward(sim::Simulator &simulator,
                                    const InjectionPlan &plan,
                                    uint64_t budget,
                                    TrialOutcome &outcome) const
{
    // Start from the latest checkpoint the first injection site has
    // not yet passed; everything before it is a bit-identical replay
    // of the golden run. A trial with no sites at all (errors == 0)
    // is the golden run, so it may jump to the last checkpoint and
    // execute only the final stretch.
    uint64_t injectableRetired = 0;
    uint64_t instructionsSoFar = 0;
    const sim::Checkpoint *checkpoint = checkpoints_.findForInjectable(
        plan.sites.empty() ? std::numeric_limits<uint64_t>::max()
                           : plan.sites.front());
    if (checkpoint) {
        simulator.restoreFrom(*checkpoint, golden_);
        injectableRetired = checkpoint->injectableRetired;
        instructionsSoFar = checkpoint->instructions;
    } else {
        simulator.fastReset();
    }

    // Run hookless from site to site, flipping the scheduled bit at
    // each pause; the final leg (or a crash/timeout on the way) ends
    // the trial.
    uint64_t injected = 0;
    size_t cursor = 0;
    sim::RunResult run;
    for (;;) {
        uint64_t stopAfter =
            cursor < plan.sites.size()
                ? plan.sites[cursor] + 1 - injectableRetired
                : 0; // no more sites: run to completion
        run = simulator.runUntilInjectable(stopAfter, injectableBytes_,
                                           budget, instructionsSoFar);
        instructionsSoFar = run.instructions;
        if (run.status != sim::RunStatus::Paused)
            break;
        injectableRetired = plan.sites[cursor] + 1;
        // faultPc of a paused run is the static index of the
        // just-retired site instruction.
        if (flipResult(program_.code[run.faultPc], plan.masks[cursor],
                       resultKinds_, simulator.machine(),
                       simulator.memory()))
            ++injected;
        ++cursor;
    }
    outcome.run = run;
    outcome.injected = injected;
}

CampaignResult
CampaignRunner::run(const CampaignConfig &config,
                    const std::function<void(const TrialOutcome &)> &onTrial)
{
    return runRange(config, 0, config.trials, onTrial);
}

CampaignResult
CampaignRunner::runRange(
    const CampaignConfig &config, uint64_t lo, uint64_t hi,
    const std::function<void(const TrialOutcome &)> &onTrial)
{
    if (lo > hi || hi > config.trials)
        panic("CampaignRunner: bad trial range [", lo, ", ", hi,
              ") over ", config.trials, " trials");
    uint64_t count = hi - lo;

    // Gang execution rides the checkpointed fast path only; the
    // classic interval-0 Injector path stays gang-free so it remains
    // an independent oracle for the batched interpreter.
    unsigned gangWidth = resolveGangWidth(config.gangWidth);
    if (gangWidth > 0 && checkpointInterval_ > 0 && count > 0)
        return runRangeGang(config, lo, hi, gangWidth, onTrial);

    CampaignResult result;
    result.trials = static_cast<unsigned>(count);
    result.firstTrial = lo;
    result.outcomes.resize(count);

    auto budget = static_cast<uint64_t>(
        static_cast<double>(goldenInstructions_) * config.budgetFactor);
    if (budget < goldenInstructions_ + 1000)
        budget = goldenInstructions_ + 1000;

    unsigned workers = TrialPool::resolveWorkers(config.threads, count);

    // One Simulator per worker: the simulator is self-contained (no
    // global state), so worker-local instances make trials re-entrant.
    std::vector<std::unique_ptr<sim::Simulator>> simulators;
    simulators.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        simulators.push_back(
            std::make_unique<sim::Simulator>(program_, model_));

    // Per-worker tallies, merged in worker-index order below. The
    // counts are order-insensitive sums, and every per-trial record
    // lands in its own outcome slot, so the aggregate is deterministic
    // for any thread count.
    std::vector<OutcomeTally> tallies(workers);
    std::vector<uint64_t> prunedCounts(workers, 0);
    std::mutex observerMutex;

    TrialPool::run(workers, count, [&](uint64_t i, unsigned w) {
        // Counter-based stream keyed on the GLOBAL trial index: trial
        // randomness depends only on (seed, t), never on scheduling
        // or on which shard runs it.
        uint64_t t = lo + i;
        telemetry::TraceSpan trialSpan("engine", "trial");
        if (trialSpan.active())
            trialSpan.setArgs("{\"trial\":" + std::to_string(t) + "}");
        Rng trialRng = Rng::forStream(config.seed, t);
        InjectionPlan plan = samplePlan(injectableDynamic_,
                                        config.errors, bitModel_,
                                        trialRng);

        // Static-prune fast path: when every drawn flip lands entirely
        // in provably dead bits of its site's register result, the
        // trial retires the exact golden instruction stream with the
        // exact golden output, and every flip is a (counted) register
        // write of dead bits -- so the simulator's outcome is known
        // without running it. The RNG stream was consumed identically
        // above, keeping later trials untouched.
        bool pruned = staticPrune_;
        if (pruned)
            for (size_t k = 0; k < plan.sites.size(); ++k)
                if (plan.masks[k] & siteLiveMasks_[plan.sites[k]]) {
                    pruned = false;
                    break;
                }

        sim::Simulator &simulator = *simulators[w];
        TrialOutcome &outcome = result.outcomes[i];
        if (pruned) {
            outcome.run.status = sim::RunStatus::Completed;
            outcome.run.instructions = goldenInstructions_;
            outcome.run.faultPc = 0;
            outcome.injected = plan.size();
            ++prunedCounts[w];
            engineMetrics().trialsPruned.add();
        } else if (checkpointInterval_ > 0) {
            runTrialFastForward(simulator, plan, budget, outcome);
        } else {
            Injector injector(injectable_, std::move(plan),
                              resultKinds_);
            simulator.reset();
            outcome.run = simulator.run(budget, &injector);
            outcome.injected = injector.injectedCount();
        }
        if (!pruned) {
            engineMetrics().trialsSimulated.add();
            engineMetrics().trialInstructions.add(
                outcome.run.instructions);
        }

        switch (outcome.run.status) {
          case sim::RunStatus::Completed:
            ++tallies[w].completed;
            outcome.output = pruned ? golden_ : simulator.output();
            break;
          case sim::RunStatus::Timeout:
            ++tallies[w].timedOut;
            break;
          default:
            ++tallies[w].crashed;
            break;
        }
        if (onTrial) {
            std::lock_guard<std::mutex> lock(observerMutex);
            onTrial(outcome);
        }
    });

    OutcomeTally total;
    for (const auto &tally : tallies)
        total.merge(tally);
    result.completed = static_cast<unsigned>(total.completed);
    result.crashed = static_cast<unsigned>(total.crashed);
    result.timedOut = static_cast<unsigned>(total.timedOut);
    // An order-insensitive integer sum: deterministic per (seed,
    // range) no matter how trials were scheduled across workers.
    for (uint64_t pruned : prunedCounts)
        result.trialsPruned += pruned;
    // Fed in trial order (floating-point accumulation is partition
    // sensitive, so per-worker partials would not be bit-stable).
    for (const auto &outcome : result.outcomes)
        result.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return result;
}

CampaignResult
CampaignRunner::runRangeGang(
    const CampaignConfig &config, uint64_t lo, uint64_t hi,
    unsigned width,
    const std::function<void(const TrialOutcome &)> &onTrial)
{
    uint64_t count = hi - lo;
    CampaignResult result;
    result.trials = static_cast<unsigned>(count);
    result.firstTrial = lo;
    result.outcomes.resize(count);

    auto budget = static_cast<uint64_t>(
        static_cast<double>(goldenInstructions_) * config.budgetFactor);
    if (budget < goldenInstructions_ + 1000)
        budget = goldenInstructions_ + 1000;

    // Phase 1 (serial): plan sampling is cheap and a pure function of
    // (seed, trial), so the whole range is drawn up front. Pruned
    // trials are synthesized here exactly as the scalar path does;
    // everything else queues for gang execution.
    std::vector<GangTrial> live;
    live.reserve(count);
    OutcomeTally prunedTally;
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t t = lo + i;
        Rng trialRng = Rng::forStream(config.seed, t);
        InjectionPlan plan = samplePlan(injectableDynamic_,
                                        config.errors, bitModel_,
                                        trialRng);
        bool pruned = staticPrune_;
        if (pruned)
            for (size_t k = 0; k < plan.sites.size(); ++k)
                if (plan.masks[k] & siteLiveMasks_[plan.sites[k]]) {
                    pruned = false;
                    break;
                }
        if (!pruned) {
            live.push_back(GangTrial{i, std::move(plan)});
            continue;
        }
        TrialOutcome &outcome = result.outcomes[i];
        outcome.run.status = sim::RunStatus::Completed;
        outcome.run.instructions = goldenInstructions_;
        outcome.run.faultPc = 0;
        outcome.injected = plan.size();
        outcome.output = golden_;
        ++prunedTally.completed;
        ++result.trialsPruned;
        engineMetrics().trialsPruned.add();
        if (onTrial)
            onTrial(outcome);
    }

    // Phase 2: group by first injection site (stable on trial index).
    // A gang restores the checkpoint of its EARLIEST first site --
    // instruction accounting includes the restored prefix, so an
    // earlier restore changes nothing but replay length -- and sorting
    // keeps that shared replay short.
    std::sort(live.begin(), live.end(),
              [](const GangTrial &a, const GangTrial &b) {
                  uint64_t siteA = a.plan.sites.empty()
                                       ? std::numeric_limits<uint64_t>::max()
                                       : a.plan.sites.front();
                  uint64_t siteB = b.plan.sites.empty()
                                       ? std::numeric_limits<uint64_t>::max()
                                       : b.plan.sites.front();
                  return siteA != siteB ? siteA < siteB
                                        : a.slot < b.slot;
              });

    uint64_t numGangs = (live.size() + width - 1) / width;
    std::mutex observerMutex;
    if (numGangs > 0) {
        unsigned workers = TrialPool::resolveWorkers(config.threads,
                                                     numGangs);
        // Per worker: a base simulator holding the gang's restored
        // image (referenced by the gang's COW overlays, so it must
        // stay untouched while the gang runs) and a separate drain
        // simulator for finishing divergent lanes.
        struct Worker
        {
            std::unique_ptr<sim::Simulator> base;
            std::unique_ptr<sim::Simulator> drain;
            std::unique_ptr<sim::GangSimulator> gang;
        };
        std::vector<Worker> perWorker(workers);
        for (auto &worker : perWorker) {
            worker.base =
                std::make_unique<sim::Simulator>(program_, model_);
            worker.drain =
                std::make_unique<sim::Simulator>(program_, model_);
            worker.gang = std::make_unique<sim::GangSimulator>(
                program_, model_, width);
        }
        std::vector<OutcomeTally> tallies(workers);

        TrialPool::run(workers, numGangs, [&](uint64_t g, unsigned w) {
            size_t first = static_cast<size_t>(g) * width;
            unsigned lanes = static_cast<unsigned>(
                std::min<size_t>(width, live.size() - first));
            EngineMetrics &metrics = engineMetrics();
            metrics.gangBatches.add();
            metrics.gangLaneSlots.add(width);
            metrics.gangLanes.add(lanes);
            telemetry::TraceSpan gangSpan("engine", "gang");
            if (gangSpan.active())
                gangSpan.setArgs("{\"gang\":" + std::to_string(g) +
                                 ",\"lanes\":" + std::to_string(lanes) +
                                 "}");
            runGang(live.data() + first, lanes, *perWorker[w].base,
                    *perWorker[w].drain, *perWorker[w].gang, budget,
                    result, tallies[w], onTrial, observerMutex);
        });
        for (const auto &tally : tallies)
            prunedTally.merge(tally);
    }

    result.completed = static_cast<unsigned>(prunedTally.completed);
    result.crashed = static_cast<unsigned>(prunedTally.crashed);
    result.timedOut = static_cast<unsigned>(prunedTally.timedOut);
    // Fed in trial order, exactly like the scalar path, so the
    // statistic is bit-identical at any thread count or gang width.
    for (const auto &outcome : result.outcomes)
        result.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return result;
}

void
CampaignRunner::runGang(
    const GangTrial *trials, unsigned lanes, sim::Simulator &base,
    sim::Simulator &drain, sim::GangSimulator &gang, uint64_t budget,
    CampaignResult &result, OutcomeTally &tally,
    const std::function<void(const TrialOutcome &)> &onTrial,
    std::mutex &observerMutex) const
{
    // Shared restore: the checkpoint of the gang's earliest first site
    // (trials arrive sorted, so that is lane 0's).
    const sim::Checkpoint *checkpoint = checkpoints_.findForInjectable(
        trials[0].plan.sites.empty()
            ? std::numeric_limits<uint64_t>::max()
            : trials[0].plan.sites.front());
    uint64_t instructions = 0;
    uint64_t injectableRetired = 0;
    size_t outputPrefix = 0;
    if (checkpoint) {
        base.restoreFrom(*checkpoint, golden_);
        instructions = checkpoint->instructions;
        injectableRetired = checkpoint->injectableRetired;
        outputPrefix = checkpoint->outputLength;
    } else {
        base.fastReset();
    }
    gang.reset(base.machine(), base.memory(), lanes, instructions,
               injectableRetired, outputPrefix);

    GangLaneCtx laneCtx[sim::GangSimulator::MAX_LANES];
    for (;;) {
        // Next pause target: the earliest unapplied site over the
        // lanes still executing in the gang (evicted lanes finish
        // their own schedules in the drain).
        uint64_t nextSite = std::numeric_limits<uint64_t>::max();
        for (unsigned l = 0; l < lanes; ++l) {
            if (!gang.laneInGang(l))
                continue;
            const auto &sites = trials[l].plan.sites;
            if (laneCtx[l].cursor < sites.size())
                nextSite = std::min(nextSite,
                                    sites[laneCtx[l].cursor]);
        }
        uint64_t stopAfter =
            nextSite == std::numeric_limits<uint64_t>::max()
                ? 0 // no sites left in-gang: run to completion
                : nextSite + 1 - gang.injectableRetired();
        sim::RunResult run = gang.runUntilInjectable(
            stopAfter, injectableBytes_, budget);
        if (run.status != sim::RunStatus::Paused)
            break; // gang drained (every lane has an exit record)
        uint64_t site = gang.injectableRetired() - 1;
        const isa::Instruction &ins = program_.code[run.faultPc];
        // Apply every flip scheduled at this site (several lanes can
        // share one). A lane that left the gang before its site is
        // skipped here; the drain applies its remaining flips.
        for (unsigned l = 0; l < lanes; ++l) {
            if (!gang.laneInGang(l))
                continue;
            GangLaneCtx &ctx = laneCtx[l];
            const InjectionPlan &plan = trials[l].plan;
            if (ctx.cursor >= plan.sites.size() ||
                plan.sites[ctx.cursor] != site)
                continue;
            auto laneMachine = gang.laneMachine(l);
            auto laneMemory = gang.laneMemory(l);
            if (flipResultT(ins, plan.masks[ctx.cursor], resultKinds_,
                            laneMachine, laneMemory))
                ++ctx.injected;
            ++ctx.cursor;
        }
    }

    for (const auto &exitRecord : gang.takeExits()) {
        const GangTrial &trial = trials[exitRecord.lane];
        GangLaneCtx &ctx = laneCtx[exitRecord.lane];
        TrialOutcome &outcome = result.outcomes[trial.slot];
        if (exitRecord.kind == sim::GangSimulator::ExitKind::Diverged) {
            engineMetrics().gangEvictions.add();
            telemetry::TraceSpan drainSpan("engine", "drain-lane");
            if (drainSpan.active())
                drainSpan.setArgs("{\"trial\":" +
                                  std::to_string(trial.slot) + "}");
            drainLane(drain, exitRecord, trial.plan, checkpoint, ctx,
                      budget, outcome);
        } else {
            outcome.run = exitRecord.run;
            outcome.injected = ctx.injected;
            if (outcome.run.status == sim::RunStatus::Completed) {
                outcome.output.reserve(outputPrefix +
                                       exitRecord.outputTail.size());
                outcome.output.assign(
                    golden_.begin(),
                    golden_.begin() +
                        static_cast<ptrdiff_t>(outputPrefix));
                outcome.output.insert(outcome.output.end(),
                                      exitRecord.outputTail.begin(),
                                      exitRecord.outputTail.end());
            }
        }
        engineMetrics().trialsSimulated.add();
        engineMetrics().trialInstructions.add(outcome.run.instructions);
        switch (outcome.run.status) {
          case sim::RunStatus::Completed:
            ++tally.completed;
            break;
          case sim::RunStatus::Timeout:
            ++tally.timedOut;
            break;
          default:
            ++tally.crashed;
            break;
        }
        if (onTrial) {
            std::lock_guard<std::mutex> lock(observerMutex);
            onTrial(outcome);
        }
    }
}

void
CampaignRunner::drainLane(sim::Simulator &simulator,
                          const sim::GangSimulator::LaneExit &exitRecord,
                          const InjectionPlan &plan,
                          const sim::Checkpoint *checkpoint,
                          GangLaneCtx &lane, uint64_t budget,
                          TrialOutcome &outcome) const
{
    // Rehydrate the scalar simulator with the lane's exact state at
    // the divergence boundary: shared restore, the lane's overlay
    // pages on top, its registers + divergent PC, and its output so
    // far. From here the trial is the ordinary fast-forward site loop,
    // so the result is bit-identical to never having ganged at all.
    if (checkpoint)
        simulator.restoreFrom(*checkpoint, golden_);
    else
        simulator.fastReset();
    for (const auto &[pageNumber, bytes] : exitRecord.pages)
        simulator.memory().setPage(pageNumber, bytes);
    simulator.machine() = exitRecord.machine;
    simulator.appendOutput(exitRecord.outputTail);

    uint64_t injectableRetired = exitRecord.injectableRetired;
    uint64_t instructionsSoFar = exitRecord.instructions;
    size_t cursor = lane.cursor;
    uint64_t injected = lane.injected;
    sim::RunResult run;
    for (;;) {
        uint64_t stopAfter =
            cursor < plan.sites.size()
                ? plan.sites[cursor] + 1 - injectableRetired
                : 0;
        run = simulator.runUntilInjectable(stopAfter, injectableBytes_,
                                           budget, instructionsSoFar);
        instructionsSoFar = run.instructions;
        if (run.status != sim::RunStatus::Paused)
            break;
        injectableRetired = plan.sites[cursor] + 1;
        if (flipResult(program_.code[run.faultPc], plan.masks[cursor],
                       resultKinds_, simulator.machine(),
                       simulator.memory()))
            ++injected;
        ++cursor;
    }
    outcome.run = run;
    outcome.injected = injected;
    if (run.status == sim::RunStatus::Completed)
        outcome.output = simulator.output();
}

CampaignResult
CampaignRunner::mergeShards(std::vector<CampaignResult> shards)
{
    std::sort(shards.begin(), shards.end(),
              [](const CampaignResult &a, const CampaignResult &b) {
                  return a.firstTrial < b.firstTrial;
              });

    CampaignResult merged;
    for (auto &shard : shards) {
        if (shard.firstTrial != merged.trials)
            panic("CampaignRunner::mergeShards: shard starts at trial ",
                  shard.firstTrial, ", expected ", merged.trials);
        if (shard.outcomes.size() != shard.trials)
            panic("CampaignRunner::mergeShards: shard outcome count ",
                  shard.outcomes.size(), " != trials ", shard.trials);
        merged.trials += shard.trials;
        merged.completed += shard.completed;
        merged.crashed += shard.crashed;
        merged.timedOut += shard.timedOut;
        merged.trialsPruned += shard.trialsPruned;
        merged.outcomes.insert(
            merged.outcomes.end(),
            std::make_move_iterator(shard.outcomes.begin()),
            std::make_move_iterator(shard.outcomes.end()));
    }
    // Re-accumulated over the concatenation, exactly as run() feeds
    // it, so the statistic is bit-identical to the monolithic cell
    // (merging per-shard partials would not be: floating-point
    // accumulation is partition sensitive).
    for (const auto &outcome : merged.outcomes)
        merged.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return merged;
}

} // namespace etc::fault
