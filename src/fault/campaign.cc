#include "fault/campaign.hh"

#include "support/logging.hh"

namespace etc::fault {

CampaignRunner::CampaignRunner(const assembly::Program &program,
                               std::vector<bool> injectable,
                               sim::MemoryModel model)
    : program_(program), injectable_(std::move(injectable)),
      model_(model)
{
    if (injectable_.size() != program_.size())
        panic("CampaignRunner: injectable bitmap size mismatch");

    // Fault-free profiling run: golden output, dynamic length, and the
    // injectable dynamic count the sampler draws from.
    sim::Simulator simulator(program_, model_);
    InjectableCounter counter(injectable_);
    auto result = simulator.run(0, &counter);
    if (!result.completed())
        fatal("CampaignRunner: golden run did not complete: ",
              result.toString());
    golden_ = simulator.output();
    goldenInstructions_ = result.instructions;
    injectableDynamic_ = counter.count();
}

CampaignResult
CampaignRunner::run(const CampaignConfig &config,
                    const std::function<void(const TrialOutcome &)> &onTrial)
{
    CampaignResult result;
    result.trials = config.trials;

    auto budget = static_cast<uint64_t>(
        static_cast<double>(goldenInstructions_) * config.budgetFactor);
    if (budget < goldenInstructions_ + 1000)
        budget = goldenInstructions_ + 1000;

    Rng master(config.seed);
    sim::Simulator simulator(program_, model_);

    for (unsigned t = 0; t < config.trials; ++t) {
        Rng trialRng = master.split();
        InjectionPlan plan =
            samplePlan(injectableDynamic_, config.errors, trialRng);
        Injector injector(injectable_, std::move(plan));

        simulator.reset();
        TrialOutcome outcome;
        outcome.run = simulator.run(budget, &injector);
        outcome.injected = injector.injectedCount();

        switch (outcome.run.status) {
          case sim::RunStatus::Completed:
            ++result.completed;
            outcome.output = simulator.output();
            break;
          case sim::RunStatus::Timeout:
            ++result.timedOut;
            break;
          default:
            ++result.crashed;
            break;
        }
        if (onTrial)
            onTrial(outcome);
        result.outcomes.push_back(std::move(outcome));
    }
    return result;
}

} // namespace etc::fault
