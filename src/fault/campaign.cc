#include "fault/campaign.hh"

#include <memory>
#include <mutex>

#include "fault/trial_pool.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace etc::fault {

CampaignRunner::CampaignRunner(const assembly::Program &program,
                               std::vector<bool> injectable,
                               sim::MemoryModel model)
    : program_(program), injectable_(std::move(injectable)),
      model_(model)
{
    if (injectable_.size() != program_.size())
        panic("CampaignRunner: injectable bitmap size mismatch");

    // Fault-free profiling run: golden output, dynamic length, and the
    // injectable dynamic count the sampler draws from.
    sim::Simulator simulator(program_, model_);
    InjectableCounter counter(injectable_);
    auto result = simulator.run(0, &counter);
    if (!result.completed())
        fatal("CampaignRunner: golden run did not complete: ",
              result.toString());
    golden_ = simulator.output();
    goldenInstructions_ = result.instructions;
    injectableDynamic_ = counter.count();
}

CampaignResult
CampaignRunner::run(const CampaignConfig &config,
                    const std::function<void(const TrialOutcome &)> &onTrial)
{
    CampaignResult result;
    result.trials = config.trials;
    result.outcomes.resize(config.trials);

    auto budget = static_cast<uint64_t>(
        static_cast<double>(goldenInstructions_) * config.budgetFactor);
    if (budget < goldenInstructions_ + 1000)
        budget = goldenInstructions_ + 1000;

    unsigned workers =
        TrialPool::resolveWorkers(config.threads, config.trials);

    // One Simulator per worker: the simulator is self-contained (no
    // global state), so worker-local instances make trials re-entrant.
    std::vector<std::unique_ptr<sim::Simulator>> simulators;
    simulators.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        simulators.push_back(
            std::make_unique<sim::Simulator>(program_, model_));

    // Per-worker tallies, merged in worker-index order below. The
    // counts are order-insensitive sums, and every per-trial record
    // lands in its own outcome slot, so the aggregate is deterministic
    // for any thread count.
    std::vector<OutcomeTally> tallies(workers);
    std::mutex observerMutex;

    TrialPool::run(workers, config.trials, [&](uint64_t t, unsigned w) {
        // Counter-based stream: trial randomness depends only on
        // (seed, t), never on scheduling.
        Rng trialRng = Rng::forStream(config.seed, t);
        InjectionPlan plan =
            samplePlan(injectableDynamic_, config.errors, trialRng);
        Injector injector(injectable_, std::move(plan));

        sim::Simulator &simulator = *simulators[w];
        simulator.reset();
        TrialOutcome &outcome = result.outcomes[t];
        outcome.run = simulator.run(budget, &injector);
        outcome.injected = injector.injectedCount();

        switch (outcome.run.status) {
          case sim::RunStatus::Completed:
            ++tallies[w].completed;
            outcome.output = simulator.output();
            break;
          case sim::RunStatus::Timeout:
            ++tallies[w].timedOut;
            break;
          default:
            ++tallies[w].crashed;
            break;
        }
        if (onTrial) {
            std::lock_guard<std::mutex> lock(observerMutex);
            onTrial(outcome);
        }
    });

    OutcomeTally total;
    for (const auto &tally : tallies)
        total.merge(tally);
    result.completed = static_cast<unsigned>(total.completed);
    result.crashed = static_cast<unsigned>(total.crashed);
    result.timedOut = static_cast<unsigned>(total.timedOut);
    // Fed in trial order (floating-point accumulation is partition
    // sensitive, so per-worker partials would not be bit-stable).
    for (const auto &outcome : result.outcomes)
        result.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return result;
}

} // namespace etc::fault
