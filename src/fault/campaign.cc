#include "fault/campaign.hh"

#include <algorithm>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>

#include "fault/trial_pool.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace etc::fault {

CampaignRunner::CampaignRunner(const assembly::Program &program,
                               std::vector<bool> injectable,
                               sim::MemoryModel model,
                               uint64_t checkpointInterval,
                               unsigned resultKinds,
                               BitErrorModel bitModel)
    : program_(program), injectable_(std::move(injectable)),
      model_(model), resultKinds_(resultKinds), bitModel_(bitModel),
      checkpointInterval_(checkpointInterval)
{
    if (injectable_.size() != program_.size())
        panic("CampaignRunner: injectable bitmap size mismatch");
    injectableBytes_ = sim::toByteMask(injectable_);

    // Fault-free profiling run: golden output, dynamic length, and the
    // injectable dynamic count the sampler draws from. With
    // checkpointing enabled the same run also records the periodic
    // snapshots trials fast-forward to.
    sim::Simulator simulator(program_, model_);
    sim::RunResult result;
    if (checkpointInterval_ > 0) {
        // The post-reset image is the snapshot baseline; only pages
        // the run itself writes go into the checkpoint deltas.
        simulator.memory().resetDirtyTracking();
        sim::CheckpointRecorder recorder(injectable_, checkpointInterval_,
                                         simulator, checkpoints_);
        result = simulator.run(0, &recorder);
        injectableDynamic_ = recorder.injectableRetired();
    } else {
        InjectableCounter counter(injectable_);
        result = simulator.run(0, &counter);
        injectableDynamic_ = counter.count();
    }
    if (!result.completed())
        fatal("CampaignRunner: golden run did not complete: ",
              result.toString());
    golden_ = simulator.output();
    goldenInstructions_ = result.instructions;
}

void
CampaignRunner::runTrialFastForward(sim::Simulator &simulator,
                                    const InjectionPlan &plan,
                                    uint64_t budget,
                                    TrialOutcome &outcome) const
{
    // Start from the latest checkpoint the first injection site has
    // not yet passed; everything before it is a bit-identical replay
    // of the golden run. A trial with no sites at all (errors == 0)
    // is the golden run, so it may jump to the last checkpoint and
    // execute only the final stretch.
    uint64_t injectableRetired = 0;
    uint64_t instructionsSoFar = 0;
    const sim::Checkpoint *checkpoint = checkpoints_.findForInjectable(
        plan.sites.empty() ? std::numeric_limits<uint64_t>::max()
                           : plan.sites.front());
    if (checkpoint) {
        simulator.restoreFrom(*checkpoint, golden_);
        injectableRetired = checkpoint->injectableRetired;
        instructionsSoFar = checkpoint->instructions;
    } else {
        simulator.fastReset();
    }

    // Run hookless from site to site, flipping the scheduled bit at
    // each pause; the final leg (or a crash/timeout on the way) ends
    // the trial.
    uint64_t injected = 0;
    size_t cursor = 0;
    sim::RunResult run;
    for (;;) {
        uint64_t stopAfter =
            cursor < plan.sites.size()
                ? plan.sites[cursor] + 1 - injectableRetired
                : 0; // no more sites: run to completion
        run = simulator.runUntilInjectable(stopAfter, injectableBytes_,
                                           budget, instructionsSoFar);
        instructionsSoFar = run.instructions;
        if (run.status != sim::RunStatus::Paused)
            break;
        injectableRetired = plan.sites[cursor] + 1;
        // faultPc of a paused run is the static index of the
        // just-retired site instruction.
        if (flipResult(program_.code[run.faultPc], plan.masks[cursor],
                       resultKinds_, simulator.machine(),
                       simulator.memory()))
            ++injected;
        ++cursor;
    }
    outcome.run = run;
    outcome.injected = injected;
}

CampaignResult
CampaignRunner::run(const CampaignConfig &config,
                    const std::function<void(const TrialOutcome &)> &onTrial)
{
    return runRange(config, 0, config.trials, onTrial);
}

CampaignResult
CampaignRunner::runRange(
    const CampaignConfig &config, uint64_t lo, uint64_t hi,
    const std::function<void(const TrialOutcome &)> &onTrial)
{
    if (lo > hi || hi > config.trials)
        panic("CampaignRunner: bad trial range [", lo, ", ", hi,
              ") over ", config.trials, " trials");
    uint64_t count = hi - lo;

    CampaignResult result;
    result.trials = static_cast<unsigned>(count);
    result.firstTrial = lo;
    result.outcomes.resize(count);

    auto budget = static_cast<uint64_t>(
        static_cast<double>(goldenInstructions_) * config.budgetFactor);
    if (budget < goldenInstructions_ + 1000)
        budget = goldenInstructions_ + 1000;

    unsigned workers = TrialPool::resolveWorkers(config.threads, count);

    // One Simulator per worker: the simulator is self-contained (no
    // global state), so worker-local instances make trials re-entrant.
    std::vector<std::unique_ptr<sim::Simulator>> simulators;
    simulators.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        simulators.push_back(
            std::make_unique<sim::Simulator>(program_, model_));

    // Per-worker tallies, merged in worker-index order below. The
    // counts are order-insensitive sums, and every per-trial record
    // lands in its own outcome slot, so the aggregate is deterministic
    // for any thread count.
    std::vector<OutcomeTally> tallies(workers);
    std::mutex observerMutex;

    TrialPool::run(workers, count, [&](uint64_t i, unsigned w) {
        // Counter-based stream keyed on the GLOBAL trial index: trial
        // randomness depends only on (seed, t), never on scheduling
        // or on which shard runs it.
        uint64_t t = lo + i;
        Rng trialRng = Rng::forStream(config.seed, t);
        InjectionPlan plan = samplePlan(injectableDynamic_,
                                        config.errors, bitModel_,
                                        trialRng);

        sim::Simulator &simulator = *simulators[w];
        TrialOutcome &outcome = result.outcomes[i];
        if (checkpointInterval_ > 0) {
            runTrialFastForward(simulator, plan, budget, outcome);
        } else {
            Injector injector(injectable_, std::move(plan),
                              resultKinds_);
            simulator.reset();
            outcome.run = simulator.run(budget, &injector);
            outcome.injected = injector.injectedCount();
        }

        switch (outcome.run.status) {
          case sim::RunStatus::Completed:
            ++tallies[w].completed;
            outcome.output = simulator.output();
            break;
          case sim::RunStatus::Timeout:
            ++tallies[w].timedOut;
            break;
          default:
            ++tallies[w].crashed;
            break;
        }
        if (onTrial) {
            std::lock_guard<std::mutex> lock(observerMutex);
            onTrial(outcome);
        }
    });

    OutcomeTally total;
    for (const auto &tally : tallies)
        total.merge(tally);
    result.completed = static_cast<unsigned>(total.completed);
    result.crashed = static_cast<unsigned>(total.crashed);
    result.timedOut = static_cast<unsigned>(total.timedOut);
    // Fed in trial order (floating-point accumulation is partition
    // sensitive, so per-worker partials would not be bit-stable).
    for (const auto &outcome : result.outcomes)
        result.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return result;
}

CampaignResult
CampaignRunner::mergeShards(std::vector<CampaignResult> shards)
{
    std::sort(shards.begin(), shards.end(),
              [](const CampaignResult &a, const CampaignResult &b) {
                  return a.firstTrial < b.firstTrial;
              });

    CampaignResult merged;
    for (auto &shard : shards) {
        if (shard.firstTrial != merged.trials)
            panic("CampaignRunner::mergeShards: shard starts at trial ",
                  shard.firstTrial, ", expected ", merged.trials);
        if (shard.outcomes.size() != shard.trials)
            panic("CampaignRunner::mergeShards: shard outcome count ",
                  shard.outcomes.size(), " != trials ", shard.trials);
        merged.trials += shard.trials;
        merged.completed += shard.completed;
        merged.crashed += shard.crashed;
        merged.timedOut += shard.timedOut;
        merged.outcomes.insert(
            merged.outcomes.end(),
            std::make_move_iterator(shard.outcomes.begin()),
            std::make_move_iterator(shard.outcomes.end()));
    }
    // Re-accumulated over the concatenation, exactly as run() feeds
    // it, so the statistic is bit-identical to the monolithic cell
    // (merging per-shard partials would not be: floating-point
    // accumulation is partition sensitive).
    for (const auto &outcome : merged.outcomes)
        merged.trialInstructions.add(
            static_cast<double>(outcome.run.instructions));
    return merged;
}

} // namespace etc::fault
