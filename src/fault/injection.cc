#include "fault/injection.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace etc::fault {

using namespace isa;

std::vector<bool>
injectableWithProtection(const assembly::Program &program,
                         const std::vector<bool> &tagged)
{
    return resolveInjectionPolicy(PROTECTED_POLICY)
        .injectableBitmap(program, tagged);
}

std::vector<bool>
injectableWithoutProtection(const assembly::Program &program)
{
    // TagScope::All never reads the tags; pass an empty-equivalent
    // bitmap of the right size to satisfy the shared validation.
    return resolveInjectionPolicy(UNPROTECTED_POLICY)
        .injectableBitmap(program,
                          std::vector<bool>(program.size(), false));
}

namespace {

/** One flip mask drawn from @p model (nonzero by construction). */
uint32_t
sampleMask(const BitErrorModel &model, Rng &rng)
{
    unsigned span = model.hi - model.lo;
    unsigned start = model.lo + static_cast<unsigned>(rng.below(span));
    if (model.kind == BitErrorModel::Kind::SingleFlip)
        return uint32_t{1} << start;
    // Burst: `burst` adjacent bits from the drawn start, wrapping
    // inside [lo, hi) so every error has the full burst width.
    uint32_t mask = 0;
    for (unsigned j = 0; j < model.burst; ++j)
        mask |= uint32_t{1} << (model.lo + (start - model.lo + j) % span);
    return mask;
}

} // namespace

InjectionPlan
samplePlan(uint64_t injectableDynamicCount, unsigned numErrors,
           const BitErrorModel &model, Rng &rng)
{
    if (model.lo >= model.hi || model.hi > 32)
        panic("samplePlan: bad bit range [", model.lo, ", ", model.hi,
              ")");
    if (model.kind == BitErrorModel::Kind::Burst &&
        (model.burst == 0 || model.burst > 32))
        panic("samplePlan: bad burst width ", model.burst);
    InjectionPlan plan;
    plan.sites = rng.sampleDistinct(injectableDynamicCount, numErrors);
    plan.masks.reserve(plan.sites.size());
    for (size_t i = 0; i < plan.sites.size(); ++i)
        plan.masks.push_back(sampleMask(model, rng));
    return plan;
}

InjectionPlan
samplePlan(uint64_t injectableDynamicCount, unsigned numErrors, Rng &rng)
{
    return samplePlan(injectableDynamicCount, numErrors, BitErrorModel{},
                      rng);
}

Injector::Injector(const std::vector<bool> &injectable, InjectionPlan plan,
                   unsigned resultKinds)
    : injectable_(injectable), plan_(std::move(plan)),
      resultKinds_(resultKinds)
{
}

bool
flipResult(const isa::Instruction &ins, uint32_t mask,
           unsigned resultKinds, sim::Machine &machine,
           sim::Memory &memory)
{
    return flipResultT(ins, mask, resultKinds, machine, memory);
}

bool
flipResult(const isa::Instruction &ins, unsigned bit,
           sim::Machine &machine, sim::Memory &memory)
{
    if (bit >= 32)
        panic("flipResult: bit index ", bit, " out of range");
    return flipResult(ins, uint32_t{1} << bit, RK_ALL, machine, memory);
}

void
Injector::onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                   sim::Machine &machine, sim::Memory &memory)
{
    if (staticIdx >= injectable_.size() || !injectable_[staticIdx])
        return;
    if (cursor_ < plan_.sites.size() &&
        counter_ == plan_.sites[cursor_]) {
        if (flipResult(ins, plan_.masks[cursor_], resultKinds_, machine,
                       memory))
            ++injected_;
        ++cursor_;
    }
    ++counter_;
}

} // namespace etc::fault
