#include "fault/injection.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace etc::fault {

using namespace isa;

std::vector<bool>
injectableWithProtection(const assembly::Program &program,
                         const std::vector<bool> &tagged)
{
    if (tagged.size() != program.size())
        panic("injectableWithProtection: tag bitmap size mismatch");
    std::vector<bool> out(tagged);
    // Tagged instructions are ALU by construction, but keep the
    // def-bearing filter as a safety net.
    for (uint32_t i = 0; i < program.size(); ++i)
        if (out[i] && !program.code[i].def())
            out[i] = false;
    return out;
}

std::vector<bool>
injectableWithoutProtection(const assembly::Program &program)
{
    std::vector<bool> out(program.size(), false);
    for (uint32_t i = 0; i < program.size(); ++i) {
        const auto &ins = program.code[i];
        out[i] = ins.def().has_value() || ins.isStore() ||
                 ins.isControl();
    }
    return out;
}

InjectionPlan
samplePlan(uint64_t injectableDynamicCount, unsigned numErrors, Rng &rng)
{
    InjectionPlan plan;
    plan.sites = rng.sampleDistinct(injectableDynamicCount, numErrors);
    plan.bits.reserve(plan.sites.size());
    for (size_t i = 0; i < plan.sites.size(); ++i)
        plan.bits.push_back(static_cast<unsigned>(rng.below(32)));
    return plan;
}

Injector::Injector(const std::vector<bool> &injectable, InjectionPlan plan)
    : injectable_(injectable), plan_(std::move(plan))
{
}

bool
flipResult(const isa::Instruction &ins, unsigned bit,
           sim::Machine &machine, sim::Memory &memory)
{
    if (auto def = ins.def()) {
        // Register result (jal/jalr corrupt the saved link here).
        uint32_t value = machine.readFlat(*def);
        machine.writeFlat(*def, flipBit(value, bit));
        return true;
    }
    if (ins.isControl()) {
        // A control transfer's result is the next PC.
        machine.pc = flipBit(machine.pc, bit);
        return true;
    }
    if (ins.isStore()) {
        // A store's result is the memory value it wrote. Flip it
        // in place (within the stored width); if the store went
        // out of region under the lenient model, the value was
        // dropped and there is nothing to corrupt.
        uint32_t addr = machine.readInt(ins.rs) +
                        static_cast<uint32_t>(ins.imm);
        switch (ins.op) {
          case isa::Opcode::SB: {
            uint8_t value = 0;
            if (memory.read8(addr, value) == sim::MemStatus::Ok) {
                memory.write8(addr, static_cast<uint8_t>(
                    flipBit(value, bit % 8)));
                return true;
            }
            return false;
          }
          case isa::Opcode::SH: {
            uint16_t value = 0;
            if (memory.read16(addr, value) == sim::MemStatus::Ok) {
                memory.write16(addr, static_cast<uint16_t>(
                    flipBit(value, bit % 16)));
                return true;
            }
            return false;
          }
          default: { // sw / swc1
            uint32_t value = 0;
            if (memory.read32(addr, value) == sim::MemStatus::Ok) {
                memory.write32(addr, flipBit(value, bit));
                return true;
            }
            return false;
          }
        }
    }
    return false;
}

void
Injector::onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                   sim::Machine &machine, sim::Memory &memory)
{
    if (staticIdx >= injectable_.size() || !injectable_[staticIdx])
        return;
    if (cursor_ < plan_.sites.size() &&
        counter_ == plan_.sites[cursor_]) {
        if (flipResult(ins, plan_.bits[cursor_], machine, memory))
            ++injected_;
        ++cursor_;
    }
    ++counter_;
}

} // namespace etc::fault
