/**
 * @file
 * Monte-Carlo fault-injection campaigns.
 *
 * A campaign fixes a program, an injectable-instruction set plus flip
 * semantics (i.e. an injection policy) and an error count, then runs
 * many independently seeded trials. Each trial reruns the program with a fresh uniform
 * injection plan and classifies the outcome; completed trials keep
 * their output stream so the caller can score fidelity against the
 * fault-free (golden) output.
 *
 * Trials execute on a TrialPool: trial t derives its randomness from
 * Rng::forStream(seed, t) and writes into its own outcome slot, so a
 * cell's results are bit-identical for every thread count.
 *
 * Trial fast-forwarding: every trial replays the golden run bit-for-bit
 * until its first injection site, so the golden profiling run records
 * periodic Checkpoints (see sim/checkpoint.hh) and each trial restores
 * the nearest one at-or-before its first site instead of starting from
 * reset. The tail -- and the gaps between injection sites -- run
 * through the simulator's hookless fast path, with the bit flips
 * applied directly at the exact sites. Campaign results are
 * bit-identical with checkpointing on (checkpointInterval > 0) or off
 * (0: the classic full-replay Injector-hook path), at every thread
 * count.
 *
 * Gang execution: on the checkpointed fast path, trials are grouped by
 * their first injection site into gangs of CampaignConfig::gangWidth
 * lanes that share one checkpoint restore and one fetch/decode stream
 * (sim/gang.hh). Lanes whose fault diverges control flow drain through
 * the scalar fast path, so results stay bit-identical to gangWidth = 0
 * (pure scalar) for every width, thread count, checkpoint interval,
 * and pruning mode. The classic interval-0 path never uses gangs,
 * keeping it an independent oracle.
 *
 * "Infinite execution" is detected by an instruction budget of
 * budgetFactor x the golden run's dynamic instruction count.
 *
 * Static pruning: with staticPrune enabled, the masked-fault prover
 * (analysis/vulnerability.hh) computes, per static site, the bits that
 * are MAY-live in the site's register destination before the golden
 * run, which then records that live mask per injectable dynamic
 * instruction. A trial whose every drawn flip mask lands entirely in
 * dead bits of its site's register result provably retires the exact
 * golden instruction stream with the exact golden output, so the
 * runner synthesizes that outcome instead of simulating: same
 * tallies, same per-trial records, same RNG stream (the plan is still
 * sampled), same observer calls. Campaign results are bit-identical
 * with pruning on or off at every thread count -- the same contract
 * checkpointing keeps -- with the skipped-trial count reported as
 * CampaignResult::trialsPruned.
 */

#ifndef ETC_FAULT_CAMPAIGN_HH
#define ETC_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "fault/injection.hh"
#include "sim/checkpoint.hh"
#include "sim/gang.hh"
#include "sim/outcome.hh"
#include "sim/simulator.hh"
#include "support/stats.hh"

namespace etc::fault {

/** CampaignConfig::gangWidth sentinel: let the runner pick a width. */
inline constexpr unsigned GANG_WIDTH_AUTO = 0xffffffffu;

/**
 * The width GANG_WIDTH_AUTO resolves to on the checkpointed path.
 * 32 wins over narrower gangs because the shared fetch/decode/
 * reconcile work amortizes over more lanes while the per-lane work
 * (dense register columns, copy-on-write pages) scales linearly.
 */
inline constexpr unsigned DEFAULT_GANG_WIDTH = 32;

/** Knobs of one campaign cell. */
struct CampaignConfig
{
    unsigned trials = 20;       //!< independent runs
    unsigned errors = 1;        //!< bit flips per run
    uint64_t seed = 0x5eed;     //!< master seed (trial i derives from it)
    double budgetFactor = 10.0; //!< timeout at factor x golden length
    unsigned threads = 1;       //!< worker threads (0 = all cores)

    /**
     * Trial lanes per gang on the checkpointed fast path: 0 forces
     * pure scalar execution, GANG_WIDTH_AUTO (default) picks
     * DEFAULT_GANG_WIDTH, anything else is clamped to
     * sim::GangSimulator::MAX_LANES. Purely an execution strategy --
     * results are bit-identical for every value -- so it is NOT part
     * of a cell's identity.
     */
    unsigned gangWidth = GANG_WIDTH_AUTO;
};

/** One trial's record. */
struct TrialOutcome
{
    sim::RunResult run;
    uint64_t injected = 0;          //!< flips actually performed
    std::vector<uint8_t> output;    //!< output stream (if completed)
};

/**
 * Aggregated campaign cell results -- either a whole cell or, when
 * produced by runRange(), the shard covering trials
 * [firstTrial, firstTrial + trials).
 */
struct CampaignResult
{
    unsigned trials = 0;     //!< trials in this (partial) result
    uint64_t firstTrial = 0; //!< global index of outcomes[0]
    unsigned completed = 0;
    unsigned crashed = 0;   //!< memory fault / bad jump / div0 / overflow
    unsigned timedOut = 0;  //!< "infinite execution"

    /**
     * Trials whose outcome was synthesized by the static-prune fast
     * path instead of simulated (always counted under completed;
     * purely informational -- the records are bit-identical either
     * way).
     */
    uint64_t trialsPruned = 0;

    std::vector<TrialOutcome> outcomes;

    /**
     * Dynamic-instruction counts across all trials (mean trial length
     * vs. the golden run shows how faults shorten or stall runs).
     * Accumulated in trial order, so bit-identical at any thread
     * count.
     */
    RunningStat trialInstructions;

    /** Fraction of trials that ended catastrophically. */
    double
    failureRate() const
    {
        return trials ? static_cast<double>(crashed + timedOut) / trials
                      : 0.0;
    }
};

/**
 * Runs campaigns for one (program, injectable set) pair, reusing a
 * single profiling run across all cells.
 */
class CampaignRunner
{
  public:
    /**
     * Default retired-instruction distance between checkpoints: fine
     * enough that a trial re-executes only a small slice of its
     * prefix, coarse enough that capture overhead and page storage
     * stay negligible against the trial grid it accelerates.
     */
    static constexpr uint64_t DEFAULT_CHECKPOINT_INTERVAL = 8192;

    /**
     * @param program            the workload program
     * @param injectable         static bitmap of injectable instructions
     * @param model              memory fault model for every trial
     * @param checkpointInterval retired instructions between golden-run
     *                           checkpoints; 0 disables checkpointing
     *                           and trial fast-forwarding entirely
     * @param resultKinds        corruptible result kinds (ResultKind
     *                           bitmask; default: all, the legacy
     *                           unrestricted behavior)
     * @param bitModel           per-error flip-mask model (default:
     *                           the paper's uniform single flip)
     * @param staticPrune        synthesize (instead of simulate)
     *                           trials whose every drawn flip the
     *                           masked-fault prover proved harmless;
     *                           results stay bit-identical (see file
     *                           header)
     */
    CampaignRunner(const assembly::Program &program,
                   std::vector<bool> injectable,
                   sim::MemoryModel model = sim::MemoryModel::Lenient,
                   uint64_t checkpointInterval =
                       DEFAULT_CHECKPOINT_INTERVAL,
                   unsigned resultKinds = RK_ALL,
                   BitErrorModel bitModel = {},
                   bool staticPrune = false);

    /** @return the fault-free output stream. */
    const std::vector<uint8_t> &goldenOutput() const { return golden_; }

    /** @return dynamic instructions of the fault-free run. */
    uint64_t goldenInstructions() const { return goldenInstructions_; }

    /** @return injectable dynamic instructions in the fault-free run. */
    uint64_t
    injectableDynamicCount() const
    {
        return injectableDynamic_;
    }

    /** @return the configured checkpoint interval (0 = disabled). */
    uint64_t checkpointInterval() const { return checkpointInterval_; }

    /** @return whether the static-prune fast path is enabled. */
    bool staticPrune() const { return staticPrune_; }

    /**
     * @return injectable dynamic instructions with at least one
     *         provably dead result bit (0 with pruning off): the pool
     *         prunable flips can land in. A trial is pruned when every
     *         drawn flip mask stays within its site's dead bits.
     */
    uint64_t prunableDynamicCount() const { return prunableDynamic_; }

    /** @return checkpoints recorded during the golden run. */
    size_t checkpointCount() const { return checkpoints_.size(); }

    /**
     * Run one campaign cell.
     *
     * Outcome tallies and per-trial records are bit-identical for any
     * config.threads value (including 0 = all cores): every trial is a
     * pure function of (config.seed, trial index).
     *
     * @param config  trial count / error count / seed / budget / threads
     * @param onTrial optional per-trial observer (progress reporting);
     *                called exactly once per trial, under a lock, but
     *                in unspecified order when threads > 1
     */
    CampaignResult run(
        const CampaignConfig &config,
        const std::function<void(const TrialOutcome &)> &onTrial = {});

    /**
     * Run the shard of a cell covering trials [lo, hi).
     *
     * The cell is still defined by @p config (config.trials is the
     * cell's total trial grid; trial t keeps drawing its randomness
     * from Rng::forStream(config.seed, t)), so shards of the same
     * cell computed in different processes, at different thread
     * counts, or in any order are fragments of the one monolithic
     * result: mergeShards() over a tiling set of them reproduces
     * run() bit-for-bit.
     *
     * @param lo first trial index (inclusive), <= hi
     * @param hi one past the last trial index, <= config.trials
     */
    CampaignResult runRange(
        const CampaignConfig &config, uint64_t lo, uint64_t hi,
        const std::function<void(const TrialOutcome &)> &onTrial = {});

    /**
     * Merge shard results into the monolithic cell result.
     *
     * The shards must tile [0, N) contiguously (any order in the
     * vector; they are sorted by firstTrial). Outcome tallies sum
     * exactly, per-trial records concatenate in trial order, and the
     * instruction statistic is re-accumulated over the concatenated
     * trials, so the merged result is bit-identical to a single
     * run() over the whole cell. Panics on overlapping or gapped
     * shards (caller bug).
     */
    static CampaignResult mergeShards(std::vector<CampaignResult> shards);

    /** @return the effective gang width for @p requested (see
     *         CampaignConfig::gangWidth). */
    static unsigned
    resolveGangWidth(unsigned requested)
    {
        if (requested == GANG_WIDTH_AUTO)
            return DEFAULT_GANG_WIDTH;
        return requested < sim::GangSimulator::MAX_LANES
                   ? requested
                   : sim::GangSimulator::MAX_LANES;
    }

  private:
    /** One trial via checkpoint restore + hookless site-to-site runs. */
    void runTrialFastForward(sim::Simulator &simulator,
                             const InjectionPlan &plan, uint64_t budget,
                             TrialOutcome &outcome) const;

    /// @name Gang execution (see sim/gang.hh and the file header)
    /// @{

    /** A live (not pruned) trial queued for gang execution: its global
     *  outcome slot plus its sampled plan. */
    struct GangTrial
    {
        uint64_t slot; //!< index into CampaignResult::outcomes
        InjectionPlan plan;
    };

    /** Per-lane injection progress carried from gang to drain. */
    struct GangLaneCtx
    {
        size_t cursor = 0;    //!< next plan site to apply
        uint64_t injected = 0; //!< flips actually performed
    };

    /** runRange() over gangs of @p width lanes (checkpointed path). */
    CampaignResult runRangeGang(
        const CampaignConfig &config, uint64_t lo, uint64_t hi,
        unsigned width,
        const std::function<void(const TrialOutcome &)> &onTrial);

    /** Execute one gang of @p lanes trials end to end (restore, run,
     *  flip at pauses, drain divergent lanes, record outcomes). */
    void runGang(const GangTrial *trials, unsigned lanes,
                 sim::Simulator &base, sim::Simulator &drain,
                 sim::GangSimulator &gang, uint64_t budget,
                 CampaignResult &result, OutcomeTally &tally,
                 const std::function<void(const TrialOutcome &)> &onTrial,
                 std::mutex &observerMutex) const;

    /** Finish a control-diverged lane through the scalar fast path. */
    void drainLane(sim::Simulator &simulator,
                   const sim::GangSimulator::LaneExit &exitRecord,
                   const InjectionPlan &plan,
                   const sim::Checkpoint *checkpoint, GangLaneCtx &lane,
                   uint64_t budget, TrialOutcome &outcome) const;
    /// @}

    const assembly::Program &program_;
    std::vector<bool> injectable_;
    sim::ByteMask injectableBytes_; //!< fast-path copy of injectable_
    sim::MemoryModel model_;
    unsigned resultKinds_;
    BitErrorModel bitModel_;
    uint64_t checkpointInterval_;
    bool staticPrune_;
    sim::CheckpointStore checkpoints_;
    std::vector<uint8_t> golden_;
    uint64_t goldenInstructions_ = 0;
    uint64_t injectableDynamic_ = 0;

    /**
     * One word per injectable dynamic instruction of the golden run
     * (in retire order): the MAY-live bits of the site's register
     * result -- a drawn flip mask disjoint from it is provably
     * harmless. All-ones (never prunable) for sites whose corruption
     * hits a control or memory result instead. Empty with pruning off.
     */
    std::vector<uint32_t> siteLiveMasks_;
    uint64_t prunableDynamic_ = 0;
};

} // namespace etc::fault

#endif // ETC_FAULT_CAMPAIGN_HH
