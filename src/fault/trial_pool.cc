#include "fault/trial_pool.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/logging.hh"

namespace etc::fault {

unsigned
TrialPool::resolveWorkers(unsigned requested, uint64_t trials)
{
    unsigned workers = requested;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    if (trials < workers)
        workers = static_cast<unsigned>(trials);
    return workers ? workers : 1;
}

void
TrialPool::run(unsigned workers, uint64_t trials, const TrialFn &fn)
{
    if (!fn)
        panic("TrialPool::run: null trial function");
    if (trials == 0)
        return;

    if (workers <= 1) {
        for (uint64_t t = 0; t < trials; ++t)
            fn(t, 0);
        return;
    }

    std::atomic<uint64_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto workerBody = [&](unsigned worker) {
        for (;;) {
            uint64_t t = next.fetch_add(1, std::memory_order_relaxed);
            if (t >= trials)
                return;
            try {
                fn(t, worker);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                // Drain the grid so sibling workers stop promptly.
                next.store(trials, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(workerBody, w);
    for (auto &thread : pool)
        thread.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace etc::fault
