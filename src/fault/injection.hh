/**
 * @file
 * Single-bit-flip fault injection, reproducing the paper's error model:
 *
 *   "we flip a bit in the result of an instruction ... Single bit-flip
 *    errors were randomly inserted with a uniform distribution."
 *
 * Methodology (profile-then-inject):
 *  1. a fault-free profiling run counts how many *injectable* dynamic
 *     instructions the program retires (N);
 *  2. for a trial with k errors, k distinct dynamic indices in [0, N)
 *     and k bit positions are drawn uniformly;
 *  3. the trial reruns with an Injector hook that flips the chosen bit
 *     of the destination register right after writeback at each chosen
 *     dynamic index.
 *
 * Which instructions are injectable encodes the protection mode:
 *  - protection ON : only instructions the CVar analysis tagged;
 *  - protection OFF: every instruction producing a result of any kind
 *    -- a register write, a stored memory value, or a control
 *    transfer's next PC. The unprotected machine can corrupt anything,
 *    including control itself; that is what makes the paper's
 *    "without protection" rows catastrophic.
 */

#ifndef ETC_FAULT_INJECTION_HH
#define ETC_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "sim/simulator.hh"
#include "support/rng.hh"

namespace etc::fault {

/** The per-trial injection schedule. */
struct InjectionPlan
{
    /** Dynamic indices (within the injectable stream), ascending. */
    std::vector<uint64_t> sites;

    /** Bit position (0..31) flipped at the matching site. */
    std::vector<unsigned> bits;

    size_t size() const { return sites.size(); }
};

/**
 * @return injectable-instruction bitmap for protection ON: exactly the
 *         instructions the analysis tagged (all of which bear defs).
 */
std::vector<bool> injectableWithProtection(
    const assembly::Program &program, const std::vector<bool> &tagged);

/**
 * @return injectable bitmap for protection OFF: every instruction with
 *         a result -- register defs, stores (memory results), and
 *         control transfers (PC results).
 */
std::vector<bool> injectableWithoutProtection(
    const assembly::Program &program);

/**
 * Draw a uniform injection plan.
 *
 * @param injectableDynamicCount N from the profiling run
 * @param numErrors              k errors to insert
 * @param rng                    deterministic generator
 */
InjectionPlan samplePlan(uint64_t injectableDynamicCount,
                         unsigned numErrors, Rng &rng);

/**
 * Flip bit @p bit of the result of the just-retired instruction
 * @p ins: its destination register, its next PC (control transfers),
 * or the memory value it stored. Must be called with writeback and the
 * PC update already applied -- i.e. exactly where ExecHook::onRetire
 * runs, which is also where Simulator::runUntilInjectable() pauses.
 *
 * @return true if a flip was actually performed (a store that was
 *         dropped by the lenient memory model has nothing to corrupt).
 */
bool flipResult(const isa::Instruction &ins, unsigned bit,
                sim::Machine &machine, sim::Memory &memory);

/**
 * The retire hook that executes an InjectionPlan.
 */
class Injector : public sim::ExecHook
{
  public:
    /**
     * @param injectable static bitmap of injectable instructions
     * @param plan       the trial's schedule (sites ascending)
     */
    Injector(const std::vector<bool> &injectable, InjectionPlan plan);

    void onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                  sim::Machine &machine, sim::Memory &memory) override;

    /** @return how many flips were actually performed. */
    uint64_t injectedCount() const { return injected_; }

    /** @return how many injectable instructions retired so far. */
    uint64_t injectableRetired() const { return counter_; }

  private:
    const std::vector<bool> &injectable_;
    InjectionPlan plan_;
    uint64_t counter_ = 0;
    uint64_t injected_ = 0;
    size_t cursor_ = 0;
};

/**
 * Profiling hook: counts injectable dynamic instructions without
 * perturbing anything.
 */
class InjectableCounter : public sim::ExecHook
{
  public:
    explicit InjectableCounter(const std::vector<bool> &injectable)
        : injectable_(injectable)
    {
    }

    void
    onRetire(uint32_t staticIdx, const isa::Instruction &,
             sim::Machine &, sim::Memory &) override
    {
        if (staticIdx < injectable_.size() && injectable_[staticIdx])
            ++count_;
    }

    uint64_t count() const { return count_; }

  private:
    const std::vector<bool> &injectable_;
    uint64_t count_ = 0;
};

} // namespace etc::fault

#endif // ETC_FAULT_INJECTION_HH
