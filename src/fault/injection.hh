/**
 * @file
 * Bit-flip fault injection, generalized over injection policies while
 * reproducing the paper's error model bit-for-bit under the legacy
 * policies:
 *
 *   "we flip a bit in the result of an instruction ... Single bit-flip
 *    errors were randomly inserted with a uniform distribution."
 *
 * Methodology (profile-then-inject):
 *  1. a fault-free profiling run counts how many *injectable* dynamic
 *     instructions the program retires (N);
 *  2. for a trial with k errors, k distinct dynamic indices in [0, N)
 *     are drawn uniformly, plus one flip mask per index from the
 *     policy's bit-error model (a single uniform bit under the paper
 *     model; a bit range or k-adjacent burst under the ablations);
 *  3. the trial reruns, XOR-ing each mask into the chosen result right
 *     after writeback at the chosen dynamic index.
 *
 * Which instructions are injectable -- and which of an instruction's
 * results gets corrupted -- encodes the policy (see fault/policy.hh):
 * the legacy "protected" policy targets only CVar-tagged register
 * results; the legacy "unprotected" policy targets every result kind
 * (register write, stored memory value, or a control transfer's next
 * PC -- corrupting control itself is what makes the paper's "without
 * protection" rows catastrophic); the ablation policies slice that
 * space differently.
 */

#ifndef ETC_FAULT_INJECTION_HH
#define ETC_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "fault/policy.hh"
#include "sim/simulator.hh"
#include "support/rng.hh"

namespace etc::fault {

/** The per-trial injection schedule. */
struct InjectionPlan
{
    /** Dynamic indices (within the injectable stream), ascending. */
    std::vector<uint64_t> sites;

    /** Nonzero 32-bit flip mask applied at the matching site (a
     *  single-flip model always yields one-hot masks). */
    std::vector<uint32_t> masks;

    size_t size() const { return sites.size(); }
};

/**
 * @return injectable bitmap for the legacy protected policy: exactly
 *         the instructions the analysis tagged (all of which bear
 *         defs). Thin wrapper over InjectionPolicy::injectableBitmap.
 */
std::vector<bool> injectableWithProtection(
    const assembly::Program &program, const std::vector<bool> &tagged);

/**
 * @return injectable bitmap for the legacy unprotected policy: every
 *         instruction with a result of any kind. Thin wrapper over
 *         InjectionPolicy::injectableBitmap.
 */
std::vector<bool> injectableWithoutProtection(
    const assembly::Program &program);

/**
 * Draw an injection plan: k distinct uniform sites, then one mask per
 * site from @p model. The legacy single-flip model consumes exactly
 * one rng.below(32) per site -- the same stream the pre-policy
 * implementation drew, so legacy trials are bit-identical.
 *
 * @param injectableDynamicCount N from the profiling run
 * @param numErrors              k errors to insert
 * @param model                  the policy's bit-error model
 * @param rng                    deterministic generator
 */
InjectionPlan samplePlan(uint64_t injectableDynamicCount,
                         unsigned numErrors, const BitErrorModel &model,
                         Rng &rng);

/** samplePlan() under the paper's uniform single-flip model. */
InjectionPlan samplePlan(uint64_t injectableDynamicCount,
                         unsigned numErrors, Rng &rng);

namespace detail {

/** Fold a 32-bit mask onto @p width bits: each set bit lands at
 *  (bit % width), matching the legacy per-bit `bit % width` flip.
 *  XOR fold, because two flips landing on one folded bit cancel. */
inline uint32_t
foldMask(uint32_t mask, unsigned width)
{
    uint32_t folded = 0;
    for (unsigned lo = 0; lo < 32; lo += width)
        folded ^= mask >> lo;
    return folded & ((uint32_t{1} << width) - 1);
}

} // namespace detail

/**
 * XOR @p mask into the policy-allowed result of the just-retired
 * instruction @p ins: its destination register, its next PC (control
 * transfers), or the memory value it stored -- the first allowed kind
 * the instruction has, in that fixed priority order. Sub-word stores
 * fold the mask to the stored width (each mask bit lands at
 * bit % width, exactly like the legacy single-flip did). Must be
 * called with writeback and the PC update already applied -- i.e.
 * exactly where ExecHook::onRetire runs, which is also where
 * Simulator::runUntilInjectable() pauses.
 *
 * Templated over the machine/memory shape so the scalar Simulator and
 * a GangSimulator lane proxy (sim/gang.hh) run the byte-identical flip
 * logic: MachineT provides pc / readFlat / writeFlat / readInt and
 * MemoryT the checked read/write accessors.
 *
 * @param resultKinds ResultKind bitmask of corruptible result kinds
 * @return true if a flip was actually performed (a store that was
 *         dropped by the lenient memory model has nothing to corrupt,
 *         and an instruction with no allowed result kind is skipped).
 */
template <typename MachineT, typename MemoryT>
bool
flipResultT(const isa::Instruction &ins, uint32_t mask,
            unsigned resultKinds, MachineT &machine, MemoryT &memory)
{
    if (resultKinds & RK_REGISTER) {
        if (auto def = ins.def()) {
            // Register result (jal/jalr corrupt the saved link here).
            machine.writeFlat(*def, machine.readFlat(*def) ^ mask);
            return true;
        }
    }
    if ((resultKinds & RK_CONTROL) && ins.isControl()) {
        // A control transfer's result is the next PC.
        machine.pc ^= mask;
        return true;
    }
    if ((resultKinds & RK_MEMORY) && ins.isStore()) {
        // A store's result is the memory value it wrote. Flip it
        // in place (within the stored width); if the store went
        // out of region under the lenient model, the value was
        // dropped and there is nothing to corrupt.
        uint32_t addr = machine.readInt(ins.rs) +
                        static_cast<uint32_t>(ins.imm);
        switch (ins.op) {
          case isa::Opcode::SB: {
            uint8_t value = 0;
            if (memory.read8(addr, value) == sim::MemStatus::Ok) {
                memory.write8(addr, static_cast<uint8_t>(
                    value ^ detail::foldMask(mask, 8)));
                return true;
            }
            return false;
          }
          case isa::Opcode::SH: {
            uint16_t value = 0;
            if (memory.read16(addr, value) == sim::MemStatus::Ok) {
                memory.write16(addr, static_cast<uint16_t>(
                    value ^ detail::foldMask(mask, 16)));
                return true;
            }
            return false;
          }
          default: { // sw / swc1
            uint32_t value = 0;
            if (memory.read32(addr, value) == sim::MemStatus::Ok) {
                memory.write32(addr, value ^ mask);
                return true;
            }
            return false;
          }
        }
    }
    return false;
}

/** flipResultT() over the scalar Simulator's Machine + Memory. */
bool flipResult(const isa::Instruction &ins, uint32_t mask,
                unsigned resultKinds, sim::Machine &machine,
                sim::Memory &memory);

/** flipResult() of single bit @p bit with every result kind allowed
 *  (the legacy unrestricted behavior). */
bool flipResult(const isa::Instruction &ins, unsigned bit,
                sim::Machine &machine, sim::Memory &memory);

/**
 * The retire hook that executes an InjectionPlan.
 */
class Injector : public sim::ExecHook
{
  public:
    /**
     * @param injectable  static bitmap of injectable instructions
     * @param plan        the trial's schedule (sites ascending)
     * @param resultKinds corruptible result kinds (default: all)
     */
    Injector(const std::vector<bool> &injectable, InjectionPlan plan,
             unsigned resultKinds = RK_ALL);

    void onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                  sim::Machine &machine, sim::Memory &memory) override;

    /** @return how many flips were actually performed. */
    uint64_t injectedCount() const { return injected_; }

    /** @return how many injectable instructions retired so far. */
    uint64_t injectableRetired() const { return counter_; }

  private:
    const std::vector<bool> &injectable_;
    InjectionPlan plan_;
    unsigned resultKinds_;
    uint64_t counter_ = 0;
    uint64_t injected_ = 0;
    size_t cursor_ = 0;
};

/**
 * Profiling hook: counts injectable dynamic instructions without
 * perturbing anything.
 */
class InjectableCounter : public sim::ExecHook
{
  public:
    explicit InjectableCounter(const std::vector<bool> &injectable)
        : injectable_(injectable)
    {
    }

    void
    onRetire(uint32_t staticIdx, const isa::Instruction &,
             sim::Machine &, sim::Memory &) override
    {
        if (staticIdx < injectable_.size() && injectable_[staticIdx])
            ++count_;
    }

    uint64_t count() const { return count_; }

  private:
    const std::vector<bool> &injectable_;
    uint64_t count_ = 0;
};

} // namespace etc::fault

#endif // ETC_FAULT_INJECTION_HH
