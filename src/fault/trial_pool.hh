/**
 * @file
 * Thread-pool executor for independent Monte-Carlo trials.
 *
 * A campaign's trials are embarrassingly parallel: each derives its
 * randomness from (seed, trial index) alone and writes its outcome to
 * its own slot. The pool hands trial indices to workers from a shared
 * atomic counter (dynamic scheduling -- trial lengths vary wildly once
 * faults corrupt control flow) and tells each worker its stable worker
 * id so callers can keep worker-local state such as a Simulator.
 *
 * Determinism contract: because trial work depends only on the trial
 * index, results are bit-identical for any thread count as long as the
 * caller's per-trial function is a pure function of that index (plus
 * worker-local scratch state that it fully re-initializes per trial).
 * Checkpoint fast-forwarding keeps the contract: restoring a shared
 * read-only Checkpoint into a worker-local Simulator is exactly such a
 * re-initialization, so trials remain order- and thread-independent.
 */

#ifndef ETC_FAULT_TRIAL_POOL_HH
#define ETC_FAULT_TRIAL_POOL_HH

#include <cstdint>
#include <functional>

namespace etc::fault {

/** Static helpers for running trial grids across worker threads. */
class TrialPool
{
  public:
    /** Per-trial callback: (trial index, worker id in [0, workers)). */
    using TrialFn = std::function<void(uint64_t, unsigned)>;

    /**
     * @return the worker count to use for @p requested threads over
     *         @p trials trials: 0 means all hardware threads, and the
     *         result is clamped to [1, trials] (1 for an empty grid).
     */
    static unsigned resolveWorkers(unsigned requested, uint64_t trials);

    /**
     * Run @p fn for every trial index in [0, trials).
     *
     * With @p workers == 1 everything runs inline on the calling
     * thread (no thread is spawned). Otherwise @p workers threads pull
     * indices until the grid is exhausted. The first exception thrown
     * by any trial is rethrown on the calling thread after all workers
     * join.
     *
     * @param workers worker count as returned by resolveWorkers()
     * @param trials  grid size
     * @param fn      per-trial work
     */
    static void run(unsigned workers, uint64_t trials, const TrialFn &fn);
};

} // namespace etc::fault

#endif // ETC_FAULT_TRIAL_POOL_HH
