#include "fault/policy.hh"

#include <deque>
#include <mutex>
#include <stdexcept>

#include "isa/instruction.hh"
#include "store/cell_key.hh"
#include "support/logging.hh"

namespace etc::fault {

namespace {

const char *
bitModelKindName(BitErrorModel::Kind kind)
{
    switch (kind) {
      case BitErrorModel::Kind::SingleFlip: return "single-flip";
      case BitErrorModel::Kind::Burst: return "burst";
    }
    return "unknown";
}

const char *
tagScopeName(TagScope scope)
{
    return scope == TagScope::Tagged ? "tagged" : "all";
}

std::deque<InjectionPolicy>
builtinPolicies()
{
    std::deque<InjectionPolicy> policies;

    InjectionPolicy prot;
    prot.name = PROTECTED_POLICY;
    prot.description =
        "paper baseline: inject only into CVar-tagged (low-"
        "reliability) register results";
    prot.chartLabel = "static analysis ON";
    prot.scope = TagScope::Tagged;
    prot.resultKinds = RK_REGISTER;
    prot.legacy = true;
    policies.push_back(std::move(prot));

    InjectionPolicy unprot;
    unprot.name = UNPROTECTED_POLICY;
    unprot.description =
        "paper baseline: inject into every result -- register defs, "
        "stored values, and next-PCs";
    unprot.chartLabel = "static analysis OFF";
    unprot.scope = TagScope::All;
    unprot.resultKinds = RK_ALL;
    unprot.legacy = true;
    policies.push_back(std::move(unprot));

    InjectionPolicy controlOnly;
    controlOnly.name = "control-only";
    controlOnly.description =
        "corrupt only control flow: the next PC of branches, jumps, "
        "and calls";
    controlOnly.chartLabel = "control-only";
    controlOnly.scope = TagScope::All;
    controlOnly.resultKinds = RK_CONTROL;
    policies.push_back(std::move(controlOnly));

    InjectionPolicy dataOnly;
    dataOnly.name = "data-only";
    dataOnly.description =
        "corrupt only data results (register defs and stored values); "
        "control transfers keep their PCs";
    dataOnly.chartLabel = "data-only";
    dataOnly.scope = TagScope::All;
    dataOnly.resultKinds = RK_REGISTER | RK_MEMORY;
    policies.push_back(std::move(dataOnly));

    InjectionPolicy unprotRegs;
    unprotRegs.name = "unprotected-regs";
    unprotRegs.description =
        "every register def is fair game (tagged or not), but memory "
        "and control results are safe";
    unprotRegs.chartLabel = "unprotected-regs";
    unprotRegs.scope = TagScope::All;
    unprotRegs.resultKinds = RK_REGISTER;
    policies.push_back(std::move(unprotRegs));

    InjectionPolicy protBurst;
    protBurst.name = "protected-burst2";
    protBurst.description =
        "the protected target set under a harsher error model: each "
        "error flips 2 adjacent bits";
    protBurst.chartLabel = "protected-burst2";
    protBurst.scope = TagScope::Tagged;
    protBurst.resultKinds = RK_REGISTER;
    protBurst.bitModel.kind = BitErrorModel::Kind::Burst;
    protBurst.bitModel.burst = 2;
    policies.push_back(std::move(protBurst));

    InjectionPolicy low16;
    low16.name = "unprotected-low16";
    low16.description =
        "every result, but flips land only in the low half-word "
        "(bits 0..15) -- a magnitude-bounded error model";
    low16.chartLabel = "unprotected-low16";
    low16.scope = TagScope::All;
    low16.resultKinds = RK_ALL;
    low16.bitModel.hi = 16;
    policies.push_back(std::move(low16));

    return policies;
}

/** Registry storage; guarded because services register from threads.
 *  A deque so registration never moves existing entries -- pointers
 *  handed out by findInjectionPolicy() stay valid for process life. */
struct Registry
{
    std::mutex mutex;
    std::deque<InjectionPolicy> policies = builtinPolicies();
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

void
validateModel(const InjectionPolicy &policy)
{
    const BitErrorModel &m = policy.bitModel;
    if (m.lo >= m.hi || m.hi > 32)
        panic("policy '", policy.name, "': bad bit range [", m.lo, ", ",
              m.hi, ")");
    if (m.kind == BitErrorModel::Kind::Burst &&
        (m.burst == 0 || m.burst > 32))
        panic("policy '", policy.name, "': bad burst width ", m.burst);
    if ((policy.resultKinds & RK_ALL) == 0)
        panic("policy '", policy.name, "': no result kinds");
}

} // namespace

std::string
BitErrorModel::describe() const
{
    std::string out;
    out += bitModelKindName(kind);
    if (kind == Kind::Burst) {
        out += '(';
        out += std::to_string(burst);
        out += ')';
    }
    out += " [";
    out += std::to_string(lo);
    out += ',';
    out += std::to_string(hi);
    out += ')';
    return out;
}

std::vector<bool>
InjectionPolicy::injectableBitmap(const assembly::Program &program,
                                  const std::vector<bool> &tagged) const
{
    if (tagged.size() != program.size())
        panic("policy '", name, "': tag bitmap size mismatch (",
              tagged.size(), " tags, ", program.size(),
              " instructions)");
    std::vector<bool> out(program.size(), false);
    for (uint32_t i = 0; i < program.size(); ++i) {
        if (scope == TagScope::Tagged && !tagged[i])
            continue;
        const auto &ins = program.code[i];
        out[i] =
            ((resultKinds & RK_REGISTER) && ins.def().has_value()) ||
            ((resultKinds & RK_MEMORY) && ins.isStore()) ||
            ((resultKinds & RK_CONTROL) && ins.isControl());
    }
    return out;
}

uint64_t
InjectionPolicy::descriptorHash() const
{
    // Behavior only -- renaming a policy or rewording its description
    // must not invalidate records, but any semantic change must.
    uint64_t hash = store::fnv1a("etc-policy-v1", 13);
    uint32_t fields[] = {
        static_cast<uint32_t>(scope),
        resultKinds,
        static_cast<uint32_t>(bitModel.kind),
        bitModel.lo,
        bitModel.hi,
        bitModel.burst,
    };
    for (uint32_t field : fields)
        hash = store::fnv1a(&field, sizeof(field), hash);
    return hash;
}

std::string
InjectionPolicy::descriptorHashHex() const
{
    return store::hexU64(descriptorHash());
}

uint64_t
InjectionPolicy::seedSalt() const
{
    if (legacy)
        return name == PROTECTED_POLICY ? 0x1 : 0x2;
    // Salt non-legacy policies on the *name* as well as the behavior:
    // two differently-named policies with identical descriptors still
    // draw independent trial streams, mirroring how the legacy pair
    // is distinguished by mode, not bitmap.
    return store::fnv1a(name.data(), name.size(), descriptorHash());
}

std::string
InjectionPolicy::resultKindsName() const
{
    std::string out;
    auto append = [&](const char *kind) {
        if (!out.empty())
            out += '|';
        out += kind;
    };
    if (resultKinds & RK_REGISTER)
        append("register");
    if (resultKinds & RK_MEMORY)
        append("memory");
    if (resultKinds & RK_CONTROL)
        append("control");
    return out;
}

std::vector<InjectionPolicy>
injectionPolicies()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return {reg.policies.begin(), reg.policies.end()};
}

const InjectionPolicy *
findInjectionPolicy(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &policy : reg.policies)
        if (policy.name == name)
            return &policy; // deque entries never move: stable
    return nullptr;
}

const InjectionPolicy &
resolveInjectionPolicy(const std::string &name)
{
    if (const InjectionPolicy *policy = findInjectionPolicy(name))
        return *policy;
    throw std::invalid_argument("unknown injection policy '" + name +
                                "' (known: " + injectionPolicyNames() +
                                ")");
}

std::string
injectionPolicyNames()
{
    std::string names;
    for (const auto &policy : injectionPolicies()) {
        if (!names.empty())
            names += ", ";
        names += policy.name;
    }
    return names;
}

void
registerInjectionPolicy(InjectionPolicy policy)
{
    if (policy.name.empty())
        panic("registerInjectionPolicy: empty policy name");
    if (policy.legacy)
        panic("registerInjectionPolicy: the legacy flag is reserved "
              "for the built-in paper modes");
    if (policy.chartLabel.empty())
        policy.chartLabel = policy.name;
    validateModel(policy);
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &existing : reg.policies)
        if (existing.name == policy.name)
            panic("registerInjectionPolicy: duplicate policy '",
                  policy.name, "'");
    reg.policies.push_back(std::move(policy));
}

std::vector<PolicyDescription>
describeInjectionPolicies()
{
    std::vector<PolicyDescription> rows;
    for (const auto &policy : injectionPolicies()) {
        PolicyDescription row;
        row.name = policy.name;
        row.description = policy.description;
        row.scope = tagScopeName(policy.scope);
        row.resultKinds = policy.resultKindsName();
        row.bitModel = policy.bitModel.describe();
        row.hash = policy.descriptorHashHex();
        row.legacy = policy.legacy;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace etc::fault
