/**
 * @file
 * Composable injection policies.
 *
 * The paper's experimental axis is *which results faults may corrupt*:
 * its two points are "only CVar-tagged low-reliability instructions"
 * (protection ON) and "every result" (protection OFF). An
 * InjectionPolicy promotes that axis to a first-class, self-describing
 * descriptor so the implicit ablation space opens up without touching
 * the engine for each new scenario:
 *
 *  - which static instructions are injectable (tag scope x the result
 *    kinds the instruction produces);
 *  - which result of a retired instruction gets corrupted (register
 *    def, stored memory value, or a control transfer's next PC);
 *  - how bits get corrupted (single uniform flip -- the paper's
 *    model -- or a restricted bit range, or a k-adjacent burst).
 *
 * Policies are pure data, so a policy's behavior is hashable: the
 * descriptor hash is folded into the result store's cell keys, and a
 * record can never alias results produced under different semantics.
 * The two legacy policies ("protected", "unprotected") reproduce the
 * paper's modes bit-for-bit -- same RNG draws, same flips, same store
 * fingerprints as the historical ProtectionMode enum paths.
 *
 * The process-wide registry starts with the built-in policies below;
 * embedders may add their own with registerInjectionPolicy().
 */

#ifndef ETC_FAULT_POLICY_HH
#define ETC_FAULT_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace etc::fault {

/** Corruptible result kinds of a retired instruction (bitmask). */
enum ResultKind : unsigned
{
    RK_REGISTER = 1u << 0, //!< the destination register (incl. links)
    RK_MEMORY = 1u << 1,   //!< the value a store wrote
    RK_CONTROL = 1u << 2,  //!< a control transfer's next PC
};

/** Every result kind: the paper's "without protection" reach. */
constexpr unsigned RK_ALL = RK_REGISTER | RK_MEMORY | RK_CONTROL;

/** Which static instructions a policy may target. */
enum class TagScope
{
    Tagged, //!< only instructions the CVar analysis tagged
    All,    //!< every instruction (ignore the analysis)
};

/** How the bits of one corrupted result are drawn. */
struct BitErrorModel
{
    enum class Kind
    {
        SingleFlip, //!< one uniform bit in [lo, hi) (paper model)
        Burst,      //!< `burst` adjacent bits from a uniform start
    };

    Kind kind = Kind::SingleFlip;
    unsigned lo = 0;    //!< lowest eligible bit (inclusive)
    unsigned hi = 32;   //!< one past the highest eligible bit
    unsigned burst = 1; //!< Burst: adjacent bits flipped per error

    /** @return a human-readable one-liner ("single-flip [0,32)"). */
    std::string describe() const;

    /** @return true iff this is the paper's uniform single flip. */
    bool
    isLegacySingleFlip() const
    {
        return kind == Kind::SingleFlip && lo == 0 && hi == 32;
    }

    bool operator==(const BitErrorModel &o) const
    {
        return kind == o.kind && lo == o.lo && hi == o.hi &&
               burst == o.burst;
    }
};

/**
 * One named injection policy: a pure-data descriptor of where faults
 * may land and what they corrupt.
 */
struct InjectionPolicy
{
    std::string name;        //!< registry key ("protected", ...)
    std::string description; //!< one-line summary for listings
    std::string chartLabel;  //!< series label in rendered figures

    TagScope scope = TagScope::All;
    unsigned resultKinds = RK_ALL; //!< ResultKind bitmask
    BitErrorModel bitModel;

    /**
     * True for the two policies that reproduce the paper's original
     * ProtectionMode semantics. Legacy policies keep their pre-policy
     * CellKey canonical form (no policy hash folded in), so stores
     * written before this layer existed keep serving records.
     */
    bool legacy = false;

    /**
     * The injectable-instruction bitmap of @p program under this
     * policy: instructions inside the tag scope that produce at least
     * one corruptible result kind.
     *
     * @param tagged the CVar analysis tag bitmap (one per static
     *               instruction; required -- even TagScope::All
     *               policies validate its size)
     */
    std::vector<bool> injectableBitmap(
        const assembly::Program &program,
        const std::vector<bool> &tagged) const;

    /**
     * Hash of the policy's *behavior* (scope, result kinds, bit
     * model -- not the name or prose). Folded into non-legacy cell
     * keys so redefining a policy can never alias stale records.
     */
    uint64_t descriptorHash() const;

    /** descriptorHash() as the key-embeddable "0x..." literal. */
    std::string descriptorHashHex() const;

    /**
     * Per-cell seed salt: legacy policies keep their historical
     * 0x1/0x2 salts (bit-identical campaign streams), non-legacy
     * policies derive a distinct salt from the descriptor hash.
     */
    uint64_t seedSalt() const;

    /** @return "register|memory|control"-style kinds summary. */
    std::string resultKindsName() const;
};

/** Names of the two legacy policies (the ProtectionMode aliases). */
inline constexpr const char *PROTECTED_POLICY = "protected";
inline constexpr const char *UNPROTECTED_POLICY = "unprotected";

/**
 * The process-wide policy registry: the built-ins (two legacy modes
 * plus the ablation policies) followed by any registered extras, in
 * registration order. Thread-safe; the returned snapshot is stable.
 */
std::vector<InjectionPolicy> injectionPolicies();

/** @return the registered policy named @p name, or nullptr. */
const InjectionPolicy *findInjectionPolicy(const std::string &name);

/**
 * The one string->policy resolver every layer routes through (CLI
 * flags, HTTP job fields, store records).
 *
 * @throws std::invalid_argument naming the known policies when @p name
 *         is not registered.
 */
const InjectionPolicy &resolveInjectionPolicy(const std::string &name);

/** @return comma-separated registered names (for usage/errors). */
std::string injectionPolicyNames();

/**
 * Register a custom policy (name must be new; panics on duplicates or
 * empty names). Registered policies participate everywhere built-ins
 * do: CLI flags, sweeps, job submissions, and cell keys.
 */
void registerInjectionPolicy(InjectionPolicy policy);

/** One row of the shared policy listing (CLI table + HTTP JSON). */
struct PolicyDescription
{
    std::string name;
    std::string description;
    std::string scope;       //!< "tagged" | "all"
    std::string resultKinds; //!< "register|memory|control" style
    std::string bitModel;    //!< BitErrorModel::describe()
    std::string hash;        //!< descriptor hash ("0x...")
    bool legacy = false;
};

/**
 * The registry rendered as data rows. `etc_lab policies` and the
 * service's GET /v1/policies both render exactly these rows, so the
 * two listings can never drift apart.
 */
std::vector<PolicyDescription> describeInjectionPolicies();

} // namespace etc::fault

#endif // ETC_FAULT_POLICY_HH
