/**
 * @file
 * A dynamically sized bit vector for dataflow sets (reaching
 * definitions), plus the fixed-size location set used by the CVar
 * analysis.
 */

#ifndef ETC_ANALYSIS_BITVEC_HH
#define ETC_ANALYSIS_BITVEC_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "isa/registers.hh"

namespace etc::analysis {

/**
 * Pseudo-location representing all of memory, used by the optional
 * conservative memory-tracking mode of the CVar analysis.
 */
constexpr unsigned MEM_LOC = isa::NUM_REGS; // = 65

/** Number of trackable locations (registers + the memory pseudo-loc). */
constexpr unsigned NUM_LOCS = MEM_LOC + 1;

/** A set of locations (registers + MEM). */
using LocSet = std::bitset<NUM_LOCS>;

/**
 * Growable bit vector with the handful of set operations dataflow
 * needs. Word-parallel; much faster than vector<bool> unions.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with @p size bits, all clear. */
    explicit BitVec(size_t size)
        : size_(size), words_((size + 63) / 64, 0)
    {
    }

    size_t size() const { return size_; }

    bool
    test(size_t bit) const
    {
        return (words_[bit >> 6] >> (bit & 63)) & 1;
    }

    void
    set(size_t bit)
    {
        words_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }

    void
    clear(size_t bit)
    {
        words_[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
    }

    /** this |= other. @return true if any bit changed. */
    bool
    unionWith(const BitVec &other)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t merged = words_[w] | other.words_[w];
            if (merged != words_[w]) {
                words_[w] = merged;
                changed = true;
            }
        }
        return changed;
    }

    /** this &= ~other. */
    void
    subtract(const BitVec &other)
    {
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~other.words_[w];
    }

    bool
    operator==(const BitVec &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }

    /** Invoke @p fn with the index of every set bit, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w];
            while (bits) {
                unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
                fn(w * 64 + tz);
                bits &= bits - 1;
            }
        }
    }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace etc::analysis

#endif // ETC_ANALYSIS_BITVEC_HH
