/**
 * @file
 * Dominator tree and natural-loop detection over the instruction-level
 * flow graph.
 *
 * This is the remaining piece of the "contemporary compiler" substrate
 * the paper builds its tagging pass on (Section 3 cites the reaching-
 * definitions framework that also enables loop-invariant code motion;
 * loop discovery needs dominators). The library uses it to report
 * which loops a workload spends its protected control budget on.
 *
 * Algorithm: Cooper/Harvey/Kennedy's iterative dominator computation
 * over a reverse-postorder numbering -- simple and fast at our program
 * sizes.
 */

#ifndef ETC_ANALYSIS_DOMINATORS_HH
#define ETC_ANALYSIS_DOMINATORS_HH

#include <cstdint>
#include <vector>

#include "analysis/flowgraph.hh"

namespace etc::analysis {

/**
 * Immediate-dominator relation for every instruction reachable from
 * the program entry.
 */
class DominatorTree
{
  public:
    /** Marker for unreachable nodes / the entry's missing parent. */
    static constexpr uint32_t NONE = UINT32_MAX;

    /**
     * Build the tree.
     *
     * @param graph the flow graph
     * @param entry the entry instruction index
     */
    DominatorTree(const FlowGraph &graph, uint32_t entry);

    /** @return the immediate dominator of @p node (NONE for entry or
     *          unreachable nodes). */
    uint32_t
    idom(uint32_t node) const
    {
        return idom_[node];
    }

    /** @return true if @p a dominates @p b (reflexive). */
    bool dominates(uint32_t a, uint32_t b) const;

    /** @return true if @p node is reachable from the entry. */
    bool
    reachable(uint32_t node) const
    {
        return node == entry_ || idom_[node] != NONE;
    }

    uint32_t entry() const { return entry_; }

  private:
    uint32_t entry_;
    std::vector<uint32_t> idom_;
};

/** One natural loop: a back edge latch -> header plus its body. */
struct NaturalLoop
{
    uint32_t header = 0;             //!< loop-entry instruction
    uint32_t latch = 0;              //!< source of the back edge
    std::vector<uint32_t> body;      //!< instructions, sorted ascending

    /** @return true if @p instr belongs to the loop. */
    bool contains(uint32_t instr) const;
};

/**
 * Find all natural loops (back edges whose target dominates their
 * source). Loops sharing a header are reported separately, one per
 * back edge.
 */
std::vector<NaturalLoop> findNaturalLoops(const FlowGraph &graph,
                                          const DominatorTree &doms);

} // namespace etc::analysis

#endif // ETC_ANALYSIS_DOMINATORS_HH
