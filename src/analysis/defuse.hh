/**
 * @file
 * Def-use chains built from reaching definitions.
 *
 * For every definition site, the chain lists the (instruction,
 * register) pairs that may consume its value. Tests use these chains
 * as an independent oracle for the CVar analysis: a value produced by
 * a tagged instruction must never flow through registers into a
 * control decision.
 */

#ifndef ETC_ANALYSIS_DEFUSE_HH
#define ETC_ANALYSIS_DEFUSE_HH

#include <cstdint>
#include <vector>

#include "analysis/reaching.hh"

namespace etc::analysis {

/** One use of a definition. */
struct Use
{
    uint32_t instr;  //!< the consuming instruction
    isa::RegId reg;  //!< the register through which the value flows

    bool operator==(const Use &other) const = default;
};

/** Def-use chains for a whole program. */
struct DefUseChains
{
    /** usesOf[i] = uses of the value defined by instruction i. */
    std::vector<std::vector<Use>> usesOf;
};

/**
 * Build def-use chains from a reaching-definitions result.
 */
DefUseChains computeDefUse(const assembly::Program &program,
                           const ReachingResult &reaching);

} // namespace etc::analysis

#endif // ETC_ANALYSIS_DEFUSE_HH
