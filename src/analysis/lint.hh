/**
 * @file
 * Assembly lint: structural and dataflow sanity checks over assembled
 * programs, reported as findings instead of panics so they can gate a
 * build (`etc_lab lint`, the CI lint step) and be unit-tested against
 * deliberately malformed programs.
 *
 * Checks:
 *
 *   cfg          control-transfer targets inside the code, calls that
 *                land on a function entry, conditional branches that
 *                stay inside their function
 *   unreachable  instructions no interprocedural path from the entry
 *                reaches (reported as one finding per dead range)
 *   uninit-read  registers (other than $zero and the simulator-
 *                initialized $sp/$ra) that are live-in at the program
 *                entry, i.e. readable before any write
 *   stack        $sp discipline: only `addi $sp, $sp, imm` may move
 *                the stack pointer, frames must be balanced (offset 0)
 *                at every return, and joins must agree on the offset
 *   injectable   policy-layer invariants on this program: tagged
 *                instructions are def-bearing ALU ops, every
 *                injectable site has a corruptible result kind, and
 *                the protected set is a subset of the unprotected one
 */

#ifndef ETC_ANALYSIS_LINT_HH
#define ETC_ANALYSIS_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace etc::analysis {

/** One lint finding. */
struct LintFinding
{
    std::string check;   //!< check identifier ("cfg", "stack", ...)
    uint32_t index = 0;  //!< static instruction index it anchors to
    std::string message; //!< human-readable description
};

/** All findings over one program. */
struct LintReport
{
    std::vector<LintFinding> findings;

    bool clean() const { return findings.empty(); }

    /** "check @index: message" lines, one per finding. */
    std::string toString() const;
};

/**
 * Run the structural and dataflow checks (cfg / unreachable /
 * uninit-read / stack) over @p program.
 */
LintReport lintProgram(const assembly::Program &program);

/**
 * Run the injectable-bitmap consistency checks against the CVar tag
 * bitmap and every registered injection policy, appending findings to
 * @p report.
 *
 * @param tagged the CVar analysis tag bitmap (one per instruction)
 */
void lintInjectable(const assembly::Program &program,
                    const std::vector<bool> &tagged, LintReport &report);

} // namespace etc::analysis

#endif // ETC_ANALYSIS_LINT_HH
