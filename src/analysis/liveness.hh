/**
 * @file
 * Classic backward live-variable analysis at instruction granularity.
 *
 * Part of the "contemporary compiler" substrate the paper builds on
 * (Section 3 cites reaching definitions / dataflow analysis as the
 * enabling technique). Used by tests as an independent cross-check of
 * the flow graph and by the ablation benches.
 */

#ifndef ETC_ANALYSIS_LIVENESS_HH
#define ETC_ANALYSIS_LIVENESS_HH

#include <vector>

#include "analysis/bitvec.hh"
#include "analysis/flowgraph.hh"

namespace etc::analysis {

/** Live-in / live-out register sets per instruction. */
struct LivenessResult
{
    std::vector<LocSet> liveIn;
    std::vector<LocSet> liveOut;
};

/**
 * Run liveness to a fixpoint.
 *
 * liveIn[i]  = uses(i) ∪ (liveOut[i] \ defs(i))
 * liveOut[i] = ∪ liveIn[s] over successors s
 *
 * $zero is never considered live (reads are constant).
 */
LivenessResult computeLiveness(const assembly::Program &program,
                               const FlowGraph &graph);

} // namespace etc::analysis

#endif // ETC_ANALYSIS_LIVENESS_HH
