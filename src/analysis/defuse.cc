#include "analysis/defuse.hh"

namespace etc::analysis {

using namespace isa;

DefUseChains
computeDefUse(const assembly::Program &program,
              const ReachingResult &reaching)
{
    const uint32_t n = program.size();
    DefUseChains chains;
    chains.usesOf.resize(n);

    for (uint32_t u = 0; u < n; ++u) {
        const auto &ins = program.code[u];
        for (RegId reg : ins.uses()) {
            if (reg == REG_ZERO)
                continue;
            // Every definition of `reg` reaching u feeds this use.
            reaching.in[u].forEach([&](size_t d) {
                uint32_t defInstr = reaching.defSites[d];
                if (*program.code[defInstr].def() == reg)
                    chains.usesOf[defInstr].push_back(Use{u, reg});
            });
        }
    }
    return chains;
}

} // namespace etc::analysis
