#include "analysis/dominators.hh"

#include <algorithm>

#include "support/logging.hh"

namespace etc::analysis {

namespace {

/** Reverse-postorder numbering of the nodes reachable from entry. */
void
reversePostorder(const FlowGraph &graph, uint32_t entry,
                 std::vector<uint32_t> &order,
                 std::vector<uint32_t> &number)
{
    const uint32_t n = graph.size();
    number.assign(n, UINT32_MAX);
    order.clear();
    order.reserve(n);

    // Iterative DFS with an explicit successor cursor.
    std::vector<uint8_t> state(n, 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    std::vector<uint32_t> postorder;
    while (!stack.empty()) {
        auto &[node, cursor] = stack.back();
        const auto &succs = graph.successors(node);
        if (cursor < succs.size()) {
            uint32_t next = succs[cursor++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    order.assign(postorder.rbegin(), postorder.rend());
    for (uint32_t i = 0; i < order.size(); ++i)
        number[order[i]] = i;
}

} // namespace

DominatorTree::DominatorTree(const FlowGraph &graph, uint32_t entry)
    : entry_(entry), idom_(graph.size(), NONE)
{
    if (entry >= graph.size())
        panic("DominatorTree: entry ", entry, " out of range");

    std::vector<uint32_t> order, rpo;
    reversePostorder(graph, entry, order, rpo);

    // Cooper/Harvey/Kennedy iteration in RPO order.
    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpo[a] > rpo[b])
                a = idom_[a];
            while (rpo[b] > rpo[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[entry] = entry; // sentinel during iteration
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t node : order) {
            if (node == entry)
                continue;
            uint32_t newIdom = NONE;
            for (uint32_t pred : graph.predecessors(node)) {
                if (idom_[pred] == NONE)
                    continue; // pred not processed / unreachable
                newIdom = newIdom == NONE ? pred
                                          : intersect(pred, newIdom);
            }
            if (newIdom != NONE && idom_[node] != newIdom) {
                idom_[node] = newIdom;
                changed = true;
            }
        }
    }
    idom_[entry] = NONE; // the entry has no immediate dominator
}

bool
DominatorTree::dominates(uint32_t a, uint32_t b) const
{
    if (!reachable(b))
        return false;
    uint32_t node = b;
    while (node != NONE) {
        if (node == a)
            return true;
        node = idom_[node];
    }
    return false;
}

bool
NaturalLoop::contains(uint32_t instr) const
{
    return std::binary_search(body.begin(), body.end(), instr);
}

std::vector<NaturalLoop>
findNaturalLoops(const FlowGraph &graph, const DominatorTree &doms)
{
    std::vector<NaturalLoop> loops;
    for (uint32_t node = 0; node < graph.size(); ++node) {
        if (!doms.reachable(node))
            continue;
        for (uint32_t succ : graph.successors(node)) {
            if (!doms.dominates(succ, node))
                continue;
            // Back edge node -> succ: collect the natural loop body by
            // walking predecessors backward from the latch until the
            // header.
            NaturalLoop loop;
            loop.header = succ;
            loop.latch = node;
            std::vector<uint32_t> stack = {node};
            std::vector<bool> inBody(graph.size(), false);
            inBody[succ] = true;
            inBody[node] = true;
            while (!stack.empty()) {
                uint32_t current = stack.back();
                stack.pop_back();
                for (uint32_t pred : graph.predecessors(current)) {
                    if (!inBody[pred] && doms.reachable(pred)) {
                        inBody[pred] = true;
                        stack.push_back(pred);
                    }
                }
            }
            for (uint32_t i = 0; i < graph.size(); ++i)
                if (inBody[i])
                    loop.body.push_back(i);
            loops.push_back(std::move(loop));
        }
    }
    return loops;
}

} // namespace etc::analysis
