/**
 * @file
 * Instruction-level control-flow graph over a whole Program, with
 * optional interprocedural edges.
 *
 * Interprocedural mode wires `jal f` to f's entry and `jr $ra` to every
 * return site of the enclosing function (the instruction following each
 * call of it). That realizes the paper's requirement that the CVar
 * analysis "cross basic block boundaries and even procedure
 * boundaries" with a context-insensitive summary-free formulation.
 *
 * In intraprocedural mode a call is treated as falling through to its
 * return site and `jr` as a program exit.
 *
 * `jr` through anything is treated as a return of the enclosing
 * function; the workload kernels use `jr` only for returns (documented
 * ISA discipline).
 */

#ifndef ETC_ANALYSIS_FLOWGRAPH_HH
#define ETC_ANALYSIS_FLOWGRAPH_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"

namespace etc::analysis {

/**
 * Successor/predecessor relation over instruction indices, plus the
 * basic-block partition derived from it.
 */
class FlowGraph
{
  public:
    /**
     * Build the graph.
     *
     * @param program         the assembled program
     * @param interprocedural wire call/return edges across functions
     */
    FlowGraph(const assembly::Program &program, bool interprocedural);

    /** @return successor instruction indices of instruction @p idx. */
    const std::vector<uint32_t> &
    successors(uint32_t idx) const
    {
        return succs_[idx];
    }

    /** @return predecessor instruction indices of instruction @p idx. */
    const std::vector<uint32_t> &
    predecessors(uint32_t idx) const
    {
        return preds_[idx];
    }

    /** Half-open ranges of the basic-block partition, sorted. */
    struct Block
    {
        uint32_t begin;
        uint32_t end;
    };

    /** @return the basic blocks (leaders computed from the edges). */
    const std::vector<Block> &blocks() const { return blocks_; }

    /** @return index into blocks() of the block holding @p idx. */
    uint32_t blockOf(uint32_t idx) const { return blockOf_[idx]; }

    /** @return the number of instructions (graph nodes). */
    uint32_t size() const { return static_cast<uint32_t>(succs_.size()); }

    /** @return whether interprocedural edges were built. */
    bool interprocedural() const { return interprocedural_; }

  private:
    bool interprocedural_;
    std::vector<std::vector<uint32_t>> succs_;
    std::vector<std::vector<uint32_t>> preds_;
    std::vector<Block> blocks_;
    std::vector<uint32_t> blockOf_;
};

} // namespace etc::analysis

#endif // ETC_ANALYSIS_FLOWGRAPH_HH
