/**
 * @file
 * Reaching-definitions analysis at instruction granularity -- the
 * textbook forward dataflow the paper names as the technique its
 * tagging pass reuses ("used in contemporary compilers to determine
 * reaching definitions").
 *
 * A *definition* is any instruction that writes a register. The result
 * maps every program point to the set of definitions that may reach it.
 */

#ifndef ETC_ANALYSIS_REACHING_HH
#define ETC_ANALYSIS_REACHING_HH

#include <cstdint>
#include <vector>

#include "analysis/bitvec.hh"
#include "analysis/flowgraph.hh"

namespace etc::analysis {

/** Result of reaching-definitions. */
struct ReachingResult
{
    /** Instruction indices that define a register ("definitions"). */
    std::vector<uint32_t> defSites;

    /** defIndexOf[i] = position of instruction i in defSites, or -1. */
    std::vector<int32_t> defIndexOf;

    /** in[i] = set of definitions (as defSites positions) reaching i. */
    std::vector<BitVec> in;

    /**
     * @return true if definition site @p defInstr reaches the entry of
     *         @p useInstr.
     */
    bool
    reaches(uint32_t defInstr, uint32_t useInstr) const
    {
        int32_t d = defIndexOf[defInstr];
        return d >= 0 && in[useInstr].test(static_cast<size_t>(d));
    }
};

/** Run reaching definitions to a fixpoint over @p graph. */
ReachingResult computeReaching(const assembly::Program &program,
                               const FlowGraph &graph);

} // namespace etc::analysis

#endif // ETC_ANALYSIS_REACHING_HH
