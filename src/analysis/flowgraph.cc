#include "analysis/flowgraph.hh"

#include <algorithm>

#include "support/logging.hh"

namespace etc::analysis {

using namespace isa;

FlowGraph::FlowGraph(const assembly::Program &program,
                     bool interprocedural)
    : interprocedural_(interprocedural)
{
    const uint32_t n = program.size();
    succs_.resize(n);
    preds_.resize(n);
    blockOf_.resize(n, 0);

    // Map each function to its return sites (instruction after each
    // call of it).
    std::vector<std::vector<uint32_t>> returnSites(
        program.functions.size());
    if (interprocedural_) {
        for (uint32_t i = 0; i < n; ++i) {
            const auto &ins = program.code[i];
            if (ins.op == Opcode::JAL) {
                auto callee = program.functionContaining(ins.target);
                if (callee && i + 1 < n)
                    returnSites[*callee].push_back(i + 1);
            }
        }
    }

    for (uint32_t i = 0; i < n; ++i) {
        const auto &ins = program.code[i];
        auto addSucc = [&](uint32_t s) {
            if (s < n)
                succs_[i].push_back(s);
        };
        switch (instrClass(ins.op)) {
          case InstrClass::Branch:
            addSucc(i + 1);
            addSucc(ins.target);
            break;
          case InstrClass::Jump:
            if (ins.op == Opcode::J) {
                addSucc(ins.target);
            } else { // JR: return of the enclosing function
                if (interprocedural_) {
                    if (auto fn = program.functionContaining(i))
                        for (uint32_t site : returnSites[*fn])
                            addSucc(site);
                }
                // else: treated as program exit (no successors)
            }
            break;
          case InstrClass::Call:
            if (ins.op == Opcode::JAL && interprocedural_) {
                addSucc(ins.target);
            } else {
                // Intraprocedural mode, or jalr (indirect): assume the
                // call returns to the next instruction.
                addSucc(i + 1);
            }
            break;
          case InstrClass::System:
            if (ins.op == Opcode::HALT)
                break; // program exit
            addSucc(i + 1);
            break;
          default:
            addSucc(i + 1);
            break;
        }
        // Deduplicate (a branch whose target is the fallthrough).
        auto &s = succs_[i];
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }

    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t s : succs_[i])
            preds_[s].push_back(i);

    // Leaders: entry, any jump/branch target (i.e. node with a
    // non-fallthrough predecessor or >1 preds), and any instruction
    // after a multi-successor or zero-successor node.
    std::vector<bool> leader(n, false);
    if (n > 0)
        leader[0] = true;
    for (uint32_t i = 0; i < n; ++i) {
        const auto &s = succs_[i];
        bool terminator = s.size() != 1 || s[0] != i + 1;
        if (terminator && i + 1 < n)
            leader[i + 1] = true;
        for (uint32_t t : s)
            if (t != i + 1)
                leader[t] = true;
    }
    for (const auto &fn : program.functions)
        if (fn.begin < n)
            leader[fn.begin] = true;

    for (uint32_t i = 0; i < n;) {
        uint32_t j = i + 1;
        while (j < n && !leader[j])
            ++j;
        blocks_.push_back(Block{i, j});
        for (uint32_t k = i; k < j; ++k)
            blockOf_[k] = static_cast<uint32_t>(blocks_.size() - 1);
        i = j;
    }
}

} // namespace etc::analysis
