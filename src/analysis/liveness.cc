#include "analysis/liveness.hh"

#include <deque>

namespace etc::analysis {

using namespace isa;

LivenessResult
computeLiveness(const assembly::Program &program, const FlowGraph &graph)
{
    const uint32_t n = program.size();
    LivenessResult result;
    result.liveIn.resize(n);
    result.liveOut.resize(n);

    std::deque<uint32_t> worklist;
    std::vector<bool> queued(n, false);
    // Seed in reverse order: backward analyses converge fastest that way.
    for (uint32_t i = n; i-- > 0;) {
        worklist.push_back(i);
        queued[i] = true;
    }

    while (!worklist.empty()) {
        uint32_t i = worklist.front();
        worklist.pop_front();
        queued[i] = false;

        LocSet out;
        for (uint32_t s : graph.successors(i))
            out |= result.liveIn[s];
        result.liveOut[i] = out;

        LocSet in = out;
        const auto &ins = program.code[i];
        if (auto def = ins.def())
            in.reset(*def);
        for (RegId use : ins.uses())
            if (use != REG_ZERO)
                in.set(use);

        if (in != result.liveIn[i]) {
            result.liveIn[i] = in;
            for (uint32_t p : graph.predecessors(i)) {
                if (!queued[p]) {
                    queued[p] = true;
                    worklist.push_back(p);
                }
            }
        }
    }
    return result;
}

} // namespace etc::analysis
