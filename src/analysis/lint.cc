#include "analysis/lint.hh"

#include <deque>
#include <map>
#include <optional>

#include "analysis/flowgraph.hh"
#include "analysis/liveness.hh"
#include "fault/policy.hh"
#include "isa/registers.hh"
#include "support/logging.hh"

namespace etc::analysis {

using namespace isa;

namespace {

void
report(LintReport &out, const char *check, uint32_t index,
       std::string message)
{
    out.findings.push_back(LintFinding{check, index, std::move(message)});
}

/** Control-transfer targets in range, calls landing on function
 *  entries, conditional branches staying inside their function.
 *  @return true when every target is inside the code (graph-based
 *  checks only make sense then). */
bool
checkCfg(const assembly::Program &program, LintReport &out)
{
    const uint32_t n = program.size();
    bool targetsInRange = true;
    for (uint32_t i = 0; i < n; ++i) {
        const Instruction &ins = program.code[i];
        bool hasTarget = ins.isConditionalBranch() ||
                         ins.op == Opcode::J || ins.op == Opcode::JAL;
        if (!hasTarget)
            continue;
        if (ins.target >= n) {
            report(out, "cfg", i,
                   "control transfer to out-of-code target " +
                       std::to_string(ins.target) + ": " +
                       ins.toString());
            targetsInRange = false;
            continue;
        }
        if (ins.op == Opcode::JAL) {
            auto callee = program.functionContaining(ins.target);
            if (!callee ||
                program.functions[*callee].begin != ins.target)
                report(out, "cfg", i,
                       "call does not land on a function entry: " +
                           ins.toString());
        } else if (ins.isConditionalBranch()) {
            auto here = program.functionContaining(i);
            auto there = program.functionContaining(ins.target);
            if (here && there != here)
                report(out, "cfg", i,
                       "branch escapes its function: " +
                           ins.toString());
        }
    }
    return targetsInRange;
}

/** Instructions unreachable from the entry, one finding per range. */
void
checkUnreachable(const assembly::Program &program, const FlowGraph &graph,
                 LintReport &out)
{
    const uint32_t n = program.size();
    std::vector<bool> reached(n, false);
    std::deque<uint32_t> worklist;
    if (program.entry < n) {
        reached[program.entry] = true;
        worklist.push_back(program.entry);
    }
    while (!worklist.empty()) {
        uint32_t i = worklist.front();
        worklist.pop_front();
        for (uint32_t s : graph.successors(i)) {
            if (!reached[s]) {
                reached[s] = true;
                worklist.push_back(s);
            }
        }
    }
    for (uint32_t i = 0; i < n;) {
        if (reached[i]) {
            ++i;
            continue;
        }
        uint32_t j = i;
        while (j < n && !reached[j])
            ++j;
        report(out, "unreachable", i,
               "instructions [" + std::to_string(i) + ", " +
                   std::to_string(j) + ") are unreachable from the entry");
        i = j;
    }
}

/** Registers readable before any write. The simulator initializes
 *  $sp and $ra (and $zero is hardwired); anything else live-in at the
 *  entry is a read of a default-zero register. */
void
checkUninitReads(const assembly::Program &program, const FlowGraph &graph,
                 LintReport &out)
{
    if (program.entry >= program.size())
        return;
    LivenessResult liveness = computeLiveness(program, graph);
    const LocSet &entryLive = liveness.liveIn[program.entry];
    for (unsigned r = 0; r < NUM_REGS; ++r) {
        if (r == REG_ZERO || r == REG_SP || r == REG_RA)
            continue;
        if (entryLive.test(r))
            report(out, "uninit-read", program.entry,
                   std::string("register ") +
                       regName(static_cast<RegId>(r)) +
                       " may be read before it is written");
    }
}

/**
 * $sp discipline, per function: the offset from the frame entry is
 * tracked through the intra-function CFG; only `addi $sp, $sp, imm`
 * may change it, joins must agree, and returns must be balanced.
 */
void
checkStack(const assembly::Program &program, const FlowGraph &graph,
           LintReport &out)
{
    for (const auto &fn : program.functions) {
        if (fn.begin >= fn.end || fn.end > program.size())
            continue;
        // offset[i]: $sp displacement entering instruction i, or unset.
        std::map<uint32_t, int64_t> offset;
        std::deque<uint32_t> worklist;
        offset[fn.begin] = 0;
        worklist.push_back(fn.begin);
        while (!worklist.empty()) {
            uint32_t i = worklist.front();
            worklist.pop_front();
            int64_t at = offset[i];
            const Instruction &ins = program.code[i];

            int64_t after = at;
            auto def = ins.def();
            if (def && *def == REG_SP) {
                if (ins.op == Opcode::ADDI && ins.rs == REG_SP) {
                    after = at + ins.imm;
                } else {
                    report(out, "stack", i,
                           "stack pointer written by a non-adjustment "
                           "instruction: " +
                               ins.toString());
                    continue; // offset unknowable past this point
                }
            }
            if (ins.op == Opcode::JR) {
                if (after != 0)
                    report(out, "stack", i,
                           "return with unbalanced stack (offset " +
                               std::to_string(after) + ")");
                continue;
            }
            // Stay inside the function: a call's interprocedural
            // edges (and its return sites) keep $sp balanced by the
            // callee's own discipline, so treat calls as straight-
            // through and follow only intra-function edges.
            std::vector<uint32_t> succs;
            if (ins.op == Opcode::JAL || ins.op == Opcode::JALR) {
                if (i + 1 < fn.end)
                    succs.push_back(i + 1);
            } else {
                for (uint32_t s : graph.successors(i))
                    if (s >= fn.begin && s < fn.end)
                        succs.push_back(s);
            }
            for (uint32_t s : succs) {
                auto found = offset.find(s);
                if (found == offset.end()) {
                    offset[s] = after;
                    worklist.push_back(s);
                } else if (found->second != after) {
                    report(out, "stack", s,
                           "joining paths disagree on the stack offset (" +
                               std::to_string(found->second) + " vs " +
                               std::to_string(after) + ")");
                }
            }
        }
    }
}

} // namespace

std::string
LintReport::toString() const
{
    std::string out;
    for (const auto &finding : findings) {
        out += finding.check;
        out += " @";
        out += std::to_string(finding.index);
        out += ": ";
        out += finding.message;
        out += '\n';
    }
    return out;
}

LintReport
lintProgram(const assembly::Program &program)
{
    LintReport out;
    bool targetsInRange = checkCfg(program, out);
    // Graph-based checks need resolvable edges; with wild targets the
    // cfg findings already fail the lint, so stop there.
    if (!targetsInRange)
        return out;
    FlowGraph graph(program, /*interprocedural=*/true);
    checkUnreachable(program, graph, out);
    checkUninitReads(program, graph, out);
    checkStack(program, graph, out);
    return out;
}

void
lintInjectable(const assembly::Program &program,
               const std::vector<bool> &tagged, LintReport &report_)
{
    const uint32_t n = program.size();
    if (tagged.size() != n) {
        report(report_, "injectable", 0,
               "tag bitmap size " + std::to_string(tagged.size()) +
                   " does not match code size " + std::to_string(n));
        return;
    }
    // The paper's contract: tags mark def-bearing ALU results only.
    for (uint32_t i = 0; i < n; ++i) {
        if (!tagged[i])
            continue;
        const Instruction &ins = program.code[i];
        if (!ins.isAlu() || !ins.def())
            report(report_, "injectable", i,
                   "tagged instruction is not a def-bearing ALU op: " +
                       ins.toString());
    }
    // Policy-layer invariants, for every registered policy.
    for (const auto &policy : fault::injectionPolicies()) {
        std::vector<bool> bitmap =
            policy.injectableBitmap(program, tagged);
        for (uint32_t i = 0; i < n; ++i) {
            if (!bitmap[i])
                continue;
            const Instruction &ins = program.code[i];
            bool corruptible =
                ((policy.resultKinds & fault::RK_REGISTER) &&
                 ins.def()) ||
                ((policy.resultKinds & fault::RK_CONTROL) &&
                 ins.isControl()) ||
                ((policy.resultKinds & fault::RK_MEMORY) &&
                 ins.isStore());
            if (!corruptible)
                report(report_, "injectable", i,
                       "policy '" + policy.name +
                           "' marks a site with no corruptible "
                           "result kind: " +
                           ins.toString());
            if (policy.scope == fault::TagScope::Tagged && !tagged[i])
                report(report_, "injectable", i,
                       "policy '" + policy.name +
                           "' escapes its tagged scope: " +
                           ins.toString());
        }
    }
    // The paper's protected set must be a subset of the unprotected
    // set (protection only ever removes targets).
    const auto &prot = fault::resolveInjectionPolicy(
        fault::PROTECTED_POLICY);
    const auto &unprot = fault::resolveInjectionPolicy(
        fault::UNPROTECTED_POLICY);
    std::vector<bool> protBitmap = prot.injectableBitmap(program, tagged);
    std::vector<bool> unprotBitmap =
        unprot.injectableBitmap(program, tagged);
    for (uint32_t i = 0; i < n; ++i)
        if (protBitmap[i] && !unprotBitmap[i])
            report(report_, "injectable", i,
                   "protected-policy site missing from the "
                   "unprotected set: " +
                       program.code[i].toString());
}

} // namespace etc::analysis
