#include "analysis/control_protection.hh"

#include <deque>

#include "support/logging.hh"

namespace etc::analysis {

using namespace isa;

namespace {

/**
 * The CVar transfer function: compute the set before instruction
 * @p ins given the set @p out after it.
 */
LocSet
transfer(const Instruction &ins, const LocSet &out,
         const ProtectionConfig &config)
{
    LocSet in = out;

    // An instruction defining a location in CVar removes it and adds
    // the locations used to compute it.
    bool defWasControl = false;
    if (auto def = ins.def(); def && out.test(*def)) {
        defWasControl = true;
        in.reset(*def);
    }
    auto addUses = [&] {
        for (RegId use : ins.uses())
            if (use != REG_ZERO)
                in.set(use);
    };
    if (defWasControl)
        addUses();

    // Instructions that directly influence control flow add their
    // operands: conditional branches, returns/indirect jumps (jr), and
    // indirect calls (jalr) -- a corrupted target is a control error.
    if (ins.isConditionalBranch() || ins.op == Opcode::JR ||
        ins.op == Opcode::JALR) {
        addUses();
    }

    // Optionally treat address operands as control-like: a corrupted
    // address turns a data access into a wild access.
    if (config.protectAddresses) {
        if (auto base = ins.addressUse(); base && *base != REG_ZERO)
            in.set(*base);
    }

    // Optional conservative memory tracking through one pseudo-
    // location. The paper performs no memory disambiguation, so this
    // defaults off (see ProtectionConfig).
    if (config.trackMemory) {
        if (ins.isLoad() && defWasControl) {
            // The loaded value influences control; any store could
            // have produced it.
            in.set(MEM_LOC);
        }
        if (ins.isStore() && out.test(MEM_LOC)) {
            // This store may feed a control-relevant load.
            if (ins.rd != REG_ZERO)
                in.set(ins.rd); // stored value
            if (ins.rs != REG_ZERO)
                in.set(ins.rs); // address selects the location
        }
    }
    return in;
}

} // namespace

ProtectionResult
computeControlProtection(const assembly::Program &program,
                         const FlowGraph &graph,
                         const ProtectionConfig &config)
{
    if (graph.interprocedural() != config.interprocedural)
        panic("computeControlProtection: FlowGraph built with "
              "interprocedural=", graph.interprocedural(),
              " but config wants ", config.interprocedural);

    const uint32_t n = program.size();
    ProtectionResult result;
    result.cvarIn.resize(n);
    result.cvarOut.resize(n);
    result.tagged.assign(n, false);

    std::deque<uint32_t> worklist;
    std::vector<bool> queued(n, false);
    for (uint32_t i = n; i-- > 0;) {
        worklist.push_back(i);
        queued[i] = true;
    }

    while (!worklist.empty()) {
        uint32_t i = worklist.front();
        worklist.pop_front();
        queued[i] = false;
        ++result.iterations;

        LocSet out;
        for (uint32_t s : graph.successors(i))
            out |= result.cvarIn[s];
        result.cvarOut[i] = out;

        LocSet in = transfer(program.code[i], out, config);
        if (in != result.cvarIn[i]) {
            result.cvarIn[i] = in;
            for (uint32_t p : graph.predecessors(i)) {
                if (!queued[p]) {
                    queued[p] = true;
                    worklist.push_back(p);
                }
            }
        }
    }

    // Tag pass: an ALU instruction whose destination is not in CVar at
    // its program point is low-reliability -- if its function is
    // eligible for tagging at all.
    std::vector<bool> eligible(n, config.eligibleFunctions.empty());
    if (!config.eligibleFunctions.empty()) {
        for (const auto &fn : program.functions) {
            if (config.eligibleFunctions.count(fn.name))
                for (uint32_t i = fn.begin; i < fn.end; ++i)
                    eligible[i] = true;
        }
    }

    for (uint32_t i = 0; i < n; ++i) {
        const auto &ins = program.code[i];
        if (!ins.isAlu())
            continue;
        ++result.numAlu;
        auto def = ins.def();
        if (!def)
            continue;
        if (!result.cvarOut[i].test(*def) && eligible[i]) {
            result.tagged[i] = true;
            ++result.numTagged;
        }
    }
    return result;
}

ProtectionResult
computeControlProtection(const assembly::Program &program,
                         const ProtectionConfig &config)
{
    FlowGraph graph(program, config.interprocedural);
    return computeControlProtection(program, graph, config);
}

} // namespace etc::analysis
