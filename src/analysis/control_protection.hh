/**
 * @file
 * The paper's static analysis (Section 3): identify arithmetic
 * instructions that do NOT influence control flow, so they may run in
 * a low-reliability environment while everything else stays protected.
 *
 * Formulated as a backward may-dataflow over the set "CVar" of
 * locations likely to influence control flow:
 *
 *  - a control instruction (branch, jr, bc1x) adds the locations it
 *    reads to CVar;
 *  - an instruction defining a location in CVar removes that location
 *    and adds the locations used by the definition;
 *  - any ALU instruction whose destination is not in CVar at its
 *    program point is tagged low-reliability.
 *
 * Options mirror the paper plus the ablations DESIGN.md calls out:
 *
 *  - interprocedural: cross procedure boundaries (paper: "we assume
 *    inter-procedural analysis");
 *  - protectAddresses: also treat memory-address operands as
 *    control-like. The paper's Section 3 propagates only from control
 *    instructions, so this defaults OFF; corrupted address arithmetic
 *    is one source of the paper's residual with-protection failures,
 *    and turning this on is one of our ablations;
 *  - trackMemory: conservative store-to-load tracking via a single
 *    memory pseudo-location. The paper performs *no* memory
 *    disambiguation -- its documented residual failure source -- so
 *    this defaults off and exists as an ablation;
 *  - eligibleFunctions: the paper lets the programmer mark which
 *    functions may tolerate data error; instructions outside eligible
 *    functions are never tagged. Empty = all functions eligible.
 */

#ifndef ETC_ANALYSIS_CONTROL_PROTECTION_HH
#define ETC_ANALYSIS_CONTROL_PROTECTION_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/bitvec.hh"
#include "analysis/flowgraph.hh"

namespace etc::analysis {

/** Configuration of the CVar analysis. */
struct ProtectionConfig
{
    bool interprocedural = true;
    bool protectAddresses = false;
    bool trackMemory = false;
    /** Functions whose data may tolerate errors; empty = all. */
    std::set<std::string> eligibleFunctions;
};

/** Output of the CVar analysis. */
struct ProtectionResult
{
    /** tagged[i]: instruction i is low-reliability (injectable). */
    std::vector<bool> tagged;

    /** CVar immediately after instruction i (join of successors). */
    std::vector<LocSet> cvarOut;

    /** CVar immediately before instruction i. */
    std::vector<LocSet> cvarIn;

    unsigned numTagged = 0;     //!< static count of tagged instructions
    unsigned numAlu = 0;        //!< static count of ALU instructions
    unsigned iterations = 0;    //!< worklist pops until fixpoint

    /** @return static fraction of ALU instructions that were tagged. */
    double
    taggedAluFraction() const
    {
        return numAlu ? static_cast<double>(numTagged) / numAlu : 0.0;
    }
};

/**
 * Run the CVar analysis over @p program.
 *
 * The FlowGraph must have been built with the same interprocedural
 * setting as @p config (checked; mismatch panics).
 */
ProtectionResult computeControlProtection(const assembly::Program &program,
                                          const FlowGraph &graph,
                                          const ProtectionConfig &config);

/** Convenience overload that builds the matching FlowGraph itself. */
ProtectionResult computeControlProtection(
    const assembly::Program &program,
    const ProtectionConfig &config = ProtectionConfig{});

} // namespace etc::analysis

#endif // ETC_ANALYSIS_CONTROL_PROTECTION_HH
