#include "analysis/reaching.hh"

#include <deque>

namespace etc::analysis {

using namespace isa;

ReachingResult
computeReaching(const assembly::Program &program, const FlowGraph &graph)
{
    const uint32_t n = program.size();
    ReachingResult result;
    result.defIndexOf.assign(n, -1);

    for (uint32_t i = 0; i < n; ++i) {
        const auto &ins = program.code[i];
        auto def = ins.def();
        if (def && *def != REG_ZERO) {
            result.defIndexOf[i] =
                static_cast<int32_t>(result.defSites.size());
            result.defSites.push_back(i);
        }
    }
    const size_t numDefs = result.defSites.size();

    // Per-register kill sets: all definitions of that register.
    std::vector<BitVec> defsOfReg(NUM_LOCS, BitVec(numDefs));
    for (size_t d = 0; d < numDefs; ++d) {
        auto reg = *program.code[result.defSites[d]].def();
        defsOfReg[reg].set(d);
    }

    result.in.assign(n, BitVec(numDefs));
    std::vector<BitVec> out(n, BitVec(numDefs));

    std::deque<uint32_t> worklist;
    std::vector<bool> queued(n, false);
    for (uint32_t i = 0; i < n; ++i) {
        worklist.push_back(i);
        queued[i] = true;
    }

    while (!worklist.empty()) {
        uint32_t i = worklist.front();
        worklist.pop_front();
        queued[i] = false;

        BitVec in(numDefs);
        for (uint32_t p : graph.predecessors(i))
            in.unionWith(out[p]);
        result.in[i] = in;

        BitVec newOut = in;
        if (result.defIndexOf[i] >= 0) {
            auto reg = *program.code[i].def();
            newOut.subtract(defsOfReg[reg]);
            newOut.set(static_cast<size_t>(result.defIndexOf[i]));
        }
        if (!(newOut == out[i])) {
            out[i] = std::move(newOut);
            for (uint32_t s : graph.successors(i)) {
                if (!queued[s]) {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
        }
    }
    return result;
}

} // namespace etc::analysis
