/**
 * @file
 * Blowfish: the genuine 16-round Feistel cipher (MiBench / Schneier
 * 1993) for the target ISA -- 18-word P array, four 256-entry S-boxes,
 * full key schedule (521 block encryptions), ECB encrypt of an ASCII
 * text followed by decrypt.
 *
 * Substitution note (DESIGN.md): the P/S initialisation constants are
 * drawn from a fixed deterministic pseudo-random stream instead of the
 * hexadecimal digits of pi; any nothing-up-my-sleeve constants
 * preserve the cipher's structure.
 *
 * Eligibility: the key schedule is *not* eligible for tagging -- it is
 * setup whose corruption garbles every block, exactly the kind of
 * function the paper's programmer annotation excludes. The per-block
 * encrypt/decrypt data path is eligible; S-box indices stay masked to
 * 8 bits (graceful data noise) while the index address arithmetic
 * remains the residual crash vector.
 *
 * Output stream: all ciphertext blocks, then all round-tripped
 * plaintext bytes. Fidelity (Table 1): percent of round-tripped
 * plaintext bytes equal to the original text.
 */

#ifndef ETC_WORKLOADS_BLOWFISH_HH
#define ETC_WORKLOADS_BLOWFISH_HH

#include <array>

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** Blowfish encrypt+decrypt workload. */
class BlowfishWorkload : public Workload
{
  public:
    struct Params
    {
        unsigned textBytes = 16384;     //!< multiple of 8
        uint64_t seed = 0xb10f;
        double byteThreshold = 0.90;
    };

    explicit BlowfishWorkload(Params params);

    std::string name() const override { return "blowfish"; }

    std::string
    fidelityMeasure() const override
    {
        return "% round-tripped plaintext bytes equal to the original";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Host-side reference: ciphertext stream then plaintext stream. */
    std::vector<uint8_t> referenceOutput() const;

    /** The original plaintext. */
    const std::vector<uint8_t> &plaintext() const { return text_; }

    static Params scaled(Scale scale);

  private:
    Params params_;
    std::vector<uint8_t> text_;
    std::array<uint32_t, 4> key_;
    std::vector<uint32_t> pInit_;   //!< 18 words
    std::vector<uint32_t> sInit_;   //!< 4 * 256 words
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_BLOWFISH_HH
