#include "workloads/blowfish.hh"

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

/** Host-side Blowfish used for the reference output and by tests. */
class HostBlowfish
{
  public:
    HostBlowfish(const std::vector<uint32_t> &pInit,
                 const std::vector<uint32_t> &sInit,
                 const std::array<uint32_t, 4> &key)
    {
        for (int i = 0; i < 18; ++i)
            p_[i] = pInit[i] ^ key[i % key.size()];
        for (int i = 0; i < 1024; ++i)
            s_[i] = sInit[i];
        uint32_t left = 0, right = 0;
        for (int i = 0; i < 18; i += 2) {
            encrypt(left, right);
            p_[i] = left;
            p_[i + 1] = right;
        }
        for (int i = 0; i < 1024; i += 2) {
            encrypt(left, right);
            s_[i] = left;
            s_[i + 1] = right;
        }
    }

    uint32_t
    f(uint32_t x) const
    {
        uint32_t h = s_[x >> 24] + s_[256 + ((x >> 16) & 0xff)];
        return (h ^ s_[512 + ((x >> 8) & 0xff)]) + s_[768 + (x & 0xff)];
    }

    void
    encrypt(uint32_t &left, uint32_t &right) const
    {
        for (int i = 0; i < 16; ++i) {
            left ^= p_[i];
            right ^= f(left);
            std::swap(left, right);
        }
        std::swap(left, right);
        right ^= p_[16];
        left ^= p_[17];
    }

    void
    decrypt(uint32_t &left, uint32_t &right) const
    {
        for (int i = 17; i > 1; --i) {
            left ^= p_[i];
            right ^= f(left);
            std::swap(left, right);
        }
        std::swap(left, right);
        right ^= p_[1];
        left ^= p_[0];
    }

  private:
    uint32_t p_[18];
    uint32_t s_[1024];
};

uint32_t
loadWordLe(const std::vector<uint8_t> &bytes, size_t at)
{
    uint32_t w = 0;
    for (int b = 0; b < 4; ++b)
        w |= static_cast<uint32_t>(bytes[at + b]) << (8 * b);
    return w;
}

void
pushWordLe(std::vector<uint8_t> &bytes, uint32_t w)
{
    for (int b = 0; b < 4; ++b)
        bytes.push_back(static_cast<uint8_t>(w >> (8 * b)));
}

} // namespace

BlowfishWorkload::BlowfishWorkload(Params params)
    : params_(params),
      text_(makeAsciiText(params.textBytes, params.seed))
{
    if (params_.textBytes == 0 || params_.textBytes % 8 != 0)
        fatal("blowfish: textBytes must be a positive multiple of 8");

    // Deterministic nothing-up-my-sleeve constants (substitute for the
    // hex digits of pi, see DESIGN.md).
    Rng constants(0xb10f15cull);
    pInit_.resize(18);
    for (auto &w : pInit_)
        w = constants.next32();
    sInit_.resize(1024);
    for (auto &w : sInit_)
        w = constants.next32();
    Rng keyRng(params_.seed ^ 0x8badf00dull);
    for (auto &w : key_)
        w = keyRng.next32();

    const auto textLen = static_cast<int32_t>(params_.textBytes);

    ProgramBuilder b;
    {
        std::vector<int32_t> pWords;
        for (int i = 0; i < 18; ++i)
            pWords.push_back(static_cast<int32_t>(
                pInit_[i] ^ key_[i % key_.size()]));
        b.dataWords("p_arr", pWords);
    }
    {
        std::vector<int32_t> sWords(sInit_.begin(), sInit_.end());
        b.dataWords("s_arr", sWords);
    }
    b.dataBytes("text", text_);
    b.dataSpace("cipher", params_.textBytes);

    // ---- main ---------------------------------------------------------
    b.beginFunction("main");
    {
        b.call("bf_key_schedule");
        // Encrypt the text into the cipher buffer, streaming each block.
        auto encLoop = b.newLabel();
        b.la(REG_S0, "text");
        b.addi(REG_S1, REG_S0, textLen);
        b.la(REG_S2, "cipher");
        b.bind(encLoop);
        b.lw(REG_A0, 0, REG_S0);
        b.lw(REG_A1, 4, REG_S0);
        b.call("bf_encrypt");
        b.sw(REG_V0, 0, REG_S2);
        b.sw(REG_V1, 4, REG_S2);
        b.outw(REG_V0);
        b.outw(REG_V1);
        b.addi(REG_S0, REG_S0, 8);
        b.addi(REG_S2, REG_S2, 8);
        b.blt(REG_S0, REG_S1, encLoop);
        // Decrypt the cipher buffer, streaming the plaintext.
        auto decLoop = b.newLabel();
        b.la(REG_S0, "cipher");
        b.addi(REG_S1, REG_S0, textLen);
        b.bind(decLoop);
        b.lw(REG_A0, 0, REG_S0);
        b.lw(REG_A1, 4, REG_S0);
        b.call("bf_decrypt");
        b.outw(REG_V0);
        b.outw(REG_V1);
        b.addi(REG_S0, REG_S0, 8);
        b.blt(REG_S0, REG_S1, decLoop);
        b.halt();
    }
    b.endFunction();

    // ---- bf_f(a0 = x) -> v0 -------------------------------------------
    // Uses t0..t2 only; indices are masked to 8 bits so corrupted data
    // stays an in-bounds S-box entry (the address *arithmetic* remains
    // the taggable crash vector).
    //
    // Two copies are emitted: the data-path copy ("bf_f") and the key
    // schedule's inlined copy ("bf_f_ks"). Compilers inline the round
    // function into BF_set_key; keeping the copies as separate
    // functions lets the paper's function-level eligibility annotation
    // exclude the setup path, exactly as a programmer annotating
    // MiBench would.
    auto emitF = [&](const std::string &name) {
    b.beginFunction(name);
    {
        b.la(REG_T1, "s_arr");
        b.srl(REG_T0, REG_A0, 24);
        b.sll(REG_T0, REG_T0, 2);
        b.add(REG_T0, REG_T1, REG_T0);
        b.lw(REG_T0, 0, REG_T0);            // S0[x >> 24]
        b.srl(REG_T2, REG_A0, 16);
        b.andi(REG_T2, REG_T2, 0xff);
        b.sll(REG_T2, REG_T2, 2);
        b.add(REG_T2, REG_T1, REG_T2);
        b.lw(REG_T2, 1024, REG_T2);         // S1[(x >> 16) & 0xff]
        b.add(REG_T0, REG_T0, REG_T2);
        b.srl(REG_T2, REG_A0, 8);
        b.andi(REG_T2, REG_T2, 0xff);
        b.sll(REG_T2, REG_T2, 2);
        b.add(REG_T2, REG_T1, REG_T2);
        b.lw(REG_T2, 2048, REG_T2);         // S2[(x >> 8) & 0xff]
        b.xor_(REG_T0, REG_T0, REG_T2);
        b.andi(REG_T2, REG_A0, 0xff);
        b.sll(REG_T2, REG_T2, 2);
        b.add(REG_T2, REG_T1, REG_T2);
        b.lw(REG_T2, 3072, REG_T2);         // S3[x & 0xff]
        b.add(REG_V0, REG_T0, REG_T2);
        b.ret();
    }
    b.endFunction();
    };
    emitF("bf_f");
    emitF("bf_f_ks");

    // Shared Feistel loop emitter. Direction: encrypt walks P[0..15]
    // ascending, decrypt walks P[17..2] descending; the final
    // whitening uses P[16],P[17] (encrypt) or P[1],P[0] (decrypt).
    // Block state lives in a2 (L), a3 (R); cursor in t8; limit in t9
    // (bf_f leaves all of those untouched).
    auto emitBlockFunction = [&](const std::string &name,
                                 const std::string &fName, bool encrypt) {
        b.beginFunction(name);
        auto loop = b.newLabel();
        b.addi(REG_SP, REG_SP, -8);
        b.sw(REG_RA, 0, REG_SP);
        b.move(REG_A2, REG_A0);
        b.move(REG_A3, REG_A1);
        b.la(REG_T8, "p_arr");
        if (encrypt) {
            b.addi(REG_T9, REG_T8, 64);     // one past P[15]
        } else {
            b.addi(REG_T9, REG_T8, 8);      // one past P[2], descending
            b.addi(REG_T8, REG_T8, 68);     // start at P[17]
        }
        b.bind(loop);
        b.lw(REG_T4, 0, REG_T8);
        b.xor_(REG_A2, REG_A2, REG_T4);     // L ^= P[i]
        b.move(REG_A0, REG_A2);
        b.call(fName);
        b.xor_(REG_A3, REG_A3, REG_V0);     // R ^= F(L)
        b.move(REG_T4, REG_A2);             // swap L, R
        b.move(REG_A2, REG_A3);
        b.move(REG_A3, REG_T4);
        if (encrypt) {
            b.addi(REG_T8, REG_T8, 4);
            b.blt(REG_T8, REG_T9, loop);
        } else {
            b.addi(REG_T8, REG_T8, -4);
            b.bge(REG_T8, REG_T9, loop);
        }
        b.move(REG_T4, REG_A2);             // undo the extra swap
        b.move(REG_A2, REG_A3);
        b.move(REG_A3, REG_T4);
        b.la(REG_T8, "p_arr");
        if (encrypt) {
            b.lw(REG_T4, 64, REG_T8);       // P[16]
            b.xor_(REG_A3, REG_A3, REG_T4);
            b.lw(REG_T4, 68, REG_T8);       // P[17]
            b.xor_(REG_A2, REG_A2, REG_T4);
        } else {
            b.lw(REG_T4, 4, REG_T8);        // P[1]
            b.xor_(REG_A3, REG_A3, REG_T4);
            b.lw(REG_T4, 0, REG_T8);        // P[0]
            b.xor_(REG_A2, REG_A2, REG_T4);
        }
        b.move(REG_V0, REG_A2);
        b.move(REG_V1, REG_A3);
        b.lw(REG_RA, 0, REG_SP);
        b.addi(REG_SP, REG_SP, 8);
        b.ret();
        b.endFunction();
    };
    emitBlockFunction("bf_encrypt", "bf_f", true);
    emitBlockFunction("bf_decrypt", "bf_f", false);
    emitBlockFunction("bf_encrypt_ks", "bf_f_ks", true);

    // ---- bf_key_schedule ------------------------------------------------
    // P was already XORed with the key at build time (data image); the
    // 521 chained block encryptions that replace P and S happen here.
    // s5 = L, s6 = R, s7 = destination cursor.
    b.beginFunction("bf_key_schedule");
    {
        b.addi(REG_SP, REG_SP, -8);
        b.sw(REG_RA, 0, REG_SP);
        b.li(REG_S5, 0);
        b.li(REG_S6, 0);
        auto pLoop = b.newLabel();
        b.la(REG_S7, "p_arr");
        b.bind(pLoop);
        b.move(REG_A0, REG_S5);
        b.move(REG_A1, REG_S6);
        b.call("bf_encrypt_ks");
        b.move(REG_S5, REG_V0);
        b.move(REG_S6, REG_V1);
        b.sw(REG_S5, 0, REG_S7);
        b.sw(REG_S6, 4, REG_S7);
        b.addi(REG_S7, REG_S7, 8);
        b.la(REG_AT, "p_arr"); // limit via $at to keep s-regs minimal
        b.addi(REG_AT, REG_AT, 72);
        b.blt(REG_S7, REG_AT, pLoop);
        auto sLoop = b.newLabel();
        b.la(REG_S7, "s_arr");
        b.bind(sLoop);
        b.move(REG_A0, REG_S5);
        b.move(REG_A1, REG_S6);
        b.call("bf_encrypt_ks");
        b.move(REG_S5, REG_V0);
        b.move(REG_S6, REG_V1);
        b.sw(REG_S5, 0, REG_S7);
        b.sw(REG_S6, 4, REG_S7);
        b.addi(REG_S7, REG_S7, 8);
        b.la(REG_AT, "s_arr");
        b.addi(REG_AT, REG_AT, 4096);
        b.blt(REG_S7, REG_AT, sLoop);
        b.lw(REG_RA, 0, REG_SP);
        b.addi(REG_SP, REG_SP, 8);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
BlowfishWorkload::eligibleFunctions() const
{
    // The key schedule is deliberately excluded (setup code).
    return {"main", "bf_f", "bf_encrypt", "bf_decrypt"};
}

FidelityScore
BlowfishWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                                const std::vector<uint8_t> &test) const
{
    // Score only the plaintext half of the stream (paper Table 1:
    // percent of bytes matching the original input).
    auto tail = [&](const std::vector<uint8_t> &stream) {
        size_t keep = std::min<size_t>(params_.textBytes, stream.size());
        return std::vector<uint8_t>(stream.end() - keep, stream.end());
    };
    FidelityScore score;
    score.value = fidelity::byteSimilarity(tail(golden), tail(test));
    score.acceptable = score.value >= params_.byteThreshold;
    score.unit = "fraction plaintext bytes correct";
    return score;
}

std::vector<uint8_t>
BlowfishWorkload::referenceOutput() const
{
    HostBlowfish cipher(std::vector<uint32_t>(pInit_.begin(), pInit_.end()),
                        sInit_, key_);
    std::vector<uint8_t> cipherStream, plainStream;
    for (size_t at = 0; at < text_.size(); at += 8) {
        uint32_t left = loadWordLe(text_, at);
        uint32_t right = loadWordLe(text_, at + 4);
        cipher.encrypt(left, right);
        pushWordLe(cipherStream, left);
        pushWordLe(cipherStream, right);
    }
    for (size_t at = 0; at < cipherStream.size(); at += 8) {
        uint32_t left = loadWordLe(cipherStream, at);
        uint32_t right = loadWordLe(cipherStream, at + 4);
        cipher.decrypt(left, right);
        pushWordLe(plainStream, left);
        pushWordLe(plainStream, right);
    }
    std::vector<uint8_t> out = cipherStream;
    out.insert(out.end(), plainStream.begin(), plainStream.end());
    return out;
}

BlowfishWorkload::Params
BlowfishWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test)
        params.textBytes = 512;
    return params;
}

} // namespace etc::workloads
