#include "workloads/inputs.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace etc::workloads {

GrayImage
makeShapesImage(unsigned width, unsigned height, uint64_t seed)
{
    Rng rng(seed);
    GrayImage img;
    img.width = width;
    img.height = height;
    img.pixels.resize(static_cast<size_t>(width) * height);

    // Gradient background with mild noise.
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            int base = 40 + static_cast<int>(120u * x / width);
            base += static_cast<int>(rng.range(-4, 4));
            img.pixels[y * width + x] =
                static_cast<uint8_t>(std::clamp(base, 0, 255));
        }
    }
    // A bright rectangle.
    unsigned rx0 = width / 6, ry0 = height / 5;
    unsigned rx1 = width / 2, ry1 = height / 2;
    for (unsigned y = ry0; y < ry1; ++y)
        for (unsigned x = rx0; x < rx1; ++x)
            img.pixels[y * width + x] = 220;
    // A dark disc.
    int cx = static_cast<int>(3 * width / 4);
    int cy = static_cast<int>(2 * height / 3);
    int radius = static_cast<int>(std::min(width, height) / 5);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            int dx = static_cast<int>(x) - cx;
            int dy = static_cast<int>(y) - cy;
            if (dx * dx + dy * dy <= radius * radius)
                img.pixels[y * width + x] = 25;
        }
    }
    return img;
}

std::vector<GrayImage>
makeVideo(unsigned width, unsigned height, unsigned frames, uint64_t seed)
{
    std::vector<GrayImage> video;
    video.reserve(frames);
    GrayImage base = makeShapesImage(width, height, seed);
    for (unsigned f = 0; f < frames; ++f) {
        GrayImage frame = base;
        // Moving bright square, one pixel per frame, wrapping.
        unsigned size = std::max(2u, width / 8);
        unsigned px = (2 + f) % (width - size);
        unsigned py = (height / 2 + f / 2) % (height - size);
        for (unsigned y = py; y < py + size; ++y)
            for (unsigned x = px; x < px + size; ++x)
                frame.pixels[y * width + x] = 245;
        video.push_back(std::move(frame));
    }
    return video;
}

std::vector<int16_t>
makeSpeech(unsigned samples, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int16_t> out(samples);
    double phase1 = rng.uniform() * 6.28318;
    double phase2 = rng.uniform() * 6.28318;
    for (unsigned i = 0; i < samples; ++i) {
        double t = static_cast<double>(i);
        // Slow envelope mimicking syllable energy.
        double envelope = 0.35 + 0.65 * 0.5 *
            (1.0 + std::sin(t * 0.004 + phase2));
        double fundamental = std::sin(t * 0.11 + phase1);
        double harmonic2 = 0.45 * std::sin(t * 0.22 + phase1 * 1.7);
        double harmonic3 = 0.20 * std::sin(t * 0.33 + phase1 * 0.4);
        double noise = 0.02 * (rng.uniform() * 2.0 - 1.0);
        double value =
            9000.0 * envelope * (fundamental + harmonic2 + harmonic3) +
            600.0 * noise;
        out[i] = static_cast<int16_t>(
            std::clamp(value, -32768.0, 32767.0));
    }
    return out;
}

std::vector<uint8_t>
makeAsciiText(unsigned length, uint64_t seed)
{
    static const char words[] =
        "the quick brown fox jumps over a lazy dog while seventy "
        "vehicles keep their schedule and the encoder hums along ";
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(length);
    size_t cursor = rng.below(sizeof(words) - 1);
    while (out.size() < length) {
        out.push_back(static_cast<uint8_t>(words[cursor]));
        cursor = (cursor + 1) % (sizeof(words) - 1);
        // Occasionally jump to keep the text aperiodic.
        if (rng.chance(0.02))
            cursor = rng.below(sizeof(words) - 1);
    }
    return out;
}

FlowNetwork
makeScheduleNetwork(unsigned trips, uint64_t seed)
{
    if (trips < 2)
        fatal("makeScheduleNetwork: need at least 2 trips");
    Rng rng(seed);
    FlowNetwork net;
    // Nodes: 0 = depot-out (source), 1..trips = trips,
    // trips+1 = depot-in (sink).
    net.nodes = trips + 2;
    unsigned sink = trips + 1;

    // Source -> each trip: a vehicle may start its day with any trip.
    for (unsigned t = 1; t <= trips; ++t) {
        net.edges.push_back({0, t, 1,
                             static_cast<int32_t>(rng.range(4, 14))});
    }
    // Trip -> later trips it can chain to (deadhead cost).
    for (unsigned t = 1; t <= trips; ++t) {
        for (unsigned u = t + 1; u <= std::min(trips, t + 4); ++u) {
            if (rng.chance(0.75)) {
                net.edges.push_back(
                    {t, u, 1, static_cast<int32_t>(rng.range(1, 9))});
            }
        }
    }
    // Each trip -> sink: the vehicle returns to the depot.
    for (unsigned t = 1; t <= trips; ++t) {
        net.edges.push_back({t, sink, 1,
                             static_cast<int32_t>(rng.range(4, 14))});
    }
    // Also a bypass edge so max-flow saturates cleanly even if some
    // chains are missing.
    net.edges.push_back({0, sink, static_cast<int32_t>(trips), 40});
    return net;
}

ThermalScene
makeThermalScene(unsigned width, unsigned height, unsigned numTemplates,
                 uint64_t seed)
{
    Rng rng(seed);
    ThermalScene scene;
    scene.width = width;
    scene.height = height;
    scene.image.resize(static_cast<size_t>(width) * height);

    // Learned templates: distinct smooth blobs/bars, values in [0,1].
    scene.templates.resize(numTemplates);
    for (unsigned t = 0; t < numTemplates; ++t) {
        auto &tpl = scene.templates[t];
        tpl.resize(64);
        for (unsigned y = 0; y < 8; ++y) {
            for (unsigned x = 0; x < 8; ++x) {
                double value;
                switch (t % 4) {
                  case 0: // centered blob
                    value = std::exp(-((x - 3.5) * (x - 3.5) +
                                       (y - 3.5) * (y - 3.5)) / 6.0);
                    break;
                  case 1: // vertical bar
                    value = (x >= 3 && x <= 4) ? 1.0 : 0.15;
                    break;
                  case 2: // diagonal
                    value = (std::abs(static_cast<int>(x) -
                                      static_cast<int>(y)) <= 1)
                                ? 1.0
                                : 0.1;
                    break;
                  default: // corner gradient
                    value = (x + y) / 14.0;
                    break;
                }
                value += 0.03 * (rng.uniform() - 0.5);
                tpl[y * 8 + x] =
                    static_cast<float>(std::clamp(value, 0.0, 1.0));
            }
        }
    }

    // Background: low-level thermal noise.
    for (auto &px : scene.image)
        px = static_cast<float>(0.08 + 0.06 * rng.uniform());

    // Embed the target template at a window-aligned position.
    scene.targetTemplate = static_cast<unsigned>(rng.below(numTemplates));
    unsigned maxWx = (width - 8) / 8;
    unsigned maxWy = (height - 8) / 8;
    scene.targetX = 8 * static_cast<unsigned>(rng.below(maxWx + 1));
    scene.targetY = 8 * static_cast<unsigned>(rng.below(maxWy + 1));
    const auto &target = scene.templates[scene.targetTemplate];
    for (unsigned y = 0; y < 8; ++y) {
        for (unsigned x = 0; x < 8; ++x) {
            float &px = scene.image[(scene.targetY + y) * width +
                                    (scene.targetX + x)];
            px = std::clamp(0.15f + 0.8f * target[y * 8 + x], 0.0f, 1.0f);
        }
    }
    return scene;
}

} // namespace etc::workloads
