/**
 * @file
 * Mcf: single-depot vehicle scheduling as min-cost flow (SPEC 2000
 * 181.mcf), for the target ISA.
 *
 * Substitution note (DESIGN.md): the network simplex solver is
 * replaced by successive shortest paths (Bellman-Ford based) on a
 * layered depot->trips->depot network -- the same problem with the
 * same optimal answer and the same control-dominated structure: every
 * relaxation and augmentation decision is a branch on values that live
 * in memory (dist / residual capacities / parent edges).
 *
 * That memory round-trip is precisely the paper's residual failure
 * channel: the arithmetic that *produces* a stored capacity or
 * distance is tagged (the def-use chain is broken at the store), yet
 * the loaded value later feeds branches -- so corrupted trials yield
 * incomplete/suboptimal schedules, occasionally cycling parent walks
 * ("infinite execution") or wild indexed loads (crashes), matching
 * Table 2's mcf rows. The taggable fraction is small (Table 3: 8.9 %).
 *
 * Output stream: total flow word, total cost word, then the flow on
 * every original edge. Fidelity (Table 1): schedule correctness --
 * optimal cost & flow plus feasibility (conservation / capacity)
 * verified by the harness; the score reports % extra cost.
 */

#ifndef ETC_WORKLOADS_MCF_HH
#define ETC_WORKLOADS_MCF_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** Min-cost-flow vehicle-scheduling workload. */
class McfWorkload : public Workload
{
  public:
    struct Params
    {
        unsigned trips = 32;
        uint64_t seed = 0x3cf0;
    };

    /** A parsed solver result (from the output stream). */
    struct Solution
    {
        bool wellFormed = false; //!< stream had the expected size
        int32_t flow = 0;
        int32_t cost = 0;
        std::vector<int32_t> edgeFlows;
    };

    explicit McfWorkload(Params params);

    std::string name() const override { return "mcf"; }

    std::string
    fidelityMeasure() const override
    {
        return "% extra cost vs optimal schedule; correctness = optimal "
               "+ feasible";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Parse an output stream into a Solution. */
    Solution parseSolution(const std::vector<uint8_t> &stream) const;

    /** Check conservation and capacity bounds of a parsed solution. */
    bool feasible(const Solution &solution) const;

    /** Host-side optimal (flow, cost) via the same SSP algorithm. */
    std::pair<int32_t, int32_t> referenceOptimum() const;

    const FlowNetwork &network() const { return network_; }

    static Params scaled(Scale scale);

  private:
    Params params_;
    FlowNetwork network_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_MCF_HH
