#include "workloads/art.hh"

#include <cmath>
#include <cstring>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

constexpr float EPS = 1e-6f;

float
bitsToFloat(int32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

} // namespace

ArtWorkload::ArtWorkload(Params params)
    : params_(params),
      scene_(makeThermalScene(params.width, params.height,
                              params.numTemplates, params.seed))
{
    if (params_.width % 8 != 0 || params_.height % 8 != 0)
        fatal("art: image dimensions must be multiples of 8");

    const auto width = static_cast<int32_t>(params_.width);
    const auto height = static_cast<int32_t>(params_.height);
    const auto numTemplates = static_cast<int32_t>(params_.numTemplates);
    const int32_t rowBytes = 4 * width;

    // Pre-normalized template magnitudes, computed once and shared
    // verbatim by the ISA program and the host reference.
    std::vector<float> tnorms(params_.numTemplates);
    for (unsigned t = 0; t < params_.numTemplates; ++t) {
        float sum = 0.0f;
        for (float v : scene_.templates[t])
            sum += v * v;
        tnorms[t] = std::sqrt(sum);
    }

    ProgramBuilder b;
    b.dataFloats("timage", scene_.image);
    // Template records: 64 weights followed by the precomputed norm,
    // so the norm is reachable with an immediate offset from the
    // record pointer (no taggable address arithmetic anywhere in the
    // kernel -- ART must never crash, per the paper).
    constexpr int32_t TPL_STRIDE = (64 + 1) * 4;
    {
        std::vector<float> all;
        all.reserve(static_cast<size_t>(numTemplates) * 65);
        for (unsigned t = 0; t < params_.numTemplates; ++t) {
            all.insert(all.end(), scene_.templates[t].begin(),
                       scene_.templates[t].end());
            all.push_back(tnorms[t]);
        }
        b.dataFloats("templates", all);
    }

    const RegId F0 = fpReg(0), F1 = fpReg(1), F2 = fpReg(2),
                F3 = fpReg(3), F4 = fpReg(4), F5 = fpReg(5),
                F6 = fpReg(6), F7 = fpReg(7), F8 = fpReg(8);

    b.beginFunction("main");
    {
        b.call("art_scan");
        b.halt();
    }
    b.endFunction();

    // ---- art_scan (leaf) -------------------------------------------------
    // s0 = window row base, s1 = window pointer, s2 = row window limit,
    // s4 = template record cursor, s5 = template records end,
    // t9 = template index, t8 = window index, s6 = global best bits,
    // s7 = global best template, a3 = global best window,
    // v0/v1 = window best bits/tpl.
    //
    // Both 8x8 reductions are fully unrolled with immediate offsets
    // off s1 and s4 -- the vectorized-NN-kernel idiom. Every load
    // base is a loop-compared induction pointer, so the CVar analysis
    // protects all addresses naturally and no data error can produce
    // a wild or misaligned access: ART completes every trial, exactly
    // as the paper reports.
    b.beginFunction("art_scan");
    {
        auto rowLoop = b.newLabel();
        auto colLoop = b.newLabel();
        auto tplLoop = b.newLabel();

        b.li(REG_S6, 0);
        b.li(REG_S7, 0);
        b.li(REG_A3, 0);
        b.li(REG_T8, 0);
        b.la(REG_S0, "timage");
        // One past the last window row base.
        b.la(REG_AT, "timage");
        b.addi(REG_A2, REG_AT, rowBytes * height);

        b.bind(rowLoop);
        b.move(REG_S1, REG_S0);
        b.addi(REG_S2, REG_S0, rowBytes);     // row's window limit

        b.bind(colLoop);
        // Window norm: f0 = sum img^2 over the 8x8 window (unrolled).
        b.lif(F0, 0.0f);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 8; ++c) {
                b.lwc1(F1, r * rowBytes + 4 * c, REG_S1);
                b.muls(F2, F1, F1);
                b.adds(F0, F0, F2);
            }
        }
        b.sqrts(F4, F0);                      // window magnitude
        // Template loop with branch-free winner selection; the loop
        // condition compares the record cursor itself.
        b.li(REG_V0, 0);                      // best resonance bits
        b.li(REG_V1, 0);                      // best template
        b.li(REG_T9, 0);
        b.la(REG_S4, "templates");
        b.addi(REG_S5, REG_S4, TPL_STRIDE * numTemplates);
        b.bind(tplLoop);
        b.lif(F0, 0.0f);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 8; ++c) {
                b.lwc1(F1, r * rowBytes + 4 * c, REG_S1);
                b.lwc1(F2, 4 * (r * 8 + c), REG_S4);
                b.muls(F3, F1, F2);
                b.adds(F0, F0, F3);
            }
        }
        // resonance = dot / (|window| * |template| + eps); the norm
        // sits at the end of the record (immediate offset).
        b.lwc1(F5, 64 * 4, REG_S4);
        b.muls(F8, F4, F5);
        b.lif(F7, EPS);
        b.adds(F8, F8, F7);
        b.divs(F6, F0, F8);
        // Predicated winner update via positive-float bit compare.
        b.mfc1(REG_T3, F6);
        b.slt(REG_T4, REG_V0, REG_T3);
        b.sub(REG_T5, REG_T3, REG_V0);
        b.mul(REG_T5, REG_T5, REG_T4);
        b.add(REG_V0, REG_V0, REG_T5);
        b.sub(REG_T5, REG_T9, REG_V1);
        b.mul(REG_T5, REG_T5, REG_T4);
        b.add(REG_V1, REG_V1, REG_T5);
        b.addi(REG_T9, REG_T9, 1);
        b.addi(REG_S4, REG_S4, TPL_STRIDE);   // next record
        b.blt(REG_S4, REG_S5, tplLoop);
        // Stream the window result.
        b.outw(REG_V1);
        b.outw(REG_V0);
        // Predicated global-best update.
        b.slt(REG_T4, REG_S6, REG_V0);
        b.sub(REG_T5, REG_V0, REG_S6);
        b.mul(REG_T5, REG_T5, REG_T4);
        b.add(REG_S6, REG_S6, REG_T5);
        b.sub(REG_T5, REG_V1, REG_S7);
        b.mul(REG_T5, REG_T5, REG_T4);
        b.add(REG_S7, REG_S7, REG_T5);
        b.sub(REG_T5, REG_T8, REG_A3);
        b.mul(REG_T5, REG_T5, REG_T4);
        b.add(REG_A3, REG_A3, REG_T5);
        b.addi(REG_T8, REG_T8, 1);
        // Next window column (stride 8 pixels = 32 bytes); the last
        // window starts 28 bytes before the row limit.
        b.addi(REG_S1, REG_S1, 32);
        b.addi(REG_AT, REG_S2, -28);
        b.blt(REG_S1, REG_AT, colLoop);
        // Next window row (stride 8 rows).
        b.addi(REG_S0, REG_S0, 8 * rowBytes);
        b.addi(REG_AT, REG_A2, -(7 * rowBytes));
        b.blt(REG_S0, REG_AT, rowLoop);
        // Final record: window, template, confidence bits, vigilance.
        b.outw(REG_A3);
        b.outw(REG_S7);
        b.outw(REG_S6);
        b.lif(F7, params_.vigilance);
        b.mfc1(REG_T0, F7);
        b.slt(REG_T1, REG_T0, REG_S6);
        b.outw(REG_T1);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
ArtWorkload::eligibleFunctions() const
{
    return {"main", "art_scan"};
}

ArtWorkload::Recognition
ArtWorkload::parseRecognition(const std::vector<uint8_t> &stream) const
{
    Recognition rec;
    auto words = fidelity::asInt32(stream);
    const unsigned windows =
        (params_.width / 8) * (params_.height / 8);
    if (words.size() != 2 * windows + 4)
        return rec;
    rec.wellFormed = true;
    rec.bestWindow = words[2 * windows];
    rec.bestTemplate = words[2 * windows + 1];
    rec.confidence = bitsToFloat(words[2 * windows + 2]);
    rec.vigilancePassed = words[2 * windows + 3] != 0;
    return rec;
}

FidelityScore
ArtWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                           const std::vector<uint8_t> &test) const
{
    Recognition ref = parseRecognition(golden);
    Recognition got = parseRecognition(test);
    FidelityScore score;
    score.unit = "% confidence error";
    if (!got.wellFormed || !ref.wellFormed) {
        score.value = 100.0;
        score.acceptable = false;
        return score;
    }
    if (!std::isfinite(got.confidence)) {
        score.value = 100.0;
        score.acceptable = false;
        return score;
    }
    double confErr =
        ref.confidence != 0.0f
            ? 100.0 * std::fabs(got.confidence - ref.confidence) /
                  std::fabs(ref.confidence)
            : 0.0;
    score.value = std::min(confErr, 100.0);
    score.acceptable = got.bestTemplate == ref.bestTemplate &&
                       got.bestWindow == ref.bestWindow &&
                       confErr <= 100.0 * params_.confidenceTolerance;
    return score;
}

ArtWorkload::Recognition
ArtWorkload::referenceRecognition() const
{
    const unsigned width = params_.width;
    std::vector<float> tnorms(params_.numTemplates);
    for (unsigned t = 0; t < params_.numTemplates; ++t) {
        float sum = 0.0f;
        for (float v : scene_.templates[t])
            sum += v * v;
        tnorms[t] = std::sqrt(sum);
    }

    Recognition rec;
    rec.wellFormed = true;
    int32_t gBits = 0;
    int32_t gTpl = 0, gWin = 0;
    int32_t windowIndex = 0;
    for (unsigned wy = 0; wy + 8 <= params_.height; wy += 8) {
        for (unsigned wx = 0; wx + 8 <= width; wx += 8) {
            float norm2 = 0.0f;
            for (unsigned r = 0; r < 8; ++r)
                for (unsigned c = 0; c < 8; ++c) {
                    float v = scene_.image[(wy + r) * width + wx + c];
                    norm2 += v * v;
                }
            float inorm = std::sqrt(norm2);
            int32_t bestBits = 0;
            int32_t bestTpl = 0;
            for (unsigned t = 0; t < params_.numTemplates; ++t) {
                float dot = 0.0f;
                for (unsigned r = 0; r < 8; ++r)
                    for (unsigned c = 0; c < 8; ++c)
                        dot += scene_.image[(wy + r) * width + wx + c] *
                               scene_.templates[t][r * 8 + c];
                float res = dot / (inorm * tnorms[t] + EPS);
                int32_t bits;
                std::memcpy(&bits, &res, sizeof(bits));
                if (bestBits < bits) {
                    bestBits = bits;
                    bestTpl = static_cast<int32_t>(t);
                }
            }
            if (gBits < bestBits) {
                gBits = bestBits;
                gTpl = bestTpl;
                gWin = windowIndex;
            }
            ++windowIndex;
        }
    }
    rec.bestWindow = gWin;
    rec.bestTemplate = gTpl;
    rec.confidence = bitsToFloat(gBits);
    int32_t vigBits;
    float vig = params_.vigilance;
    std::memcpy(&vigBits, &vig, sizeof(vigBits));
    rec.vigilancePassed = vigBits < gBits;
    return rec;
}

ArtWorkload::Params
ArtWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test) {
        params.width = 32;
        params.height = 32;
    }
    return params;
}

} // namespace etc::workloads
