#include "workloads/mpeg.hh"

#include <algorithm>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

MpegWorkload::FrameType
MpegWorkload::frameType(unsigned index)
{
    if (index % 12 == 0)
        return FrameType::I;
    if (index % 3 == 0)
        return FrameType::P;
    return FrameType::B;
}

MpegWorkload::MpegWorkload(Params params)
    : params_(params),
      video_(makeVideo(params.width, params.height, params.frames,
                       params.seed))
{
    if (params_.frames < 2)
        fatal("mpeg: need at least 2 frames");

    const auto frameBytes =
        static_cast<int32_t>(params_.width * params_.height);
    const auto frames = static_cast<int32_t>(params_.frames);

    ProgramBuilder b;
    {
        std::vector<uint8_t> all;
        all.reserve(static_cast<size_t>(frameBytes) * params_.frames);
        for (const auto &frame : video_)
            all.insert(all.end(), frame.pixels.begin(),
                       frame.pixels.end());
        b.dataBytes("video", all);
    }
    b.dataSpace("mpeg_enc",
                static_cast<uint32_t>(frameBytes) * params_.frames);
    b.dataSpace("enc_ref", static_cast<uint32_t>(frameBytes));
    b.dataSpace("dec_ref", static_cast<uint32_t>(frameBytes));

    b.beginFunction("main");
    {
        b.call("mpeg_encode");
        b.call("mpeg_decode");
        b.halt();
    }
    b.endFunction();

    // Predicated clamp of t5 to [lo, hi]; uses t8, t9, a0.
    auto emitClampT5 = [&](int32_t lo, int32_t hi) {
        b.li(REG_T8, hi);
        b.slt(REG_A0, REG_T8, REG_T5);
        b.sub(REG_T9, REG_T8, REG_T5);
        b.mul(REG_T9, REG_T9, REG_A0);
        b.add(REG_T5, REG_T5, REG_T9);
        b.li(REG_T8, lo);
        b.slt(REG_A0, REG_T5, REG_T8);
        b.sub(REG_T9, REG_T8, REG_T5);
        b.mul(REG_T9, REG_T9, REG_A0);
        b.add(REG_T5, REG_T5, REG_T9);
    };

    // ---- mpeg_encode ----------------------------------------------------
    // s0 = frame index, s2 = video cursor, s3 = encoded cursor.
    b.beginFunction("mpeg_encode");
    {
        auto frameLoop = b.newLabel();
        auto typeP = b.newLabel();
        auto typeB = b.newLabel();
        auto nextFrame = b.newLabel();
        auto iLoop = b.newLabel();
        auto pLoop = b.newLabel();
        auto bLoop = b.newLabel();

        b.li(REG_S0, 0);
        b.la(REG_S2, "video");
        b.la(REG_S3, "mpeg_enc");
        b.bind(frameLoop);
        // Pixel-loop registers: t1 = src, t2 = src end, t3 = enc,
        // t4 = reference.
        b.move(REG_T1, REG_S2);
        b.addi(REG_T2, REG_S2, frameBytes);
        b.move(REG_T3, REG_S3);
        b.la(REG_T4, "enc_ref");
        // Frame-type dispatch (branchy: control).
        b.li(REG_T0, 12);
        b.rem(REG_T0, REG_S0, REG_T0);
        b.beq(REG_T0, REG_ZERO, iLoop);
        b.li(REG_T0, 3);
        b.rem(REG_T0, REG_S0, REG_T0);
        b.beq(REG_T0, REG_ZERO, typeP);
        b.j(typeB);

        // I frame: code = pix >> 2; recon = (code << 2) + 2.
        b.bind(iLoop);
        b.lbu(REG_T5, 0, REG_T1);
        b.sra(REG_T6, REG_T5, 2);
        b.sb(REG_T6, 0, REG_T3);
        b.sll(REG_T6, REG_T6, 2);
        b.addi(REG_T6, REG_T6, 2);
        b.sb(REG_T6, 0, REG_T4);
        b.addi(REG_T1, REG_T1, 1);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T1, REG_T2, iLoop);
        b.j(nextFrame);

        // P frame: qd = clamp((pix - ref) >> 2, -31, 31);
        // recon = clamp(ref + (qd << 2), 0, 255); updates the reference.
        b.bind(typeP);
        b.bind(pLoop);
        b.lbu(REG_T5, 0, REG_T1);
        b.lbu(REG_T7, 0, REG_T4);
        b.sub(REG_T5, REG_T5, REG_T7);
        b.sra(REG_T5, REG_T5, 2);
        emitClampT5(-31, 31);
        b.sb(REG_T5, 0, REG_T3);
        b.sll(REG_T5, REG_T5, 2);
        b.add(REG_T5, REG_T7, REG_T5);
        emitClampT5(0, 255);
        b.sb(REG_T5, 0, REG_T4);
        b.addi(REG_T1, REG_T1, 1);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T1, REG_T2, pLoop);
        b.j(nextFrame);

        // B frame: coarser quantizer, reference NOT updated.
        b.bind(typeB);
        b.bind(bLoop);
        b.lbu(REG_T5, 0, REG_T1);
        b.lbu(REG_T7, 0, REG_T4);
        b.sub(REG_T5, REG_T5, REG_T7);
        b.sra(REG_T5, REG_T5, 3);
        emitClampT5(-15, 15);
        b.sb(REG_T5, 0, REG_T3);
        b.addi(REG_T1, REG_T1, 1);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T1, REG_T2, bLoop);

        b.bind(nextFrame);
        b.addi(REG_S2, REG_S2, frameBytes);
        b.addi(REG_S3, REG_S3, frameBytes);
        b.addi(REG_S0, REG_S0, 1);
        b.li(REG_AT, frames);
        b.blt(REG_S0, REG_AT, frameLoop);
        b.ret();
    }
    b.endFunction();

    // ---- mpeg_decode ----------------------------------------------------
    // Mirrors the encoder against its own reference buffer, streaming
    // every reconstructed pixel.
    b.beginFunction("mpeg_decode");
    {
        auto frameLoop = b.newLabel();
        auto typeP = b.newLabel();
        auto typeB = b.newLabel();
        auto nextFrame = b.newLabel();
        auto iLoop = b.newLabel();
        auto pLoop = b.newLabel();
        auto bLoop = b.newLabel();

        b.li(REG_S0, 0);
        b.la(REG_S3, "mpeg_enc");
        b.bind(frameLoop);
        b.move(REG_T3, REG_S3);
        b.addi(REG_T2, REG_S3, frameBytes);
        b.la(REG_T4, "dec_ref");
        b.li(REG_T0, 12);
        b.rem(REG_T0, REG_S0, REG_T0);
        b.beq(REG_T0, REG_ZERO, iLoop);
        b.li(REG_T0, 3);
        b.rem(REG_T0, REG_S0, REG_T0);
        b.beq(REG_T0, REG_ZERO, typeP);
        b.j(typeB);

        // I frame: recon = (code << 2) + 2.
        b.bind(iLoop);
        b.lb(REG_T6, 0, REG_T3);
        b.sll(REG_T6, REG_T6, 2);
        b.addi(REG_T6, REG_T6, 2);
        b.sb(REG_T6, 0, REG_T4);
        b.outb(REG_T6);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T3, REG_T2, iLoop);
        b.j(nextFrame);

        // P frame.
        b.bind(typeP);
        b.bind(pLoop);
        b.lb(REG_T5, 0, REG_T3);
        b.lbu(REG_T7, 0, REG_T4);
        b.sll(REG_T5, REG_T5, 2);
        b.add(REG_T5, REG_T7, REG_T5);
        emitClampT5(0, 255);
        b.sb(REG_T5, 0, REG_T4);
        b.outb(REG_T5);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T3, REG_T2, pLoop);
        b.j(nextFrame);

        // B frame: decoded but the reference is left untouched.
        b.bind(typeB);
        b.bind(bLoop);
        b.lb(REG_T5, 0, REG_T3);
        b.lbu(REG_T7, 0, REG_T4);
        b.sll(REG_T5, REG_T5, 3);
        b.add(REG_T5, REG_T7, REG_T5);
        emitClampT5(0, 255);
        b.outb(REG_T5);
        b.addi(REG_T3, REG_T3, 1);
        b.addi(REG_T4, REG_T4, 1);
        b.blt(REG_T3, REG_T2, bLoop);

        b.bind(nextFrame);
        b.addi(REG_S3, REG_S3, frameBytes);
        b.addi(REG_S0, REG_S0, 1);
        b.li(REG_AT, frames);
        b.blt(REG_S0, REG_AT, frameLoop);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
MpegWorkload::eligibleFunctions() const
{
    return {"main", "mpeg_encode", "mpeg_decode"};
}

double
MpegWorkload::badFrameFraction(const std::vector<uint8_t> &golden,
                               const std::vector<uint8_t> &test) const
{
    const size_t frameBytes =
        static_cast<size_t>(params_.width) * params_.height;
    unsigned bad = 0;
    for (unsigned f = 0; f < params_.frames; ++f) {
        std::vector<double> g, t;
        g.reserve(frameBytes);
        t.reserve(frameBytes);
        for (size_t i = 0; i < frameBytes; ++i) {
            size_t at = static_cast<size_t>(f) * frameBytes + i;
            g.push_back(at < golden.size() ? golden[at] : 0.0);
            t.push_back(at < test.size() ? test[at] : 0.0);
        }
        double snr = fidelity::snrDb(g, t);
        double floor = 0.0;
        switch (frameType(f)) {
          case FrameType::I: floor = params_.snrFloorI; break;
          case FrameType::P: floor = params_.snrFloorP; break;
          case FrameType::B: floor = params_.snrFloorB; break;
        }
        if (snr < floor)
            ++bad;
    }
    return static_cast<double>(bad) / params_.frames;
}

FidelityScore
MpegWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                            const std::vector<uint8_t> &test) const
{
    FidelityScore score;
    score.value = badFrameFraction(golden, test);
    score.acceptable = score.value <= params_.badFrameThreshold;
    score.unit = "fraction bad frames";
    return score;
}

std::vector<uint8_t>
MpegWorkload::referenceOutput() const
{
    const size_t frameBytes =
        static_cast<size_t>(params_.width) * params_.height;
    std::vector<int> encRef(frameBytes, 0);
    std::vector<int8_t> encoded(frameBytes * params_.frames);

    for (unsigned f = 0; f < params_.frames; ++f) {
        const auto &src = video_[f].pixels;
        for (size_t i = 0; i < frameBytes; ++i) {
            int8_t &code = encoded[f * frameBytes + i];
            switch (frameType(f)) {
              case FrameType::I: {
                int c = src[i] >> 2;
                code = static_cast<int8_t>(c);
                encRef[i] = (c << 2) + 2;
                break;
              }
              case FrameType::P: {
                int qd = std::clamp((src[i] - encRef[i]) >> 2, -31, 31);
                code = static_cast<int8_t>(qd);
                encRef[i] =
                    std::clamp(encRef[i] + (qd << 2), 0, 255);
                break;
              }
              case FrameType::B: {
                int qd = std::clamp((src[i] - encRef[i]) >> 3, -15, 15);
                code = static_cast<int8_t>(qd);
                break;
              }
            }
        }
    }

    std::vector<int> decRef(frameBytes, 0);
    std::vector<uint8_t> out;
    out.reserve(frameBytes * params_.frames);
    for (unsigned f = 0; f < params_.frames; ++f) {
        for (size_t i = 0; i < frameBytes; ++i) {
            int code = encoded[f * frameBytes + i];
            int value = 0;
            switch (frameType(f)) {
              case FrameType::I:
                value = (code << 2) + 2;
                decRef[i] = value;
                break;
              case FrameType::P:
                value = std::clamp(decRef[i] + (code << 2), 0, 255);
                decRef[i] = value;
                break;
              case FrameType::B:
                value = std::clamp(decRef[i] + (code << 3), 0, 255);
                break;
            }
            out.push_back(static_cast<uint8_t>(value));
        }
    }
    return out;
}

MpegWorkload::Params
MpegWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test) {
        params.width = 16;
        params.height = 12;
        params.frames = 6;
    }
    return params;
}

} // namespace etc::workloads
