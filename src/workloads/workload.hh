/**
 * @file
 * The Workload interface: one error-tolerant application, packaged as
 * a program for the target ISA plus its fidelity measure (paper
 * Table 1).
 *
 * Every workload is fully self-contained: its synthetic input is baked
 * into the program's data segment at construction time, and its result
 * is emitted through the simulator's output stream (outb/outw), so the
 * campaign layer can score any trial by comparing output streams.
 *
 * Kernel coding-style note (mirrors how the original benchmarks
 * compile): data-dominated kernels (susan, adpcm, blowfish, art) use
 * branch-free predicated arithmetic for clamps/selects, so their value
 * chains never feed branches and the CVar analysis can tag most of
 * their work; control-dominated kernels (mcf, gsm, parts of mpeg) make
 * decisions with branches, so most of their values are control-
 * relevant. This is what produces the Table 3 spread of tagged
 * fractions.
 */

#ifndef ETC_WORKLOADS_WORKLOAD_HH
#define ETC_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace etc::workloads {

/** One fidelity evaluation. */
struct FidelityScore
{
    double value = 0.0;      //!< metric value (dB, %, ...)
    bool acceptable = false; //!< within the workload's threshold
    std::string unit;        //!< e.g. "dB PSNR", "% bytes correct"
};

/**
 * Abstract error-tolerant application.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier ("susan", "mpeg", ...). */
    virtual std::string name() const = 0;

    /** Human description of the fidelity measure (Table 1 column). */
    virtual std::string fidelityMeasure() const = 0;

    /** The assembled program (input data already baked in). */
    virtual const assembly::Program &program() const = 0;

    /**
     * Functions the programmer marked eligible for tagging (the paper
     * lets users exclude e.g. setup/allocation code).
     */
    virtual std::set<std::string> eligibleFunctions() const = 0;

    /**
     * Score a trial output against the fault-free output.
     *
     * @param golden the fault-free output stream
     * @param test   a completed trial's output stream
     */
    virtual FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const = 0;
};

/** Workload construction size. */
enum class Scale
{
    Test,  //!< small inputs: fast unit/integration tests
    Bench, //!< paper-scale inputs for the table/figure benches
};

/** Names of all seven applications, in the paper's Table 1 order. */
const std::vector<std::string> &workloadNames();

/**
 * Factory: construct a workload by name.
 *
 * @throws FatalError for an unknown name
 */
std::unique_ptr<Workload> createWorkload(const std::string &name,
                                         Scale scale = Scale::Bench);

} // namespace etc::workloads

#endif // ETC_WORKLOADS_WORKLOAD_HH
