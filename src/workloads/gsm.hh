/**
 * @file
 * Gsm: a GSM-style short-term linear-predictive speech codec for the
 * target ISA.
 *
 * Substitution note (DESIGN.md): full GSM 06.10 (RPE-LTP) is replaced
 * by a frame-based short-term LPC codec with the same fidelity
 * structure: 160-sample frames, a per-frame Q12 predictor coefficient
 * from autocorrelation, closed-loop residual quantization with a
 * per-frame step, decode back to PCM.
 *
 * Coding style: the encoder makes its decisions with *branches*
 * (coefficient clamping, residual-max search, quantizer clamping), so
 * most encoder values are control-relevant and stay protected; the
 * decoder is straight-line predicated arithmetic. The blend reproduces
 * gsm's low (~20 %) low-reliability fraction in Table 3. There are no
 * variable-index table lookups, so -- like the paper's GSM rows in
 * Table 2 -- the protected workload essentially never fails
 * catastrophically.
 *
 * Fidelity (Table 1): SNR of the decoded-with-errors output against
 * the decoded fault-free output (6 dB loss still intelligible).
 */

#ifndef ETC_WORKLOADS_GSM_HH
#define ETC_WORKLOADS_GSM_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** GSM-style LPC encode+decode workload. */
class GsmWorkload : public Workload
{
  public:
    static constexpr unsigned FRAME_SAMPLES = 160;
    /** Frame record: coeff word + step word + 160 code bytes. */
    static constexpr unsigned FRAME_RECORD_BYTES = 8 + FRAME_SAMPLES;

    struct Params
    {
        unsigned frames = 30;
        uint64_t seed = 0x95a1;
        double snrThresholdDb = 6.0; //!< acceptable if loss <= 6 dB
    };

    explicit GsmWorkload(Params params);

    std::string name() const override { return "gsm"; }

    std::string
    fidelityMeasure() const override
    {
        return "SNR (dB) of decoded output vs fault-free decoded output";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Host-side reference decoded output (bit-identical). */
    std::vector<uint8_t> referenceOutput() const;

    const std::vector<int16_t> &input() const { return input_; }

    static Params scaled(Scale scale);

  private:
    Params params_;
    std::vector<int16_t> input_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_GSM_HH
