#include "workloads/gsm.hh"

#include <algorithm>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

/** Wrapping 32-bit multiply with the simulator's semantics. */
int32_t
mul32(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) *
                                static_cast<uint32_t>(b));
}

} // namespace

GsmWorkload::GsmWorkload(Params params)
    : params_(params),
      input_(makeSpeech(params.frames * FRAME_SAMPLES, params.seed))
{
    if (params_.frames == 0)
        fatal("gsm: need at least one frame");

    const auto samples = static_cast<int32_t>(input_.size());
    const auto recordBytes = static_cast<int32_t>(FRAME_RECORD_BYTES);

    ProgramBuilder b;
    {
        std::vector<uint8_t> pcm;
        pcm.reserve(input_.size() * 2);
        for (int16_t s : input_) {
            auto u = static_cast<uint16_t>(s);
            pcm.push_back(static_cast<uint8_t>(u));
            pcm.push_back(static_cast<uint8_t>(u >> 8));
        }
        b.dataBytes("pcm_in", pcm);
    }
    b.dataSpace("gsm_enc",
                params_.frames * FRAME_RECORD_BYTES);

    b.beginFunction("main");
    {
        b.call("gsm_encode");
        b.call("gsm_decode");
        b.halt();
    }
    b.endFunction();

    // Predicated int16 clamp of s-reg-free value in t3; uses t5, t6, a0.
    auto emitClamp16 = [&] {
        b.li(REG_T5, 32767);
        b.slt(REG_A0, REG_T5, REG_T3);
        b.sub(REG_T6, REG_T5, REG_T3);
        b.mul(REG_T6, REG_T6, REG_A0);
        b.add(REG_T3, REG_T3, REG_T6);
        b.li(REG_T5, -32768);
        b.slt(REG_A0, REG_T3, REG_T5);
        b.sub(REG_T6, REG_T5, REG_T3);
        b.mul(REG_T6, REG_T6, REG_A0);
        b.add(REG_T3, REG_T3, REG_T6);
    };

    // ---- gsm_encode ----------------------------------------------------
    // s0 = frame base, s1 = input end, s2 = record cursor.
    // Encoder decisions are deliberately branchy (control-protected).
    b.beginFunction("gsm_encode");
    {
        auto frameLoop = b.newLabel();
        b.la(REG_S0, "pcm_in");
        b.addi(REG_S1, REG_S0, 2 * samples);
        b.la(REG_S2, "gsm_enc");
        b.bind(frameLoop);
        b.addi(REG_S3, REG_S0, 2 * static_cast<int32_t>(FRAME_SAMPLES));

        // Autocorrelation (samples scaled >> 4 to avoid overflow):
        // t1 = num, t2 = den, t3 = previous scaled sample.
        auto acLoop = b.newLabel();
        b.move(REG_T0, REG_S0);
        b.li(REG_T1, 0);
        b.li(REG_T2, 0);
        b.li(REG_T3, 0);
        b.bind(acLoop);
        b.lh(REG_T4, 0, REG_T0);
        b.sra(REG_T5, REG_T4, 4);
        b.mul(REG_T6, REG_T5, REG_T3);
        b.add(REG_T1, REG_T1, REG_T6);
        b.mul(REG_T6, REG_T3, REG_T3);
        b.add(REG_T2, REG_T2, REG_T6);
        b.move(REG_T3, REG_T5);
        b.addi(REG_T0, REG_T0, 2);
        b.blt(REG_T0, REG_S3, acLoop);

        // a = num / ((den >> 12) + 1), clamped to [-4095, 4095] with
        // branches (t7 = a).
        auto clampHiDone = b.newLabel();
        auto clampLoDone = b.newLabel();
        b.sra(REG_T2, REG_T2, 12);
        b.addi(REG_T2, REG_T2, 1);
        b.div(REG_T7, REG_T1, REG_T2);
        b.li(REG_T4, 4095);
        b.ble(REG_T7, REG_T4, clampHiDone);
        b.move(REG_T7, REG_T4);
        b.bind(clampHiDone);
        b.li(REG_T4, -4095);
        b.bge(REG_T7, REG_T4, clampLoDone);
        b.move(REG_T7, REG_T4);
        b.bind(clampLoDone);
        b.sw(REG_T7, 0, REG_S2);

        // Residual-max search (open loop, branchy): t8 = rmax.
        auto rLoop = b.newLabel();
        auto absDone = b.newLabel();
        auto maxDone = b.newLabel();
        b.move(REG_T0, REG_S0);
        b.li(REG_T3, 0);
        b.li(REG_T8, 0);
        b.bind(rLoop);
        b.lh(REG_T4, 0, REG_T0);
        b.mul(REG_T5, REG_T7, REG_T3);
        b.sra(REG_T5, REG_T5, 12);
        b.sub(REG_T5, REG_T4, REG_T5);     // r
        b.move(REG_T6, REG_T5);
        b.bgez(REG_T6, absDone);
        b.sub(REG_T6, REG_ZERO, REG_T6);
        b.bind(absDone);
        b.ble(REG_T6, REG_T8, maxDone);
        b.move(REG_T8, REG_T6);
        b.bind(maxDone);
        b.move(REG_T3, REG_T4);
        b.addi(REG_T0, REG_T0, 2);
        b.blt(REG_T0, REG_S3, rLoop);

        // step = rmax / 31 + 1.
        b.li(REG_T4, 31);
        b.div(REG_T8, REG_T8, REG_T4);
        b.addi(REG_T8, REG_T8, 1);
        b.sw(REG_T8, 4, REG_S2);

        // Quantize with closed-loop prediction (t3 = reconstruction);
        // quantizer clamps are branchy, the reconstruction clamp is the
        // shared predicated helper (matching the decoder exactly).
        auto qLoop = b.newLabel();
        auto qHiDone = b.newLabel();
        auto qLoDone = b.newLabel();
        b.move(REG_T0, REG_S0);
        b.li(REG_T3, 0);
        b.addi(REG_T9, REG_S2, 8);          // code cursor
        b.bind(qLoop);
        b.lh(REG_T4, 0, REG_T0);
        b.mul(REG_T5, REG_T7, REG_T3);
        b.sra(REG_T5, REG_T5, 12);          // pred
        b.sub(REG_V1, REG_T4, REG_T5);      // r = x - pred
        b.div(REG_V1, REG_V1, REG_T8);      // q = r / step
        b.li(REG_T6, 31);
        b.ble(REG_V1, REG_T6, qHiDone);
        b.move(REG_V1, REG_T6);
        b.bind(qHiDone);
        b.li(REG_T6, -31);
        b.bge(REG_V1, REG_T6, qLoDone);
        b.move(REG_V1, REG_T6);
        b.bind(qLoDone);
        b.sb(REG_V1, 0, REG_T9);
        b.addi(REG_T9, REG_T9, 1);
        // Closed-loop reconstruction: t3 = clamp16(pred + q*step).
        b.mul(REG_T6, REG_V1, REG_T8);
        b.add(REG_T3, REG_T5, REG_T6);
        emitClamp16();
        b.addi(REG_T0, REG_T0, 2);
        b.blt(REG_T0, REG_S3, qLoop);

        b.move(REG_S0, REG_S3);
        b.addi(REG_S2, REG_S2, recordBytes);
        b.blt(REG_S0, REG_S1, frameLoop);
        b.ret();
    }
    b.endFunction();

    // ---- gsm_decode ----------------------------------------------------
    // Straight-line predicated reconstruction (the taggable part).
    // s0 = record cursor, s1 = record end.
    b.beginFunction("gsm_decode");
    {
        auto frameLoop = b.newLabel();
        auto sampleLoop = b.newLabel();
        b.la(REG_S0, "gsm_enc");
        b.addi(REG_S1, REG_S0,
               recordBytes * static_cast<int32_t>(params_.frames));
        b.bind(frameLoop);
        b.lw(REG_T7, 0, REG_S0);            // coeff a
        b.lw(REG_T8, 4, REG_S0);            // step
        b.addi(REG_T9, REG_S0, 8);          // code cursor
        b.addi(REG_A3, REG_T9,
               static_cast<int32_t>(FRAME_SAMPLES));
        b.li(REG_T3, 0);                    // reconstruction
        b.bind(sampleLoop);
        b.lb(REG_T4, 0, REG_T9);            // q
        b.mul(REG_T5, REG_T7, REG_T3);
        b.sra(REG_T5, REG_T5, 12);          // pred
        b.mul(REG_T6, REG_T4, REG_T8);      // q*step
        b.add(REG_T3, REG_T5, REG_T6);
        emitClamp16();
        b.andi(REG_T5, REG_T3, 0xff);
        b.outb(REG_T5);
        b.srl(REG_T5, REG_T3, 8);
        b.andi(REG_T5, REG_T5, 0xff);
        b.outb(REG_T5);
        b.addi(REG_T9, REG_T9, 1);
        b.blt(REG_T9, REG_A3, sampleLoop);
        b.addi(REG_S0, REG_S0, recordBytes);
        b.blt(REG_S0, REG_S1, frameLoop);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
GsmWorkload::eligibleFunctions() const
{
    return {"main", "gsm_encode", "gsm_decode"};
}

FidelityScore
GsmWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                           const std::vector<uint8_t> &test) const
{
    FidelityScore score;
    score.value = fidelity::snrDb(fidelity::asInt16(golden),
                                  fidelity::asInt16(test));
    // Acceptability anchors the paper's rule of thumb ("a 6 dB loss
    // does not distort voice beyond recognition") to a 26 dB clean
    // voice band: the output is acceptable while it stays within
    // snrThresholdDb of that band.
    score.acceptable = score.value >= 26.0 - params_.snrThresholdDb;
    score.unit = "dB SNR vs fault-free output";
    return score;
}

std::vector<uint8_t>
GsmWorkload::referenceOutput() const
{
    const int frames = static_cast<int>(params_.frames);
    const int fs = static_cast<int>(FRAME_SAMPLES);
    std::vector<int32_t> coeffs(frames);
    std::vector<int32_t> steps(frames);
    std::vector<int8_t> codes(static_cast<size_t>(frames) * fs);

    // Encode.
    for (int f = 0; f < frames; ++f) {
        const int16_t *x = &input_[static_cast<size_t>(f) * fs];
        int32_t num = 0, den = 0, prev = 0;
        for (int n = 0; n < fs; ++n) {
            int32_t xs = x[n] >> 4;
            num += mul32(xs, prev);
            den += mul32(prev, prev);
            prev = xs;
        }
        int32_t a = num / ((den >> 12) + 1);
        a = std::clamp(a, -4095, 4095);
        coeffs[f] = a;

        int32_t rmax = 0, xprev = 0;
        for (int n = 0; n < fs; ++n) {
            int32_t r = x[n] - (mul32(a, xprev) >> 12);
            rmax = std::max(rmax, std::abs(r));
            xprev = x[n];
        }
        int32_t step = rmax / 31 + 1;
        steps[f] = step;

        int32_t recon = 0;
        for (int n = 0; n < fs; ++n) {
            int32_t pred = mul32(a, recon) >> 12;
            int32_t q = std::clamp((x[n] - pred) / step, -31, 31);
            codes[static_cast<size_t>(f) * fs + n] =
                static_cast<int8_t>(q);
            recon = std::clamp(pred + mul32(q, step), -32768, 32767);
        }
    }

    // Decode.
    std::vector<uint8_t> out;
    out.reserve(codes.size() * 2);
    for (int f = 0; f < frames; ++f) {
        int32_t recon = 0;
        for (int n = 0; n < fs; ++n) {
            int32_t pred = mul32(coeffs[f], recon) >> 12;
            int32_t q = codes[static_cast<size_t>(f) * fs + n];
            recon = std::clamp(pred + mul32(q, steps[f]), -32768, 32767);
            auto u = static_cast<uint16_t>(static_cast<int16_t>(recon));
            out.push_back(static_cast<uint8_t>(u));
            out.push_back(static_cast<uint8_t>(u >> 8));
        }
    }
    return out;
}

GsmWorkload::Params
GsmWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test)
        params.frames = 3;
    return params;
}

} // namespace etc::workloads
