/**
 * @file
 * Susan: SUSAN-principle edge detection (MiBench), reimplemented for
 * the target ISA.
 *
 * For every interior pixel, a 5x5 quasi-circular mask (20 neighbours,
 * corners excluded) compares neighbour brightness against the nucleus
 * with the integer similarity kernel c = 100 if |dI| <= t else 0; the
 * USAN area n is the sum of c. The edge response is max(0, g - n) with
 * the geometric threshold g = 3/4 of the maximal area, rescaled to a
 * byte and streamed out.
 *
 * The inner arithmetic (absolute difference, similarity, clamping,
 * rescale) is fully predicated -- exactly how the optimized MiBench
 * kernel compiles -- so nearly all of it is taggable and the workload
 * reproduces susan's very high low-reliability fraction in Table 3.
 *
 * Fidelity (Table 1): PSNR of the edge map against the fault-free edge
 * map, threshold 10 dB (stands in for the paper's Imagemagick
 * comparison).
 */

#ifndef ETC_WORKLOADS_SUSAN_HH
#define ETC_WORKLOADS_SUSAN_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** SUSAN edge-detection workload. */
class SusanWorkload : public Workload
{
  public:
    /** Construction parameters. */
    struct Params
    {
        unsigned width = 64;
        unsigned height = 48;
        int threshold = 27;    //!< brightness similarity threshold t
        uint64_t seed = 0x5a5a;
        double fidelityThresholdDb = 10.0;
    };

    explicit SusanWorkload(Params params);

    std::string name() const override { return "susan"; }

    std::string
    fidelityMeasure() const override
    {
        return "edge-map PSNR vs fault-free output (threshold 10 dB)";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Host-side reference edge detector (bit-identical to the ISA). */
    std::vector<uint8_t> referenceOutput() const;

    const Params &params() const { return params_; }

    /** Parameters for Scale::Test / Scale::Bench construction. */
    static Params scaled(Scale scale);

  private:
    Params params_;
    GrayImage image_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_SUSAN_HH
