#include "workloads/susan.hh"

#include <algorithm>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

/** 5x5 quasi-circular mask: all offsets except centre and corners. */
std::vector<std::pair<int, int>>
maskOffsets()
{
    std::vector<std::pair<int, int>> offsets;
    for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
            if (dy == 0 && dx == 0)
                continue;
            if (std::abs(dy) == 2 && std::abs(dx) == 2)
                continue;
            offsets.emplace_back(dy, dx);
        }
    }
    return offsets;
}

constexpr int SIMILARITY = 100;

} // namespace

SusanWorkload::SusanWorkload(Params params)
    : params_(params),
      image_(makeShapesImage(params.width, params.height, params.seed))
{
    if (params_.width < 8 || params_.height < 8)
        fatal("susan: image must be at least 8x8");

    const auto offsets = maskOffsets();
    const int maxArea = static_cast<int>(offsets.size()) * SIMILARITY;
    const int geometric = 3 * maxArea / 4;
    const auto width = static_cast<int32_t>(params_.width);
    const auto height = static_cast<int32_t>(params_.height);

    ProgramBuilder b;
    b.dataBytes("image", image_.pixels);

    // The kernel follows the idiom an optimizing compiler produces for
    // an unrolled stencil: the pixel pointer is the loop induction
    // variable (so it feeds the loop branch and is control-protected
    // by the analysis), and each neighbour is an immediate-offset load
    // off that pointer -- there is no address arithmetic that a data
    // error could corrupt.

    // ---- main: iterate interior pixel pointers -----------------------
    // s0 = row base pointer, s1 = pixel pointer, s2 = row pixel limit,
    // s3 = last row base.
    b.beginFunction("main");
    {
        auto yLoop = b.newLabel();
        auto xLoop = b.newLabel();
        b.la(REG_S0, "image");
        b.addi(REG_S3, REG_S0, (height - 2) * width); // one-past last row
        b.addi(REG_S0, REG_S0, 2 * width);            // row y = 2
        b.bind(yLoop);
        b.addi(REG_S1, REG_S0, 2);                    // p = row + 2
        b.addi(REG_S2, REG_S0, width - 2);            // row limit
        b.bind(xLoop);
        b.move(REG_A0, REG_S1);
        b.call("susan_pixel");
        b.outb(REG_V0);
        b.addi(REG_S1, REG_S1, 1);
        b.blt(REG_S1, REG_S2, xLoop);
        b.addi(REG_S0, REG_S0, width);                // next row
        b.blt(REG_S0, REG_S3, yLoop);
        b.halt();
    }
    b.endFunction();

    // ---- susan_pixel(a0 = nucleus pointer) -> v0 = edge byte ---------
    b.beginFunction("susan_pixel");
    {
        b.lbu(REG_T1, 0, REG_A0);           // nucleus brightness
        b.li(REG_T2, 0);                    // n (USAN area)
        for (auto [dy, dx] : offsets) {
            int32_t linear = dy * width + dx;
            b.lbu(REG_T5, linear, REG_A0);  // neighbour brightness
            b.sub(REG_T5, REG_T5, REG_T1);  // d = p - nucleus
            // Branch-free |d|: s = d >> 31; ad = (d ^ s) - s.
            b.sra(REG_T6, REG_T5, 31);
            b.xor_(REG_T5, REG_T5, REG_T6);
            b.sub(REG_T5, REG_T5, REG_T6);
            // similar = (ad <= t): c = (t < ad); sim = 1 - c.
            b.li(REG_T8, params_.threshold);
            b.slt(REG_T8, REG_T8, REG_T5);
            b.li(REG_T6, 1);
            b.sub(REG_T8, REG_T6, REG_T8);
            // n += 100 * sim.
            b.li(REG_T6, SIMILARITY);
            b.mul(REG_T8, REG_T8, REG_T6);
            b.add(REG_T2, REG_T2, REG_T8);
        }
        // edge = max(0, g - n), branch-free via the sign mask.
        b.li(REG_T5, geometric);
        b.sub(REG_T5, REG_T5, REG_T2);      // g - n
        b.sra(REG_T6, REG_T5, 31);
        b.nor(REG_T6, REG_T6, REG_ZERO);    // ~(sign mask)
        b.and_(REG_T5, REG_T5, REG_T6);
        // Rescale to a byte: e * 255 / g.
        b.li(REG_T6, 255);
        b.mul(REG_T5, REG_T5, REG_T6);
        b.li(REG_T6, geometric);
        b.div(REG_V0, REG_T5, REG_T6);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
SusanWorkload::eligibleFunctions() const
{
    return {"main", "susan_pixel"};
}

FidelityScore
SusanWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                             const std::vector<uint8_t> &test) const
{
    FidelityScore score;
    score.value = fidelity::psnrDb(golden, test);
    score.acceptable = score.value >= params_.fidelityThresholdDb;
    score.unit = "dB PSNR";
    return score;
}

std::vector<uint8_t>
SusanWorkload::referenceOutput() const
{
    const auto offsets = maskOffsets();
    const int maxArea = static_cast<int>(offsets.size()) * SIMILARITY;
    const int geometric = 3 * maxArea / 4;
    const int width = static_cast<int>(params_.width);
    const int height = static_cast<int>(params_.height);

    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(width - 4) * (height - 4));
    for (int y = 2; y < height - 2; ++y) {
        for (int x = 2; x < width - 2; ++x) {
            int nucleus = image_.pixels[y * width + x];
            int n = 0;
            for (auto [dy, dx] : offsets) {
                int p = image_.pixels[(y + dy) * width + (x + dx)];
                int ad = std::abs(p - nucleus);
                if (ad <= params_.threshold)
                    n += SIMILARITY;
            }
            int edge = std::max(0, geometric - n);
            out.push_back(static_cast<uint8_t>(edge * 255 / geometric));
        }
    }
    return out;
}

SusanWorkload::Params
SusanWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test) {
        params.width = 24;
        params.height = 20;
    }
    return params;
}

} // namespace etc::workloads
