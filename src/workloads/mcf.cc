#include "workloads/mcf.hh"

#include <algorithm>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

constexpr int32_t INF = 0x3fffffff;

/** Host-side successive-shortest-paths used for the reference optimum. */
std::pair<int32_t, int32_t>
solveHost(const FlowNetwork &net)
{
    const unsigned n = net.nodes;
    const size_t m = net.edges.size();
    std::vector<int32_t> to(2 * m), cap(2 * m), cost(2 * m), from(2 * m);
    for (size_t i = 0; i < m; ++i) {
        from[2 * i] = static_cast<int32_t>(net.edges[i].from);
        to[2 * i] = static_cast<int32_t>(net.edges[i].to);
        cap[2 * i] = net.edges[i].capacity;
        cost[2 * i] = net.edges[i].cost;
        from[2 * i + 1] = static_cast<int32_t>(net.edges[i].to);
        to[2 * i + 1] = static_cast<int32_t>(net.edges[i].from);
        cap[2 * i + 1] = 0;
        cost[2 * i + 1] = -net.edges[i].cost;
    }
    const int32_t src = 0;
    const auto sink = static_cast<int32_t>(n - 1);
    int32_t totalFlow = 0, totalCost = 0;
    for (;;) {
        std::vector<int32_t> dist(n, INF), parent(n, -1);
        dist[src] = 0;
        for (unsigned round = 0; round < n; ++round) {
            bool changed = false;
            for (size_t j = 0; j < 2 * m; ++j) {
                if (cap[j] <= 0 || dist[from[j]] >= INF)
                    continue;
                int32_t nd = dist[from[j]] + cost[j];
                if (nd < dist[to[j]]) {
                    dist[to[j]] = nd;
                    parent[to[j]] = static_cast<int32_t>(j);
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
        if (dist[sink] >= INF)
            break;
        int32_t aug = INF;
        for (int32_t v = sink; v != src; v = from[parent[v]])
            aug = std::min(aug, cap[parent[v]]);
        for (int32_t v = sink; v != src; v = from[parent[v]]) {
            cap[parent[v]] -= aug;
            cap[parent[v] ^ 1] += aug;
        }
        totalFlow += aug;
        totalCost += dist[sink] * aug;
    }
    return {totalFlow, totalCost};
}

} // namespace

McfWorkload::McfWorkload(Params params)
    : params_(params),
      network_(makeScheduleNetwork(params.trips, params.seed))
{
    const auto n = static_cast<int32_t>(network_.nodes);
    const auto m = static_cast<int32_t>(network_.edges.size());
    const int32_t residual = 2 * m;

    // Residual arrays, laid out contiguously so the edge scan can use
    // one cursor with constant offsets: e_from, e_to, e_cap, e_cost.
    std::vector<int32_t> eFrom(residual), eTo(residual), eCap(residual),
        eCost(residual);
    for (int32_t i = 0; i < m; ++i) {
        const auto &edge = network_.edges[i];
        eFrom[2 * i] = static_cast<int32_t>(edge.from);
        eTo[2 * i] = static_cast<int32_t>(edge.to);
        eCap[2 * i] = edge.capacity;
        eCost[2 * i] = edge.cost;
        eFrom[2 * i + 1] = static_cast<int32_t>(edge.to);
        eTo[2 * i + 1] = static_cast<int32_t>(edge.from);
        eCap[2 * i + 1] = 0;
        eCost[2 * i + 1] = -edge.cost;
    }

    ProgramBuilder b;
    uint32_t fromBase = b.dataWords("e_from", eFrom);
    uint32_t toBase = b.dataWords("e_to", eTo);
    uint32_t capBase = b.dataWords("e_cap", eCap);
    uint32_t costBase = b.dataWords("e_cost", eCost);
    uint32_t distBase = b.dataSpace("dist", 4 * network_.nodes);
    uint32_t parentBase = b.dataSpace("parent", 4 * network_.nodes);
    const auto offTo = static_cast<int32_t>(toBase - fromBase);
    const auto offCap = static_cast<int32_t>(capBase - fromBase);
    const auto offCost = static_cast<int32_t>(costBase - fromBase);
    const auto sink = n - 1;

    b.beginFunction("main");
    {
        b.call("mcf_solve");
        b.halt();
    }
    b.endFunction();

    // ---- mcf_solve (leaf) ----------------------------------------------
    // s0 = total cost, s3 = total flow, s1 = e_from base, s2 = edge scan
    // end, s6 = dist base, s7 = parent base, a2 = e_cap base.
    b.beginFunction("mcf_solve");
    {
        auto outer = b.newLabel();
        auto finish = b.newLabel();

        b.li(REG_S0, 0);
        b.li(REG_S3, 0);
        b.li(REG_S1, static_cast<int32_t>(fromBase));
        b.addi(REG_S2, REG_S1, 4 * residual);
        b.li(REG_S6, static_cast<int32_t>(distBase));
        b.li(REG_S7, static_cast<int32_t>(parentBase));
        b.li(REG_A2, static_cast<int32_t>(capBase));

        b.bind(outer);
        // Bellman-Ford init: dist[*] = INF, parent[*] = -1, dist[0]=0.
        {
            auto initLoop = b.newLabel();
            b.move(REG_T0, REG_S6);
            b.addi(REG_T1, REG_S6, 4 * n);
            b.li(REG_T2, INF);
            b.li(REG_T3, -1);
            b.bind(initLoop);
            b.sw(REG_T2, 0, REG_T0);
            // parent array sits right after dist (same stride).
            b.sw(REG_T3,
                 static_cast<int32_t>(parentBase - distBase), REG_T0);
            b.addi(REG_T0, REG_T0, 4);
            b.blt(REG_T0, REG_T1, initLoop);
            b.sw(REG_ZERO, 0, REG_S6);      // dist[source] = 0
        }
        // Relaxation rounds: s4 = round, s5 = changed.
        {
            auto roundLoop = b.newLabel();
            auto edgeLoop = b.newLabel();
            auto skip = b.newLabel();
            auto bfDone = b.newLabel();
            b.li(REG_S4, 0);
            b.bind(roundLoop);
            b.li(REG_S5, 0);
            b.move(REG_T1, REG_S1);          // edge cursor
            b.li(REG_A3, 0);                 // edge index j
            b.bind(edgeLoop);
            b.lw(REG_T4, offCap, REG_T1);    // residual capacity
            b.blez(REG_T4, skip);
            b.lw(REG_T2, 0, REG_T1);         // from
            b.sll(REG_T5, REG_T2, 2);        // (taggable address arith)
            b.add(REG_T5, REG_T5, REG_S6);
            b.lw(REG_T5, 0, REG_T5);         // dist[from]
            b.li(REG_T6, INF);
            b.bge(REG_T5, REG_T6, skip);
            b.lw(REG_T7, offCost, REG_T1);   // cost
            b.add(REG_T7, REG_T5, REG_T7);   // candidate distance
            b.lw(REG_T3, offTo, REG_T1);     // to
            b.sll(REG_T8, REG_T3, 2);
            b.add(REG_T8, REG_T8, REG_S6);
            b.lw(REG_T9, 0, REG_T8);         // dist[to]
            b.bge(REG_T7, REG_T9, skip);
            b.sw(REG_T7, 0, REG_T8);         // dist[to] = candidate
            b.sll(REG_T9, REG_T3, 2);
            b.add(REG_T9, REG_T9, REG_S7);
            b.sw(REG_A3, 0, REG_T9);         // parent[to] = j
            b.li(REG_S5, 1);
            b.bind(skip);
            b.addi(REG_T1, REG_T1, 4);
            b.addi(REG_A3, REG_A3, 1);
            b.blt(REG_T1, REG_S2, edgeLoop);
            b.addi(REG_S4, REG_S4, 1);
            b.beq(REG_S5, REG_ZERO, bfDone);
            b.li(REG_AT, n);
            b.blt(REG_S4, REG_AT, roundLoop);
            b.bind(bfDone);
        }
        // No augmenting path -> done.
        b.lw(REG_T0, static_cast<int32_t>(distBase) + 4 * sink,
             REG_ZERO);
        b.li(REG_T1, INF);
        b.bge(REG_T0, REG_T1, finish);
        // Bottleneck walk from the sink (uncapped: corrupted parents
        // may cycle -- that is the paper's "infinite run" mode).
        {
            auto walk = b.newLabel();
            auto walkDone = b.newLabel();
            auto noMin = b.newLabel();
            b.li(REG_T2, sink);              // v
            b.li(REG_T3, INF);               // bottleneck
            b.bind(walk);
            b.beq(REG_T2, REG_ZERO, walkDone);
            b.sll(REG_T4, REG_T2, 2);
            b.add(REG_T4, REG_T4, REG_S7);
            b.lw(REG_T4, 0, REG_T4);         // e = parent[v]
            b.sll(REG_T5, REG_T4, 2);
            b.add(REG_T6, REG_T5, REG_A2);
            b.lw(REG_T6, 0, REG_T6);         // cap[e]
            b.bge(REG_T6, REG_T3, noMin);
            b.move(REG_T3, REG_T6);
            b.bind(noMin);
            b.add(REG_T5, REG_T5, REG_S1);
            b.lw(REG_T2, 0, REG_T5);         // v = from[e]
            b.j(walk);
            b.bind(walkDone);
        }
        // Augment along the path; the cap updates are stored data whose
        // producing adds/subs the analysis tags (memory-break).
        {
            auto walk = b.newLabel();
            auto walkDone = b.newLabel();
            b.li(REG_T2, sink);
            b.bind(walk);
            b.beq(REG_T2, REG_ZERO, walkDone);
            b.sll(REG_T4, REG_T2, 2);
            b.add(REG_T4, REG_T4, REG_S7);
            b.lw(REG_T4, 0, REG_T4);         // e
            b.sll(REG_T5, REG_T4, 2);
            b.add(REG_T6, REG_T5, REG_A2);
            b.lw(REG_T7, 0, REG_T6);
            b.sub(REG_T7, REG_T7, REG_T3);   // cap[e] -= aug (tagged)
            b.sw(REG_T7, 0, REG_T6);
            b.xori(REG_T8, REG_T4, 1);       // reverse edge
            b.sll(REG_T8, REG_T8, 2);
            b.add(REG_T8, REG_T8, REG_A2);
            b.lw(REG_T7, 0, REG_T8);
            b.add(REG_T7, REG_T7, REG_T3);   // cap[e^1] += aug (tagged)
            b.sw(REG_T7, 0, REG_T8);
            b.sll(REG_T5, REG_T4, 2);
            b.add(REG_T5, REG_T5, REG_S1);
            b.lw(REG_T2, 0, REG_T5);         // v = from[e]
            b.j(walk);
            b.bind(walkDone);
        }
        // totals: flow += aug; cost += dist[sink] * aug (tagged chain).
        b.add(REG_S3, REG_S3, REG_T3);
        b.lw(REG_T0, static_cast<int32_t>(distBase) + 4 * sink,
             REG_ZERO);
        b.mul(REG_T0, REG_T0, REG_T3);
        b.add(REG_S0, REG_S0, REG_T0);
        b.j(outer);

        b.bind(finish);
        b.outw(REG_S3);
        b.outw(REG_S0);
        // Stream each original edge's flow = residual cap of its
        // reverse edge (odd indices).
        {
            auto streamLoop = b.newLabel();
            b.addi(REG_T0, REG_A2, 4);       // &cap[1]
            b.addi(REG_T1, REG_A2, 4 * residual);
            b.bind(streamLoop);
            b.lw(REG_T2, 0, REG_T0);
            b.outw(REG_T2);
            b.addi(REG_T0, REG_T0, 8);
            b.blt(REG_T0, REG_T1, streamLoop);
        }
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
McfWorkload::eligibleFunctions() const
{
    return {"main", "mcf_solve"};
}

McfWorkload::Solution
McfWorkload::parseSolution(const std::vector<uint8_t> &stream) const
{
    Solution solution;
    auto words = fidelity::asInt32(stream);
    size_t expect = 2 + network_.edges.size();
    if (words.size() != expect)
        return solution;
    solution.wellFormed = true;
    solution.flow = words[0];
    solution.cost = words[1];
    solution.edgeFlows.assign(words.begin() + 2, words.end());
    return solution;
}

bool
McfWorkload::feasible(const Solution &solution) const
{
    if (!solution.wellFormed ||
        solution.edgeFlows.size() != network_.edges.size())
        return false;
    std::vector<int64_t> net(network_.nodes, 0);
    for (size_t i = 0; i < network_.edges.size(); ++i) {
        int32_t flow = solution.edgeFlows[i];
        const auto &edge = network_.edges[i];
        if (flow < 0 || flow > edge.capacity)
            return false;
        net[edge.from] += flow;
        net[edge.to] -= flow;
    }
    for (unsigned v = 1; v + 1 < network_.nodes; ++v)
        if (net[v] != 0)
            return false;
    return net[0] == solution.flow &&
           net[network_.nodes - 1] == -int64_t{solution.flow};
}

FidelityScore
McfWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                           const std::vector<uint8_t> &test) const
{
    Solution ref = parseSolution(golden);
    Solution got = parseSolution(test);
    FidelityScore score;
    score.unit = "% extra cost vs optimal";
    if (!got.wellFormed || !feasible(got) || got.flow != ref.flow) {
        // Incomplete schedule -- noticeably incorrect, per the paper.
        score.value = 100.0;
        score.acceptable = false;
        return score;
    }
    // 64-bit difference: a corrupted-yet-feasible schedule can carry
    // a cost near INT32_MIN, and the int32 subtraction overflowed.
    score.value =
        ref.cost != 0
            ? 100.0 * static_cast<double>(int64_t{got.cost} - ref.cost) /
                  ref.cost
            : 0.0;
    score.acceptable = got.cost == ref.cost;
    return score;
}

std::pair<int32_t, int32_t>
McfWorkload::referenceOptimum() const
{
    return solveHost(network_);
}

McfWorkload::Params
McfWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test)
        params.trips = 8;
    return params;
}

} // namespace etc::workloads
