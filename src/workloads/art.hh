/**
 * @file
 * Art: an adaptive-resonance image recogniser (SPEC 2000 179.art) for
 * the target ISA -- the library's floating-point workload.
 *
 * Substitution note (DESIGN.md): the full ART-2 network is replaced by
 * its matching core: learned 8x8 templates are slid across a synthetic
 * thermal image; each window computes a normalized resonance
 * (cosine similarity) against every template, the winner is selected,
 * and the globally best window + category + confidence is reported.
 *
 * Coding style: winner/maximum selection is *branch-free* -- float
 * resonances are compared through their (positive-float) bit patterns
 * with slt and multiply-selects, the idiom of vectorized NN kernels.
 * Identification is therefore pure data: the CVar analysis tags most
 * of the FP pipeline (Table 3: 70.8 %), a handful of errors can flip
 * the recognition (Figure 6), and -- with no variable-index loads --
 * the workload never fails catastrophically, matching the paper.
 *
 * Output stream: per window (winner index word, resonance bits word),
 * then the global best (window index, category, resonance bits,
 * vigilance-pass flag).
 *
 * Fidelity (Table 1): error in confidence of match / correct
 * identification of the hidden object.
 */

#ifndef ETC_WORKLOADS_ART_HH
#define ETC_WORKLOADS_ART_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** ART-style recognition workload (floating point). */
class ArtWorkload : public Workload
{
  public:
    struct Params
    {
        unsigned width = 64;
        unsigned height = 64;
        unsigned numTemplates = 4;
        uint64_t seed = 0xa27;
        float vigilance = 0.80f;
        double confidenceTolerance = 0.15; //!< relative confidence band
    };

    /** Parsed recognition result (from the output stream). */
    struct Recognition
    {
        bool wellFormed = false;
        int32_t bestWindow = -1;
        int32_t bestTemplate = -1;
        float confidence = 0.0f;
        bool vigilancePassed = false;
    };

    explicit ArtWorkload(Params params);

    std::string name() const override { return "art"; }

    std::string
    fidelityMeasure() const override
    {
        return "correct identification + error in confidence of match";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Parse the final recognition record from an output stream. */
    Recognition parseRecognition(const std::vector<uint8_t> &stream) const;

    /** Host-side reference recognition (same float op order). */
    Recognition referenceRecognition() const;

    const ThermalScene &scene() const { return scene_; }

    static Params scaled(Scale scale);

  private:
    Params params_;
    ThermalScene scene_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_ART_HH
