/**
 * @file
 * Workload factory: name -> constructed workload at the requested
 * scale.
 */

#include "workloads/workload.hh"

#include "support/logging.hh"
#include "workloads/adpcm.hh"
#include "workloads/art.hh"
#include "workloads/blowfish.hh"
#include "workloads/gsm.hh"
#include "workloads/mcf.hh"
#include "workloads/mpeg.hh"
#include "workloads/susan.hh"

namespace etc::workloads {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "susan", "mpeg", "mcf", "blowfish", "adpcm", "gsm", "art",
    };
    return names;
}

std::unique_ptr<Workload>
createWorkload(const std::string &name, Scale scale)
{
    if (name == "susan")
        return std::make_unique<SusanWorkload>(
            SusanWorkload::scaled(scale));
    if (name == "mpeg")
        return std::make_unique<MpegWorkload>(MpegWorkload::scaled(scale));
    if (name == "mcf")
        return std::make_unique<McfWorkload>(McfWorkload::scaled(scale));
    if (name == "blowfish")
        return std::make_unique<BlowfishWorkload>(
            BlowfishWorkload::scaled(scale));
    if (name == "adpcm")
        return std::make_unique<AdpcmWorkload>(
            AdpcmWorkload::scaled(scale));
    if (name == "gsm")
        return std::make_unique<GsmWorkload>(GsmWorkload::scaled(scale));
    if (name == "art")
        return std::make_unique<ArtWorkload>(ArtWorkload::scaled(scale));
    fatal("unknown workload '", name, "'");
}

} // namespace etc::workloads
