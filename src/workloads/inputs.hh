/**
 * @file
 * Deterministic synthetic input generators shared by the workloads.
 *
 * The paper uses SPEC/MiBench reference inputs (images, speech, text,
 * timetables); these generators produce inputs with the same relevant
 * structure -- edges for susan, motion for mpeg, voiced-speech shape
 * for adpcm/gsm, ASCII text for blowfish, a feasible transportation
 * network for mcf, a noisy thermal image containing a known target for
 * art -- from a fixed seed, so every build reproduces bit-identical
 * programs.
 */

#ifndef ETC_WORKLOADS_INPUTS_HH
#define ETC_WORKLOADS_INPUTS_HH

#include <cstdint>
#include <vector>

namespace etc::workloads {

/** An 8-bit grayscale image. */
struct GrayImage
{
    unsigned width = 0;
    unsigned height = 0;
    std::vector<uint8_t> pixels; //!< row-major, width*height bytes

    uint8_t
    at(unsigned x, unsigned y) const
    {
        return pixels[y * width + x];
    }
};

/**
 * Test image with gradient background, rectangles and a disc --
 * plenty of edges for susan.
 */
GrayImage makeShapesImage(unsigned width, unsigned height, uint64_t seed);

/**
 * A short synthetic video: the shapes image with a rectangle moving
 * one pixel per frame (motion for the P/B frames of mpeg).
 */
std::vector<GrayImage> makeVideo(unsigned width, unsigned height,
                                 unsigned frames, uint64_t seed);

/**
 * Speech-like 16-bit signal: a few harmonics with a slow amplitude
 * envelope plus low-level noise.
 */
std::vector<int16_t> makeSpeech(unsigned samples, uint64_t seed);

/** Printable ASCII text of @p length bytes. */
std::vector<uint8_t> makeAsciiText(unsigned length, uint64_t seed);

/** A directed flow network for the mcf vehicle-scheduling workload. */
struct FlowNetwork
{
    unsigned nodes = 0;   //!< node 0 = source, nodes-1 = sink
    struct Edge
    {
        unsigned from;
        unsigned to;
        int32_t capacity;
        int32_t cost;
    };
    std::vector<Edge> edges;
};

/**
 * Generate a layered transportation network (depot -> trips -> depot)
 * that always admits a feasible schedule.
 *
 * @param trips  number of timetabled trips
 * @param seed   generator seed
 */
FlowNetwork makeScheduleNetwork(unsigned trips, uint64_t seed);

/**
 * Thermal image (floats in [0,1]) with a known 8x8 target pattern
 * embedded, plus the library of learned templates; template
 * `targetTemplate` is the one hidden in the image.
 */
struct ThermalScene
{
    unsigned width = 0;
    unsigned height = 0;
    std::vector<float> image;                //!< row-major
    std::vector<std::vector<float>> templates; //!< each 8x8 = 64 floats
    unsigned targetTemplate = 0;
    unsigned targetX = 0;                    //!< window-aligned position
    unsigned targetY = 0;
};

ThermalScene makeThermalScene(unsigned width, unsigned height,
                              unsigned numTemplates, uint64_t seed);

} // namespace etc::workloads

#endif // ETC_WORKLOADS_INPUTS_HH
