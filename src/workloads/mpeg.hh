/**
 * @file
 * Mpeg: an I/P/B video codec for the target ISA.
 *
 * Substitution note (DESIGN.md): full MPEG-2 is replaced by a codec
 * that preserves the property the paper's fidelity measure relies on:
 * a GOP of I/P/B frames where I frames are intra-coded (quantized
 * pixels), P frames code quantized deltas against the last
 * reconstructed I/P reference, and B frames code coarser deltas
 * against the same reference. Frame-type dispatch is branchy
 * (control); quantization/clamping arithmetic is predicated (data),
 * giving the mixed ~50 % taggable fraction of Table 3.
 *
 * GOP pattern: I B B P B B P B B P B B, repeated every 12 frames (an
 * I-frame refresh bounds error propagation, as in real MPEG streams);
 * every third frame is a P, others B. B frames reference the most
 * recent I/P only (bidirectional prediction omitted -- documented
 * simplification).
 *
 * Fidelity (Table 1/Figure 2): the decoded stream is split into
 * frames; a frame is *bad* if its SNR against the fault-free decoded
 * frame falls below a type-dependent threshold (I frames held to the
 * strictest standard, as in the paper's 2/4/6 dB ladder). The measure
 * is the percentage of bad frames; the viewer threshold is 10 %.
 */

#ifndef ETC_WORKLOADS_MPEG_HH
#define ETC_WORKLOADS_MPEG_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** MPEG-style encode+decode workload. */
class MpegWorkload : public Workload
{
  public:
    /** Frame type in the fixed GOP pattern. */
    enum class FrameType : uint8_t { I, P, B };

    struct Params
    {
        unsigned width = 64;
        unsigned height = 48;
        unsigned frames = 24;
        uint64_t seed = 0x3e60;
        double badFrameThreshold = 0.10; //!< viewer threshold (10 %)
        /** Per-type "bad frame" SNR floors in dB (I, P, B). */
        double snrFloorI = 15.0;
        double snrFloorP = 12.0;
        double snrFloorB = 10.0;
    };

    explicit MpegWorkload(Params params);

    std::string name() const override { return "mpeg"; }

    std::string
    fidelityMeasure() const override
    {
        return "% bad frames (per-type SNR floor vs fault-free decode)";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** @return the GOP frame type of frame @p index. */
    static FrameType frameType(unsigned index);

    /** Host-side reference decoded stream (bit-identical). */
    std::vector<uint8_t> referenceOutput() const;

    /** Fraction of bad frames for a completed trial. */
    double badFrameFraction(const std::vector<uint8_t> &golden,
                            const std::vector<uint8_t> &test) const;

    static Params scaled(Scale scale);

  private:
    Params params_;
    std::vector<GrayImage> video_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_MPEG_HH
