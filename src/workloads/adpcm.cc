#include "workloads/adpcm.hh"

#include <algorithm>
#include <array>

#include "asm/builder.hh"
#include "fidelity/metrics.hh"
#include "support/logging.hh"

namespace etc::workloads {

using namespace isa;
using assembly::ProgramBuilder;

namespace {

/** The standard IMA ADPCM step-size table. */
constexpr std::array<int32_t, 89> STEP_TABLE = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

/** Index adjustment for a 3-bit magnitude: -1,-1,-1,-1,2,4,6,8. */
int
indexAdjust(int delta)
{
    return delta < 4 ? -1 : 2 * delta - 6;
}

/** One IMA ADPCM state-machine step shared by encode and decode. */
struct AdpcmState
{
    int valpred = 0;
    int index = 0;
};

int
clampSample(int value)
{
    return std::clamp(value, -32768, 32767);
}

int
clampIndex(int value)
{
    return std::clamp(value, 0, 88);
}

} // namespace

AdpcmWorkload::AdpcmWorkload(Params params)
    : params_(params), input_(makeSpeech(params.samples, params.seed))
{
    if (params_.samples < 8)
        fatal("adpcm: need at least 8 samples");

    const auto n = static_cast<int32_t>(params_.samples);

    ProgramBuilder b;
    std::vector<int32_t> stepWords(STEP_TABLE.begin(), STEP_TABLE.end());
    b.dataWords("step_table", stepWords);
    {
        std::vector<uint8_t> pcmBytes;
        pcmBytes.reserve(input_.size() * 2);
        for (int16_t sample : input_) {
            auto u = static_cast<uint16_t>(sample);
            pcmBytes.push_back(static_cast<uint8_t>(u));
            pcmBytes.push_back(static_cast<uint8_t>(u >> 8));
        }
        b.dataBytes("pcm_in", pcmBytes);
    }
    b.dataSpace("encoded", params_.samples);

    b.beginFunction("main");
    {
        b.call("adpcm_encode");
        b.call("adpcm_decode");
        b.halt();
    }
    b.endFunction();

    // Emits the predicated "valpred/index clamp" tail shared by the
    // encoder and decoder. Expects: s3 = valpred (unclamped),
    // s4 = index (unclamped). Uses t7, t8, a3.
    auto emitClamps = [&] {
        // valpred = min(valpred, 32767): c = 32767 < v;
        // v += c * (32767 - v).
        b.li(REG_T7, 32767);
        b.slt(REG_A3, REG_T7, REG_S3);
        b.sub(REG_T8, REG_T7, REG_S3);
        b.mul(REG_T8, REG_T8, REG_A3);
        b.add(REG_S3, REG_S3, REG_T8);
        // valpred = max(valpred, -32768).
        b.li(REG_T7, -32768);
        b.slt(REG_A3, REG_S3, REG_T7);
        b.sub(REG_T8, REG_T7, REG_S3);
        b.mul(REG_T8, REG_T8, REG_A3);
        b.add(REG_S3, REG_S3, REG_T8);
        // index = max(index, 0) via the sign mask.
        b.sra(REG_T7, REG_S4, 31);
        b.nor(REG_T7, REG_T7, REG_ZERO);
        b.and_(REG_S4, REG_S4, REG_T7);
        // index = min(index, 88).
        b.li(REG_T7, 88);
        b.slt(REG_A3, REG_T7, REG_S4);
        b.sub(REG_T8, REG_T7, REG_S4);
        b.mul(REG_T8, REG_T8, REG_A3);
        b.add(REG_S4, REG_S4, REG_T8);
    };

    // Emits vpdiff = (step>>3) + c4*step + c2*(step>>1) + c1*(step>>2)
    // into a1. Expects t1 = step, t5 = c4, t9 = c2, v1 = c1.
    auto emitVpdiff = [&] {
        b.sra(REG_A1, REG_T1, 3);
        b.mul(REG_T7, REG_T5, REG_T1);
        b.add(REG_A1, REG_A1, REG_T7);
        b.sra(REG_T8, REG_T1, 1);
        b.mul(REG_T7, REG_T9, REG_T8);
        b.add(REG_A1, REG_A1, REG_T7);
        b.sra(REG_T8, REG_T1, 2);
        b.mul(REG_T7, REG_V1, REG_T8);
        b.add(REG_A1, REG_A1, REG_T7);
    };

    // Emits index += indexAdjust(delta in a2); uses t6, t7, a3.
    auto emitIndexAdjust = [&] {
        b.slti(REG_A3, REG_A2, 4);
        b.li(REG_T6, 1);
        b.sub(REG_A3, REG_T6, REG_A3);   // c = delta >= 4
        b.sll(REG_T7, REG_A2, 1);
        b.addi(REG_T7, REG_T7, -5);      // 2*delta - 5
        b.mul(REG_T7, REG_T7, REG_A3);   // 0 or 2*delta-5
        b.addi(REG_T7, REG_T7, -1);      // -1 + c*(2*delta-5)
        b.add(REG_S4, REG_S4, REG_T7);
    };

    // Emits t1 = stepTable[index]; the sll/add address arithmetic is
    // deliberately ordinary (taggable) -- the workload's residual
    // crash vector.
    auto emitStepLookup = [&] {
        b.sll(REG_A3, REG_S4, 2);
        b.la(REG_T7, "step_table");
        b.add(REG_A3, REG_A3, REG_T7);
        b.lw(REG_T1, 0, REG_A3);
    };

    // ---- adpcm_encode -------------------------------------------------
    // s0 = input ptr, s1 = input end, s2 = encoded ptr,
    // s3 = valpred, s4 = index.
    b.beginFunction("adpcm_encode");
    {
        auto loop = b.newLabel();
        b.la(REG_S0, "pcm_in");
        b.addi(REG_S1, REG_S0, 2 * n);
        b.la(REG_S2, "encoded");
        b.li(REG_S3, 0);
        b.li(REG_S4, 0);
        b.bind(loop);
        b.lh(REG_T0, 0, REG_S0);             // sample
        emitStepLookup();                    // t1 = step
        b.sub(REG_T2, REG_T0, REG_S3);       // diff
        b.sra(REG_T3, REG_T2, 31);           // sign mask
        b.andi(REG_A0, REG_T3, 8);           // sign bit
        b.xor_(REG_T2, REG_T2, REG_T3);
        b.sub(REG_T2, REG_T2, REG_T3);       // |diff|
        b.li(REG_T6, 1);
        // c4 = |diff| >= step; then |diff| -= c4*step.
        b.slt(REG_T5, REG_T2, REG_T1);
        b.sub(REG_T5, REG_T6, REG_T5);
        b.mul(REG_T7, REG_T5, REG_T1);
        b.sub(REG_T2, REG_T2, REG_T7);
        // c2 against step>>1.
        b.sra(REG_T8, REG_T1, 1);
        b.slt(REG_T9, REG_T2, REG_T8);
        b.sub(REG_T9, REG_T6, REG_T9);
        b.mul(REG_T7, REG_T9, REG_T8);
        b.sub(REG_T2, REG_T2, REG_T7);
        // c1 against step>>2.
        b.sra(REG_T8, REG_T1, 2);
        b.slt(REG_V1, REG_T2, REG_T8);
        b.sub(REG_V1, REG_T6, REG_V1);
        emitVpdiff();                        // a1 = vpdiff
        // valpred += sign ? -vpdiff : vpdiff.
        b.xor_(REG_A1, REG_A1, REG_T3);
        b.sub(REG_A1, REG_A1, REG_T3);
        b.add(REG_S3, REG_S3, REG_A1);
        // delta = 4*c4 + 2*c2 + c1.
        b.sll(REG_T5, REG_T5, 2);
        b.sll(REG_T9, REG_T9, 1);
        b.add(REG_A2, REG_T5, REG_T9);
        b.add(REG_A2, REG_A2, REG_V1);
        emitIndexAdjust();
        emitClamps();
        // code = sign | delta, one code byte per sample.
        b.or_(REG_A2, REG_A2, REG_A0);
        b.sb(REG_A2, 0, REG_S2);
        b.addi(REG_S2, REG_S2, 1);
        b.addi(REG_S0, REG_S0, 2);
        b.blt(REG_S0, REG_S1, loop);
        b.ret();
    }
    b.endFunction();

    // ---- adpcm_decode -------------------------------------------------
    // s0 = encoded ptr, s1 = end, s3 = valpred, s4 = index.
    b.beginFunction("adpcm_decode");
    {
        auto loop = b.newLabel();
        b.la(REG_S0, "encoded");
        b.addi(REG_S1, REG_S0, n);
        b.li(REG_S3, 0);
        b.li(REG_S4, 0);
        b.bind(loop);
        b.lbu(REG_T0, 0, REG_S0);            // code
        b.andi(REG_A2, REG_T0, 7);           // delta
        b.andi(REG_A0, REG_T0, 8);           // sign bit
        emitStepLookup();                    // t1 = step
        // Unpack c4/c2/c1 from delta.
        b.srl(REG_T5, REG_A2, 2);
        b.andi(REG_T5, REG_T5, 1);
        b.srl(REG_T9, REG_A2, 1);
        b.andi(REG_T9, REG_T9, 1);
        b.andi(REG_V1, REG_A2, 1);
        emitVpdiff();                        // a1 = vpdiff
        // sign mask from the sign bit: t3 = -(sign >> 3).
        b.srl(REG_T3, REG_A0, 3);
        b.sub(REG_T3, REG_ZERO, REG_T3);
        b.xor_(REG_A1, REG_A1, REG_T3);
        b.sub(REG_A1, REG_A1, REG_T3);
        b.add(REG_S3, REG_S3, REG_A1);
        emitIndexAdjust();
        emitClamps();
        // Emit the reconstructed sample, little-endian.
        b.andi(REG_T7, REG_S3, 0xff);
        b.outb(REG_T7);
        b.srl(REG_T7, REG_S3, 8);
        b.andi(REG_T7, REG_T7, 0xff);
        b.outb(REG_T7);
        b.addi(REG_S0, REG_S0, 1);
        b.blt(REG_S0, REG_S1, loop);
        b.ret();
    }
    b.endFunction();

    program_ = b.finish("main");
}

std::set<std::string>
AdpcmWorkload::eligibleFunctions() const
{
    return {"main", "adpcm_encode", "adpcm_decode"};
}

FidelityScore
AdpcmWorkload::scoreFidelity(const std::vector<uint8_t> &golden,
                             const std::vector<uint8_t> &test) const
{
    FidelityScore score;
    score.value = fidelity::byteSimilarity(golden, test);
    score.acceptable = score.value >= params_.byteThreshold;
    score.unit = "fraction bytes correct";
    return score;
}

std::vector<uint8_t>
AdpcmWorkload::referenceOutput() const
{
    // Encode.
    std::vector<uint8_t> codes;
    codes.reserve(input_.size());
    AdpcmState enc;
    for (int16_t sample : input_) {
        int step = STEP_TABLE[enc.index];
        int diff = sample - enc.valpred;
        int sign = diff < 0 ? 8 : 0;
        int mag = std::abs(diff);
        int delta = 0;
        int vpdiff = step >> 3;
        if (mag >= step) {
            delta |= 4;
            mag -= step;
            vpdiff += step;
        }
        if (mag >= (step >> 1)) {
            delta |= 2;
            mag -= step >> 1;
            vpdiff += step >> 1;
        }
        if (mag >= (step >> 2)) {
            delta |= 1;
            vpdiff += step >> 2;
        }
        enc.valpred = clampSample(sign ? enc.valpred - vpdiff
                                       : enc.valpred + vpdiff);
        enc.index = clampIndex(enc.index + indexAdjust(delta));
        codes.push_back(static_cast<uint8_t>(sign | delta));
    }
    // Decode.
    std::vector<uint8_t> out;
    out.reserve(codes.size() * 2);
    AdpcmState dec;
    for (uint8_t code : codes) {
        int step = STEP_TABLE[dec.index];
        int delta = code & 7;
        int sign = code & 8;
        int vpdiff = step >> 3;
        if (delta & 4)
            vpdiff += step;
        if (delta & 2)
            vpdiff += step >> 1;
        if (delta & 1)
            vpdiff += step >> 2;
        dec.valpred = clampSample(sign ? dec.valpred - vpdiff
                                       : dec.valpred + vpdiff);
        dec.index = clampIndex(dec.index + indexAdjust(delta));
        auto u = static_cast<uint16_t>(static_cast<int16_t>(dec.valpred));
        out.push_back(static_cast<uint8_t>(u));
        out.push_back(static_cast<uint8_t>(u >> 8));
    }
    return out;
}

AdpcmWorkload::Params
AdpcmWorkload::scaled(Scale scale)
{
    Params params;
    if (scale == Scale::Test)
        params.samples = 256;
    return params;
}

} // namespace etc::workloads
