/**
 * @file
 * Adpcm: IMA/DVI ADPCM speech compression (MiBench), reimplemented for
 * the target ISA.
 *
 * The encoder turns 16-bit PCM samples into 4-bit codes (4:1
 * compression) through the standard step-size/index state machine; the
 * decoder reconstructs PCM. Both passes are fully predicated (sign
 * masks, multiply-selects for the clamps) exactly as the optimized
 * integer codec compiles, so nearly all of the value chain is taggable
 * -- reproducing adpcm's ~93 % low-reliability fraction in Table 3.
 * The one variable-index memory access, stepTable[index], keeps its
 * (taggable) address arithmetic: corrupting it is the workload's
 * realistic residual-crash vector, matching the paper's nonzero
 * with-protection failure rate.
 *
 * Fidelity (Table 1): percent of output bytes equal to the fault-free
 * decoded output.
 */

#ifndef ETC_WORKLOADS_ADPCM_HH
#define ETC_WORKLOADS_ADPCM_HH

#include "workloads/inputs.hh"
#include "workloads/workload.hh"

namespace etc::workloads {

/** IMA ADPCM encode+decode workload. */
class AdpcmWorkload : public Workload
{
  public:
    struct Params
    {
        unsigned samples = 2048;
        uint64_t seed = 0xadc0;
        double byteThreshold = 0.90; //!< acceptable if >= 90 % correct
    };

    explicit AdpcmWorkload(Params params);

    std::string name() const override { return "adpcm"; }

    std::string
    fidelityMeasure() const override
    {
        return "% bytes equal to the fault-free decoded PCM output";
    }

    const assembly::Program &program() const override { return program_; }

    std::set<std::string> eligibleFunctions() const override;

    FidelityScore scoreFidelity(
        const std::vector<uint8_t> &golden,
        const std::vector<uint8_t> &test) const override;

    /** Host-side reference decode output (bit-identical to the ISA). */
    std::vector<uint8_t> referenceOutput() const;

    /** The synthetic input signal. */
    const std::vector<int16_t> &input() const { return input_; }

    static Params scaled(Scale scale);

  private:
    Params params_;
    std::vector<int16_t> input_;
    assembly::Program program_;
};

} // namespace etc::workloads

#endif // ETC_WORKLOADS_ADPCM_HH
