/**
 * @file
 * Fixed-width text tables and CSV emission for reproducing the paper's
 * tables on stdout and persisting raw results.
 */

#ifndef ETC_SUPPORT_TABLE_HH
#define ETC_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace etc {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Algorithm", "Errors", "% Failures"});
 *   t.addRow({"Susan", "2200", "0%"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render column-aligned text with a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180 quoting for commas/quotes/newlines). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    size_t rowCount() const { return rows_.size(); }

    /** @return number of columns. */
    size_t columnCount() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string formatDouble(double value, int digits = 2);

/** Format a fraction as a percentage string, e.g. 0.125 -> "12.5%". */
std::string formatPercent(double fraction, int digits = 1);

} // namespace etc

#endif // ETC_SUPPORT_TABLE_HH
