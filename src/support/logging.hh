/**
 * @file
 * Status-message and error-handling helpers, modeled on gem5's
 * base/logging.hh conventions.
 *
 * panic()  -- an internal invariant was violated (library bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config); exits.
 * warn()   -- something works, but not as well as it should.
 * inform() -- normal operating status for the user.
 */

#ifndef ETC_SUPPORT_LOGGING_HH
#define ETC_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace etc {

/** Exception thrown by panic(); carries the formatted message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a parameter pack into a single string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report a library bug. Never call this for user errors.
 * Throws PanicError so tests can assert on invariant violations.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user/configuration error.
 * Throws FatalError; main() style wrappers catch and exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Emit a warning to stderr; execution continues. */
void warnMessage(const std::string &msg);

/** Emit an informational status message to stderr; execution continues. */
void informMessage(const std::string &msg);

/** Formatted variants of warnMessage()/informMessage(). */
template <typename... Args>
void
warn(Args &&...args)
{
    warnMessage(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    informMessage(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence inform() output (benchmarks use this). */
void setQuiet(bool quiet);

/** @return whether inform() output is currently suppressed. */
bool isQuiet();

} // namespace etc

#endif // ETC_SUPPORT_LOGGING_HH
