#include "support/rng.hh"

#include <algorithm>
#include <unordered_set>

#include "support/logging.hh"

namespace etc {

namespace {

/** SplitMix64 step used to expand a single seed into full state. */
uint64_t
splitMix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // All-zero state is the one illegal state for xoshiro; the SplitMix64
    // expansion cannot produce it from any seed, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

uint64_t
Rng::next64()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (~bound + 1) % bound; // == 2^64 mod bound
    for (;;) {
        uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::range: empty range [", lo, ", ", hi, "]");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next64());
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::vector<uint64_t>
Rng::sampleDistinct(uint64_t n, uint64_t k)
{
    std::vector<uint64_t> out;
    if (n == 0)
        return out;
    if (k >= n) {
        out.resize(n);
        for (uint64_t i = 0; i < n; ++i)
            out[i] = i;
        return out;
    }
    // Floyd's algorithm: k iterations, O(k) memory, unbiased.
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(static_cast<size_t>(k) * 2);
    for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = below(j + 1);
        if (!chosen.insert(t).second)
            chosen.insert(j);
    }
    out.assign(chosen.begin(), chosen.end());
    std::sort(out.begin(), out.end());
    return out;
}

Rng
Rng::split()
{
    return Rng(next64() ^ 0xa3ec647659359acdull);
}

Rng
Rng::forStream(uint64_t seed, uint64_t stream)
{
    // Two SplitMix64 rounds: whiten the seed, then fold in the stream
    // counter, so consecutive stream indices yield uncorrelated states.
    uint64_t x = seed;
    uint64_t mixed = splitMix64(x);
    x = mixed ^ stream;
    return Rng(splitMix64(x));
}

} // namespace etc
