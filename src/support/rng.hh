/**
 * @file
 * Deterministic pseudo-random number generation for fault-injection
 * campaigns and synthetic workload inputs.
 *
 * Every random decision in the library flows through Rng so that a
 * campaign is exactly reproducible from its seed. The generator is
 * xoshiro256** seeded via SplitMix64, both public-domain algorithms.
 */

#ifndef ETC_SUPPORT_RNG_HH
#define ETC_SUPPORT_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace etc {

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * Not cryptographic; used for injection-site sampling and input
 * synthesis only.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit output. */
    uint64_t next64();

    /** @return the next raw 32-bit output. */
    uint32_t next32() { return static_cast<uint32_t>(next64() >> 32); }

    /**
     * @return a uniform integer in [0, bound). @p bound must be > 0.
     * Uses rejection sampling; unbiased.
     */
    uint64_t below(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Sample @p k distinct values uniformly from [0, n), sorted
     * ascending. Used to choose dynamic-instruction injection sites.
     * If k >= n, returns all of [0, n).
     */
    std::vector<uint64_t> sampleDistinct(uint64_t n, uint64_t k);

    /** Derive an independent child generator from this one's stream. */
    Rng split();

    /**
     * Counter-based stream derivation: the returned generator's state
     * is a pure function of (@p seed, @p stream), independent of any
     * other stream. Campaign trial t draws from forStream(seed, t), so
     * its randomness does not depend on the order -- or the thread --
     * in which trials execute.
     */
    static Rng forStream(uint64_t seed, uint64_t stream);

  private:
    std::array<uint64_t, 4> state_;
};

} // namespace etc

#endif // ETC_SUPPORT_RNG_HH
