/**
 * @file
 * Cooperative shutdown: a process-wide stop flag plus SIGINT/SIGTERM
 * handlers that set it.
 *
 * Long-running drivers (`etc_lab run`, `etc_lab serve`) poll
 * stopRequested() at persistence boundaries -- between shard chunks
 * and between cells -- so a signal finishes and persists the in-flight
 * chunk, then exits cleanly with a summary instead of dying mid-write.
 * A second signal while the first is still draining force-exits
 * immediately (the escape hatch for a wedged run).
 */

#ifndef ETC_SUPPORT_SHUTDOWN_HH
#define ETC_SUPPORT_SHUTDOWN_HH

namespace etc {

/**
 * Install SIGINT/SIGTERM handlers that call requestStop(). Idempotent;
 * call once at the top of a long-running command.
 */
void installStopSignalHandlers();

/** Set the stop flag (async-signal-safe). */
void requestStop();

/** @return whether a stop has been requested. */
bool stopRequested();

/** Clear the stop flag (tests and repeated in-process commands). */
void clearStopRequest();

} // namespace etc

#endif // ETC_SUPPORT_SHUTDOWN_HH
