#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace etc {

ProportionInterval
wilsonInterval(uint64_t successes, uint64_t trials, double z)
{
    ProportionInterval out;
    if (trials == 0) {
        out.high = 1.0;
        return out;
    }
    if (successes > trials)
        panic("wilsonInterval: successes ", successes, " > trials ",
              trials);
    double n = static_cast<double>(trials);
    double p = static_cast<double>(successes) / n;
    out.point = p;
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double centre = (p + z2 / (2.0 * n)) / denom;
    double margin =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    out.low = std::max(0.0, centre - margin);
    out.high = std::min(1.0, centre + margin);
    return out;
}

double
mean(const std::vector<double> &sample)
{
    if (sample.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : sample)
        sum += v;
    return sum / static_cast<double>(sample.size());
}

double
sampleStdDev(const std::vector<double> &sample)
{
    if (sample.size() < 2)
        return 0.0;
    double m = mean(sample);
    double sum = 0.0;
    for (double v : sample)
        sum += (v - m) * (v - m);
    return std::sqrt(sum / static_cast<double>(sample.size() - 1));
}

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    uint64_t combined = n_ + other.n_;
    double delta = other.mean_ - mean_;
    mean_ += delta * static_cast<double>(other.n_) /
             static_cast<double>(combined);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(combined);
    n_ = combined;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stdDev() const
{
    return std::sqrt(variance());
}

} // namespace etc
