/**
 * @file
 * Small statistics helpers for campaign reporting: sample mean and
 * standard deviation, and the Wilson score interval for binomial
 * proportions (failure rates over Monte-Carlo trials).
 */

#ifndef ETC_SUPPORT_STATS_HH
#define ETC_SUPPORT_STATS_HH

#include <cstdint>
#include <vector>

namespace etc {

/** A two-sided confidence interval for a proportion. */
struct ProportionInterval
{
    double point = 0.0; //!< observed proportion
    double low = 0.0;   //!< lower bound
    double high = 0.0;  //!< upper bound
};

/**
 * Wilson score interval for @p successes out of @p trials.
 *
 * @param successes number of positive outcomes
 * @param trials    number of trials (0 yields the degenerate [0,1])
 * @param z         normal quantile (default 1.96 = 95% confidence)
 */
ProportionInterval wilsonInterval(uint64_t successes, uint64_t trials,
                                  double z = 1.96);

/** Sample mean (0 for an empty sample). */
double mean(const std::vector<double> &sample);

/** Unbiased sample standard deviation (0 for fewer than 2 points). */
double sampleStdDev(const std::vector<double> &sample);

} // namespace etc

#endif // ETC_SUPPORT_STATS_HH
