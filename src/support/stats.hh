/**
 * @file
 * Small statistics helpers for campaign reporting: sample mean and
 * standard deviation, and the Wilson score interval for binomial
 * proportions (failure rates over Monte-Carlo trials).
 */

#ifndef ETC_SUPPORT_STATS_HH
#define ETC_SUPPORT_STATS_HH

#include <cstdint>
#include <vector>

namespace etc {

/** A two-sided confidence interval for a proportion. */
struct ProportionInterval
{
    double point = 0.0; //!< observed proportion
    double low = 0.0;   //!< lower bound
    double high = 0.0;  //!< upper bound
};

/**
 * Wilson score interval for @p successes out of @p trials.
 *
 * @param successes number of positive outcomes
 * @param trials    number of trials (0 yields the degenerate [0,1])
 * @param z         normal quantile (default 1.96 = 95% confidence)
 */
ProportionInterval wilsonInterval(uint64_t successes, uint64_t trials,
                                  double z = 1.96);

/** Sample mean (0 for an empty sample). */
double mean(const std::vector<double> &sample);

/** Unbiased sample standard deviation (0 for fewer than 2 points). */
double sampleStdDev(const std::vector<double> &sample);

/**
 * Mergeable running mean/variance accumulator (Welford's algorithm;
 * merging uses Chan et al.'s parallel update). Each campaign worker
 * accumulates privately and the partials merge in worker-index order,
 * so parallel statistics are deterministic for a given trial
 * partition.
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Fold another accumulator's observations into this one. */
    void merge(const RunningStat &other);

    uint64_t count() const { return n_; }

    /** Mean of the observations (0 for an empty accumulator). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than 2 observations). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stdDev() const;

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0; //!< sum of squared deviations from the mean
};

/**
 * Mergeable tally of Monte-Carlo trial outcomes. The three buckets
 * mirror the paper's classification: completed, crashed (memory fault /
 * bad jump / arithmetic fault), and timed out ("infinite execution").
 */
struct OutcomeTally
{
    uint64_t completed = 0;
    uint64_t crashed = 0;
    uint64_t timedOut = 0;

    uint64_t total() const { return completed + crashed + timedOut; }

    /** Fraction of trials that ended catastrophically. */
    double
    failureRate() const
    {
        uint64_t n = total();
        return n ? static_cast<double>(crashed + timedOut) /
                       static_cast<double>(n)
                 : 0.0;
    }

    void
    merge(const OutcomeTally &other)
    {
        completed += other.completed;
        crashed += other.crashed;
        timedOut += other.timedOut;
    }
};

} // namespace etc

#endif // ETC_SUPPORT_STATS_HH
