/**
 * @file
 * Small bit-manipulation helpers used by the fault-injection model and
 * the ISA encoder.
 */

#ifndef ETC_SUPPORT_BITS_HH
#define ETC_SUPPORT_BITS_HH

#include <cstdint>

#include "support/logging.hh"

namespace etc {

/**
 * Flip a single bit of a 32-bit word.
 *
 * @param value the original word
 * @param bit   bit position, 0 (LSB) through 31 (MSB)
 * @return the word with exactly that bit inverted
 */
inline uint32_t
flipBit(uint32_t value, unsigned bit)
{
    if (bit >= 32)
        panic("flipBit: bit index ", bit, " out of range");
    return value ^ (uint32_t{1} << bit);
}

/**
 * Extract a bit field [lo, lo+len) from a word.
 *
 * @param value source word
 * @param lo    least-significant bit of the field
 * @param len   field width in bits (1..32)
 */
inline uint32_t
bitsField(uint32_t value, unsigned lo, unsigned len)
{
    if (len == 0 || len > 32 || lo >= 32)
        panic("bitsField: bad field [", lo, ", +", len, ")");
    uint32_t mask = (len >= 32) ? ~uint32_t{0}
                                : ((uint32_t{1} << len) - 1);
    return (value >> lo) & mask;
}

/**
 * Insert @p field into bits [lo, lo+len) of @p value.
 */
inline uint32_t
insertField(uint32_t value, unsigned lo, unsigned len, uint32_t field)
{
    uint32_t mask = (len >= 32) ? ~uint32_t{0}
                                : ((uint32_t{1} << len) - 1);
    if (field & ~mask)
        panic("insertField: field 0x", std::hex, field, " exceeds ", len,
              " bits");
    return (value & ~(mask << lo)) | (field << lo);
}

/** Sign-extend the low @p bits of @p value to a full int32_t. */
inline int32_t
signExtend(uint32_t value, unsigned bits)
{
    if (bits == 0 || bits > 32)
        panic("signExtend: bad width ", bits);
    if (bits == 32)
        return static_cast<int32_t>(value);
    uint32_t sign = uint32_t{1} << (bits - 1);
    uint32_t mask = (uint32_t{1} << bits) - 1;
    value &= mask;
    return static_cast<int32_t>((value ^ sign) - sign);
}

} // namespace etc

#endif // ETC_SUPPORT_BITS_HH
