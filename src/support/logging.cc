#include "support/logging.hh"

namespace etc {

namespace {
bool quietFlag = false;
} // namespace

void
warnMessage(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informMessage(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "info: " << msg << std::endl;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

} // namespace etc
