/**
 * @file
 * ASCII line/scatter chart used to render the paper's figures in a
 * terminal. Each bench_figN binary prints both the raw series (CSV-ish)
 * and a chart so the shape of the reproduction is visible at a glance.
 */

#ifndef ETC_SUPPORT_CHART_HH
#define ETC_SUPPORT_CHART_HH

#include <ostream>
#include <string>
#include <vector>

namespace etc {

/** One named data series of (x, y) points. */
struct Series
{
    std::string name;             //!< legend label
    char marker = '*';            //!< glyph plotted for this series
    std::vector<double> xs;       //!< x coordinates
    std::vector<double> ys;       //!< y coordinates
};

/**
 * Renders one or more series onto a character grid with axes and a
 * legend. Intended for quick visual inspection, not publication.
 */
class AsciiChart
{
  public:
    /**
     * @param title   printed above the plot
     * @param xLabel  x-axis caption
     * @param yLabel  y-axis caption
     * @param width   plot-area width in characters
     * @param height  plot-area height in characters
     */
    AsciiChart(std::string title, std::string xLabel, std::string yLabel,
               unsigned width = 64, unsigned height = 20);

    /** Add a series; points with non-finite coordinates are skipped. */
    void addSeries(Series series);

    /** Optionally draw a horizontal threshold line at @p y. */
    void setThreshold(double y, std::string label);

    /** Render the chart. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    unsigned width_;
    unsigned height_;
    std::vector<Series> series_;
    bool hasThreshold_ = false;
    double threshold_ = 0.0;
    std::string thresholdLabel_;
};

} // namespace etc

#endif // ETC_SUPPORT_CHART_HH
