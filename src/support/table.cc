#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace etc {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        panic("Table: header must have at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("Table::addRow: got ", row.size(), " cells, expected ",
              header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << quote(row[c]);
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int digits)
{
    return formatDouble(fraction * 100.0, digits) + "%";
}

} // namespace etc
