#include "support/chart.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/logging.hh"
#include "support/table.hh"

namespace etc {

AsciiChart::AsciiChart(std::string title, std::string xLabel,
                       std::string yLabel, unsigned width, unsigned height)
    : title_(std::move(title)), xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel)), width_(std::max(16u, width)),
      height_(std::max(6u, height))
{
}

void
AsciiChart::addSeries(Series series)
{
    if (series.xs.size() != series.ys.size())
        panic("AsciiChart::addSeries: xs/ys size mismatch for '",
              series.name, "'");
    series_.push_back(std::move(series));
}

void
AsciiChart::setThreshold(double y, std::string label)
{
    hasThreshold_ = true;
    threshold_ = y;
    thresholdLabel_ = std::move(label);
}

void
AsciiChart::print(std::ostream &os) const
{
    double xMin = std::numeric_limits<double>::infinity();
    double xMax = -xMin, yMin = xMin, yMax = -xMin;
    size_t points = 0;
    for (const auto &s : series_) {
        for (size_t i = 0; i < s.xs.size(); ++i) {
            if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i]))
                continue;
            xMin = std::min(xMin, s.xs[i]);
            xMax = std::max(xMax, s.xs[i]);
            yMin = std::min(yMin, s.ys[i]);
            yMax = std::max(yMax, s.ys[i]);
            ++points;
        }
    }
    if (hasThreshold_) {
        yMin = std::min(yMin, threshold_);
        yMax = std::max(yMax, threshold_);
    }
    os << "== " << title_ << " ==\n";
    if (points == 0) {
        os << "(no data)\n";
        return;
    }
    if (xMax == xMin)
        xMax = xMin + 1.0;
    if (yMax == yMin)
        yMax = yMin + 1.0;
    // A little headroom so extreme points aren't glued to the frame.
    double ySpan = yMax - yMin;
    yMax += 0.05 * ySpan;
    yMin -= 0.05 * ySpan;

    std::vector<std::string> grid(height_, std::string(width_, ' '));

    auto toCol = [&](double x) {
        double f = (x - xMin) / (xMax - xMin);
        auto c = static_cast<long>(std::lround(f * (width_ - 1)));
        return std::clamp<long>(c, 0, width_ - 1);
    };
    auto toRow = [&](double y) {
        double f = (y - yMin) / (yMax - yMin);
        auto r = static_cast<long>(std::lround((1.0 - f) * (height_ - 1)));
        return std::clamp<long>(r, 0, height_ - 1);
    };

    if (hasThreshold_) {
        long r = toRow(threshold_);
        for (unsigned c = 0; c < width_; ++c)
            grid[r][c] = '-';
    }
    for (const auto &s : series_) {
        // Connect consecutive points with interpolated marks so trends
        // read as lines rather than isolated glyphs.
        long prevC = -1, prevR = -1;
        for (size_t i = 0; i < s.xs.size(); ++i) {
            if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i]))
                continue;
            long c = toCol(s.xs[i]), r = toRow(s.ys[i]);
            if (prevC >= 0) {
                long steps = std::max(std::labs(c - prevC),
                                      std::labs(r - prevR));
                for (long k = 1; k < steps; ++k) {
                    long ic = prevC + (c - prevC) * k / steps;
                    long ir = prevR + (r - prevR) * k / steps;
                    if (grid[ir][ic] == ' ' || grid[ir][ic] == '-')
                        grid[ir][ic] = '.';
                }
            }
            grid[r][c] = s.marker;
            prevC = c;
            prevR = r;
        }
    }

    os << yLabel_ << '\n';
    for (unsigned r = 0; r < height_; ++r) {
        double yAt = yMax - (yMax - yMin) * r / (height_ - 1);
        os << std::setw(9) << formatDouble(yAt, 1) << " |" << grid[r]
           << '\n';
    }
    os << std::string(10, ' ') << '+' << std::string(width_, '-') << '\n';
    std::ostringstream xAxis;
    xAxis << formatDouble(xMin, 1);
    std::string right = formatDouble(xMax, 1);
    std::string pad(width_ > xAxis.str().size() + right.size()
                        ? width_ - xAxis.str().size() - right.size()
                        : 1,
                    ' ');
    os << std::string(11, ' ') << xAxis.str() << pad << right << '\n';
    os << std::string(11, ' ') << xLabel_ << '\n';
    for (const auto &s : series_)
        os << "    " << s.marker << " " << s.name << '\n';
    if (hasThreshold_)
        os << "    - " << thresholdLabel_ << " (y = "
           << formatDouble(threshold_, 1) << ")\n";
}

} // namespace etc
