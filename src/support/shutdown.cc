#include "support/shutdown.hh"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace etc {

namespace {

std::atomic<bool> stopFlag{false};

extern "C" void
onStopSignal(int)
{
    // Second signal while the first is still draining: the user wants
    // out *now*. _exit() is async-signal-safe; 130 = 128 + SIGINT.
    if (stopFlag.exchange(true))
        ::_exit(130);
}

} // namespace

void
installStopSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: poll() returns EINTR promptly
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
}

void
requestStop()
{
    stopFlag.store(true);
}

bool
stopRequested()
{
    return stopFlag.load();
}

void
clearStopRequest()
{
    stopFlag.store(false);
}

} // namespace etc
