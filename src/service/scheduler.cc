#include "service/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "store/index.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace etc::service {

namespace {

/** Scheduler-level metrics: queue/worker gauges tick at bookkeeping
 *  frequency (task transitions), never inside simulation loops. */
struct SchedulerMetrics
{
    telemetry::Gauge &queueDepth = telemetry::gauge(
        "etc_scheduler_queue_depth",
        "Cell tasks waiting for a worker");
    telemetry::Gauge &workers = telemetry::gauge(
        "etc_scheduler_workers",
        "Worker threads in the scheduler pool");
    telemetry::Gauge &workersBusy = telemetry::gauge(
        "etc_scheduler_workers_busy",
        "Worker threads currently executing a cell task");
    telemetry::Counter &cellsDone = telemetry::counter(
        "etc_scheduler_cells_done_total",
        "Cell tasks completed successfully (simulated or cached)");
    telemetry::Counter &cellsCached = telemetry::counter(
        "etc_scheduler_cells_cached_total",
        "Cell tasks satisfied entirely from the result store");
    telemetry::Counter &cellsFailed = telemetry::counter(
        "etc_scheduler_cells_failed_total",
        "Cell tasks that raised an error");
    telemetry::Histogram &chunkSeconds = telemetry::histogram(
        "etc_scheduler_chunk_seconds",
        "Wall time per job chunk (one shard of a cell)",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60});
};

SchedulerMetrics &
schedulerMetrics()
{
    static SchedulerMetrics metrics;
    return metrics;
}

} // namespace

const char *
cellStateName(CellState state)
{
    switch (state) {
      case CellState::Queued: return "queued";
      case CellState::Running: return "running";
      case CellState::Done: return "done";
      case CellState::Failed: return "failed";
    }
    return "unknown";
}

core::ErrorToleranceStudy &
Scheduler::WorkloadContext::ensureStudy()
{
    // Caller holds runMutex; the constructor executes the golden
    // profiling run, paid once per experiment per daemon lifetime.
    if (!study)
        study = std::make_unique<core::ErrorToleranceStudy>(
            *workload, studyConfig);
    return *study;
}

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config))
{
    if (config_.cacheDir.empty())
        fatal("scheduler: a cache directory is required (jobs resume "
              "from persisted shards)");
}

Scheduler::~Scheduler()
{
    stop();
}

void
Scheduler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    started_ = true;
    unsigned workers = std::max(1u, config_.workers);
    schedulerMetrics().workers.set(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

Scheduler::WorkloadContext &
Scheduler::contextFor(const bench::Experiment &exp)
{
    auto &slot = contexts_[exp.name];
    if (!slot) {
        slot = std::make_unique<WorkloadContext>();
        slot->exp = &exp;
        slot->workload =
            workloads::createWorkload(exp.workload, exp.scale);
        bench::BenchOptions opts;
        opts.threads = config_.threads;
        opts.checkpointInterval = config_.checkpointInterval;
        opts.gangWidth = config_.gangWidth;
        opts.seed = config_.seed;
        opts.cacheDir = config_.cacheDir;
        slot->studyConfig = bench::makeStudyConfig(exp, opts);
        // Static analysis only -- no simulation; cell keys derive
        // from it, so submissions and the figure endpoint agree with
        // `etc_lab run` on the same cache directory.
        slot->protection = core::computeStudyProtection(
            *slot->workload, slot->studyConfig);
    }
    return *slot;
}

Scheduler::SubmitOutcome
Scheduler::submit(
    const bench::Experiment &exp, unsigned trialsOverride,
    std::optional<std::pair<unsigned, std::string>> cell,
    std::optional<unsigned> gangWidth)
{
    unsigned trials =
        trialsOverride ? trialsOverride : exp.defaultTrials;
    std::vector<std::pair<unsigned, std::string>> wanted =
        cell ? std::vector<std::pair<unsigned, std::string>>{*cell}
             : bench::experimentCells(exp);

    std::lock_guard<std::mutex> lock(mutex_);
    WorkloadContext &ctx = contextFor(exp);

    struct PlannedCell
    {
        unsigned errors;
        std::string policy;
        store::CellKey key;
        std::string fingerprint;
    };
    std::vector<PlannedCell> planned;
    std::string signature;
    for (const auto &[errors, policy] : wanted) {
        auto key = core::makeCellKey(*ctx.workload, ctx.protection,
                                     ctx.studyConfig, errors, policy,
                                     trials);
        auto fingerprint = key.fingerprint();
        signature += fingerprint;
        signature += ';';
        planned.push_back({errors, policy, std::move(key),
                           std::move(fingerprint)});
    }

    // Job-level idempotency: an identical submission that is still
    // queued or running is the same job -- attach to it.
    if (auto active = activeJobsBySignature_.find(signature);
        active != activeJobsBySignature_.end()) {
        const Job &job = jobs_.at(active->second);
        std::string state = jobStateOf(job);
        if (state == "queued" || state == "running")
            return {job.id, true, job.cells.size()};
        activeJobsBySignature_.erase(active);
    }

    Job job;
    job.id = "j" + std::to_string(nextJobId_++);
    job.experiment = exp.name;
    job.signature = signature;
    bool enqueued = false;
    for (auto &plan : planned) {
        // Cell-level idempotency: reuse a live (queued/running) task
        // for the same CellKey instead of running it twice. Completed
        // tasks are not reused -- a fresh task re-reads the store and
        // completes as a cache hit with zero trials.
        std::shared_ptr<CellTask> task;
        if (auto live = liveTasks_.find(plan.fingerprint);
            live != liveTasks_.end()) {
            task = live->second;
        } else {
            task = std::make_shared<CellTask>();
            task->ctx = &ctx;
            task->errors = plan.errors;
            task->policy = plan.policy;
            task->trials = trials;
            task->key = std::move(plan.key);
            task->fingerprint = plan.fingerprint;
            task->gangWidth = gangWidth.value_or(config_.gangWidth);
            liveTasks_[plan.fingerprint] = task;
            queue_.push_back(task);
            enqueued = true;
        }
        job.cells.push_back(std::move(task));
    }

    std::string id = job.id;
    size_t cellCount = job.cells.size();
    jobs_[id] = std::move(job);
    activeJobsBySignature_[signature] = id;
    schedulerMetrics().queueDepth.set(
        static_cast<int64_t>(queue_.size()));
    evictCompletedJobs();
    if (enqueued)
        workAvailable_.notify_all();
    return {id, false, cellCount};
}

void
Scheduler::evictCompletedJobs()
{
    // Caller holds mutex_. A long-running daemon must not accumulate
    // one Job record per submission forever; keep the newest
    // MAX_RETAINED_JOBS and drop the oldest *completed* ones (their
    // results live on in the store -- only the status snapshot
    // becomes a 404). Active jobs are never evicted.
    if (jobs_.size() <= MAX_RETAINED_JOBS)
        return;
    std::vector<std::pair<uint64_t, std::string>> completed;
    for (const auto &[id, job] : jobs_) {
        std::string state = jobStateOf(job);
        if (state == "done" || state == "failed")
            completed.emplace_back(std::stoull(id.substr(1)), id);
    }
    std::sort(completed.begin(), completed.end());
    for (const auto &[number, id] : completed) {
        if (jobs_.size() <= MAX_RETAINED_JOBS)
            break;
        auto it = jobs_.find(id);
        auto sig = activeJobsBySignature_.find(it->second.signature);
        if (sig != activeJobsBySignature_.end() && sig->second == id)
            activeJobsBySignature_.erase(sig);
        jobs_.erase(it);
    }
}

void
Scheduler::workerLoop()
{
    while (true) {
        std::shared_ptr<CellTask> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_)
                return;
            task = queue_.front();
            queue_.pop_front();
            task->state = CellState::Running;
            schedulerMetrics().queueDepth.set(
                static_cast<int64_t>(queue_.size()));
        }
        schedulerMetrics().workersBusy.add(1);
        runTask(task);
        schedulerMetrics().workersBusy.add(-1);
    }
}

void
Scheduler::runTask(const std::shared_ptr<CellTask> &taskPtr)
{
    CellTask &task = *taskPtr;
    try {
        auto stopNow = [this] {
            std::lock_guard<std::mutex> lock(mutex_);
            return stopping_ || stopRequested();
        };

        // Cache first, *before* queueing on the experiment's run
        // mutex: a warm-cache cell completes with zero simulation
        // even while another cell of the same experiment is mid-run,
        // instead of tying a worker up behind it. (Each worker probes
        // through its own ResultStore instance; see the store's
        // concurrent-writer contract. No re-probe is needed under the
        // mutex: tasks are deduplicated on CellKey, and the study's
        // own cache-aware path skips any shard that lands in the
        // store in the meantime.)
        {
            auto probeStarted = std::chrono::steady_clock::now();
            store::ResultStore probe(config_.cacheDir);
            if (probe.loadCell(task.key)) {
                // A cache hit still costs a store load; report that
                // wall time (instead of the old 0) so dashboards get a
                // finite number, with cached=true marking that
                // trialsPerSec is meaningless for this cell.
                std::chrono::duration<double> probeSpan =
                    std::chrono::steady_clock::now() - probeStarted;
                std::lock_guard<std::mutex> lock(mutex_);
                task.state = CellState::Done;
                task.cached = true;
                task.wallSeconds += probeSpan.count();
                liveTasks_.erase(task.fingerprint);
                schedulerMetrics().cellsDone.add();
                schedulerMetrics().cellsCached.add();
                return;
            }
        }

        // One cell of an experiment at a time: the study (and its
        // golden run, runners, and store bookkeeping) is not
        // thread-safe. The cell's trials still fan out across the
        // study's own campaign thread pool.
        std::lock_guard<std::mutex> ctxLock(task.ctx->runMutex);

        if (stopNow()) {
            std::lock_guard<std::mutex> lock(mutex_);
            task.state = CellState::Queued;
            queue_.push_front(taskPtr);
            schedulerMetrics().queueDepth.set(
                static_cast<int64_t>(queue_.size()));
            return;
        }

        auto &study = task.ctx->ensureStudy();
        // Retune the shared study to this job's gang width (execution
        // strategy only; results are bit-identical for every width).
        study.setGangWidth(task.gangWidth);
        uint64_t before = study.trialsExecuted();
        auto started = std::chrono::steady_clock::now();
        auto elapsed = [&started] {
            std::chrono::duration<double> span =
                std::chrono::steady_clock::now() - started;
            return span.count();
        };
        unsigned chunks = std::max(1u, config_.chunks);
        bool interrupted = false;
        for (unsigned chunk = 0; chunk < chunks; ++chunk) {
            if (stopNow()) {
                interrupted = true;
                break;
            }
            // Each chunk persists as a shard record; stored chunks
            // (this daemon's or a predecessor's) are skipped, so a
            // resubmitted cell resumes instead of restarting.
            auto chunkStarted = std::chrono::steady_clock::now();
            telemetry::TraceSpan chunkSpan("scheduler", "chunk");
            if (chunkSpan.active())
                chunkSpan.setArgs(
                    "{\"cell\":\"" + task.fingerprint + "\",\"chunk\":" +
                    std::to_string(chunk) + "}");
            study.runCellShard(task.errors, task.policy, task.trials,
                               chunk, chunks);
            std::chrono::duration<double> chunkSpanSeconds =
                std::chrono::steady_clock::now() - chunkStarted;
            schedulerMetrics().chunkSeconds.observe(
                chunkSpanSeconds.count());
        }
        if (interrupted) {
            std::lock_guard<std::mutex> lock(mutex_);
            uint64_t ran = study.trialsExecuted() - before;
            task.trialsExecuted += ran;
            task.wallSeconds += elapsed();
            trialsExecuted_ += ran;
            task.state = CellState::Queued;
            queue_.push_front(taskPtr);
            schedulerMetrics().queueDepth.set(
                static_cast<int64_t>(queue_.size()));
            return;
        }

        // Promote the tiling shards into the cell record (assembled,
        // persisted, and bit-identical to a monolithic run).
        study.runCell(task.errors, task.policy, task.trials);

        // The cell's store writes just grew the archive; reload the
        // secondary index so its gauges (etc_index_cells & co) track
        // growth without waiting for a query. Observation only --
        // an unreadable index must never fail the cell.
        try {
            store::StoreIndex index(config_.cacheDir);
            index.load();
        } catch (const std::exception &e) {
            warn("scheduler: index refresh failed: ", e.what());
        }

        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t ran = study.trialsExecuted() - before;
        task.trialsExecuted += ran;
        task.wallSeconds += elapsed();
        trialsExecuted_ += ran;
        task.cached = task.trialsExecuted == 0;
        task.state = CellState::Done;
        liveTasks_.erase(task.fingerprint);
        schedulerMetrics().cellsDone.add();
        if (task.cached)
            schedulerMetrics().cellsCached.add();
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(mutex_);
        task.state = CellState::Failed;
        task.error = e.what();
        liveTasks_.erase(task.fingerprint);
        schedulerMetrics().cellsFailed.add();
        warn("scheduler: cell ", task.key.canonical(), " failed: ",
             e.what());
    }
}

std::string
Scheduler::jobStateOf(const Job &job)
{
    bool anyFailed = false, anyActive = false, anyStarted = false;
    for (const auto &task : job.cells) {
        switch (task->state) {
          case CellState::Failed: anyFailed = true; break;
          case CellState::Running:
            anyActive = true;
            anyStarted = true;
            break;
          case CellState::Queued: anyActive = true; break;
          case CellState::Done: anyStarted = true; break;
        }
    }
    if (anyFailed)
        return "failed";
    if (!anyActive)
        return "done";
    return anyStarted ? "running" : "queued";
}

std::optional<JobStatus>
Scheduler::jobStatus(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = it->second;

    JobStatus status;
    status.id = job.id;
    status.experiment = job.experiment;
    status.state = jobStateOf(job);
    status.cellsTotal = job.cells.size();
    for (const auto &task : job.cells) {
        CellStatus cell;
        cell.fingerprint = task->fingerprint;
        cell.canonical = task->key.canonical();
        cell.errors = task->errors;
        cell.policy = task->policy;
        cell.trials = task->trials;
        cell.state = task->state;
        cell.cached = task->cached;
        cell.trialsExecuted = task->trialsExecuted;
        cell.wallSeconds = task->wallSeconds;
        cell.error = task->error;
        if (task->state == CellState::Done)
            ++status.cellsDone;
        status.trialsExecuted += task->trialsExecuted;
        status.cells.push_back(std::move(cell));
    }
    return status;
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SchedulerStats stats;
    stats.jobs = jobs_.size();
    stats.trialsExecuted = trialsExecuted_;
    std::set<const CellTask *> seen;
    for (const auto &[id, job] : jobs_) {
        for (const auto &task : job.cells) {
            if (!seen.insert(task.get()).second)
                continue; // shared with an attached job
            switch (task->state) {
              case CellState::Queued: ++stats.cellsQueued; break;
              case CellState::Running: ++stats.cellsRunning; break;
              case CellState::Done: ++stats.cellsDone; break;
              case CellState::Failed: ++stats.cellsFailed; break;
            }
        }
    }
    return stats;
}

} // namespace etc::service
