#include "service/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "store/index.hh"
#include "store/record.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace etc::service {

namespace {

/** Scheduler-level metrics: queue/worker gauges tick at bookkeeping
 *  frequency (task transitions), never inside simulation loops. */
struct SchedulerMetrics
{
    telemetry::Gauge &queueDepth = telemetry::gauge(
        "etc_scheduler_queue_depth",
        "Cell tasks waiting for a worker");
    telemetry::Gauge &workers = telemetry::gauge(
        "etc_scheduler_workers",
        "Worker threads in the scheduler pool");
    telemetry::Gauge &workersBusy = telemetry::gauge(
        "etc_scheduler_workers_busy",
        "Worker threads currently executing a cell task");
    telemetry::Counter &cellsDone = telemetry::counter(
        "etc_scheduler_cells_done_total",
        "Cell tasks completed successfully (simulated or cached)");
    telemetry::Counter &cellsCached = telemetry::counter(
        "etc_scheduler_cells_cached_total",
        "Cell tasks satisfied entirely from the result store");
    telemetry::Counter &cellsFailed = telemetry::counter(
        "etc_scheduler_cells_failed_total",
        "Cell tasks that raised an error");
    telemetry::Histogram &chunkSeconds = telemetry::histogram(
        "etc_scheduler_chunk_seconds",
        "Wall time per job chunk (one shard-range lease of a cell)",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60});
};

SchedulerMetrics &
schedulerMetrics()
{
    static SchedulerMetrics metrics;
    return metrics;
}

/** How long an idle worker sleeps between coordinator polls. Lease
 *  activity (completions, failures) pokes the condvar, so this bounds
 *  only the latency of *expiry* detection, not of normal progress. */
constexpr std::chrono::milliseconds IDLE_POLL{100};

} // namespace

const char *
cellStateName(CellState state)
{
    switch (state) {
      case CellState::Queued: return "queued";
      case CellState::Running: return "running";
      case CellState::Done: return "done";
      case CellState::Failed: return "failed";
    }
    return "unknown";
}

core::ErrorToleranceStudy &
Scheduler::WorkloadContext::ensureStudy()
{
    // Caller holds runMutex; the constructor executes the golden
    // profiling run, paid once per experiment per daemon lifetime.
    if (!study)
        study = std::make_unique<core::ErrorToleranceStudy>(
            *workload, studyConfig);
    return *study;
}

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)),
      coordinator_(CoordinatorConfig{config_.leaseTtlMs,
                                     config_.maxLeaseIssues})
{
    if (config_.cacheDir.empty())
        fatal("scheduler: a cache directory is required (jobs resume "
              "from persisted shards)");
    // Lease completions wake an idle worker immediately, so cells
    // promote as soon as their last shard lands instead of on the
    // next poll tick. The callback fires outside the coordinator
    // mutex; notifying without mutex_ held is safe (workers re-check
    // all state on wakeup anyway).
    coordinator_.setActivityCallback(
        [this] { workAvailable_.notify_all(); });
}

Scheduler::~Scheduler()
{
    stop();
}

void
Scheduler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    started_ = true;
    // workers = 0 still spawns one thread: the steward that probes
    // the cache, registers leases, and promotes completed cells. It
    // just never executes leases itself (remote agents do).
    unsigned threads = std::max(1u, config_.workers);
    schedulerMetrics().workers.set(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

Scheduler::WorkloadContext &
Scheduler::contextFor(const bench::Experiment &exp)
{
    auto &slot = contexts_[exp.name];
    if (!slot) {
        slot = std::make_unique<WorkloadContext>();
        slot->exp = &exp;
        slot->workload =
            workloads::createWorkload(exp.workload, exp.scale);
        bench::BenchOptions opts;
        opts.threads = config_.threads;
        opts.checkpointInterval = config_.checkpointInterval;
        opts.gangWidth = config_.gangWidth;
        opts.seed = config_.seed;
        opts.cacheDir = config_.cacheDir;
        slot->studyConfig = bench::makeStudyConfig(exp, opts);
        // Static analysis only -- no simulation; cell keys derive
        // from it, so submissions and the figure endpoint agree with
        // `etc_lab run` on the same cache directory.
        slot->protection = core::computeStudyProtection(
            *slot->workload, slot->studyConfig);
    }
    return *slot;
}

Scheduler::SubmitOutcome
Scheduler::submit(
    const bench::Experiment &exp, unsigned trialsOverride,
    std::optional<std::pair<unsigned, std::string>> cell,
    std::optional<unsigned> gangWidth)
{
    unsigned trials =
        trialsOverride ? trialsOverride : exp.defaultTrials;
    std::vector<std::pair<unsigned, std::string>> wanted =
        cell ? std::vector<std::pair<unsigned, std::string>>{*cell}
             : bench::experimentCells(exp);

    std::lock_guard<std::mutex> lock(mutex_);
    WorkloadContext &ctx = contextFor(exp);

    struct PlannedCell
    {
        unsigned errors;
        std::string policy;
        store::CellKey key;
        std::string fingerprint;
    };
    std::vector<PlannedCell> planned;
    std::string signature;
    for (const auto &[errors, policy] : wanted) {
        auto key = core::makeCellKey(*ctx.workload, ctx.protection,
                                     ctx.studyConfig, errors, policy,
                                     trials);
        auto fingerprint = key.fingerprint();
        signature += fingerprint;
        signature += ';';
        planned.push_back({errors, policy, std::move(key),
                           std::move(fingerprint)});
    }

    // Job-level idempotency: an identical submission that is still
    // queued or running is the same job -- attach to it.
    if (auto active = activeJobsBySignature_.find(signature);
        active != activeJobsBySignature_.end()) {
        const Job &job = jobs_.at(active->second);
        std::string state = jobStateOf(job);
        if (state == "queued" || state == "running")
            return {job.id, true, job.cells.size()};
        activeJobsBySignature_.erase(active);
    }

    Job job;
    job.id = "j";
    job.id += std::to_string(nextJobId_++);
    job.experiment = exp.name;
    job.signature = signature;
    bool enqueued = false;
    for (auto &plan : planned) {
        // Cell-level idempotency: reuse a live (queued/running) task
        // for the same CellKey instead of running it twice. Completed
        // tasks are not reused -- a fresh task re-reads the store and
        // completes as a cache hit with zero trials.
        std::shared_ptr<CellTask> task;
        if (auto live = liveTasks_.find(plan.fingerprint);
            live != liveTasks_.end()) {
            task = live->second;
        } else {
            task = std::make_shared<CellTask>();
            task->ctx = &ctx;
            task->errors = plan.errors;
            task->policy = plan.policy;
            task->trials = trials;
            task->key = std::move(plan.key);
            task->fingerprint = plan.fingerprint;
            task->gangWidth = gangWidth.value_or(config_.gangWidth);
            liveTasks_[plan.fingerprint] = task;
            queue_.push_back(task);
            enqueued = true;
        }
        job.cells.push_back(std::move(task));
    }

    std::string id = job.id;
    size_t cellCount = job.cells.size();
    jobs_[id] = std::move(job);
    activeJobsBySignature_[signature] = id;
    schedulerMetrics().queueDepth.set(
        static_cast<int64_t>(queue_.size()));
    evictCompletedJobs();
    if (enqueued)
        workAvailable_.notify_all();
    return {id, false, cellCount};
}

void
Scheduler::evictCompletedJobs()
{
    // Caller holds mutex_. A long-running daemon must not accumulate
    // one Job record per submission forever; keep the newest
    // MAX_RETAINED_JOBS and drop the oldest *completed* ones (their
    // results live on in the store -- only the status snapshot
    // becomes a 404). Active jobs are never evicted.
    if (jobs_.size() <= MAX_RETAINED_JOBS)
        return;
    std::vector<std::pair<uint64_t, std::string>> completed;
    for (const auto &[id, job] : jobs_) {
        std::string state = jobStateOf(job);
        if (state == "done" || state == "failed")
            completed.emplace_back(std::stoull(id.substr(1)), id);
    }
    std::sort(completed.begin(), completed.end());
    for (const auto &[number, id] : completed) {
        if (jobs_.size() <= MAX_RETAINED_JOBS)
            break;
        auto it = jobs_.find(id);
        auto sig = activeJobsBySignature_.find(it->second.signature);
        if (sig != activeJobsBySignature_.end() && sig->second == id)
            activeJobsBySignature_.erase(sig);
        jobs_.erase(it);
    }
}

void
Scheduler::workerLoop(unsigned workerIndex)
{
    // Local executors are lease workers like any remote agent, just
    // with a function call instead of an HTTP round trip. Their
    // "heartbeat" is implicit: a local lease either completes (the
    // daemon is alive) or the daemon died with it -- and then the
    // whole coordinator died too, so nothing is left to expire it.
    const bool executor = config_.workers > 0;
    const std::string workerName =
        "local#" + std::to_string(workerIndex);
    bool idle = false;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            // No predicate: lease completions notify without holding
            // mutex_, and the loop below re-derives all state anyway.
            // The timeout bounds expiry-detection latency when every
            // remote agent has gone silent.
            if (idle)
                workAvailable_.wait_for(lock, IDLE_POLL);
            if (stopping_)
                return;
        }
        coordinator_.sweepExpired();
        bool didWork = collectFailedCells();
        didWork |= promoteCompletedCells();
        didWork |= probeNextTask();
        if (executor)
            didWork |= executeOneLease(workerName);
        idle = !didWork;
    }
}

bool
Scheduler::probeNextTask()
{
    std::shared_ptr<CellTask> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = queue_.front();
        queue_.pop_front();
        task->state = CellState::Running;
        schedulerMetrics().queueDepth.set(
            static_cast<int64_t>(queue_.size()));
    }
    try {
        // Cache first: a warm-cache cell completes with zero
        // simulation and never touches the coordinator. (Each worker
        // probes through its own ResultStore instance; see the
        // store's concurrent-writer contract.)
        auto probeStarted = std::chrono::steady_clock::now();
        store::ResultStore probe(config_.cacheDir);
        if (probe.loadCell(task->key)) {
            // A cache hit still costs a store load; report that wall
            // time (instead of 0) so dashboards get a finite number,
            // with cached=true marking that trialsPerSec is
            // meaningless for this cell.
            std::chrono::duration<double> probeSpan =
                std::chrono::steady_clock::now() - probeStarted;
            std::lock_guard<std::mutex> lock(mutex_);
            task->state = CellState::Done;
            task->cached = true;
            task->wallSeconds += probeSpan.count();
            liveTasks_.erase(task->fingerprint);
            schedulerMetrics().cellsDone.add();
            schedulerMetrics().cellsCached.add();
            return true;
        }

        // Miss: decompose into shard-range leases. Stripes whose
        // shard record is already stored (a killed predecessor's
        // progress) register as done, so the cell resumes.
        unsigned shardCount =
            std::max(1u, std::min(config_.chunks, task->trials));
        std::vector<bool> alreadyDone(shardCount, false);
        for (unsigned i = 0; i < shardCount; ++i) {
            auto [lo, hi] = core::ErrorToleranceStudy::shardRange(
                task->trials, i, shardCount);
            alreadyDone[i] = probe.hasShard(task->key, lo, hi);
        }

        LeaseCell cell;
        cell.fingerprint = task->fingerprint;
        cell.experiment = task->ctx->exp->name;
        cell.errors = task->errors;
        cell.policy = task->policy;
        cell.trials = task->trials;
        cell.seed = task->ctx->studyConfig.seed;
        cell.checkpointInterval =
            task->ctx->studyConfig.checkpointInterval;
        cell.staticPrune = task->ctx->studyConfig.staticPrune;
        cell.gangWidth = task->gangWidth;

        // Registered *before* the coordinator sees the cell, so a
        // remote completion arriving immediately can find the task.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            leasedTasks_[task->fingerprint] = task;
        }
        coordinator_.registerCell(cell, shardCount, alreadyDone);
    } catch (const std::exception &e) {
        failTask(task, e.what());
    }
    return true;
}

bool
Scheduler::executeOneLease(const std::string &worker)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return false;
    }
    // A stop signal (graceful shutdown) parks local execution; the
    // leases re-pend via expiry and any progress is already persisted
    // as shard records, so a restarted daemon resumes mid-cell.
    if (stopRequested())
        return false;

    auto grants = coordinator_.acquire(worker, 1);
    if (grants.empty())
        return false;
    const LeaseGrant &grant = grants.front();
    auto task = leasedTask(grant.cell.fingerprint);
    if (!task) {
        // Cannot happen in-process (tasks register before their
        // leases), but keep the lease machine consistent anyway.
        coordinator_.fail(grant.id, worker,
                          "no local task for lease " + grant.id);
        return true;
    }

    schedulerMetrics().workersBusy.add(1);
    try {
        // One lease of an experiment at a time: the study (and its
        // golden run, runners, and store bookkeeping) is not
        // thread-safe. The stripe's trials still fan out across the
        // study's own campaign thread pool.
        std::lock_guard<std::mutex> ctxLock(task->ctx->runMutex);
        auto &study = task->ctx->ensureStudy();
        // Retune the shared study to this job's gang width (execution
        // strategy only; results are bit-identical for every width).
        study.setGangWidth(task->gangWidth);
        uint64_t before = study.trialsExecuted();
        auto started = std::chrono::steady_clock::now();
        {
            telemetry::TraceSpan chunkSpan("scheduler", "chunk");
            if (chunkSpan.active())
                chunkSpan.setArgs("{\"cell\":\"" + task->fingerprint +
                                  "\",\"chunk\":" +
                                  std::to_string(grant.shardIndex) +
                                  "}");
            // Persists the stripe as a shard record; an already
            // stored stripe (e.g. pushed by a remote worker while
            // this lease was granted) is skipped from the cache.
            study.runCellShard(task->errors, task->policy,
                               task->trials, grant.shardIndex,
                               grant.shardCount);
        }
        std::chrono::duration<double> span =
            std::chrono::steady_clock::now() - started;
        schedulerMetrics().chunkSeconds.observe(span.count());
        uint64_t ran = study.trialsExecuted() - before;
        // Task/global tallies accrue at promotion (from the
        // coordinator's sums), not here -- one accounting path for
        // local and remote workers alike.
        coordinator_.complete(grant.id, worker, ran, span.count());
    } catch (const std::exception &e) {
        // A local chunk failure rides the same re-issue path as a
        // dead remote worker: re-pend (another grant may succeed on
        // a transient error) until the issue cap fails the cell.
        warn("scheduler: lease ", grant.id, " failed on ", worker,
             ": ", e.what());
        coordinator_.fail(grant.id, worker, e.what());
    }
    schedulerMetrics().workersBusy.add(-1);
    return true;
}

bool
Scheduler::promoteCompletedCells()
{
    auto completed = coordinator_.takeCompleted();
    for (const auto &done : completed)
        promoteCell(done);
    return !completed.empty();
}

void
Scheduler::promoteCell(const CompletedCell &done)
{
    const std::string &fingerprint = done.cell.fingerprint;
    auto task = leasedTask(fingerprint);
    if (!task) {
        // The task vanished (collected as failed by a racing worker);
        // nothing to promote into.
        coordinator_.finishCell(fingerprint);
        return;
    }
    auto promoteStarted = std::chrono::steady_clock::now();
    try {
        store::ResultStore store(config_.cacheDir);
        if (!store.hasCell(task->key)) {
            // Merge the shard tiling into the cell record: assembled,
            // persisted, and bit-identical to a monolithic run,
            // whoever executed the stripes. No simulation happens
            // here -- promotion is pure store arithmetic.
            auto shards =
                store::selectPrefixTiling(store.loadShards(task->key));
            try {
                auto summary = store::mergeShardSummaries(
                    task->key, std::move(shards));
                store.storeCell(task->key, summary);
            } catch (const store::StoreFormatError &) {
                // The tiling has gaps: some "completed" stripes never
                // reached the store (a worker lied or its push was
                // lost). Re-pend exactly those stripes.
                std::vector<unsigned> missing;
                for (unsigned i = 0; i < done.shardCount; ++i) {
                    auto [lo, hi] =
                        core::ErrorToleranceStudy::shardRange(
                            task->trials, i, done.shardCount);
                    if (!store.hasShard(task->key, lo, hi))
                        missing.push_back(i);
                }
                if (missing.empty())
                    throw; // genuinely unmergeable: fail the cell
                warn("scheduler: cell ", fingerprint, " missing ",
                     missing.size(),
                     " completed stripe(s) from the store; "
                     "re-issuing their leases");
                coordinator_.reopenStripes(fingerprint, missing);
                return;
            }
        }
        store.dropShards(task->key);

        // The cell's store writes just grew the archive; reload the
        // secondary index so its gauges (etc_index_cells & co) track
        // growth without waiting for a query. Observation only --
        // an unreadable index must never fail the cell.
        try {
            store::StoreIndex index(config_.cacheDir);
            index.load();
        } catch (const std::exception &e) {
            warn("scheduler: index refresh failed: ", e.what());
        }

        std::chrono::duration<double> promoteSpan =
            std::chrono::steady_clock::now() - promoteStarted;
        finishTask(task, done.trialsExecuted,
                   done.wallSeconds + promoteSpan.count());
        coordinator_.finishCell(fingerprint);
    } catch (const std::exception &e) {
        failTask(task, e.what());
        coordinator_.finishCell(fingerprint);
    }
}

bool
Scheduler::collectFailedCells()
{
    auto failed = coordinator_.takeFailed();
    for (const auto &[fingerprint, error] : failed) {
        if (auto task = leasedTask(fingerprint))
            failTask(task, error);
    }
    return !failed.empty();
}

std::shared_ptr<Scheduler::CellTask>
Scheduler::leasedTask(const std::string &fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = leasedTasks_.find(fingerprint);
    return it == leasedTasks_.end() ? nullptr : it->second;
}

void
Scheduler::finishTask(const std::shared_ptr<CellTask> &task,
                      uint64_t trialsExecuted, double wallSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    task->trialsExecuted += trialsExecuted;
    task->wallSeconds += wallSeconds;
    trialsExecuted_ += trialsExecuted;
    // Every stripe came from stored shards: the cell resumed (or was
    // pushed) without this daemon simulating a single trial.
    task->cached = task->trialsExecuted == 0;
    task->state = CellState::Done;
    liveTasks_.erase(task->fingerprint);
    leasedTasks_.erase(task->fingerprint);
    schedulerMetrics().cellsDone.add();
    if (task->cached)
        schedulerMetrics().cellsCached.add();
}

void
Scheduler::failTask(const std::shared_ptr<CellTask> &task,
                    const std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    task->state = CellState::Failed;
    task->error = error;
    liveTasks_.erase(task->fingerprint);
    leasedTasks_.erase(task->fingerprint);
    schedulerMetrics().cellsFailed.add();
    warn("scheduler: cell ", task->key.canonical(), " failed: ",
         error);
}

std::vector<LeaseGrant>
Scheduler::acquireLeases(const std::string &worker, unsigned max)
{
    return coordinator_.acquire(worker, max);
}

LeaseBeat
Scheduler::heartbeatLease(const std::string &leaseId,
                          const std::string &worker)
{
    return coordinator_.heartbeat(leaseId, worker);
}

Scheduler::LeaseCompletion
Scheduler::completeLease(const std::string &leaseId,
                         const std::string &worker,
                         uint64_t trialsExecuted, double wallSeconds)
{
    auto lease = coordinator_.lookupLease(leaseId);
    if (!lease) {
        // The lease id encodes its cell fingerprint; if that cell is
        // already promoted, this is a ghost of a re-issued lease
        // whose bytes matched by construction -- tell it "done" so it
        // stops retrying. Anything else is genuinely unknown.
        std::string fingerprint =
            leaseId.substr(0, leaseId.find('.'));
        bool hex16 =
            fingerprint.size() == 16 &&
            std::all_of(fingerprint.begin(), fingerprint.end(),
                        [](char c) {
                            return (c >= '0' && c <= '9') ||
                                   (c >= 'a' && c <= 'f');
                        });
        if (hex16 && store::ResultStore(config_.cacheDir)
                         .hasCellByFingerprint(fingerprint))
            return LeaseCompletion::LateDone;
        return LeaseCompletion::Unknown;
    }

    // Trust but verify: "complete" must mean the stripe's bytes are
    // actually in the store (pushed via /v1/shards, written by a
    // local worker sharing the cache, or subsumed by the promoted
    // cell record). A completion without bytes would merge a hole.
    if (auto task = leasedTask(lease->cell.fingerprint)) {
        store::ResultStore store(config_.cacheDir);
        if (!store.hasShard(task->key, lease->lo, lease->hi) &&
            !store.hasCell(task->key))
            return LeaseCompletion::MissingShard;
    }
    coordinator_.complete(leaseId, worker, trialsExecuted,
                          wallSeconds);
    return LeaseCompletion::Done;
}

bool
Scheduler::failLease(const std::string &leaseId,
                     const std::string &worker,
                     const std::string &error)
{
    return coordinator_.fail(leaseId, worker, error);
}

store::ResultStore::IngestOutcome
Scheduler::ingestRecord(const std::string &text)
{
    store::ResultStore store(config_.cacheDir);
    return store.ingestRecord(text);
}

CoordinatorStats
Scheduler::fleetStats() const
{
    return coordinator_.stats();
}

std::vector<LeaseInfo>
Scheduler::fleetLeases() const
{
    return coordinator_.leases();
}

std::string
Scheduler::jobStateOf(const Job &job)
{
    bool anyFailed = false, anyActive = false, anyStarted = false;
    for (const auto &task : job.cells) {
        switch (task->state) {
          case CellState::Failed: anyFailed = true; break;
          case CellState::Running:
            anyActive = true;
            anyStarted = true;
            break;
          case CellState::Queued: anyActive = true; break;
          case CellState::Done: anyStarted = true; break;
        }
    }
    if (anyFailed)
        return "failed";
    if (!anyActive)
        return "done";
    return anyStarted ? "running" : "queued";
}

std::optional<JobStatus>
Scheduler::jobStatus(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = it->second;

    JobStatus status;
    status.id = job.id;
    status.experiment = job.experiment;
    status.state = jobStateOf(job);
    status.cellsTotal = job.cells.size();
    for (const auto &task : job.cells) {
        CellStatus cell;
        cell.fingerprint = task->fingerprint;
        cell.canonical = task->key.canonical();
        cell.errors = task->errors;
        cell.policy = task->policy;
        cell.trials = task->trials;
        cell.state = task->state;
        cell.cached = task->cached;
        cell.trialsExecuted = task->trialsExecuted;
        cell.wallSeconds = task->wallSeconds;
        cell.error = task->error;
        if (task->state == CellState::Done)
            ++status.cellsDone;
        status.trialsExecuted += task->trialsExecuted;
        status.cells.push_back(std::move(cell));
    }
    return status;
}

SchedulerStats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SchedulerStats stats;
    stats.jobs = jobs_.size();
    stats.trialsExecuted = trialsExecuted_;
    std::set<const CellTask *> seen;
    for (const auto &[id, job] : jobs_) {
        for (const auto &task : job.cells) {
            if (!seen.insert(task.get()).second)
                continue; // shared with an attached job
            switch (task->state) {
              case CellState::Queued: ++stats.cellsQueued; break;
              case CellState::Running: ++stats.cellsRunning; break;
              case CellState::Done: ++stats.cellsDone; break;
              case CellState::Failed: ++stats.cellsFailed; break;
            }
        }
    }
    return stats;
}

} // namespace etc::service
