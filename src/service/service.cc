#include "service/service.hh"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "core/query.hh"
#include "core/vulnerability_report.hh"
#include "store/index.hh"
#include "store/json.hh"
#include "workloads/workload.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"

namespace etc::service {

namespace {

/** Human-readable double mirror (exactness lives in the bit field). */
std::string
readableDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** Strict decimal u32 (the queryNumber grammar, narrowed). */
std::optional<unsigned>
parseDecimalU32(const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    uint64_t value = 0;
    for (char c : text) {
        value = value * 10 + static_cast<uint64_t>(c - '0');
        if (value > 0xffffffffull)
            return std::nullopt;
    }
    return static_cast<unsigned>(value);
}

std::string
encodeIndexHealth(const store::IndexHealth &health)
{
    store::JsonObjectWriter writer;
    writer.field("cells", health.cells)
        .field("shardSets", health.shardSets)
        .field("shardRanges", health.shardRanges)
        .field("journalEntries", health.journalEntries)
        .field("journalCorrupt", health.journalCorrupt)
        .field("manifestPresent", health.manifestPresent)
        .field("orphanedShards", health.orphanedShards);
    return writer.str();
}

/**
 * Non-negative seconds from a JSON number or string field (absent
 * fields are 0; wall time is telemetry, not bit-exact data, so plain
 * decimal text is fine here). nullopt means unparseable.
 */
std::optional<double>
parseSeconds(const store::JsonValue *value)
{
    if (!value)
        return 0.0;
    if (value->kind != store::JsonValue::Kind::Number &&
        value->kind != store::JsonValue::Kind::String)
        return std::nullopt;
    try {
        size_t used = 0;
        double parsed = std::stod(value->text, &used);
        if (used != value->text.size() || !(parsed >= 0.0))
            return std::nullopt;
        return parsed;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

/** Everything `etc_lab work` needs to execute the stripe and verify
 *  it rebuilt the exact CellKey the coordinator expects. */
std::string
encodeLeaseGrant(const LeaseGrant &grant)
{
    store::JsonObjectWriter writer;
    writer.field("id", grant.id)
        .field("cell", grant.cell.fingerprint)
        .field("experiment", grant.cell.experiment)
        .field("errors", uint64_t{grant.cell.errors})
        .field("policy", grant.cell.policy)
        .field("trials", uint64_t{grant.cell.trials})
        .field("seed", store::hexU64(grant.cell.seed))
        .field("checkpointInterval", grant.cell.checkpointInterval)
        .field("staticPrune", grant.cell.staticPrune)
        .field("gangWidth", uint64_t{grant.cell.gangWidth})
        .field("shardIndex", uint64_t{grant.shardIndex})
        .field("shardCount", uint64_t{grant.shardCount})
        .field("lo", uint64_t{grant.lo})
        .field("hi", uint64_t{grant.hi})
        .field("issue", uint64_t{grant.issue})
        .field("ttlMs", grant.ttlMs);
    return writer.str();
}

bool
isFingerprint(const std::string &text)
{
    // 16 lowercase hex digits -- also keeps request paths from ever
    // naming a file outside <root>/cells/.
    if (text.size() != 16)
        return false;
    return text.find_first_not_of("0123456789abcdef") ==
           std::string::npos;
}

std::string
encodeCellStatus(const CellStatus &cell)
{
    store::JsonObjectWriter writer;
    writer.field("key", cell.fingerprint)
        .field("canonical", cell.canonical)
        .field("errors", uint64_t{cell.errors})
        // "mode" kept as a deprecated mirror of "policy" so
        // pre-policy API consumers keep parsing.
        .field("mode", cell.policy)
        .field("policy", cell.policy)
        .field("trials", uint64_t{cell.trials})
        .field("state", cellStateName(cell.state))
        .field("cached", cell.cached)
        .field("trialsExecuted", cell.trialsExecuted)
        // Throughput of the simulation this daemon actually ran for
        // the cell (0 for cached or still-queued cells), so daemon
        // users see trials/sec without grepping BENCH_JSON lines.
        .field("wallSeconds", readableDouble(cell.wallSeconds))
        .field("trialsPerSec", readableDouble(cell.trialsPerSec()));
    if (!cell.error.empty())
        writer.field("error", cell.error);
    return writer.str();
}

std::string
encodeJobStatus(const JobStatus &status)
{
    std::string cells = "[";
    for (size_t i = 0; i < status.cells.size(); ++i) {
        if (i)
            cells += ',';
        cells += encodeCellStatus(status.cells[i]);
    }
    cells += ']';

    store::JsonObjectWriter writer;
    writer.field("job", status.id)
        .field("experiment", status.experiment)
        .field("state", status.state)
        .field("cellsTotal", uint64_t{status.cellsTotal})
        .field("cellsDone", uint64_t{status.cellsDone})
        .field("trialsExecuted", status.trialsExecuted)
        .rawField("cells", cells);
    return writer.str();
}

std::string
encodeKeyJson(const store::CellKey &key)
{
    store::JsonObjectWriter writer;
    writer.field("workload", key.workload)
        .field("mode", key.policy)
        .field("policy", key.policy)
        .field("errors", uint64_t{key.errors})
        .field("trials", uint64_t{key.trials})
        .field("seed", store::hexU64(key.seed))
        .field("budgetBits",
               store::hexU64(store::doubleBits(key.budgetFactor)))
        .field("memoryModel", key.memoryModel)
        .field("program", key.programHash);
    if (!key.policyHash.empty())
        writer.field("policyHash", key.policyHash);
    writer.field("canonical", key.canonical())
        .field("fingerprint", key.fingerprint());
    return writer.str();
}

std::string
encodeSummaryJson(const core::CellSummary &summary)
{
    std::string fidelities = "[";
    for (size_t i = 0; i < summary.fidelities.size(); ++i) {
        const auto &score = summary.fidelities[i];
        if (i)
            fidelities += ',';
        store::JsonObjectWriter line;
        line.field("bits",
                   store::hexU64(store::doubleBits(score.value)))
            .field("value", readableDouble(score.value))
            .field("acceptable", score.acceptable)
            .field("unit", score.unit);
        fidelities += line.str();
    }
    fidelities += ']';

    store::JsonObjectWriter writer;
    writer.field("trials", uint64_t{summary.trials})
        .field("completed", uint64_t{summary.completed})
        .field("crashed", uint64_t{summary.crashed})
        .field("timedOut", uint64_t{summary.timedOut})
        .field("trialsPruned", summary.trialsPruned)
        .field("totalInstructions", summary.totalInstructions)
        .field("failureRate", readableDouble(summary.failureRate()))
        .field("meanFidelity", readableDouble(summary.meanFidelity()))
        .field("acceptableRate",
               readableDouble(summary.acceptableRate()))
        .rawField("fidelities", fidelities);
    return writer.str();
}

} // namespace

HttpResponse
errorResponse(int status, const std::string &message)
{
    store::JsonObjectWriter writer;
    writer.field("error", message).field("status", uint64_t(status));
    return HttpResponse::json(status, writer.str());
}

CampaignService::CampaignService(Scheduler &scheduler)
    : scheduler_(scheduler)
{}

HttpResponse
CampaignService::handle(const HttpRequest &request)
{
    const std::string path = request.path();

    if (path == "/v1/jobs") {
        if (request.method != "POST")
            return errorResponse(405, "use POST to submit a job");
        return submitJob(request);
    }
    if (path.rfind("/v1/jobs/", 0) == 0) {
        if (request.method != "GET")
            return errorResponse(405, "use GET for job status");
        return jobStatus(path.substr(9));
    }
    if (path.rfind("/v1/cells/", 0) == 0) {
        if (request.method != "GET")
            return errorResponse(405, "use GET for cell records");
        return cellRecord(path.substr(10));
    }
    if (path == "/v1/experiments") {
        if (request.method != "GET")
            return errorResponse(405,
                                 "use GET for the experiment registry");
        return experimentList();
    }
    if (path == "/v1/policies") {
        if (request.method != "GET")
            return errorResponse(405,
                                 "use GET for the policy registry");
        return policyList();
    }
    if (path.rfind("/v1/figures/", 0) == 0) {
        if (request.method != "GET")
            return errorResponse(405, "use GET for figures");
        return figure(path.substr(12), request);
    }
    if (path.rfind("/v1/analysis/", 0) == 0) {
        if (request.method != "GET")
            return errorResponse(405, "use GET for analysis reports");
        return analysis(path.substr(13));
    }
    if (path == "/v1/query") {
        if (request.method != "GET")
            return errorResponse(405, "use GET for archive queries");
        return query(request);
    }
    if (path == "/v1/index") {
        if (request.method != "GET")
            return errorResponse(405, "use GET for the archive index");
        return indexStatus();
    }
    if (path == "/v1/leases/acquire") {
        if (request.method != "POST")
            return errorResponse(405, "use POST to acquire leases");
        return acquireLeases(request);
    }
    if (path.rfind("/v1/leases/", 0) == 0) {
        if (request.method != "POST")
            return errorResponse(405,
                                 "use POST for lease lifecycle calls");
        return leaseAction(path.substr(11), request);
    }
    if (path == "/v1/shards") {
        if (request.method != "POST")
            return errorResponse(405,
                                 "use POST to push shard records");
        return ingestShard(request);
    }
    if (path == "/v1/fleet") {
        if (request.method != "GET")
            return errorResponse(405, "use GET for fleet status");
        return fleet();
    }
    if (path == "/v1/healthz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET for health checks");
        return healthz();
    }
    if (path == "/v1/metricz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET for metrics");
        return metricz();
    }
    return errorResponse(404, "no such endpoint: " + path);
}

HttpResponse
CampaignService::submitJob(const HttpRequest &request)
{
    store::JsonValue body;
    try {
        body = store::parseJson(request.body);
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("malformed JSON body: ") +
                                 e.what());
    }
    if (!body.isObject())
        return errorResponse(400, "request body must be a JSON object");

    const bench::Experiment *exp = nullptr;
    unsigned trials = 0;
    std::optional<std::pair<unsigned, std::string>> cell;
    std::optional<unsigned> gangWidth;
    try {
        const store::JsonValue *name = body.find("experiment");
        if (!name)
            return errorResponse(400,
                                 "missing required field 'experiment'");
        exp = bench::findExperiment(name->asString());
        if (!exp)
            return errorResponse(
                404, "unknown experiment '" + name->asString() +
                         "' (try GET /v1/experiments)");

        if (const store::JsonValue *value = body.find("trials")) {
            trials = value->asU32();
            if (trials == 0)
                return errorResponse(
                    400, "trials must be >= 1 (omit the field for "
                         "the experiment default)");
        }

        // Optional per-job gang width (0 = scalar, "auto" = the
        // daemon's default); an execution strategy only -- results
        // are bit-identical for every width.
        if (const store::JsonValue *value = body.find("gangWidth")) {
            if (!(value->kind == store::JsonValue::Kind::String &&
                  value->asString() == "auto")) {
                unsigned width = value->asU32();
                if (width > sim::GangSimulator::MAX_LANES)
                    return errorResponse(
                        400,
                        "gangWidth must be \"auto\" or 0.." +
                            std::to_string(
                                sim::GangSimulator::MAX_LANES));
                gangWidth = width;
            }
        }

        const store::JsonValue *errors = body.find("errors");
        // "policy" names the single cell's injection policy; "mode"
        // is the deprecated pre-policy alias.
        const store::JsonValue *policy = body.find("policy");
        if (!policy)
            policy = body.find("mode");
        if (policy && !errors)
            return errorResponse(
                400, "'policy' requires 'errors' (a single-cell "
                     "submission names both)");
        if (errors) {
            // Validated against the process-wide policy registry --
            // the same resolver every CLI flag routes through.
            std::string policyName =
                policy ? fault::resolveInjectionPolicy(
                             policy->asString())
                             .name
                       : fault::PROTECTED_POLICY;
            cell = {{errors->asU32(), std::move(policyName)}};
        }
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("bad request field: ") +
                                 e.what());
    } catch (const std::invalid_argument &e) {
        // An unregistered policy name (try GET /v1/policies).
        return errorResponse(400, e.what());
    }

    auto outcome = scheduler_.submit(*exp, trials, cell, gangWidth);
    auto status = scheduler_.jobStatus(outcome.jobId);

    store::JsonObjectWriter writer;
    writer.field("job", outcome.jobId)
        .field("attached", outcome.attached)
        .field("cells", uint64_t{outcome.cells})
        .field("state", status ? status->state : "queued");
    return HttpResponse::json(202, writer.str());
}

HttpResponse
CampaignService::jobStatus(const std::string &id)
{
    auto status = scheduler_.jobStatus(id);
    if (!status)
        return errorResponse(404, "unknown job '" + id + "'");
    return HttpResponse::json(200, encodeJobStatus(*status));
}

HttpResponse
CampaignService::cellRecord(const std::string &fingerprint)
{
    if (!isFingerprint(fingerprint))
        return errorResponse(
            400, "cell keys are 16 lowercase hex digits (the CellKey "
                 "fingerprint)");
    store::ResultStore cache(scheduler_.config().cacheDir);
    auto record = cache.loadCellByFingerprint(fingerprint);
    if (!record)
        return errorResponse(404, "no stored record for cell '" +
                                      fingerprint + "'");
    store::JsonObjectWriter writer;
    writer.rawField("key", encodeKeyJson(record->key))
        .rawField("summary", encodeSummaryJson(record->summary));
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::experimentList()
{
    // Archive coverage per experiment, from the index alone. Cell
    // keys need the workload assembled and analyzed (memoized in
    // figureKeys), so only experiments whose workload has at least
    // one indexed cell pay that; everything else is 0 for free.
    store::StoreIndex index(scheduler_.config().cacheDir);
    index.load();
    std::set<std::string> indexedWorkloads;
    for (const auto &[fingerprint, entry] : index.entries()) {
        (void)fingerprint;
        if (entry.complete)
            indexedWorkloads.insert(entry.key.workload);
    }
    bench::BenchOptions opts;
    opts.threads = scheduler_.config().threads;
    opts.checkpointInterval = scheduler_.config().checkpointInterval;
    opts.seed = scheduler_.config().seed;
    opts.cacheDir = scheduler_.config().cacheDir;

    std::string list = "[";
    bool first = true;
    for (const auto &exp : bench::experiments()) {
        if (!first)
            list += ',';
        first = false;
        std::string errorCounts = "[";
        for (size_t i = 0; i < exp.errorCounts.size(); ++i) {
            if (i)
                errorCounts += ',';
            errorCounts += std::to_string(exp.errorCounts[i]);
        }
        errorCounts += ']';
        std::string policies = "[";
        for (size_t i = 0; i < exp.policies.size(); ++i) {
            if (i)
                policies += ',';
            policies += store::jsonQuote(exp.policies[i]);
        }
        policies += ']';
        uint64_t cellsCached = 0;
        if (indexedWorkloads.count(exp.workload)) {
            for (const auto &key : figureKeys(exp, opts))
                if (index.hasCell(key.fingerprint()))
                    ++cellsCached;
        }
        store::JsonObjectWriter writer;
        writer.field("name", exp.name)
            .field("figure", exp.experiment)
            .field("title", exp.title)
            .field("workload", exp.workload)
            .field("cells",
                   uint64_t{bench::experimentCells(exp).size()})
            .field("cellsCached", cellsCached)
            .field("defaultTrials", uint64_t{exp.defaultTrials})
            .rawField("policies", policies)
            .rawField("errorCounts", errorCounts);
        list += writer.str();
    }
    list += ']';

    store::JsonObjectWriter writer;
    writer.rawField("experiments", list);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::policyList()
{
    // The same describeInjectionPolicies() rows `etc_lab policies`
    // prints -- one code path, two renderings.
    std::string list = "[";
    bool first = true;
    for (const auto &row : fault::describeInjectionPolicies()) {
        if (!first)
            list += ',';
        first = false;
        store::JsonObjectWriter writer;
        writer.field("name", row.name)
            .field("description", row.description)
            .field("legacy", row.legacy)
            .field("scope", row.scope)
            .field("resultKinds", row.resultKinds)
            .field("bitModel", row.bitModel)
            .field("hash", row.hash);
        list += writer.str();
    }
    list += ']';

    store::JsonObjectWriter writer;
    writer.rawField("policies", list);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::figure(const std::string &name,
                        const HttpRequest &request)
{
    const bench::Experiment *exp = bench::findExperiment(name);
    if (!exp)
        return errorResponse(404, "unknown experiment '" + name +
                                      "' (try GET /v1/experiments)");

    bench::BenchOptions opts;
    opts.threads = scheduler_.config().threads;
    opts.checkpointInterval = scheduler_.config().checkpointInterval;
    opts.seed = scheduler_.config().seed;
    opts.cacheDir = scheduler_.config().cacheDir;
    if (auto trials = request.queryNumber("trials")) {
        if (*trials == 0 || *trials > 0xffffffffull)
            return errorResponse(400, "bad ?trials= value");
        opts.trials = static_cast<unsigned>(*trials);
    }

    store::ResultStore cache(opts.cacheDir);
    auto sweep = bench::loadExperimentFromStore(
        *exp, bench::sweepPolicies(*exp, opts), figureKeys(*exp, opts),
        cache);
    if (!sweep.complete()) {
        std::string missing = "[";
        for (size_t i = 0; i < sweep.missing.size(); ++i) {
            if (i)
                missing += ',';
            missing += store::jsonQuote(sweep.missing[i].canonical());
        }
        missing += ']';
        store::JsonObjectWriter writer;
        writer
            .field("error",
                   "figure '" + name + "' is missing " +
                       std::to_string(sweep.missing.size()) +
                       " stored cells -- submit the experiment and "
                       "wait for the job to drain")
            .field("status", uint64_t{409})
            .rawField("missingCells", missing);
        return HttpResponse::json(409, writer.str());
    }

    // Byte-identity contract: this is the exact render path of
    // `etc_lab report` pointed at the same cache directory.
    std::ostringstream out;
    bench::renderExperiment(out, *exp, sweep.points);
    return HttpResponse::text(200, out.str());
}

HttpResponse
CampaignService::analysis(const std::string &name)
{
    // Validate against the workload registry before doing any work.
    auto names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), name) == names.end())
        return errorResponse(404, "unknown workload '" + name + "'");

    // Byte-identity contract: this is the exact render path of
    // `etc_lab analyze --workload <name>`. The report needs one
    // golden simulation, so it is memoized for the daemon's lifetime
    // (it is a pure function of the workload).
    std::lock_guard<std::mutex> lock(analysisMutex_);
    auto it = analysisReports_.find(name);
    if (it == analysisReports_.end()) {
        auto workload = workloads::createWorkload(name);
        it = analysisReports_
                 .emplace(name, core::renderVulnerabilityReport(
                                    core::buildVulnerabilityReport(
                                        *workload)))
                 .first;
    }
    return HttpResponse::text(200, it->second);
}

std::vector<store::CellKey>
CampaignService::figureKeys(const bench::Experiment &exp,
                            const bench::BenchOptions &opts)
{
    // The daemon's seed/memory-model/budget knobs are fixed, so the
    // keys vary only with the experiment and the ?trials= override.
    std::string memoKey =
        exp.name + ":" + std::to_string(opts.trials);
    std::lock_guard<std::mutex> lock(figureKeysMutex_);
    auto it = figureKeys_.find(memoKey);
    if (it == figureKeys_.end()) {
        if (figureKeys_.size() >= 64)
            figureKeys_.clear(); // client-chosen ?trials= values
        it = figureKeys_
                 .emplace(memoKey,
                          bench::experimentCellKeys(exp, opts))
                 .first;
    }
    return it->second;
}

HttpResponse
CampaignService::query(const HttpRequest &request)
{
    core::QueryOptions options;
    try {
        if (auto agg = request.queryParam("agg"))
            options.agg = core::parseQueryAgg(*agg);
        if (auto workload = request.queryParam("workload"))
            options.filter.workload = *workload;
        options.filter.policies = request.queryParams("policy");
        for (const std::string &text : request.queryParams("errors")) {
            auto value = parseDecimalU32(text);
            if (!value)
                return errorResponse(400, "bad ?errors= value '" +
                                              text + "'");
            options.filter.errors.push_back(*value);
        }
        if (auto seed = request.queryParam("seed")) {
            try {
                options.filter.seed =
                    seed->rfind("0x", 0) == 0
                        ? store::parseHexU64(*seed)
                        : std::stoull(*seed);
            } catch (const std::exception &) {
                return errorResponse(
                    400, "bad ?seed= value (decimal or 0x hex)");
            }
        }
        if (auto trials = request.queryParam("trials")) {
            auto value = parseDecimalU32(*trials);
            if (!value || *value == 0)
                return errorResponse(400, "bad ?trials= value");
            options.filter.trials = *value;
        }
        if (auto base = request.queryParam("base"))
            options.basePolicy = *base;

        // Byte-identity contract: the envelope is the exact output
        // of `etc_lab query --json` over the same cache directory.
        auto report =
            core::runQuery(scheduler_.config().cacheDir, options);
        return HttpResponse::json(200, report.json);
    } catch (const core::QueryError &error) {
        return errorResponse(400, error.what());
    }
}

HttpResponse
CampaignService::indexStatus()
{
    store::StoreIndex index(scheduler_.config().cacheDir);
    index.load();
    auto health = index.health();

    std::string entries = "[";
    bool first = true;
    for (const auto &[fingerprint, entry] : index.entries()) {
        if (!first)
            entries += ',';
        first = false;
        store::JsonObjectWriter writer;
        writer.field("fingerprint", fingerprint)
            .field("complete", entry.complete)
            .field("workload", entry.key.workload)
            .field("policy", entry.key.policy)
            .field("errors", uint64_t{entry.key.errors})
            .field("trials", uint64_t{entry.key.trials})
            .field("seed", store::hexU64(entry.key.seed));
        if (!entry.complete) {
            std::string ranges = "[";
            for (const auto &[lo, hi] : entry.shardRanges) {
                if (ranges.size() > 1)
                    ranges += ',';
                ranges += '[';
                ranges += std::to_string(lo);
                ranges += ',';
                ranges += std::to_string(hi);
                ranges += ']';
            }
            ranges += ']';
            writer.rawField("shardRanges", ranges);
        }
        entries += writer.str();
    }
    entries += ']';

    store::JsonObjectWriter writer;
    writer.rawField("health", encodeIndexHealth(health))
        .rawField("entries", entries);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::acquireLeases(const HttpRequest &request)
{
    store::JsonValue body;
    try {
        body = store::parseJson(request.body);
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("malformed JSON body: ") +
                                 e.what());
    }
    if (!body.isObject())
        return errorResponse(400,
                             "request body must be a JSON object");
    std::string worker;
    unsigned max = 1;
    try {
        const store::JsonValue *name = body.find("worker");
        if (!name)
            return errorResponse(400,
                                 "missing required field 'worker'");
        worker = name->asString();
        if (worker.empty())
            return errorResponse(400, "'worker' must be non-empty");
        if (const store::JsonValue *value = body.find("max"))
            max = std::max(1u, value->asU32());
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("bad request field: ") +
                                 e.what());
    }

    auto grants = scheduler_.acquireLeases(worker, max);
    std::string leases = "[";
    for (size_t i = 0; i < grants.size(); ++i) {
        if (i)
            leases += ',';
        leases += encodeLeaseGrant(grants[i]);
    }
    leases += ']';
    store::JsonObjectWriter writer;
    writer.rawField("leases", leases);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::leaseAction(const std::string &suffix,
                             const HttpRequest &request)
{
    size_t slash = suffix.rfind('/');
    if (slash == std::string::npos || slash == 0)
        return errorResponse(
            404, "lease calls are POST /v1/leases/<id>/heartbeat "
                 "or .../complete");
    std::string id = suffix.substr(0, slash);
    std::string action = suffix.substr(slash + 1);

    store::JsonValue body;
    try {
        body = store::parseJson(request.body);
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("malformed JSON body: ") +
                                 e.what());
    }
    if (!body.isObject())
        return errorResponse(400,
                             "request body must be a JSON object");
    std::string worker;
    try {
        const store::JsonValue *name = body.find("worker");
        if (!name)
            return errorResponse(400,
                                 "missing required field 'worker'");
        worker = name->asString();
    } catch (const store::JsonError &e) {
        return errorResponse(400,
                             std::string("bad request field: ") +
                                 e.what());
    }

    if (action == "heartbeat") {
        switch (scheduler_.heartbeatLease(id, worker)) {
          case LeaseBeat::Active: {
            store::JsonObjectWriter writer;
            writer.field("state", "active")
                .field("ttlMs", scheduler_.config().leaseTtlMs);
            return HttpResponse::json(200, writer.str());
          }
          case LeaseBeat::Lost: {
            store::JsonObjectWriter writer;
            writer.field("state", "lost");
            return HttpResponse::json(200, writer.str());
          }
          case LeaseBeat::Unknown:
            break;
        }
        return errorResponse(404, "unknown lease '" + id + "'");
    }

    if (action == "complete") {
        bool failed = false;
        uint64_t trialsExecuted = 0;
        std::string error;
        try {
            if (const store::JsonValue *value = body.find("failed"))
                failed = value->asBool();
            if (const store::JsonValue *value =
                    body.find("trialsExecuted"))
                trialsExecuted = value->asU64();
            if (const store::JsonValue *value = body.find("error"))
                error = value->asString();
        } catch (const store::JsonError &e) {
            return errorResponse(400,
                                 std::string("bad request field: ") +
                                     e.what());
        }
        auto wallSeconds = parseSeconds(body.find("wallSeconds"));
        if (!wallSeconds)
            return errorResponse(400, "bad 'wallSeconds' value");

        if (failed) {
            if (!scheduler_.failLease(
                    id, worker,
                    error.empty() ? "worker-reported failure"
                                  : error))
                return errorResponse(404,
                                     "unknown lease '" + id + "'");
            store::JsonObjectWriter writer;
            writer.field("state", "pending");
            return HttpResponse::json(200, writer.str());
        }

        switch (scheduler_.completeLease(id, worker, trialsExecuted,
                                         *wallSeconds)) {
          case Scheduler::LeaseCompletion::Done: {
            store::JsonObjectWriter writer;
            writer.field("state", "done");
            return HttpResponse::json(200, writer.str());
          }
          case Scheduler::LeaseCompletion::LateDone: {
            store::JsonObjectWriter writer;
            writer.field("state", "done").field("late", true);
            return HttpResponse::json(200, writer.str());
          }
          case Scheduler::LeaseCompletion::MissingShard:
            return errorResponse(
                409, "lease '" + id +
                         "' has no shard record in the store -- "
                         "push it to POST /v1/shards first");
          case Scheduler::LeaseCompletion::Unknown:
            break;
        }
        return errorResponse(404, "unknown lease '" + id + "'");
    }

    return errorResponse(404, "unknown lease action '" + action +
                                  "' (heartbeat or complete)");
}

HttpResponse
CampaignService::ingestShard(const HttpRequest &request)
{
    static telemetry::Counter &ingested = telemetry::counter(
        "etc_worker_shards_ingested_total",
        "Records accepted over POST /v1/shards");
    if (request.body.empty())
        return errorResponse(400, "empty record body");
    try {
        auto outcome = scheduler_.ingestRecord(request.body);
        ingested.add();
        store::JsonObjectWriter writer;
        writer.field("kind", outcome.cellRecord ? "cell" : "shard")
            .field("cell", outcome.key.fingerprint())
            .field("stored", outcome.stored);
        if (!outcome.cellRecord)
            writer.field("lo", uint64_t{outcome.lo})
                .field("hi", uint64_t{outcome.hi});
        return HttpResponse::json(200, writer.str());
    } catch (const store::StoreFormatError &e) {
        return errorResponse(400,
                             std::string("unacceptable record: ") +
                                 e.what());
    }
}

HttpResponse
CampaignService::fleet()
{
    auto stats = scheduler_.fleetStats();
    std::string leases = "[";
    bool first = true;
    for (const auto &row : scheduler_.fleetLeases()) {
        if (!first)
            leases += ',';
        first = false;
        store::JsonObjectWriter writer;
        writer.field("id", row.id)
            .field("cell", row.fingerprint)
            .field("shardIndex", uint64_t{row.shardIndex})
            .field("shardCount", uint64_t{row.shardCount})
            .field("state", row.state)
            .field("owner", row.owner)
            .field("issue", uint64_t{row.issue})
            .field("remainingMs",
                   readableDouble(double(row.remainingMs)));
        leases += writer.str();
    }
    leases += ']';

    store::JsonObjectWriter writer;
    writer.field("cells", uint64_t{stats.cells})
        .field("leasesPending", uint64_t{stats.leasesPending})
        .field("leasesActive", uint64_t{stats.leasesActive})
        .field("leasesDone", uint64_t{stats.leasesDone})
        .field("workers", uint64_t{stats.workers})
        .field("leasesIssued", stats.issued)
        .field("leasesReissued", stats.reissued)
        .field("leasesExpired", stats.expired)
        .field("leasesCompleted", stats.completed)
        .field("leasesFailed", stats.failed)
        .field("leaseTtlMs", scheduler_.config().leaseTtlMs)
        .rawField("leases", leases);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::healthz()
{
    auto stats = scheduler_.stats();
    store::JsonObjectWriter writer;
    writer.field("status", "ok")
        .field("version", telemetry::versionString())
        .field("buildFlags", telemetry::buildFlags())
        .field("uptimeSeconds",
               readableDouble(telemetry::uptimeSeconds()))
        .field("workers", uint64_t{scheduler_.config().workers})
        .field("jobs", uint64_t{stats.jobs})
        // Cells waiting for a worker -- the queue depth a load
        // balancer or fleet coordinator would shed on.
        .field("queueDepth", uint64_t{stats.cellsQueued})
        .field("cellsQueued", uint64_t{stats.cellsQueued})
        .field("cellsRunning", uint64_t{stats.cellsRunning})
        .field("cellsDone", uint64_t{stats.cellsDone})
        .field("cellsFailed", uint64_t{stats.cellsFailed})
        .field("trialsExecuted", stats.trialsExecuted);
    // Fleet counters ride along so one probe also covers the lease
    // fabric (a wedged fleet shows up as pending leases with no
    // workers seen).
    auto fleetStats = scheduler_.fleetStats();
    writer.field("leasesPending", uint64_t{fleetStats.leasesPending})
        .field("leasesActive", uint64_t{fleetStats.leasesActive})
        .field("leasesCompleted", fleetStats.completed)
        .field("fleetWorkers", uint64_t{fleetStats.workers});
    // Archive-index health rides along so one probe covers both the
    // daemon and the store it fronts (stale journal growth or
    // orphaned shards show up here before anyone queries).
    store::StoreIndex index(scheduler_.config().cacheDir);
    index.load();
    auto health = index.health();
    writer.field("indexCells", health.cells)
        .field("indexShardSets", health.shardSets)
        .field("indexJournalEntries", health.journalEntries)
        .field("indexJournalCorrupt", health.journalCorrupt)
        .field("indexOrphanedShards", health.orphanedShards);
    return HttpResponse::json(200, writer.str());
}

HttpResponse
CampaignService::metricz()
{
    // The exposition bytes come straight from the registry; the
    // content type is the one Prometheus scrapers negotiate for the
    // 0.0.4 text format.
    HttpResponse response;
    response.status = 200;
    response.contentType = "text/plain; version=0.0.4; charset=utf-8";
    response.body = telemetry::renderPrometheus();
    return response;
}

} // namespace etc::service
