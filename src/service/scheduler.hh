/**
 * @file
 * Async campaign job scheduler: the engine room of `etc_lab serve`.
 *
 * Submitted experiments (or single cells) become jobs whose cells are
 * decomposed into shard-range leases (see coordinator.hh) and
 * executed by whoever holds the lease -- the daemon's own bounded
 * pool of local workers, remote `etc_lab work` agents, or a mix:
 *
 *  - Idempotent on CellKey: a cell already queued or leased is never
 *    enqueued twice -- a duplicate submission attaches to the live
 *    tasks (and an identical active job is returned outright instead
 *    of creating a twin).
 *  - Cache-first: a cell whose record is already in the ResultStore
 *    is served with zero simulation (the task completes `cached` with
 *    trialsExecuted == 0); stripes whose shard records are already
 *    stored register as done leases, so a resubmission resumes.
 *  - Kill-tolerant twice over: every lease persists as a shard
 *    record, so losing the daemon mid-cell loses at most one lease's
 *    work, and losing a *worker* mid-lease just lets the lease expire
 *    and re-issue -- local chunk failures ride the same re-issue path
 *    as remote worker deaths (one recovery mechanism, not two).
 *  - Deterministic: when every lease of a cell is done, the shards
 *    are merged via the store's mergeShardSummaries() path (no
 *    simulation), so a fleet-computed cell is bit-identical to a
 *    single-host run whoever executed the stripes.
 *  - Graceful: stop() lets every local worker finish and persist its
 *    in-flight lease, then joins the pool.
 *
 * `workers = 0` runs a pure coordinator: one steward thread still
 * probes the cache, registers leases, and promotes completed cells,
 * but all simulation happens on remote agents.
 *
 * Cells of the same experiment share one study (the golden profiling
 * run is made once) and are serialized on it -- the study itself is
 * not thread-safe -- but each lease's trials fan out across the
 * study's own campaign thread pool, and distinct experiments run
 * concurrently on distinct workers.
 */

#ifndef ETC_SERVICE_SCHEDULER_HH
#define ETC_SERVICE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "core/study.hh"
#include "service/coordinator.hh"
#include "store/cell_key.hh"
#include "store/result_store.hh"

namespace etc::service {

/** Scheduler-wide configuration (from `etc_lab serve` flags). */
struct SchedulerConfig
{
    std::string cacheDir;     //!< result-store root (required)
    unsigned workers = 2;     //!< local lease executors (0 = pure
                              //!< coordinator: remote agents only)
    unsigned threads = 0;     //!< campaign threads per cell (0 = all)
    unsigned chunks = 4;      //!< shard-range leases per cell
    uint64_t seed = core::StudyConfig{}.seed;
    uint64_t checkpointInterval =
        core::StudyConfig{}.checkpointInterval;

    /** Daemon-wide gang width (see core::StudyConfig::gangWidth);
     *  submissions may override it per job. Execution strategy only
     *  -- results are bit-identical for every width. */
    unsigned gangWidth = fault::GANG_WIDTH_AUTO;

    /** Lease deadline; workers heartbeat at a third of it. */
    uint64_t leaseTtlMs = 10000;

    /** Grants per lease before its cell fails permanently. */
    unsigned maxLeaseIssues = 5;
};

/** Lifecycle of one cell task. */
enum class CellState
{
    Queued,
    Running,
    Done,
    Failed,
};

/** @return the canonical lowercase name of @p state. */
const char *cellStateName(CellState state);

/** Point-in-time snapshot of one cell of a job. */
struct CellStatus
{
    std::string fingerprint; //!< on-disk record address
    std::string canonical;   //!< human-readable cell key
    unsigned errors = 0;
    std::string policy;      //!< injection policy name
    unsigned trials = 0;
    CellState state = CellState::Queued;
    bool cached = false;          //!< served without simulating
    uint64_t trialsExecuted = 0;  //!< trials actually simulated
    double wallSeconds = 0.0;     //!< simulation wall time so far
    std::string error;            //!< failure message (state Failed)

    /** Simulation throughput (0 for cached/unstarted cells). */
    double
    trialsPerSec() const
    {
        return wallSeconds > 0.0 ? trialsExecuted / wallSeconds : 0.0;
    }
};

/** Point-in-time snapshot of one job. */
struct JobStatus
{
    std::string id;
    std::string experiment;
    std::string state; //!< queued | running | done | failed
    size_t cellsTotal = 0;
    size_t cellsDone = 0;
    uint64_t trialsExecuted = 0;
    std::vector<CellStatus> cells;
};

/** Aggregate counters for /v1/healthz and shutdown summaries. */
struct SchedulerStats
{
    size_t jobs = 0;
    size_t cellsQueued = 0;
    size_t cellsRunning = 0;
    size_t cellsDone = 0;
    size_t cellsFailed = 0;
    uint64_t trialsExecuted = 0;
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);

    /** Graceful stop() + join (idempotent). */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    const SchedulerConfig &config() const { return config_; }

    /** Spawn the worker pool (call once). A workers = 0 config still
     *  spawns one steward thread for probe/register/promote duty. */
    void start();

    /**
     * Finish and persist every in-flight local lease, then join the
     * workers. Queued cells and unexecuted leases stay registered
     * (their progress, if any, is already in the store).
     */
    void stop();

    /** Outcome of a submission. */
    struct SubmitOutcome
    {
        std::string jobId;
        bool attached = false; //!< an identical active job was reused
        size_t cells = 0;
    };

    /**
     * Submit one experiment sweep, or -- when @p cell is set -- the
     * single (errors, policy-name) cell of it. @p trialsOverride
     * nonzero overrides the experiment's default trial count.
     * Idempotent: an identical active submission is returned with
     * attached = true, and individual cells already queued/running
     * are shared, never duplicated.
     *
     * Callers validate experiment and policy names themselves (the
     * service router resolves both against their registries before
     * submitting).
     */
    SubmitOutcome submit(
        const bench::Experiment &exp, unsigned trialsOverride,
        std::optional<std::pair<unsigned, std::string>> cell,
        std::optional<unsigned> gangWidth = std::nullopt);

    /** @return a snapshot of job @p id, or nullopt if unknown. */
    std::optional<JobStatus> jobStatus(const std::string &id) const;

    /** @return aggregate counters over every job and task. */
    SchedulerStats stats() const;

    /// @name Fleet surface (the lease/shard HTTP endpoints)
    /// @{

    /** POST /v1/leases/acquire: grant up to @p max pending leases. */
    std::vector<LeaseGrant> acquireLeases(const std::string &worker,
                                          unsigned max);

    /** POST /v1/leases/<id>/heartbeat. */
    LeaseBeat heartbeatLease(const std::string &leaseId,
                             const std::string &worker);

    /** Outcome of completeLease(). */
    enum class LeaseCompletion
    {
        Done,         //!< accepted (possibly a repeat -- idempotent)
        LateDone,     //!< lease gone but its cell is promoted; the
                      //!< stale worker's bytes matched by construction
        MissingShard, //!< the shard record never reached the store
        Unknown,      //!< no such lease and no such cell
    };

    /**
     * POST /v1/leases/<id>/complete: verify the stripe's shard record
     * (or the whole cell) is actually in the store, then mark the
     * lease done. Idempotent and owner-agnostic: late completions of
     * re-issued leases -- even after the cell was promoted and the
     * lease forgotten -- are accepted, because every writer of a
     * content-addressed record produced identical bytes.
     */
    LeaseCompletion completeLease(const std::string &leaseId,
                                  const std::string &worker,
                                  uint64_t trialsExecuted,
                                  double wallSeconds);

    /** POST /v1/leases/<id>/complete with failed=true: re-pend the
     *  lease (or fail its cell at the issue cap). */
    bool failLease(const std::string &leaseId,
                   const std::string &worker, const std::string &error);

    /** POST /v1/shards: validate and store a pushed record. Throws
     *  store::StoreFormatError on malformed input. */
    store::ResultStore::IngestOutcome ingestRecord(
        const std::string &text);

    CoordinatorStats fleetStats() const;
    std::vector<LeaseInfo> fleetLeases() const;
    /// @}

  private:
    /** Per-experiment shared state: workload, analysis, lazy study. */
    struct WorkloadContext
    {
        const bench::Experiment *exp = nullptr;
        std::unique_ptr<workloads::Workload> workload;
        core::StudyConfig studyConfig;
        analysis::ProtectionResult protection;
        std::unique_ptr<core::ErrorToleranceStudy> study;

        /** Serializes study construction and every lease execution. */
        std::mutex runMutex;

        core::ErrorToleranceStudy &ensureStudy();
    };

    /** One schedulable cell (shared between attaching jobs). */
    struct CellTask
    {
        WorkloadContext *ctx = nullptr;
        unsigned errors = 0;
        std::string policy = fault::PROTECTED_POLICY;
        unsigned trials = 0;
        store::CellKey key;
        std::string fingerprint;
        CellState state = CellState::Queued;
        bool cached = false;
        uint64_t trialsExecuted = 0;
        double wallSeconds = 0.0;
        unsigned gangWidth = fault::GANG_WIDTH_AUTO;
        std::string error;
    };

    struct Job
    {
        std::string id;
        std::string experiment;
        std::string signature; //!< sorted cell fingerprints
        std::vector<std::shared_ptr<CellTask>> cells;
    };

    /** Completed jobs retained for status queries; older ones are
     *  evicted (the daemon must not grow per submission forever). */
    static constexpr size_t MAX_RETAINED_JOBS = 512;

    WorkloadContext &contextFor(const bench::Experiment &exp);
    void workerLoop(unsigned workerIndex);
    bool probeNextTask();
    bool executeOneLease(const std::string &worker);
    bool promoteCompletedCells();
    void promoteCell(const CompletedCell &done);
    bool collectFailedCells();
    std::shared_ptr<CellTask> leasedTask(
        const std::string &fingerprint) const;
    void finishTask(const std::shared_ptr<CellTask> &task,
                    uint64_t trialsExecuted, double wallSeconds);
    void failTask(const std::shared_ptr<CellTask> &task,
                  const std::string &error);
    void evictCompletedJobs();
    static std::string jobStateOf(const Job &job);

    SchedulerConfig config_;
    Coordinator coordinator_;

    mutable std::mutex mutex_; //!< guards everything below
    std::condition_variable workAvailable_;
    std::deque<std::shared_ptr<CellTask>> queue_; //!< awaiting probe
    std::map<std::string, std::shared_ptr<CellTask>> liveTasks_;
    /** Tasks whose leases are registered, by fingerprint (Running
     *  until their shards merge into the cell record). */
    std::map<std::string, std::shared_ptr<CellTask>> leasedTasks_;
    std::map<std::string, Job> jobs_;
    std::map<std::string, std::string> activeJobsBySignature_;
    std::map<std::string, std::unique_ptr<WorkloadContext>> contexts_;
    uint64_t nextJobId_ = 1;
    uint64_t trialsExecuted_ = 0;
    bool stopping_ = false;
    bool started_ = false;

    std::vector<std::thread> workers_;
};

} // namespace etc::service

#endif // ETC_SERVICE_SCHEDULER_HH
