/**
 * @file
 * Async campaign job scheduler: the engine room of `etc_lab serve`.
 *
 * Submitted experiments (or single cells) become jobs whose cells are
 * executed by a bounded pool of worker threads over the existing
 * cache-aware ErrorToleranceStudy / fault::CampaignRunner machinery:
 *
 *  - Idempotent on CellKey: a cell already queued or running is never
 *    enqueued twice -- a duplicate submission attaches to the live
 *    tasks (and an identical active job is returned outright instead
 *    of creating a twin).
 *  - Cache-first: a cell whose record is already in the ResultStore
 *    is served with zero simulation (the task completes `cached` with
 *    trialsExecuted == 0).
 *  - Kill-tolerant: cells execute as `chunks` persisted shard stripes
 *    (CampaignRunner::runRange under the study), so losing the daemon
 *    mid-cell loses at most one chunk; a resubmission to a fresh
 *    daemon resumes from the stored shards.
 *  - Graceful: stop() lets every worker finish and persist its
 *    in-flight chunk, then joins the pool.
 *
 * Cells of the same experiment share one study (the golden profiling
 * run is made once) and are serialized on it -- the study itself is
 * not thread-safe -- but each cell's trials fan out across the
 * study's own campaign thread pool, and distinct experiments run
 * concurrently on distinct workers.
 */

#ifndef ETC_SERVICE_SCHEDULER_HH
#define ETC_SERVICE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "core/study.hh"
#include "store/cell_key.hh"

namespace etc::service {

/** Scheduler-wide configuration (from `etc_lab serve` flags). */
struct SchedulerConfig
{
    std::string cacheDir;     //!< result-store root (required)
    unsigned workers = 2;     //!< concurrent cell workers
    unsigned threads = 0;     //!< campaign threads per cell (0 = all)
    unsigned chunks = 4;      //!< persisted shard stripes per cell
    uint64_t seed = core::StudyConfig{}.seed;
    uint64_t checkpointInterval =
        core::StudyConfig{}.checkpointInterval;

    /** Daemon-wide gang width (see core::StudyConfig::gangWidth);
     *  submissions may override it per job. Execution strategy only
     *  -- results are bit-identical for every width. */
    unsigned gangWidth = fault::GANG_WIDTH_AUTO;
};

/** Lifecycle of one cell task. */
enum class CellState
{
    Queued,
    Running,
    Done,
    Failed,
};

/** @return the canonical lowercase name of @p state. */
const char *cellStateName(CellState state);

/** Point-in-time snapshot of one cell of a job. */
struct CellStatus
{
    std::string fingerprint; //!< on-disk record address
    std::string canonical;   //!< human-readable cell key
    unsigned errors = 0;
    std::string policy;      //!< injection policy name
    unsigned trials = 0;
    CellState state = CellState::Queued;
    bool cached = false;          //!< served without simulating
    uint64_t trialsExecuted = 0;  //!< trials actually simulated
    double wallSeconds = 0.0;     //!< simulation wall time so far
    std::string error;            //!< failure message (state Failed)

    /** Simulation throughput (0 for cached/unstarted cells). */
    double
    trialsPerSec() const
    {
        return wallSeconds > 0.0 ? trialsExecuted / wallSeconds : 0.0;
    }
};

/** Point-in-time snapshot of one job. */
struct JobStatus
{
    std::string id;
    std::string experiment;
    std::string state; //!< queued | running | done | failed
    size_t cellsTotal = 0;
    size_t cellsDone = 0;
    uint64_t trialsExecuted = 0;
    std::vector<CellStatus> cells;
};

/** Aggregate counters for /v1/healthz and shutdown summaries. */
struct SchedulerStats
{
    size_t jobs = 0;
    size_t cellsQueued = 0;
    size_t cellsRunning = 0;
    size_t cellsDone = 0;
    size_t cellsFailed = 0;
    uint64_t trialsExecuted = 0;
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);

    /** Graceful stop() + join (idempotent). */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    const SchedulerConfig &config() const { return config_; }

    /** Spawn the worker pool (call once). */
    void start();

    /**
     * Finish and persist every in-flight shard chunk, then join the
     * workers. Queued cells stay queued (their progress, if any, is
     * already in the store).
     */
    void stop();

    /** Outcome of a submission. */
    struct SubmitOutcome
    {
        std::string jobId;
        bool attached = false; //!< an identical active job was reused
        size_t cells = 0;
    };

    /**
     * Submit one experiment sweep, or -- when @p cell is set -- the
     * single (errors, policy-name) cell of it. @p trialsOverride
     * nonzero overrides the experiment's default trial count.
     * Idempotent: an identical active submission is returned with
     * attached = true, and individual cells already queued/running
     * are shared, never duplicated.
     *
     * Callers validate experiment and policy names themselves (the
     * service router resolves both against their registries before
     * submitting).
     */
    SubmitOutcome submit(
        const bench::Experiment &exp, unsigned trialsOverride,
        std::optional<std::pair<unsigned, std::string>> cell,
        std::optional<unsigned> gangWidth = std::nullopt);

    /** @return a snapshot of job @p id, or nullopt if unknown. */
    std::optional<JobStatus> jobStatus(const std::string &id) const;

    /** @return aggregate counters over every job and task. */
    SchedulerStats stats() const;

  private:
    /** Per-experiment shared state: workload, analysis, lazy study. */
    struct WorkloadContext
    {
        const bench::Experiment *exp = nullptr;
        std::unique_ptr<workloads::Workload> workload;
        core::StudyConfig studyConfig;
        analysis::ProtectionResult protection;
        std::unique_ptr<core::ErrorToleranceStudy> study;

        /** Serializes study construction and every cell execution. */
        std::mutex runMutex;

        core::ErrorToleranceStudy &ensureStudy();
    };

    /** One schedulable cell (shared between attaching jobs). */
    struct CellTask
    {
        WorkloadContext *ctx = nullptr;
        unsigned errors = 0;
        std::string policy = fault::PROTECTED_POLICY;
        unsigned trials = 0;
        store::CellKey key;
        std::string fingerprint;
        CellState state = CellState::Queued;
        bool cached = false;
        uint64_t trialsExecuted = 0;
        double wallSeconds = 0.0;
        unsigned gangWidth = fault::GANG_WIDTH_AUTO;
        std::string error;
    };

    struct Job
    {
        std::string id;
        std::string experiment;
        std::string signature; //!< sorted cell fingerprints
        std::vector<std::shared_ptr<CellTask>> cells;
    };

    /** Completed jobs retained for status queries; older ones are
     *  evicted (the daemon must not grow per submission forever). */
    static constexpr size_t MAX_RETAINED_JOBS = 512;

    WorkloadContext &contextFor(const bench::Experiment &exp);
    void workerLoop();
    void runTask(const std::shared_ptr<CellTask> &task);
    void evictCompletedJobs();
    static std::string jobStateOf(const Job &job);

    SchedulerConfig config_;

    mutable std::mutex mutex_; //!< guards everything below
    std::condition_variable workAvailable_;
    std::deque<std::shared_ptr<CellTask>> queue_;
    std::map<std::string, std::shared_ptr<CellTask>> liveTasks_;
    std::map<std::string, Job> jobs_;
    std::map<std::string, std::string> activeJobsBySignature_;
    std::map<std::string, std::unique_ptr<WorkloadContext>> contexts_;
    uint64_t nextJobId_ = 1;
    uint64_t trialsExecuted_ = 0;
    bool stopping_ = false;
    bool started_ = false;

    std::vector<std::thread> workers_;
};

} // namespace etc::service

#endif // ETC_SERVICE_SCHEDULER_HH
