#include "service/client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace etc::service {

namespace {

/** RAII socket that connects to host:port or throws FatalError. */
class ClientSocket
{
  public:
    ClientSocket(const std::string &host, uint16_t port,
                 const Client::Timeouts &timeouts)
    {
        addrinfo hints = {};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *results = nullptr;
        std::string service = std::to_string(port);
        int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
        if (rc != 0)
            fatal("client: cannot resolve ", host, ": ",
                  ::gai_strerror(rc));
        for (addrinfo *entry = results; entry;
             entry = entry->ai_next) {
            fd_ = ::socket(entry->ai_family, entry->ai_socktype,
                           entry->ai_protocol);
            if (fd_ < 0)
                continue;
            if (connectWithin(entry, timeouts.connectMs))
                break;
            ::close(fd_);
            fd_ = -1;
        }
        ::freeaddrinfo(results);
        if (fd_ < 0)
            fatal("client: cannot connect to ", host, ":", port, ": ",
                  std::strerror(errno));

        if (timeouts.ioMs > 0) {
            // A dead peer must fail the round trip, not hang it: each
            // blocking read/write gets the deadline, and read/send
            // report EAGAIN when it lapses.
            timeval tv = {};
            tv.tv_sec = static_cast<time_t>(timeouts.ioMs / 1000);
            tv.tv_usec =
                static_cast<suseconds_t>((timeouts.ioMs % 1000) *
                                         1000);
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
            ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof(tv));
        }
    }

    ~ClientSocket()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    ClientSocket(const ClientSocket &) = delete;
    ClientSocket &operator=(const ClientSocket &) = delete;

    void
    writeAll(const std::string &data)
    {
        size_t sent = 0;
        while (sent < data.size()) {
            // MSG_NOSIGNAL: a daemon that died mid-request must be an
            // error on this call, not a SIGPIPE for the caller.
            ssize_t n = ::send(fd_, data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    fatal("client: write timed out");
                fatal("client: write failed: ", std::strerror(errno));
            }
            sent += static_cast<size_t>(n);
        }
    }

    std::string
    readAll()
    {
        std::string data;
        char buffer[16 * 1024];
        while (true) {
            ssize_t n = ::read(fd_, buffer, sizeof(buffer));
            if (n > 0) {
                data.append(buffer, static_cast<size_t>(n));
                continue;
            }
            if (n == 0)
                return data;
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                fatal("client: read timed out");
            fatal("client: read failed: ", std::strerror(errno));
        }
    }

  private:
    /**
     * connect() bounded by @p deadlineMs (0 = block forever): flip
     * the socket non-blocking, start the connect, poll for
     * writability, then read back SO_ERROR and restore blocking
     * mode. @return true on an established connection; false leaves
     * errno describing the failure (ETIMEDOUT on deadline).
     */
    bool
    connectWithin(const addrinfo *entry, uint64_t deadlineMs)
    {
        if (deadlineMs == 0)
            return ::connect(fd_, entry->ai_addr,
                             entry->ai_addrlen) == 0;

        int flags = ::fcntl(fd_, F_GETFL, 0);
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
        int rc = ::connect(fd_, entry->ai_addr, entry->ai_addrlen);
        if (rc != 0 && errno != EINPROGRESS)
            return false;
        if (rc != 0) {
            pollfd pfd = {};
            pfd.fd = fd_;
            pfd.events = POLLOUT;
            int ready;
            do {
                ready = ::poll(&pfd, 1,
                               static_cast<int>(deadlineMs));
            } while (ready < 0 && errno == EINTR);
            if (ready == 0) {
                errno = ETIMEDOUT;
                return false;
            }
            if (ready < 0)
                return false;
            int soError = 0;
            socklen_t len = sizeof(soError);
            if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soError,
                             &len) != 0)
                return false;
            if (soError != 0) {
                errno = soError;
                return false;
            }
        }
        ::fcntl(fd_, F_SETFL, flags);
        return true;
    }

    int fd_ = -1;
};

} // namespace

Client::Client(std::string host, uint16_t port, Timeouts timeouts)
    : host_(std::move(host)), port_(port), timeouts_(timeouts)
{}

Client::Response
Client::roundTrip(const std::string &request)
{
    ClientSocket socket(host_, port_, timeouts_);
    socket.writeAll(request);
    std::string raw = socket.readAll();

    size_t headerEnd = raw.find("\r\n\r\n");
    if (headerEnd == std::string::npos)
        fatal("client: truncated response (no header terminator)");
    size_t lineEnd = raw.find("\r\n");
    std::string statusLine = raw.substr(0, lineEnd);
    if (statusLine.rfind("HTTP/", 0) != 0)
        fatal("client: malformed status line '", statusLine, "'");
    size_t space = statusLine.find(' ');
    if (space == std::string::npos || space + 4 > statusLine.size())
        fatal("client: malformed status line '", statusLine, "'");

    Response response;
    response.status =
        std::atoi(statusLine.substr(space + 1, 3).c_str());
    if (response.status < 100 || response.status > 599)
        fatal("client: malformed status code in '", statusLine, "'");

    size_t contentLength = std::string::npos;
    size_t cursor = lineEnd + 2;
    while (cursor < headerEnd) {
        size_t end = raw.find("\r\n", cursor);
        std::string line = raw.substr(cursor, end - cursor);
        cursor = end + 2;
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        size_t valueStart = line.find_first_not_of(" \t", colon + 1);
        std::string value = valueStart == std::string::npos
                                ? ""
                                : line.substr(valueStart);
        if (name == "content-length")
            contentLength =
                static_cast<size_t>(std::strtoull(value.c_str(),
                                                  nullptr, 10));
        else if (name == "content-type")
            response.contentType = value;
    }

    response.body = raw.substr(headerEnd + 4);
    if (contentLength != std::string::npos) {
        if (response.body.size() < contentLength)
            fatal("client: truncated response body (",
                  response.body.size(), " of ", contentLength,
                  " bytes)");
        response.body.resize(contentLength);
    }
    return response;
}

Client::Response
Client::get(const std::string &target)
{
    std::string request = "GET " + target +
                          " HTTP/1.1\r\nHost: " + host_ +
                          "\r\nConnection: close\r\n\r\n";
    return roundTrip(request);
}

Client::Response
Client::post(const std::string &target, const std::string &body)
{
    std::string request =
        "POST " + target + " HTTP/1.1\r\nHost: " + host_ +
        "\r\nContent-Type: application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
        body;
    return roundTrip(request);
}

} // namespace etc::service
