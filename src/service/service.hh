/**
 * @file
 * CampaignService: the JSON request router of the `etc_lab serve`
 * daemon, mapping the HTTP API onto the scheduler and result store.
 *
 *   POST /v1/jobs                submit an experiment or single cell
 *                                (idempotent on CellKey; a duplicate
 *                                submission attaches to the live job)
 *   GET  /v1/jobs/<id>           job status + per-cell progress
 *   GET  /v1/cells/<key>         stored cell record as JSON (<key> is
 *                                the 16-hex CellKey fingerprint)
 *   GET  /v1/experiments         the experiment registry
 *   GET  /v1/policies            the injection-policy registry (the
 *                                same rows `etc_lab policies` prints)
 *   GET  /v1/figures/<name>      figure rendered from the store,
 *                                byte-identical to `etc_lab report`
 *                                (optional ?trials=N override); 409
 *                                while cells are missing
 *   GET  /v1/analysis/<workload> static ACE/AVF vulnerability report,
 *                                byte-identical to `etc_lab analyze`
 *   GET  /v1/query               archive rollup from the secondary
 *                                index + stored records (no
 *                                simulation); filters workload=,
 *                                policy= (repeatable), errors=
 *                                (repeatable), seed=, trials=, with
 *                                agg= one of cells/coverage/curve/
 *                                delta/cdf/avf (base= names delta's
 *                                baseline); bytes identical to
 *                                `etc_lab query --json`
 *   GET  /v1/index               the secondary index: health counters
 *                                plus every indexed cell/shard entry
 *   POST /v1/leases/acquire      grant up to {"max":N} shard-range
 *                                leases to {"worker":name} (the fleet
 *                                pull API of `etc_lab work`)
 *   POST /v1/leases/<id>/heartbeat  extend the lease deadline; "lost"
 *                                means it was re-issued elsewhere
 *   POST /v1/leases/<id>/complete   report a lease finished (or
 *                                {"failed":true} to re-pend it); the
 *                                service verifies the shard record is
 *                                actually in the store first (409 if
 *                                not), and answers "done" to stale
 *                                owners of re-issued leases -- their
 *                                bytes matched by construction
 *   POST /v1/shards              push one shard/cell record (raw JSONL
 *                                body, exactly the on-disk bytes);
 *                                idempotent and safe to race
 *   GET  /v1/fleet               coordinator stats + the lease table
 *   GET  /v1/healthz             liveness: uptime, version, build
 *                                flags, queue depth + aggregate
 *                                counters + index health
 *   GET  /v1/metricz             every process metric in Prometheus
 *                                text exposition format (also the feed
 *                                of `etc_lab stats`)
 *
 * Every error is a 4xx/5xx JSON object {"error":...,"status":...};
 * figures are text/plain (their bytes are the contract), everything
 * else is application/json. Handlers only touch the scheduler's
 * queues and the store -- all simulation runs on scheduler workers --
 * so they are safe to call from the single-threaded HTTP event loop.
 */

#ifndef ETC_SERVICE_SERVICE_HH
#define ETC_SERVICE_SERVICE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/http_server.hh"
#include "service/scheduler.hh"
#include "store/cell_key.hh"

namespace etc::service {

class CampaignService
{
  public:
    /** @param scheduler started scheduler (not owned; must outlive). */
    explicit CampaignService(Scheduler &scheduler);

    /** Route one request (the HttpServer handler). */
    HttpResponse handle(const HttpRequest &request);

  private:
    HttpResponse submitJob(const HttpRequest &request);
    HttpResponse jobStatus(const std::string &id);
    HttpResponse cellRecord(const std::string &fingerprint);
    HttpResponse experimentList();
    HttpResponse policyList();
    HttpResponse figure(const std::string &name,
                        const HttpRequest &request);
    HttpResponse analysis(const std::string &name);
    HttpResponse query(const HttpRequest &request);
    HttpResponse indexStatus();
    HttpResponse acquireLeases(const HttpRequest &request);
    HttpResponse leaseAction(const std::string &suffix,
                             const HttpRequest &request);
    HttpResponse ingestShard(const HttpRequest &request);
    HttpResponse fleet();
    HttpResponse healthz();
    HttpResponse metricz();

    /**
     * The sweep's cell keys for (experiment, trials override),
     * memoized: keys need the workload assembled and the protection
     * analysis run, which must not repeat on the event loop for every
     * figure poll. All other key inputs are fixed per daemon. The
     * memo is bounded (distinct ?trials= values are client-chosen)
     * and simply resets when full.
     */
    std::vector<store::CellKey> figureKeys(
        const bench::Experiment &exp, const bench::BenchOptions &opts);

    Scheduler &scheduler_;
    std::mutex figureKeysMutex_;
    std::map<std::string, std::vector<store::CellKey>> figureKeys_;

    /**
     * Rendered analysis reports by workload name. A report needs one
     * golden simulation, so it is computed once per workload (the
     * registry is fixed, so the memo is naturally bounded).
     */
    std::mutex analysisMutex_;
    std::map<std::string, std::string> analysisReports_;
};

/** @return {"error":<message>,"status":<status>} with that status. */
HttpResponse errorResponse(int status, const std::string &message);

} // namespace etc::service

#endif // ETC_SERVICE_SERVICE_HH
