#include "service/worker.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "bench/common.hh"
#include "service/client.hh"
#include "store/json.hh"
#include "store/record.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace etc::service {

namespace {

/** Worker-process metrics (the agent's own accounting; the
 *  coordinator's etc_lease_* and etc_worker_* series are the fleet
 *  view scraped from /v1/metricz). */
struct WorkerMetrics
{
    telemetry::Counter &leasesCompleted = telemetry::counter(
        "etc_work_leases_completed_total",
        "Leases this agent executed and completed");
    telemetry::Counter &leasesFailed = telemetry::counter(
        "etc_work_leases_failed_total",
        "Leases this agent reported failed");
    telemetry::Counter &recordsPushed = telemetry::counter(
        "etc_work_records_pushed_total",
        "Shard/cell records pushed to the coordinator");
};

WorkerMetrics &
workerMetrics()
{
    static WorkerMetrics metrics;
    return metrics;
}

std::string
formatSeconds(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** Decode one /v1/leases/acquire grant. Throws JsonError on any
 *  missing or ill-typed field (version skew fails loudly). */
LeaseGrant
parseGrant(const store::JsonValue &value)
{
    LeaseGrant grant;
    grant.id = value.at("id").asString();
    grant.cell.fingerprint = value.at("cell").asString();
    grant.cell.experiment = value.at("experiment").asString();
    grant.cell.errors = value.at("errors").asU32();
    grant.cell.policy = value.at("policy").asString();
    grant.cell.trials = value.at("trials").asU32();
    grant.cell.seed = store::parseHexU64(value.at("seed").asString());
    grant.cell.checkpointInterval =
        value.at("checkpointInterval").asU64();
    grant.cell.staticPrune = value.at("staticPrune").asBool();
    grant.cell.gangWidth = value.at("gangWidth").asU32();
    grant.shardIndex = value.at("shardIndex").asU32();
    grant.shardCount = value.at("shardCount").asU32();
    grant.lo = value.at("lo").asU32();
    grant.hi = value.at("hi").asU32();
    grant.issue = value.at("issue").asU32();
    grant.ttlMs = value.at("ttlMs").asU64();
    return grant;
}

} // namespace

WorkerAgent::WorkerAgent(WorkerConfig config)
    : config_(std::move(config))
{
    if (config_.port == 0)
        fatal("worker: a coordinator port is required");
    if (config_.name.empty()) {
        // Two statements: GCC 12's -Wrestrict misfires on
        // assigning "literal" + std::to_string(...).
        config_.name = "w";
        config_.name += std::to_string(::getpid());
    }
    if (config_.cacheDir.empty()) {
        std::string scratch = "etc_work.";
        scratch += std::to_string(::getpid());
        config_.cacheDir =
            (std::filesystem::temp_directory_path() / scratch)
                .string();
    }
    config_.executors = std::max(1u, config_.executors);
    config_.pollMs = std::max<uint64_t>(10, config_.pollMs);
}

WorkerAgent::~WorkerAgent()
{
    stop();
}

void
WorkerAgent::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (started_)
            return;
        started_ = true;
    }
    heartbeater_ = std::thread([this] { heartbeatLoop(); });
    for (unsigned i = 0; i < config_.executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

void
WorkerAgent::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    stopCv_.notify_all();
    join();
}

void
WorkerAgent::join()
{
    for (auto &executor : executors_)
        if (executor.joinable())
            executor.join();
    // Every executor is done; nothing is left to heartbeat.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (heartbeater_.joinable())
        heartbeater_.join();
}

WorkerAgent::Summary
WorkerAgent::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summary_;
}

bool
WorkerAgent::stopNow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopping_ || stopRequested();
}

void
WorkerAgent::executorLoop()
{
    auto sleepFor = [this](uint64_t ms) {
        std::unique_lock<std::mutex> lock(mutex_);
        stopCv_.wait_for(lock, std::chrono::milliseconds(ms),
                         [this] { return stopping_; });
    };

    unsigned failures = 0;
    while (!stopNow()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (config_.maxLeases &&
                leasesTaken_ >= config_.maxLeases)
                return;
        }
        std::optional<LeaseGrant> grant;
        try {
            grant = acquireOne();
            failures = 0;
        } catch (const std::exception &e) {
            // Transport or protocol trouble: back off exponentially
            // (capped) so a downed coordinator is not hammered, and
            // keep trying -- it may just be restarting.
            ++failures;
            uint64_t delay = std::min<uint64_t>(
                config_.pollMs << std::min(failures, 6u), 10000);
            warn("worker ", config_.name, ": acquire failed (",
                 e.what(), "); retrying in ", delay, " ms");
            sleepFor(delay);
            continue;
        }
        if (!grant) {
            sleepFor(config_.pollMs);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++leasesTaken_;
        }
        processLease(*grant);
    }
}

void
WorkerAgent::heartbeatLoop()
{
    while (true) {
        uint64_t period;
        std::vector<std::string> ids;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            period = heartbeatMs_ ? heartbeatMs_ : 1000;
            stopCv_.wait_for(lock, std::chrono::milliseconds(period),
                             [this] { return stopping_; });
            if (stopping_)
                return;
            ids = activeLeases_;
        }
        for (const auto &id : ids)
            beatLease(id);
    }
}

void
WorkerAgent::beatLease(const std::string &id)
{
    try {
        // Tight deadlines: a heartbeat that cannot land within a
        // fraction of the TTL is as good as lost.
        Client client(config_.host, config_.port,
                      Client::Timeouts{2000, 5000});
        store::JsonObjectWriter body;
        body.field("worker", config_.name);
        client.post("/v1/leases/" + id + "/heartbeat", body.str());
        // "lost" answers need no action: the stripe's bytes will
        // match the replacement worker's, and the coordinator
        // accepts late completions idempotently.
    } catch (const std::exception &e) {
        warn("worker ", config_.name, ": heartbeat for ", id,
             " failed: ", e.what());
    }
}

std::optional<LeaseGrant>
WorkerAgent::acquireOne()
{
    store::JsonObjectWriter body;
    body.field("worker", config_.name).field("max", uint64_t{1});
    Client client(config_.host, config_.port);
    auto response = client.post("/v1/leases/acquire", body.str());
    if (!response.ok())
        throw std::runtime_error("acquire rejected: HTTP " +
                                 std::to_string(response.status) +
                                 " " + response.body);
    auto json = store::parseJson(response.body);
    const auto &leases = json.at("leases");
    if (leases.elements.empty())
        return std::nullopt;
    return parseGrant(leases.elements.front());
}

std::shared_ptr<WorkerAgent::Context>
WorkerAgent::contextFor(const LeaseCell &cell)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = contexts_.find(cell.experiment);
        if (it != contexts_.end() &&
            it->second->seed == cell.seed &&
            it->second->checkpointInterval ==
                cell.checkpointInterval &&
            it->second->staticPrune == cell.staticPrune)
            return it->second;
    }

    const bench::Experiment *exp =
        bench::findExperiment(cell.experiment);
    if (!exp)
        throw std::runtime_error(
            "coordinator granted a lease on unknown experiment '" +
            cell.experiment + "' (version skew?)");

    auto ctx = std::make_shared<Context>();
    ctx->experiment = cell.experiment;
    ctx->seed = cell.seed;
    ctx->checkpointInterval = cell.checkpointInterval;
    ctx->staticPrune = cell.staticPrune;
    ctx->workload = workloads::createWorkload(exp->workload,
                                              exp->scale);
    bench::BenchOptions opts;
    opts.threads = config_.threads;
    opts.checkpointInterval = cell.checkpointInterval;
    opts.seed = cell.seed;
    opts.cacheDir = config_.cacheDir;
    opts.staticPrune = cell.staticPrune;
    opts.gangWidth = cell.gangWidth;
    ctx->studyConfig = bench::makeStudyConfig(*exp, opts);
    // Static analysis only (no simulation); the golden run waits for
    // the first executed stripe.
    ctx->protection = core::computeStudyProtection(*ctx->workload,
                                                   ctx->studyConfig);

    std::lock_guard<std::mutex> lock(mutex_);
    // Two executors may have built the context concurrently; last
    // one wins and both are equally valid (pure function of the
    // lease parameters).
    contexts_[cell.experiment] = ctx;
    return ctx;
}

void
WorkerAgent::trackLease(const std::string &id, uint64_t ttlMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    activeLeases_.push_back(id);
    heartbeatMs_ = std::max<uint64_t>(1, ttlMs / 3);
}

void
WorkerAgent::untrackLease(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    activeLeases_.erase(std::remove(activeLeases_.begin(),
                                    activeLeases_.end(), id),
                        activeLeases_.end());
}

void
WorkerAgent::processLease(const LeaseGrant &grant)
{
    std::shared_ptr<Context> ctx;
    store::CellKey key;
    try {
        ctx = contextFor(grant.cell);
        key = core::makeCellKey(*ctx->workload, ctx->protection,
                                ctx->studyConfig, grant.cell.errors,
                                grant.cell.policy, grant.cell.trials);
    } catch (const std::exception &e) {
        failLease(grant, e.what());
        return;
    }
    if (key.fingerprint() != grant.cell.fingerprint) {
        // Never execute (let alone push) under a disputed key: the
        // coordinator would file our bytes under a different cell
        // than we computed.
        failLease(grant,
                  "cell key mismatch: worker derived " +
                      key.fingerprint() + ", lease names " +
                      grant.cell.fingerprint +
                      " (worker/coordinator version skew?)");
        return;
    }

    core::CellSummary summary;
    uint64_t ran = 0;
    double wallSeconds = 0.0;
    trackLease(grant.id, grant.ttlMs);
    // One beat up front: leases that finish faster than the
    // heartbeat period still register liveness with the coordinator
    // (and the deadline extends from now, not from the grant).
    beatLease(grant.id);
    try {
        std::lock_guard<std::mutex> run(ctx->runMutex);
        if (!ctx->study)
            ctx->study = std::make_unique<core::ErrorToleranceStudy>(
                *ctx->workload, ctx->studyConfig);
        ctx->study->setGangWidth(grant.cell.gangWidth);
        uint64_t before = ctx->study->trialsExecuted();
        auto started = std::chrono::steady_clock::now();
        {
            telemetry::TraceSpan span("worker", "lease");
            if (span.active())
                span.setArgs("{\"lease\":\"" + grant.id + "\"}");
            summary = ctx->study->runCellShard(
                grant.cell.errors, grant.cell.policy,
                grant.cell.trials, grant.shardIndex,
                grant.shardCount);
        }
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - started;
        wallSeconds = elapsed.count();
        ran = ctx->study->trialsExecuted() - before;
    } catch (const std::exception &e) {
        untrackLease(grant.id);
        failLease(grant, e.what());
        return;
    }
    untrackLease(grant.id);

    // The engine answers with the *complete cell* summary when the
    // whole cell was already in this worker's local store; push the
    // cell record then, so the coordinator can promote without any
    // shard arithmetic. Either way these are the canonical codec
    // bytes -- identical to what a local run on the coordinator
    // would have written.
    bool fullCell = summary.trials == grant.cell.trials &&
                    grant.hi - grant.lo != grant.cell.trials;
    std::string record =
        fullCell
            ? store::encodeCellRecord(key, summary)
            : store::encodeShardRecord(key, grant.lo, grant.hi,
                                       summary);
    try {
        Client client(config_.host, config_.port);
        auto pushed = client.post("/v1/shards", record);
        if (!pushed.ok()) {
            failLease(grant, "record push rejected: HTTP " +
                                 std::to_string(pushed.status) + " " +
                                 pushed.body);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++summary_.recordsPushed;
        }
        workerMetrics().recordsPushed.add();
        completeLease(grant, ran, wallSeconds);
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.leasesCompleted;
        summary_.trialsExecuted += ran;
        summary_.wallSeconds += wallSeconds;
    } catch (const std::exception &e) {
        // Transport died between execution and completion. Do not
        // fail the lease (we cannot reach the coordinator anyway);
        // its deadline will re-issue it, and the replacement's bytes
        // will match ours.
        warn("worker ", config_.name, ": lease ", grant.id,
             " executed but not completed: ", e.what());
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.leasesFailed;
    }
}

void
WorkerAgent::completeLease(const LeaseGrant &grant, uint64_t trials,
                           double wallSeconds)
{
    Client client(config_.host, config_.port);
    store::JsonObjectWriter body;
    body.field("worker", config_.name)
        .field("trialsExecuted", trials)
        .field("wallSeconds", formatSeconds(wallSeconds));
    auto response = client.post("/v1/leases/" + grant.id + "/complete",
                                body.str());
    if (!response.ok())
        warn("worker ", config_.name, ": completion of ", grant.id,
             " answered HTTP ", response.status, ": ", response.body);
    workerMetrics().leasesCompleted.add();
}

void
WorkerAgent::failLease(const LeaseGrant &grant,
                       const std::string &error)
{
    warn("worker ", config_.name, ": lease ", grant.id, " failed: ",
         error);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.leasesFailed;
    }
    workerMetrics().leasesFailed.add();
    try {
        Client client(config_.host, config_.port);
        store::JsonObjectWriter body;
        body.field("worker", config_.name)
            .field("failed", true)
            .field("error", error);
        client.post("/v1/leases/" + grant.id + "/complete",
                    body.str());
    } catch (const std::exception &e) {
        // Best effort: an unreachable coordinator re-issues the
        // lease on expiry anyway.
        warn("worker ", config_.name,
             ": could not report failure of ", grant.id, ": ",
             e.what());
    }
}

} // namespace etc::service
