/**
 * @file
 * WorkerAgent: the remote half of the distributed campaign fabric
 * (`etc_lab work --coordinator URL`).
 *
 * The agent pulls shard-range leases from a coordinator daemon
 * (POST /v1/leases/acquire), rebuilds each cell's exact study context
 * from the grant (experiment, seed, checkpoint interval, static
 * prune, gang width -- everything that derives the CellKey), executes
 * the stripe through the same cache-aware engine `etc_lab run` uses,
 * pushes the resulting shard record back (POST /v1/shards), and
 * completes the lease. A background thread heartbeats every active
 * lease at a third of its TTL, so a live worker never loses a lease
 * and a SIGKILLed one loses it within one TTL.
 *
 * Correctness invariants:
 *
 *  - Before executing, the agent re-derives the CellKey from its own
 *    workload assembly and compares fingerprints with the grant; a
 *    mismatch (version skew between worker and coordinator binaries)
 *    fails the lease rather than pushing wrong-keyed bytes.
 *  - The pushed record is the canonical codec encoding -- the exact
 *    bytes a local run on the coordinator would have written -- so
 *    fleet results are bit-identical to single-host runs and races
 *    between duplicate workers are harmless by construction.
 *  - A lease lost to re-issue (heartbeat answers "lost") is still
 *    finished and pushed: the bytes match the replacement worker's,
 *    and the coordinator accepts late completions idempotently.
 *
 * The agent keeps its own result store (scratch by default), so a
 * re-granted stripe it already executed is a local cache hit, and a
 * stripe of a cell it has fully cached is answered without
 * simulation.
 */

#ifndef ETC_SERVICE_WORKER_HH
#define ETC_SERVICE_WORKER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "core/study.hh"
#include "service/coordinator.hh"

namespace etc::service {

/** Worker-agent knobs (from `etc_lab work` flags). */
struct WorkerConfig
{
    std::string host = "127.0.0.1"; //!< coordinator address
    uint16_t port = 0;

    /** Worker name reported on every lease call (shows up in
     *  /v1/fleet and lease ownership). Default: "w<pid>". */
    std::string name;

    /** Local result-store root; empty = a per-process scratch
     *  directory under the system temp dir. Pointing it at the
     *  coordinator's cache directory on a shared filesystem also
     *  works -- pushes then dedup to no-ops. */
    std::string cacheDir;

    unsigned executors = 1; //!< concurrent lease executors
    unsigned threads = 0;   //!< campaign threads per stripe (0 = all)

    /** Stop after completing (or failing) this many leases;
     *  0 = run until stop()/SIGTERM. */
    uint64_t maxLeases = 0;

    /** Idle poll interval when the coordinator has no work. */
    uint64_t pollMs = 500;
};

class WorkerAgent
{
  public:
    explicit WorkerAgent(WorkerConfig config);

    /** stop() + join (idempotent). */
    ~WorkerAgent();

    WorkerAgent(const WorkerAgent &) = delete;
    WorkerAgent &operator=(const WorkerAgent &) = delete;

    const WorkerConfig &config() const { return config_; }

    /** Spawn executor threads and the heartbeat thread (call once). */
    void start();

    /** Finish in-flight leases, then join all threads. */
    void stop();

    /** Block until every executor exits (maxLeases reached, or
     *  stop()/shutdown requested). */
    void join();

    /** Lifetime counters (read after join() for the exit report). */
    struct Summary
    {
        uint64_t leasesCompleted = 0;
        uint64_t leasesFailed = 0; //!< reported failed to coordinator
        uint64_t recordsPushed = 0;
        uint64_t trialsExecuted = 0;
        double wallSeconds = 0.0; //!< summed stripe execution time
    };

    Summary summary() const;

  private:
    /** Per-experiment engine state, mirroring the scheduler's
     *  WorkloadContext but parameterized by the grant (a fleet's
     *  leases may carry differing seeds or checkpoint settings). */
    struct Context
    {
        std::string experiment;
        uint64_t seed = 0;
        uint64_t checkpointInterval = 0;
        bool staticPrune = false;
        std::unique_ptr<workloads::Workload> workload;
        core::StudyConfig studyConfig;
        analysis::ProtectionResult protection;
        std::unique_ptr<core::ErrorToleranceStudy> study;
        std::mutex runMutex; //!< the study is not thread-safe
    };

    void executorLoop();
    void heartbeatLoop();
    void beatLease(const std::string &id);
    bool stopNow() const;
    std::optional<LeaseGrant> acquireOne();
    void processLease(const LeaseGrant &grant);
    void completeLease(const LeaseGrant &grant, uint64_t trials,
                       double wallSeconds);
    void failLease(const LeaseGrant &grant, const std::string &error);
    std::shared_ptr<Context> contextFor(const LeaseCell &cell);
    void trackLease(const std::string &id, uint64_t ttlMs);
    void untrackLease(const std::string &id);

    WorkerConfig config_;

    mutable std::mutex mutex_; //!< guards everything below
    std::condition_variable stopCv_;
    bool stopping_ = false;
    bool started_ = false;
    std::map<std::string, std::shared_ptr<Context>> contexts_;
    std::vector<std::string> activeLeases_; //!< heartbeat targets
    uint64_t heartbeatMs_ = 0; //!< ttl/3 of the latest grant
    uint64_t leasesTaken_ = 0; //!< toward config_.maxLeases
    Summary summary_;

    std::vector<std::thread> executors_;
    std::thread heartbeater_;
};

} // namespace etc::service

#endif // ETC_SERVICE_WORKER_HH
