#include "service/http_server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"
#include "support/shutdown.hh"
#include "telemetry/metrics.hh"

namespace etc::service {

namespace {

// Oversized traffic becomes a 4xx, never unbounded buffering.
constexpr size_t MAX_HEADER_BYTES = 64 * 1024;
constexpr size_t MAX_BODY_BYTES = 8 * 1024 * 1024;

/** HTTP-layer metrics (the per-endpoint x status request counters
 *  register lazily; see requestCounter below). */
struct HttpMetrics
{
    telemetry::Histogram &requestSeconds = telemetry::histogram(
        "etc_http_request_seconds",
        "Handler latency per request (parse to serialized response)",
        {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5,
         30});
    telemetry::Counter &bytesIn = telemetry::counter(
        "etc_http_bytes_in_total",
        "Request bytes consumed (request line, headers, body)");
    telemetry::Counter &bytesOut = telemetry::counter(
        "etc_http_bytes_out_total",
        "Response bytes queued (status line, headers, body)");
    telemetry::Counter &keepAliveReuse = telemetry::counter(
        "etc_http_keepalive_reuse_total",
        "Requests served on an already-used (kept-alive) connection");
};

HttpMetrics &
httpMetrics()
{
    static HttpMetrics metrics;
    return metrics;
}

/**
 * Collapse a request path to a bounded endpoint label: known /v1
 * routes keep their first two segments (ids/fingerprints become "*"),
 * anything else -- arbitrary 404 targets included -- is "other", so a
 * path-scanning client cannot mint unbounded label cardinality.
 */
std::string
normalizeEndpoint(const std::string &path)
{
    static const char *const known[] = {
        "/v1/jobs", "/v1/cells",   "/v1/experiments",
        "/v1/policies", "/v1/figures", "/v1/analysis",
        "/v1/healthz", "/v1/metricz",
    };
    for (const char *prefix : known) {
        size_t n = std::strlen(prefix);
        if (path.compare(0, n, prefix) != 0)
            continue;
        if (path.size() == n)
            return prefix;
        if (path[n] == '/')
            return std::string(prefix) + "/*";
    }
    return "other";
}

/** The (endpoint, status) series of etc_http_requests_total. The
 *  registry lookup is mutex-guarded but cheap; request dispatch is
 *  not a simulation hot path. */
telemetry::Counter &
requestCounter(const std::string &endpoint, int status)
{
    return telemetry::counter(
        "etc_http_requests_total",
        "endpoint=\"" + telemetry::escapeLabelValue(endpoint) +
            "\",status=\"" + std::to_string(status) + "\"",
        "Requests served, by normalized endpoint and response status");
}

bool
equalsIgnoreCase(const std::string &a, const std::string &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(),
                      [](unsigned char x, unsigned char y) {
                          return std::tolower(x) == std::tolower(y);
                      });
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string
serializeResponse(const HttpResponse &response, bool keepAlive)
{
    std::string out = "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += ' ';
    out += statusReason(response.status);
    out += "\r\nContent-Type: ";
    out += response.contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(response.body.size());
    out += keepAlive ? "\r\nConnection: keep-alive"
                     : "\r\nConnection: close";
    out += "\r\n\r\n";
    out += response.body;
    return out;
}

/**
 * Parse one request out of @p in (consuming it). Returns:
 *   1  a complete request was parsed into @p request
 *   0  the buffer holds only a prefix; read more
 *  -1  the buffer is malformed; @p error holds a response to send
 */
int
parseRequest(std::string &in, HttpRequest &request,
             HttpResponse &error)
{
    size_t headerEnd = in.find("\r\n\r\n");
    // Enforce the limit whether or not the terminator has arrived: an
    // oversized header block delivered in one burst must be rejected,
    // not parsed.
    if (std::min(headerEnd, in.size()) > MAX_HEADER_BYTES) {
        error = HttpResponse::json(
            431, "{\"error\":\"request header block exceeds 64 "
                 "KiB\",\"status\":431}");
        return -1;
    }
    if (headerEnd == std::string::npos)
        return 0;

    request = HttpRequest{};
    size_t lineEnd = in.find("\r\n");
    std::string requestLine = in.substr(0, lineEnd);
    size_t sp1 = requestLine.find(' ');
    size_t sp2 = sp1 == std::string::npos
                     ? std::string::npos
                     : requestLine.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || sp1 == 0 || sp2 == sp1 + 1 ||
        sp2 + 1 >= requestLine.size()) {
        error = HttpResponse::json(
            400,
            "{\"error\":\"malformed request line\",\"status\":400}");
        return -1;
    }
    request.method = requestLine.substr(0, sp1);
    request.target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
    request.version = requestLine.substr(sp2 + 1);
    if (request.version.rfind("HTTP/", 0) != 0) {
        error = HttpResponse::json(
            400,
            "{\"error\":\"malformed HTTP version\",\"status\":400}");
        return -1;
    }

    size_t cursor = lineEnd + 2;
    while (cursor < headerEnd) {
        size_t end = in.find("\r\n", cursor);
        std::string line = in.substr(cursor, end - cursor);
        cursor = end + 2;
        size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
            error = HttpResponse::json(
                400,
                "{\"error\":\"malformed header line\",\"status\":400}");
            return -1;
        }
        std::string name = line.substr(0, colon);
        size_t valueStart = line.find_first_not_of(" \t", colon + 1);
        std::string value = valueStart == std::string::npos
                                ? ""
                                : line.substr(valueStart);
        request.headers.emplace_back(std::move(name), std::move(value));
    }

    size_t bodyLength = 0;
    if (const std::string *length = request.header("Content-Length")) {
        char *parseEnd = nullptr;
        errno = 0;
        unsigned long long parsed =
            std::strtoull(length->c_str(), &parseEnd, 10);
        if (errno != 0 || parseEnd == length->c_str() ||
            *parseEnd != '\0') {
            error = HttpResponse::json(
                400,
                "{\"error\":\"malformed Content-Length\",\"status\":"
                "400}");
            return -1;
        }
        if (parsed > MAX_BODY_BYTES) {
            error = HttpResponse::json(
                413, "{\"error\":\"request body exceeds 8 "
                     "MiB\",\"status\":413}");
            return -1;
        }
        bodyLength = static_cast<size_t>(parsed);
    }

    size_t bodyStart = headerEnd + 4;
    if (in.size() < bodyStart + bodyLength)
        return 0;
    request.body = in.substr(bodyStart, bodyLength);
    in.erase(0, bodyStart + bodyLength);
    return 1;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[key, value] : headers)
        if (equalsIgnoreCase(key, name))
            return &value;
    return nullptr;
}

std::string
HttpRequest::path() const
{
    return target.substr(0, target.find('?'));
}

std::optional<uint64_t>
HttpRequest::queryNumber(const std::string &key) const
{
    size_t question = target.find('?');
    if (question == std::string::npos)
        return std::nullopt;
    size_t cursor = question + 1;
    while (cursor < target.size()) {
        size_t end = target.find('&', cursor);
        if (end == std::string::npos)
            end = target.size();
        std::string pair = target.substr(cursor, end - cursor);
        cursor = end + 1;
        size_t eq = pair.find('=');
        if (eq == std::string::npos || pair.substr(0, eq) != key)
            continue;
        std::string text = pair.substr(eq + 1);
        if (text.empty() ||
            text.find_first_not_of("0123456789") != std::string::npos)
            return std::nullopt;
        uint64_t value = 0;
        for (char c : text) {
            uint64_t digit = static_cast<uint64_t>(c - '0');
            if (value > (UINT64_MAX - digit) / 10)
                return std::nullopt;
            value = value * 10 + digit;
        }
        return value;
    }
    return std::nullopt;
}

std::optional<std::string>
HttpRequest::queryParam(const std::string &key) const
{
    std::vector<std::string> values = queryParams(key);
    if (values.empty())
        return std::nullopt;
    return std::move(values.front());
}

std::vector<std::string>
HttpRequest::queryParams(const std::string &key) const
{
    std::vector<std::string> values;
    size_t question = target.find('?');
    if (question == std::string::npos)
        return values;
    size_t cursor = question + 1;
    while (cursor < target.size()) {
        size_t end = target.find('&', cursor);
        if (end == std::string::npos)
            end = target.size();
        std::string pair = target.substr(cursor, end - cursor);
        cursor = end + 1;
        size_t eq = pair.find('=');
        if (eq == std::string::npos || pair.substr(0, eq) != key)
            continue;
        values.push_back(pair.substr(eq + 1));
    }
    return values;
}

HttpResponse
HttpResponse::json(int status, std::string body)
{
    return HttpResponse{status, "application/json", std::move(body)};
}

HttpResponse
HttpResponse::text(int status, std::string body)
{
    return HttpResponse{status, "text/plain; charset=utf-8",
                        std::move(body)};
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      default: return "Unknown";
    }
}

HttpServer::HttpServer(uint16_t port, HttpHandler handler)
    : handler_(std::move(handler))
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("http server: socket(): ", std::strerror(errno));

    int enable = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) < 0) {
        int savedErrno = errno;
        ::close(listenFd_);
        fatal("http server: cannot bind 127.0.0.1:", port, ": ",
              std::strerror(savedErrno));
    }
    if (::listen(listenFd_, 64) < 0) {
        int savedErrno = errno;
        ::close(listenFd_);
        fatal("http server: listen(): ", std::strerror(savedErrno));
    }

    socklen_t addressLength = sizeof(address);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&address),
                      &addressLength) == 0)
        port_ = ntohs(address.sin_port);
    setNonBlocking(listenFd_);
}

HttpServer::~HttpServer()
{
    for (auto &conn : connections_)
        ::close(conn.fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
HttpServer::acceptReady()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            // Out of descriptors: the pending connection stays in the
            // backlog, so the listen fd would report readable on
            // every poll -- a 100% CPU spin. Mute it for a while and
            // let connections drain first.
            if (errno == EMFILE || errno == ENFILE)
                muteAcceptRounds_ = 50;
            return; // otherwise EAGAIN or transient; poll again
        }
        setNonBlocking(fd);
        int enable = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                     sizeof(enable));
        Connection conn;
        conn.fd = fd;
        connections_.push_back(std::move(conn));
    }
}

void
HttpServer::logAccess(const std::string &method,
                      const std::string &path, int status, size_t bytes,
                      std::chrono::steady_clock::time_point started)
{
    auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    httpMetrics().requestSeconds.observe(
        static_cast<double>(micros) / 1e6);
    if (accessLog_)
        inform("http: ", method, " ", path, " -> ", status, " ",
               bytes, "B ", micros, "us");
}

bool
HttpServer::dispatchBuffered(Connection &conn)
{
    // Drain every complete pipelined request before returning to
    // poll(); responses queue in order on the output buffer.
    while (true) {
        HttpRequest request;
        HttpResponse error;
        size_t inBefore = conn.in.size();
        auto started = std::chrono::steady_clock::now();
        int parsed = parseRequest(conn.in, request, error);
        if (parsed == 0)
            return true;
        // Bytes the parser consumed = this request's wire size (on a
        // parse error nothing is consumed; count what was buffered).
        httpMetrics().bytesIn.add(parsed < 0 ? inBefore
                                             : inBefore - conn.in.size());
        if (parsed < 0) {
            std::string wire = serializeResponse(error, false);
            httpMetrics().bytesOut.add(wire.size());
            requestCounter("other", error.status).add();
            logAccess("-", "-", error.status, wire.size(), started);
            conn.out += wire;
            conn.closeAfterWrite = true;
            return true;
        }

        HttpResponse response;
        try {
            response = handler_(request);
        } catch (const std::exception &e) {
            response = HttpResponse::json(
                500, "{\"error\":\"internal error\",\"status\":500}");
            warn("http server: handler threw: ", e.what());
        }

        bool keepAlive = request.version != "HTTP/1.0";
        if (const std::string *connection =
                request.header("Connection")) {
            if (equalsIgnoreCase(*connection, "close"))
                keepAlive = false;
            else if (equalsIgnoreCase(*connection, "keep-alive"))
                keepAlive = true;
        }
        std::string wire = serializeResponse(response, keepAlive);
        httpMetrics().bytesOut.add(wire.size());
        requestCounter(normalizeEndpoint(request.path()),
                       response.status)
            .add();
        if (conn.served > 0)
            httpMetrics().keepAliveReuse.add();
        ++conn.served;
        logAccess(request.method, request.path(), response.status,
                  wire.size(), started);
        conn.out += wire;
        if (!keepAlive) {
            conn.closeAfterWrite = true;
            return true;
        }
    }
}

bool
HttpServer::readReady(Connection &conn)
{
    bool eof = false;
    char buffer[16 * 1024];
    while (true) {
        ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
        if (n > 0) {
            conn.in.append(buffer, static_cast<size_t>(n));
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    bool keep = dispatchBuffered(conn);
    if (eof) {
        // Half-close: the request bytes and the FIN can arrive in the
        // same poll round, so answer what was buffered, flush, then
        // close -- never drop a complete request unanswered.
        conn.closeAfterWrite = true;
        return keep && !conn.out.empty();
    }
    return keep;
}

bool
HttpServer::writeReady(Connection &conn)
{
    while (!conn.out.empty()) {
        // MSG_NOSIGNAL: a client that disconnected before the flush
        // must surface as EPIPE on this connection, not as a
        // process-killing SIGPIPE for the whole daemon.
        ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
    return !conn.closeAfterWrite;
}

void
HttpServer::closeConnection(size_t index)
{
    ::close(connections_[index].fd);
    connections_.erase(connections_.begin() +
                       static_cast<ptrdiff_t>(index));
}

void
HttpServer::pollOnce(int timeoutMs)
{
    // acceptReady() below appends to connections_, so remember how
    // many the pollfd array actually covers: fds[i + 1] must stay
    // paired with connections_[i] or events land on the wrong
    // connection.
    size_t polled = connections_.size();
    std::vector<pollfd> fds;
    fds.reserve(polled + 1);
    short listenEvents = POLLIN;
    if (muteAcceptRounds_ > 0) {
        --muteAcceptRounds_;
        listenEvents = 0; // fd exhaustion backoff (see acceptReady)
    }
    fds.push_back({listenFd_, listenEvents, 0});
    for (size_t i = 0; i < polled; ++i) {
        // A draining connection (half-closed peer) would report POLLIN
        // forever; only its remaining output matters.
        short events = connections_[i].closeAfterWrite
                           ? short{0}
                           : short{POLLIN};
        if (!connections_[i].out.empty())
            events |= POLLOUT;
        fds.push_back({connections_[i].fd, events, 0});
    }

    int ready = ::poll(fds.data(), fds.size(), timeoutMs);
    if (ready <= 0)
        return; // timeout, EINTR (signal -> caller re-checks), or error

    if (fds[0].revents & POLLIN)
        acceptReady();

    // Walk backwards so closing a connection does not shift the
    // indices of the ones still to visit (freshly accepted
    // connections sit past `polled` and are untouched this round).
    for (size_t i = polled; i-- > 0;) {
        short revents = fds[i + 1].revents;
        if (revents == 0)
            continue;
        Connection &conn = connections_[i];
        bool alive = true;
        if (revents & (POLLERR | POLLNVAL))
            alive = false;
        if (alive && (revents & (POLLIN | POLLHUP)))
            alive = readReady(conn);
        if (alive && !conn.out.empty())
            alive = writeReady(conn);
        else if (alive && conn.closeAfterWrite)
            alive = false;
        if (!alive)
            closeConnection(i);
    }
}

void
HttpServer::run(int pollTimeoutMs)
{
    while (!stopped_.load() && !stopRequested())
        pollOnce(pollTimeoutMs);
}

void
HttpServer::stop()
{
    stopped_.store(true);
}

} // namespace etc::service
