/**
 * @file
 * Lease coordinator: decomposes submitted cells into shard-range
 * leases and tracks their lifecycle across a worker fleet.
 *
 * Each registered cell becomes `shardCount` leases, one per
 * ErrorToleranceStudy::shardRange() stripe. Workers (remote agents
 * via POST /v1/leases/acquire, or the daemon's own local pool)
 * acquire leases, execute them through the cache-aware engine, and
 * complete them; a lease whose deadline lapses without a heartbeat is
 * re-issued to the next acquirer. Because shard records are
 * content-addressed and a cell is a pure function of its key, a late
 * completion of a re-issued lease is harmless -- both workers wrote
 * identical bytes, so completion is accepted idempotently from any
 * owner, past or present.
 *
 * The coordinator never touches the result store or the simulator:
 * it is pure bookkeeping behind one mutex, so every method is safe to
 * call from the single-threaded HTTP event loop and from scheduler
 * workers concurrently. Store verification (has the shard actually
 * landed?) and shard-merge promotion stay in the Scheduler, which
 * owns the store.
 *
 * Failure model: worker-reported failures and deadline expiries both
 * re-pend the lease; a lease that reaches maxIssues grants fails its
 * whole cell (a deterministic simulation bug would otherwise
 * re-issue forever). takeFailed()/takeCompleted() hand terminal cells
 * to exactly one harvesting worker.
 */

#ifndef ETC_SERVICE_COORDINATOR_HH
#define ETC_SERVICE_COORDINATOR_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace etc::service {

/** Coordinator knobs (from `etc_lab serve` flags). */
struct CoordinatorConfig
{
    /** Lease deadline; a worker heartbeats at ttl/3 to keep it. */
    uint64_t leaseTtlMs = 10000;

    /** Grants per lease before its cell fails permanently. */
    unsigned maxIssues = 5;
};

/** Static description of one cell registered for decomposition --
 *  everything a remote worker needs to rebuild the exact CellKey. */
struct LeaseCell
{
    std::string fingerprint; //!< expected CellKey fingerprint
    std::string experiment;  //!< registry experiment name
    unsigned errors = 0;
    std::string policy;
    unsigned trials = 0;
    uint64_t seed = 0;
    uint64_t checkpointInterval = 0;
    bool staticPrune = false;
    unsigned gangWidth = 0;
};

/** One granted lease: the cell description plus the stripe. */
struct LeaseGrant
{
    std::string id; //!< "<fingerprint>.<shardIndex>of<shardCount>"
    LeaseCell cell;
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
    unsigned lo = 0; //!< stripe trial range [lo, hi)
    unsigned hi = 0;
    unsigned issue = 0;  //!< 1 on first grant, 2+ on re-issues
    uint64_t ttlMs = 0;
};

/** Heartbeat verdict (the worker decides whether to keep going). */
enum class LeaseBeat
{
    Active,  //!< deadline extended
    Lost,    //!< re-issued to another worker (finishing is harmless)
    Unknown, //!< no such lease (cell promoted, failed, or never seen)
};

/** A cell whose every lease is done, claimed for promotion. */
struct CompletedCell
{
    LeaseCell cell;
    unsigned shardCount = 0;
    uint64_t trialsExecuted = 0; //!< summed from complete() reports
    double wallSeconds = 0.0;    //!< summed from complete() reports
};

/** Point-in-time lease row (GET /v1/fleet and tests). */
struct LeaseInfo
{
    std::string id;
    std::string fingerprint;
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
    std::string state; //!< pending | active | done
    std::string owner; //!< last granted worker ("" while pending)
    unsigned issue = 0;
    int64_t remainingMs = 0; //!< deadline - now (active only)
};

/** Aggregate counters (healthz, /v1/fleet, shutdown summaries). */
struct CoordinatorStats
{
    size_t cells = 0;         //!< cells currently registered
    size_t leasesPending = 0;
    size_t leasesActive = 0;
    size_t leasesDone = 0;
    size_t workers = 0;       //!< agents seen within the activity window
    uint64_t issued = 0;      //!< grants, including re-issues
    uint64_t reissued = 0;
    uint64_t expired = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;      //!< worker-reported lease failures
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig config);

    /** @p callback runs (outside the coordinator mutex) whenever a
     *  lease completes or fails -- the scheduler pokes its condvar so
     *  promotion does not wait for the next poll tick. */
    void setActivityCallback(std::function<void()> callback);

    /**
     * Register @p cell as @p shardCount leases. @p alreadyDone marks
     * stripes whose shard record is already stored (the resume path);
     * those leases start done. Idempotent: re-registering a live
     * fingerprint is a no-op. @return true if newly registered.
     */
    bool registerCell(const LeaseCell &cell, unsigned shardCount,
                      const std::vector<bool> &alreadyDone);

    /**
     * Grant up to @p max leases to @p worker: pending leases first
     * (expired actives were re-pended by sweepExpired(), which this
     * calls). Re-grants count toward the lease's issue cap.
     */
    std::vector<LeaseGrant> acquire(const std::string &worker,
                                    unsigned max);

    /** Extend the deadline of @p leaseId if @p worker still owns it. */
    LeaseBeat heartbeat(const std::string &leaseId,
                        const std::string &worker);

    /**
     * Mark @p leaseId done. Idempotent and owner-agnostic: a stale
     * owner of a re-issued lease completed the same content-addressed
     * bytes, so its completion is accepted too (double completions
     * simply keep the lease done). The caller verifies the shard
     * actually landed in the store first. @return false if unknown.
     */
    bool complete(const std::string &leaseId, const std::string &worker,
                  uint64_t trialsExecuted, double wallSeconds);

    /**
     * Worker-reported failure: re-pend the lease for the next
     * acquirer, or -- at the issue cap -- fail the whole cell.
     * @return false if unknown (or already done).
     */
    bool fail(const std::string &leaseId, const std::string &worker,
              const std::string &error);

    /** Re-pend lapsed active leases (cells at the issue cap fail)
     *  and age out idle workers. Cheap; called at poll frequency. */
    void sweepExpired();

    /** Claim cells whose every lease is done (each exactly once).
     *  The claimer promotes and then calls finishCell() -- or
     *  reopenStripes() if the store disagrees. */
    std::vector<CompletedCell> takeCompleted();

    /** Claim permanently failed cells: (fingerprint, error). */
    std::vector<std::pair<std::string, std::string>> takeFailed();

    /** Forget a promoted cell (its record is in the store). */
    void finishCell(const std::string &fingerprint);

    /** Put the given stripes of a claimed cell back to pending (the
     *  promoting worker found their shards missing from the store). */
    void reopenStripes(const std::string &fingerprint,
                       const std::vector<unsigned> &stripes);

    /** @return whether any lease of any registered cell is pending
     *  (work a local executor could pick up right now). */
    bool hasPendingLeases() const;

    /** @return the grant-shaped view of @p leaseId whatever its
     *  state (completion handlers verify the store against it), or
     *  nullopt if no such lease is registered. */
    std::optional<LeaseGrant> lookupLease(
        const std::string &leaseId) const;

    CoordinatorStats stats() const;

    /** Every lease of every registered cell (fleet debugging). */
    std::vector<LeaseInfo> leases() const;

    uint64_t leaseTtlMs() const { return config_.leaseTtlMs; }

  private:
    using Clock = std::chrono::steady_clock;

    enum class State { Pending, Active, Done };

    struct Lease
    {
        unsigned shardIndex = 0;
        unsigned lo = 0;
        unsigned hi = 0;
        State state = State::Pending;
        std::string owner;
        unsigned issue = 0;
        Clock::time_point deadline{};
    };

    struct CellEntry
    {
        LeaseCell cell;
        unsigned shardCount = 0;
        std::vector<Lease> leases;
        uint64_t trialsExecuted = 0;
        double wallSeconds = 0.0;
        bool promoting = false; //!< claimed by takeCompleted()
        bool failed = false;
        std::string error;
    };

    struct ParsedId
    {
        std::string fingerprint;
        unsigned shardIndex = 0;
    };

    static std::string leaseId(const std::string &fingerprint,
                               unsigned shardIndex,
                               unsigned shardCount);
    std::optional<ParsedId> parseLeaseId(
        const std::string &leaseId) const;
    Lease *findLease(const std::string &leaseId, CellEntry **entry);
    void sweepExpiredLocked();
    void touchWorker(const std::string &worker);
    void updateGauges() const;
    void notifyActivity();

    CoordinatorConfig config_;
    std::function<void()> activity_;

    mutable std::mutex mutex_; //!< guards everything below
    std::map<std::string, CellEntry> cells_; //!< by fingerprint
    std::map<std::string, Clock::time_point> workersSeen_;
    uint64_t issued_ = 0;
    uint64_t reissued_ = 0;
    uint64_t expired_ = 0;
    uint64_t completed_ = 0;
    uint64_t failed_ = 0;
};

} // namespace etc::service

#endif // ETC_SERVICE_COORDINATOR_HH
