#include "service/coordinator.hh"

#include <algorithm>

#include "core/study.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"

namespace etc::service {

namespace {

/** Fleet metrics: lease lifecycle counters plus worker presence.
 *  Ticked at bookkeeping frequency, never inside simulation loops. */
struct FleetMetrics
{
    telemetry::Gauge &pending = telemetry::gauge(
        "etc_lease_pending", "Leases waiting for a worker");
    telemetry::Gauge &active = telemetry::gauge(
        "etc_lease_active", "Leases granted and within deadline");
    telemetry::Counter &issued = telemetry::counter(
        "etc_lease_issued_total",
        "Lease grants, including re-issues");
    telemetry::Counter &reissued = telemetry::counter(
        "etc_lease_reissued_total",
        "Lease grants beyond a lease's first (expiry or failure)");
    telemetry::Counter &expired = telemetry::counter(
        "etc_lease_expired_total",
        "Active leases whose heartbeat deadline lapsed");
    telemetry::Counter &completed = telemetry::counter(
        "etc_lease_completed_total", "Leases completed");
    telemetry::Counter &failed = telemetry::counter(
        "etc_lease_failed_total", "Worker-reported lease failures");
    telemetry::Gauge &workers = telemetry::gauge(
        "etc_worker_agents",
        "Workers seen by the coordinator within the activity window");
    telemetry::Counter &heartbeats = telemetry::counter(
        "etc_worker_heartbeats_total", "Lease heartbeats received");
};

FleetMetrics &
fleetMetrics()
{
    static FleetMetrics metrics;
    return metrics;
}

const char *
stateName(int state)
{
    switch (state) {
      case 0: return "pending";
      case 1: return "active";
      case 2: return "done";
    }
    return "unknown";
}

} // namespace

Coordinator::Coordinator(CoordinatorConfig config) : config_(config)
{
    if (config_.leaseTtlMs == 0)
        config_.leaseTtlMs = 1;
    if (config_.maxIssues == 0)
        config_.maxIssues = 1;
}

void
Coordinator::setActivityCallback(std::function<void()> callback)
{
    activity_ = std::move(callback);
}

std::string
Coordinator::leaseId(const std::string &fingerprint,
                     unsigned shardIndex, unsigned shardCount)
{
    return fingerprint + "." + std::to_string(shardIndex) + "of" +
           std::to_string(shardCount);
}

std::optional<Coordinator::ParsedId>
Coordinator::parseLeaseId(const std::string &leaseId) const
{
    size_t dot = leaseId.find('.');
    size_t of = leaseId.find("of", dot == std::string::npos ? 0 : dot);
    if (dot == std::string::npos || of == std::string::npos ||
        of <= dot + 1)
        return std::nullopt;
    std::string index = leaseId.substr(dot + 1, of - dot - 1);
    if (index.empty() ||
        index.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    ParsedId parsed;
    parsed.fingerprint = leaseId.substr(0, dot);
    parsed.shardIndex = static_cast<unsigned>(std::stoul(index));
    return parsed;
}

Coordinator::Lease *
Coordinator::findLease(const std::string &leaseId, CellEntry **entry)
{
    // Caller holds mutex_.
    auto parsed = parseLeaseId(leaseId);
    if (!parsed)
        return nullptr;
    auto it = cells_.find(parsed->fingerprint);
    if (it == cells_.end() ||
        parsed->shardIndex >= it->second.leases.size())
        return nullptr;
    if (entry)
        *entry = &it->second;
    return &it->second.leases[parsed->shardIndex];
}

bool
Coordinator::registerCell(const LeaseCell &cell, unsigned shardCount,
                          const std::vector<bool> &alreadyDone)
{
    bool registered = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cells_.count(cell.fingerprint))
            return false;
        CellEntry entry;
        entry.cell = cell;
        entry.shardCount = std::max(1u, shardCount);
        for (unsigned i = 0; i < entry.shardCount; ++i) {
            Lease lease;
            lease.shardIndex = i;
            auto [lo, hi] = core::ErrorToleranceStudy::shardRange(
                cell.trials, i, entry.shardCount);
            lease.lo = lo;
            lease.hi = hi;
            if (i < alreadyDone.size() && alreadyDone[i])
                lease.state = State::Done;
            entry.leases.push_back(lease);
        }
        cells_.emplace(cell.fingerprint, std::move(entry));
        updateGauges();
        registered = true;
    }
    // A fully-stored cell registers with every lease done; wake the
    // pool so a harvester promotes it without waiting for a tick.
    notifyActivity();
    return registered;
}

std::vector<LeaseGrant>
Coordinator::acquire(const std::string &worker, unsigned max)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked();
    touchWorker(worker);
    std::vector<LeaseGrant> grants;
    auto deadline = Clock::now() +
                    std::chrono::milliseconds(config_.leaseTtlMs);
    for (auto &[fingerprint, entry] : cells_) {
        if (grants.size() >= max)
            break;
        if (entry.failed || entry.promoting)
            continue;
        for (auto &lease : entry.leases) {
            if (grants.size() >= max)
                break;
            if (lease.state != State::Pending)
                continue;
            lease.state = State::Active;
            lease.owner = worker;
            lease.deadline = deadline;
            ++lease.issue;
            ++issued_;
            fleetMetrics().issued.add();
            if (lease.issue > 1) {
                ++reissued_;
                fleetMetrics().reissued.add();
            }
            LeaseGrant grant;
            grant.id = leaseId(fingerprint, lease.shardIndex,
                               entry.shardCount);
            grant.cell = entry.cell;
            grant.shardIndex = lease.shardIndex;
            grant.shardCount = entry.shardCount;
            grant.lo = lease.lo;
            grant.hi = lease.hi;
            grant.issue = lease.issue;
            grant.ttlMs = config_.leaseTtlMs;
            grants.push_back(std::move(grant));
        }
    }
    updateGauges();
    return grants;
}

LeaseBeat
Coordinator::heartbeat(const std::string &leaseId,
                       const std::string &worker)
{
    std::lock_guard<std::mutex> lock(mutex_);
    touchWorker(worker);
    fleetMetrics().heartbeats.add();
    CellEntry *entry = nullptr;
    Lease *lease = findLease(leaseId, &entry);
    if (!lease)
        return LeaseBeat::Unknown;
    if (lease->state != State::Active || lease->owner != worker)
        return LeaseBeat::Lost;
    lease->deadline = Clock::now() +
                      std::chrono::milliseconds(config_.leaseTtlMs);
    return LeaseBeat::Active;
}

bool
Coordinator::complete(const std::string &leaseId,
                      const std::string &worker,
                      uint64_t trialsExecuted, double wallSeconds)
{
    bool known = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        touchWorker(worker);
        CellEntry *entry = nullptr;
        Lease *lease = findLease(leaseId, &entry);
        if (lease) {
            known = true;
            if (lease->state != State::Done) {
                lease->state = State::Done;
                lease->owner = worker;
                entry->trialsExecuted += trialsExecuted;
                entry->wallSeconds += wallSeconds;
                ++completed_;
                fleetMetrics().completed.add();
            }
            // else: the stale owner of a re-issued lease finished the
            // same content-addressed range -- idempotently done.
            updateGauges();
        }
    }
    if (known)
        notifyActivity();
    return known;
}

bool
Coordinator::fail(const std::string &leaseId,
                  const std::string &worker, const std::string &error)
{
    bool known = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        touchWorker(worker);
        CellEntry *entry = nullptr;
        Lease *lease = findLease(leaseId, &entry);
        if (lease && lease->state != State::Done) {
            known = true;
            ++failed_;
            fleetMetrics().failed.add();
            if (lease->issue >= config_.maxIssues) {
                entry->failed = true;
                entry->error = "lease " + leaseId + " failed after " +
                               std::to_string(lease->issue) +
                               " grants: " + error;
            } else {
                lease->state = State::Pending;
                lease->owner.clear();
                warn("coordinator: lease ", leaseId, " failed on '",
                     worker, "' (grant ", lease->issue, "): ", error,
                     " -- re-issuing");
            }
            updateGauges();
        }
    }
    if (known)
        notifyActivity();
    return known;
}

void
Coordinator::sweepExpired()
{
    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked();
}

void
Coordinator::sweepExpiredLocked()
{
    // Caller holds mutex_.
    auto now = Clock::now();
    for (auto &[fingerprint, entry] : cells_) {
        if (entry.failed)
            continue;
        for (auto &lease : entry.leases) {
            if (lease.state != State::Active || lease.deadline > now)
                continue;
            ++expired_;
            fleetMetrics().expired.add();
            if (lease.issue >= config_.maxIssues) {
                entry.failed = true;
                entry.error =
                    "lease " +
                    leaseId(fingerprint, lease.shardIndex,
                            entry.shardCount) +
                    " expired after " + std::to_string(lease.issue) +
                    " grants (last worker '" + lease.owner + "')";
            } else {
                warn("coordinator: lease ",
                     leaseId(fingerprint, lease.shardIndex,
                             entry.shardCount),
                     " expired on '", lease.owner,
                     "' -- re-issuing");
                lease.state = State::Pending;
                lease.owner.clear();
            }
        }
    }
    // Age out workers idle past the activity window (3 deadlines,
    // floored so tests with millisecond ttls don't flicker).
    auto window = std::chrono::milliseconds(
        std::max<uint64_t>(3 * config_.leaseTtlMs, 1000));
    for (auto it = workersSeen_.begin(); it != workersSeen_.end();) {
        if (it->second + window < now)
            it = workersSeen_.erase(it);
        else
            ++it;
    }
    updateGauges();
}

std::vector<CompletedCell>
Coordinator::takeCompleted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CompletedCell> ready;
    for (auto &[fingerprint, entry] : cells_) {
        if (entry.failed || entry.promoting)
            continue;
        bool allDone = std::all_of(
            entry.leases.begin(), entry.leases.end(),
            [](const Lease &l) { return l.state == State::Done; });
        if (!allDone)
            continue;
        entry.promoting = true;
        CompletedCell done;
        done.cell = entry.cell;
        done.shardCount = entry.shardCount;
        done.trialsExecuted = entry.trialsExecuted;
        done.wallSeconds = entry.wallSeconds;
        ready.push_back(std::move(done));
    }
    return ready;
}

std::vector<std::pair<std::string, std::string>>
Coordinator::takeFailed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::string>> failed;
    for (auto it = cells_.begin(); it != cells_.end();) {
        if (it->second.failed) {
            failed.emplace_back(it->first, it->second.error);
            it = cells_.erase(it);
        } else {
            ++it;
        }
    }
    if (!failed.empty())
        updateGauges();
    return failed;
}

void
Coordinator::finishCell(const std::string &fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.erase(fingerprint);
    updateGauges();
}

void
Coordinator::reopenStripes(const std::string &fingerprint,
                           const std::vector<unsigned> &stripes)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cells_.find(fingerprint);
        if (it == cells_.end())
            return;
        CellEntry &entry = it->second;
        entry.promoting = false;
        for (unsigned stripe : stripes) {
            if (stripe >= entry.leases.size())
                continue;
            Lease &lease = entry.leases[stripe];
            lease.state = State::Pending;
            lease.owner.clear();
            warn("coordinator: shard ", lease.lo, "-", lease.hi,
                 " of cell ", fingerprint,
                 " vanished before promotion -- re-issuing its lease");
        }
        updateGauges();
    }
    notifyActivity();
}

std::optional<LeaseGrant>
Coordinator::lookupLease(const std::string &leaseId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto parsed = parseLeaseId(leaseId);
    if (!parsed)
        return std::nullopt;
    auto it = cells_.find(parsed->fingerprint);
    if (it == cells_.end() ||
        parsed->shardIndex >= it->second.leases.size())
        return std::nullopt;
    const CellEntry &entry = it->second;
    const Lease &lease = entry.leases[parsed->shardIndex];
    LeaseGrant grant;
    grant.id = leaseId;
    grant.cell = entry.cell;
    grant.shardIndex = lease.shardIndex;
    grant.shardCount = entry.shardCount;
    grant.lo = lease.lo;
    grant.hi = lease.hi;
    grant.issue = lease.issue;
    grant.ttlMs = config_.leaseTtlMs;
    return grant;
}

bool
Coordinator::hasPendingLeases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[fingerprint, entry] : cells_) {
        if (entry.failed || entry.promoting)
            continue;
        for (const auto &lease : entry.leases)
            if (lease.state == State::Pending)
                return true;
    }
    return false;
}

CoordinatorStats
Coordinator::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CoordinatorStats stats;
    stats.cells = cells_.size();
    for (const auto &[fingerprint, entry] : cells_) {
        for (const auto &lease : entry.leases) {
            switch (lease.state) {
              case State::Pending: ++stats.leasesPending; break;
              case State::Active: ++stats.leasesActive; break;
              case State::Done: ++stats.leasesDone; break;
            }
        }
    }
    stats.workers = workersSeen_.size();
    stats.issued = issued_;
    stats.reissued = reissued_;
    stats.expired = expired_;
    stats.completed = completed_;
    stats.failed = failed_;
    return stats;
}

std::vector<LeaseInfo>
Coordinator::leases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto now = Clock::now();
    std::vector<LeaseInfo> rows;
    for (const auto &[fingerprint, entry] : cells_) {
        for (const auto &lease : entry.leases) {
            LeaseInfo info;
            info.id = leaseId(fingerprint, lease.shardIndex,
                              entry.shardCount);
            info.fingerprint = fingerprint;
            info.shardIndex = lease.shardIndex;
            info.shardCount = entry.shardCount;
            info.state = stateName(static_cast<int>(lease.state));
            info.owner = lease.owner;
            info.issue = lease.issue;
            if (lease.state == State::Active)
                info.remainingMs =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(lease.deadline - now)
                        .count();
            rows.push_back(std::move(info));
        }
    }
    return rows;
}

void
Coordinator::touchWorker(const std::string &worker)
{
    // Caller holds mutex_.
    workersSeen_[worker] = Clock::now();
    fleetMetrics().workers.set(
        static_cast<int64_t>(workersSeen_.size()));
}

void
Coordinator::updateGauges() const
{
    // Caller holds mutex_.
    size_t pending = 0, active = 0;
    for (const auto &[fingerprint, entry] : cells_) {
        for (const auto &lease : entry.leases) {
            if (lease.state == State::Pending)
                ++pending;
            else if (lease.state == State::Active)
                ++active;
        }
    }
    fleetMetrics().pending.set(static_cast<int64_t>(pending));
    fleetMetrics().active.set(static_cast<int64_t>(active));
    fleetMetrics().workers.set(
        static_cast<int64_t>(workersSeen_.size()));
}

void
Coordinator::notifyActivity()
{
    // Outside mutex_: the callback pokes the scheduler's condvar and
    // must not nest under the coordinator lock.
    if (activity_)
        activity_();
}

} // namespace etc::service
