/**
 * @file
 * Minimal blocking HTTP/1.1 client for the campaign service.
 *
 * One request per connection (Connection: close), so responses are
 * delimited by Content-Length or EOF and the parser stays trivial.
 * Used by the `etc_lab submit/status/fetch` remote subcommands and by
 * the loopback integration tests; it is deliberately not a general
 * HTTP client (no TLS, no redirects, no chunked encoding).
 */

#ifndef ETC_SERVICE_CLIENT_HH
#define ETC_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

namespace etc::service {

class Client
{
  public:
    /** A client for http://@p host:@p port (no connection yet). */
    Client(std::string host, uint16_t port);

    /** One received response. */
    struct Response
    {
        int status = 0;
        std::string contentType;
        std::string body;

        bool ok() const { return status >= 200 && status < 300; }
    };

    /**
     * Blocking GET of @p target.
     * @throws FatalError on connect/transport/parse failure (an HTTP
     *         error status is a *response*, not a failure).
     */
    Response get(const std::string &target);

    /** Blocking POST of @p body (application/json) to @p target. */
    Response post(const std::string &target, const std::string &body);

  private:
    Response roundTrip(const std::string &request);

    std::string host_;
    uint16_t port_;
};

} // namespace etc::service

#endif // ETC_SERVICE_CLIENT_HH
