/**
 * @file
 * Minimal blocking HTTP/1.1 client for the campaign service.
 *
 * One request per connection (Connection: close), so responses are
 * delimited by Content-Length or EOF and the parser stays trivial.
 * Used by the `etc_lab submit/status/fetch` remote subcommands and by
 * the loopback integration tests; it is deliberately not a general
 * HTTP client (no TLS, no redirects, no chunked encoding).
 */

#ifndef ETC_SERVICE_CLIENT_HH
#define ETC_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

namespace etc::service {

/** Transport deadlines. A worker agent polling a coordinator (or
 *  `etc_lab submit --wait` polling a daemon) must never hang forever
 *  on a dead peer -- it should fail the round trip and let its
 *  retry/backoff policy decide. Namespace-scope (not nested in
 *  Client) so its member initializers are parsed before Client's
 *  constructor default argument needs them. */
struct ClientTimeouts
{
    /** TCP connect deadline (0 = block forever). */
    uint64_t connectMs = 5000;

    /** Per-read/write deadline once connected (0 = forever).
     *  Generous: a figure render or busy event loop may stall a
     *  response, but a minute of silence on a one-request connection
     *  means the peer is gone. */
    uint64_t ioMs = 60000;
};

class Client
{
  public:
    using Timeouts = ClientTimeouts;

    /** A client for http://@p host:@p port (no connection yet). */
    Client(std::string host, uint16_t port,
           Timeouts timeouts = Timeouts{});

    /** One received response. */
    struct Response
    {
        int status = 0;
        std::string contentType;
        std::string body;

        bool ok() const { return status >= 200 && status < 300; }
    };

    /**
     * Blocking GET of @p target.
     * @throws FatalError on connect/transport/parse failure (an HTTP
     *         error status is a *response*, not a failure).
     */
    Response get(const std::string &target);

    /** Blocking POST of @p body (application/json) to @p target. */
    Response post(const std::string &target, const std::string &body);

  private:
    Response roundTrip(const std::string &request);

    std::string host_;
    uint16_t port_;
    Timeouts timeouts_;
};

} // namespace etc::service

#endif // ETC_SERVICE_CLIENT_HH
