/**
 * @file
 * Dependency-free HTTP/1.1 server for the campaign service daemon.
 *
 * A single poll(2)-driven event loop (in the pazpar2 style: one
 * non-blocking listen socket plus per-connection input/output
 * buffers) parses requests, hands each to a caller-supplied handler,
 * and streams the response back, tolerating partial reads and writes.
 * Keep-alive and pipelining are supported; the loop itself is
 * single-threaded, so handlers must be fast -- the campaign service
 * keeps them to queue operations and store reads, with all simulation
 * on the scheduler's worker threads.
 *
 * The loop wakes at least every `pollTimeoutMs` to re-check its stop
 * conditions, so both stop() from another thread and a SIGINT/SIGTERM
 * via support/shutdown.hh shut the server down promptly; poll() being
 * interrupted by a signal (EINTR) is handled as an early wake-up.
 *
 * Protocol limits (64 KiB of headers, 8 MiB of body) turn oversized
 * or malformed traffic into 4xx responses, never unbounded buffering.
 */

#ifndef ETC_SERVICE_HTTP_SERVER_HH
#define ETC_SERVICE_HTTP_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace etc::service {

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;  //!< "GET", "POST", ...
    std::string target;  //!< raw request target ("/v1/jobs?x=1")
    std::string version; //!< "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** @return the value of @p name (case-insensitive), or nullptr. */
    const std::string *header(const std::string &name) const;

    /** @return the target's path (the part before any '?'). */
    std::string path() const;

    /** @return the decimal value of query parameter @p key, if any. */
    std::optional<uint64_t> queryNumber(const std::string &key) const;

    /** @return the first value of query parameter @p key, if any
     *  (raw, no percent-decoding -- values here are plain names). */
    std::optional<std::string> queryParam(const std::string &key) const;

    /** @return every value of the repeatable parameter @p key, in
     *  target order. */
    std::vector<std::string> queryParams(const std::string &key) const;
};

/** One HTTP response (the handler's return value). */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    static HttpResponse json(int status, std::string body);
    static HttpResponse text(int status, std::string body);
};

/** @return the standard reason phrase for @p status. */
const char *statusReason(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

class HttpServer
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 picks an ephemeral
     * port; read it back with port()). Throws FatalError when the
     * address is unavailable.
     */
    HttpServer(uint16_t port, HttpHandler handler);

    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** @return the actually bound TCP port. */
    uint16_t port() const { return port_; }

    /**
     * Run one poll iteration: accept new connections, read/parse
     * requests, dispatch complete ones, flush pending output. Returns
     * after at most @p timeoutMs of idle waiting.
     */
    void pollOnce(int timeoutMs);

    /**
     * Serve until stop() is called or a process-wide stop is
     * requested (support/shutdown.hh).
     */
    void run(int pollTimeoutMs = 200);

    /** Make run() return after its current iteration (thread-safe). */
    void stop();

    /** Log one inform() access line per request (method, path,
     *  status, bytes, latency). Off by default; `--verbose` turns it
     *  on so 4xx/5xx responses stop being invisible. */
    void setAccessLog(bool enabled) { accessLog_ = enabled; }

  private:
    struct Connection
    {
        int fd = -1;
        std::string in;      //!< bytes read, not yet parsed
        std::string out;     //!< bytes to write
        bool closeAfterWrite = false;
        uint64_t served = 0; //!< requests answered on this connection
    };

    void acceptReady();
    bool readReady(Connection &conn);   //!< false = close connection
    bool writeReady(Connection &conn);  //!< false = close connection
    void closeConnection(size_t index);

    /** Parse + dispatch every complete request in conn.in. */
    bool dispatchBuffered(Connection &conn);

    /** Record the request's latency and, with setAccessLog(true),
     *  emit one inform() line for it. */
    void logAccess(const std::string &method, const std::string &path,
                   int status, size_t bytes,
                   std::chrono::steady_clock::time_point started);

    HttpHandler handler_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    bool accessLog_ = false;
    unsigned muteAcceptRounds_ = 0; //!< fd-exhaustion accept backoff
    std::vector<Connection> connections_;
    std::atomic<bool> stopped_{false};
};

} // namespace etc::service

#endif // ETC_SERVICE_HTTP_SERVER_HH
