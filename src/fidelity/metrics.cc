#include "fidelity/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace etc::fidelity {

double
meanSquaredError(const std::vector<uint8_t> &reference,
                 const std::vector<uint8_t> &test)
{
    size_t n = std::max(reference.size(), test.size());
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double r = i < reference.size() ? reference[i] : 0.0;
        double t = i < test.size() ? test[i] : 0.0;
        double d = r - t;
        sum += d * d;
    }
    return sum / static_cast<double>(n);
}

double
psnrDb(const std::vector<uint8_t> &reference,
       const std::vector<uint8_t> &test)
{
    if (test.empty() && !reference.empty())
        return 0.0;
    double mse = meanSquaredError(reference, test);
    if (mse <= 0.0)
        return PERFECT_DB;
    double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
    return std::clamp(psnr, 0.0, PERFECT_DB);
}

namespace {

template <typename T>
double
snrImpl(const std::vector<T> &reference, const std::vector<T> &test)
{
    size_t n = std::max(reference.size(), test.size());
    if (n == 0)
        return PERFECT_DB;
    double signal = 0.0, noise = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double r = i < reference.size()
                       ? static_cast<double>(reference[i])
                       : 0.0;
        double t = i < test.size() ? static_cast<double>(test[i]) : 0.0;
        signal += r * r;
        double d = r - t;
        noise += d * d;
    }
    if (noise <= 0.0)
        return PERFECT_DB;
    if (signal <= 0.0)
        return -PERFECT_DB;
    double snr = 10.0 * std::log10(signal / noise);
    return std::clamp(snr, -PERFECT_DB, PERFECT_DB);
}

} // namespace

double
snrDb(const std::vector<int16_t> &reference,
      const std::vector<int16_t> &test)
{
    return snrImpl(reference, test);
}

double
snrDb(const std::vector<double> &reference,
      const std::vector<double> &test)
{
    return snrImpl(reference, test);
}

double
byteSimilarity(const std::vector<uint8_t> &reference,
               const std::vector<uint8_t> &test)
{
    size_t n = std::max(reference.size(), test.size());
    if (n == 0)
        return 1.0;
    size_t common = std::min(reference.size(), test.size());
    size_t matches = 0;
    for (size_t i = 0; i < common; ++i)
        if (reference[i] == test[i])
            ++matches;
    return static_cast<double>(matches) / static_cast<double>(n);
}

std::vector<int16_t>
asInt16(const std::vector<uint8_t> &bytes)
{
    std::vector<int16_t> out(bytes.size() / 2);
    for (size_t i = 0; i < out.size(); ++i) {
        uint16_t u = static_cast<uint16_t>(bytes[2 * i]) |
                     (static_cast<uint16_t>(bytes[2 * i + 1]) << 8);
        out[i] = static_cast<int16_t>(u);
    }
    return out;
}

std::vector<int32_t>
asInt32(const std::vector<uint8_t> &bytes)
{
    std::vector<int32_t> out(bytes.size() / 4);
    for (size_t i = 0; i < out.size(); ++i) {
        uint32_t u = 0;
        for (int b = 0; b < 4; ++b)
            u |= static_cast<uint32_t>(bytes[4 * i + b]) << (8 * b);
        out[i] = static_cast<int32_t>(u);
    }
    return out;
}

std::vector<float>
asFloat(const std::vector<uint8_t> &bytes)
{
    std::vector<float> out(bytes.size() / 4);
    for (size_t i = 0; i < out.size(); ++i) {
        uint32_t u = 0;
        for (int b = 0; b < 4; ++b)
            u |= static_cast<uint32_t>(bytes[4 * i + b]) << (8 * b);
        float f;
        std::memcpy(&f, &u, sizeof(f));
        out[i] = f;
    }
    return out;
}

} // namespace etc::fidelity
