/**
 * @file
 * Application-fidelity metrics (paper Table 1).
 *
 *  - PSNR between byte images (Susan; stands in for the paper's
 *    Imagemagick comparison, same mathematical definition);
 *  - SNR in dB between signals (GSM, and MPEG's per-frame test);
 *  - byte similarity (Blowfish, ADPCM);
 *  - helpers to reinterpret an output byte stream as 16/32-bit values.
 *
 * All metrics are pure functions; workloads choose thresholds.
 */

#ifndef ETC_FIDELITY_METRICS_HH
#define ETC_FIDELITY_METRICS_HH

#include <cstdint>
#include <vector>

namespace etc::fidelity {

/** PSNR/SNR value reported when the signals are identical. */
constexpr double PERFECT_DB = 99.0;

/** Mean squared error between two byte sequences (length-padded). */
double meanSquaredError(const std::vector<uint8_t> &reference,
                        const std::vector<uint8_t> &test);

/**
 * Peak signal-to-noise ratio in dB between two 8-bit images.
 * Identical inputs return PERFECT_DB. A missing/empty test image
 * returns 0 dB (worst case).
 */
double psnrDb(const std::vector<uint8_t> &reference,
              const std::vector<uint8_t> &test);

/**
 * Signal-to-noise ratio in dB between two sampled signals:
 * 10*log10(sum(ref^2) / sum((ref-test)^2)), clamped to
 * [-PERFECT_DB, PERFECT_DB]. Length mismatches are treated as noise
 * (the shorter signal is zero-padded).
 */
double snrDb(const std::vector<int16_t> &reference,
             const std::vector<int16_t> &test);

/** snrDb over doubles (used by the float workloads). */
double snrDb(const std::vector<double> &reference,
             const std::vector<double> &test);

/**
 * Fraction of bytes equal between @p reference and @p test; positions
 * past the shorter length count as mismatches.
 */
double byteSimilarity(const std::vector<uint8_t> &reference,
                      const std::vector<uint8_t> &test);

/** Reinterpret a little-endian byte stream as int16 samples. */
std::vector<int16_t> asInt16(const std::vector<uint8_t> &bytes);

/** Reinterpret a little-endian byte stream as int32 words. */
std::vector<int32_t> asInt32(const std::vector<uint8_t> &bytes);

/** Reinterpret a little-endian byte stream as IEEE-754 floats. */
std::vector<float> asFloat(const std::vector<uint8_t> &bytes);

} // namespace etc::fidelity

#endif // ETC_FIDELITY_METRICS_HH
