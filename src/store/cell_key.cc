#include "store/cell_key.hh"

#include <cstring>
#include <stdexcept>

#include "isa/encoding.hh"

namespace etc::store {

uint64_t
fnv1a(const void *data, size_t size, uint64_t hash)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
hexU64(uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out = "0x";
    bool seen = false;
    for (int shift = 60; shift >= 0; shift -= 4) {
        unsigned nibble = (value >> shift) & 0xf;
        if (nibble || seen || shift == 0) {
            out += digits[nibble];
            seen = true;
        }
    }
    return out;
}

uint64_t
parseHexU64(const std::string &text)
{
    if (text.size() < 3 || text.compare(0, 2, "0x") != 0 ||
        text.size() > 2 + 16)
        throw std::invalid_argument("bad hex literal '" + text + "'");
    uint64_t value = 0;
    for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<uint64_t>(c - 'a' + 10);
        else
            throw std::invalid_argument("bad hex literal '" + text + "'");
    }
    return value;
}

uint64_t
doubleBits(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
doubleFromBits(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
fingerprintProgram(const assembly::Program &program,
                   const std::vector<bool> &injectable)
{
    uint64_t hash = fnv1a("etc-program-v1", 14);
    for (const auto &ins : program.code) {
        uint64_t word = isa::encode(ins);
        hash = fnv1a(&word, sizeof(word), hash);
    }
    for (const auto &chunk : program.data) {
        hash = fnv1a(&chunk.addr, sizeof(chunk.addr), hash);
        uint64_t size = chunk.bytes.size();
        hash = fnv1a(&size, sizeof(size), hash);
        hash = fnv1a(chunk.bytes.data(), chunk.bytes.size(), hash);
    }
    hash = fnv1a(&program.entry, sizeof(program.entry), hash);
    // vector<bool> has no contiguous storage; hash it bit-serially.
    uint64_t bits = injectable.size();
    hash = fnv1a(&bits, sizeof(bits), hash);
    uint8_t accum = 0;
    size_t filled = 0;
    for (bool b : injectable) {
        accum = static_cast<uint8_t>((accum << 1) | (b ? 1 : 0));
        if (++filled == 8) {
            hash = fnv1a(&accum, 1, hash);
            accum = 0;
            filled = 0;
        }
    }
    if (filled)
        hash = fnv1a(&accum, 1, hash);
    return hexU64(hash);
}

std::string
CellKey::canonical() const
{
    std::string out = "schema=1";
    out += ";workload=" + workload;
    out += ";mode=" + policy;
    out += ";errors=" + std::to_string(errors);
    out += ";trials=" + std::to_string(trials);
    out += ";seed=" + hexU64(seed);
    out += ";budget_bits=" + hexU64(doubleBits(budgetFactor));
    out += ";memory_model=" + memoryModel;
    out += ";program=" + programHash;
    // Appended only for non-legacy policies: the legacy canonical
    // form (and its fingerprint) must stay byte-stable so stores
    // written before the policy layer keep serving records.
    if (!policyHash.empty())
        out += ";policy=" + policyHash;
    return out;
}

std::string
CellKey::fingerprint() const
{
    std::string text = canonical();
    uint64_t hash = fnv1a(text.data(), text.size());
    // Fixed-width form so on-disk names sort and align uniformly.
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace etc::store
