/**
 * @file
 * Minimal JSON reader/writer for the result-store JSONL codec.
 *
 * The store needs exactly one thing from JSON: a stable, human-
 * inspectable line format for small flat records. This is a strict
 * subset parser (objects, arrays, strings, numbers, booleans, null;
 * no comments, no trailing commas) that keeps every number's raw
 * text, so 64-bit integers round-trip exactly -- the codec stores
 * doubles as IEEE-754 bit patterns and seeds as hex strings, and
 * never relies on double-precision number parsing for anything that
 * must be exact.
 *
 * Errors throw JsonError; the record codec catches it and rethrows a
 * versioned StoreFormatError, so corrupt cache files are reported,
 * never crash.
 */

#ifndef ETC_STORE_JSON_HH
#define ETC_STORE_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace etc::store {

/** Thrown on malformed JSON text. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** One parsed JSON value (a small, copyable tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< string contents, or a number's raw text
    std::vector<std::pair<std::string, JsonValue>> members; //!< object
    std::vector<JsonValue> elements;                        //!< array

    bool isObject() const { return kind == Kind::Object; }

    /** @return the member named @p key, or nullptr if absent. */
    const JsonValue *find(const std::string &key) const;

    /** @return the member named @p key; throws JsonError if absent. */
    const JsonValue &at(const std::string &key) const;

    /** @return string contents; throws JsonError on kind mismatch. */
    const std::string &asString() const;

    /** @return boolean contents; throws JsonError on kind mismatch. */
    bool asBool() const;

    /**
     * @return the number as an exact unsigned 64-bit value. Throws
     *         JsonError if the value is not an unsigned integer or
     *         does not fit.
     */
    uint64_t asU64() const;

    /** @return asU64() narrowed; throws JsonError if it overflows. */
    uint32_t asU32() const;
};

/**
 * Parse one complete JSON document from @p text.
 *
 * @throws JsonError on any syntax error or trailing garbage.
 */
JsonValue parseJson(const std::string &text);

/**
 * Incremental writer for one flat JSON object on a single line.
 * Keys are emitted in insertion order, so encodings are byte-stable.
 */
class JsonObjectWriter
{
  public:
    JsonObjectWriter &field(const std::string &key,
                            const std::string &value);
    JsonObjectWriter &field(const std::string &key, const char *value);
    JsonObjectWriter &field(const std::string &key, uint64_t value);
    JsonObjectWriter &field(const std::string &key, bool value);

    /** Emit a raw (pre-encoded) JSON value, e.g. a nested object. */
    JsonObjectWriter &rawField(const std::string &key,
                               const std::string &json);

    /** @return the completed single-line object. */
    std::string str() const;

  private:
    std::string body_;
};

/** Escape @p text as a JSON string literal (with quotes). */
std::string jsonQuote(const std::string &text);

} // namespace etc::store

#endif // ETC_STORE_JSON_HH
