#include "store/json.hh"

#include <cctype>
#include <limits>

namespace etc::store {

namespace {

/** Recursive-descent parser over a bounds-checked cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("JSON error at offset " + std::to_string(pos_) +
                        ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipSpace();
            JsonValue key = parseString();
            skipSpace();
            expect(':');
            value.members.emplace_back(key.text, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.elements.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        for (;;) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return value;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                value.text += c;
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
              case '"': value.text += '"'; break;
              case '\\': value.text += '\\'; break;
              case '/': value.text += '/'; break;
              case 'b': value.text += '\b'; break;
              case 'f': value.text += '\f'; break;
              case 'n': value.text += '\n'; break;
              case 'r': value.text += '\r'; break;
              case 't': value.text += '\t'; break;
              case 'u': {
                // The codec never emits non-ASCII escapes, but accept
                // the low range so hand-edited files still parse.
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = peek();
                    ++pos_;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                value.text += static_cast<char>(code);
                break;
              }
              default: fail("bad escape character");
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Bool;
        if (consumeWord("true"))
            value.boolean = true;
        else if (consumeWord("false"))
            value.boolean = false;
        else
            fail("bad literal");
        return value;
    }

    JsonValue
    parseNull()
    {
        if (!consumeWord("null"))
            fail("bad literal");
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            digits = true;
        }
        if (!digits)
            fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("bad number");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("bad number");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.text = text_.substr(start, pos_ - start);
        return value;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    if (!value)
        throw JsonError("missing member '" + key + "'");
    return *value;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw JsonError("expected a string value");
    return text;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        throw JsonError("expected a boolean value");
    return boolean;
}

uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-' ||
        text.find_first_not_of("0123456789") != std::string::npos)
        throw JsonError("expected an unsigned integer, got '" + text +
                        "'");
    uint64_t value = 0;
    for (char c : text) {
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10)
            throw JsonError("integer overflow in '" + text + "'");
        value = value * 10 + digit;
    }
    return value;
}

uint32_t
JsonValue::asU32() const
{
    uint64_t value = asU64();
    if (value > std::numeric_limits<uint32_t>::max())
        throw JsonError("value out of 32-bit range: '" + text + "'");
    return static_cast<uint32_t>(value);
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

JsonObjectWriter &
JsonObjectWriter::rawField(const std::string &key, const std::string &json)
{
    if (!body_.empty())
        body_ += ',';
    body_ += jsonQuote(key);
    body_ += ':';
    body_ += json;
    return *this;
}

JsonObjectWriter &
JsonObjectWriter::field(const std::string &key, const std::string &value)
{
    return rawField(key, jsonQuote(value));
}

JsonObjectWriter &
JsonObjectWriter::field(const std::string &key, const char *value)
{
    return field(key, std::string(value));
}

JsonObjectWriter &
JsonObjectWriter::field(const std::string &key, uint64_t value)
{
    return rawField(key, std::to_string(value));
}

JsonObjectWriter &
JsonObjectWriter::field(const std::string &key, bool value)
{
    return rawField(key, value ? "true" : "false");
}

std::string
JsonObjectWriter::str() const
{
    return "{" + body_ + "}";
}

} // namespace etc::store
