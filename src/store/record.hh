/**
 * @file
 * Versioned JSONL codec for persisted campaign results.
 *
 * A record file is a sequence of single-line JSON objects, every line
 * carrying the schema version:
 *
 *   {"schema":1,"kind":"cell","fingerprint":...,"key":{...}}       header
 *   {"schema":1,"kind":"summary","trials":...,"completed":...}     tallies
 *   {"schema":1,"kind":"fidelity","bits":...,"acceptable":...}     per trial
 *   {"schema":1,"kind":"end","lines":N}                            trailer
 *
 * Shard records ("kind":"shard") additionally carry the half-open
 * trial range [lo, hi) they cover. Fidelity values are stored as
 * IEEE-754 bit patterns (plus a human-readable mirror), so a decoded
 * summary renders figures bit-identically to the in-memory one.
 *
 * The key object's "mode" member carries the injection policy name;
 * non-legacy policies add a "policy" member with the descriptor hash.
 * Records written before the policy layer have neither hash nor
 * non-legacy names, so they decode unchanged (the hash member is
 * optional on read).
 *
 * The trailer makes truncation detectable: a file that was cut off
 * mid-write is missing its "end" line (or has a wrong line count) and
 * is rejected with StoreFormatError -- corrupt or truncated cache
 * entries are reported and recomputed, never crash and never silently
 * alias a different cell.
 */

#ifndef ETC_STORE_RECORD_HH
#define ETC_STORE_RECORD_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "core/study.hh"
#include "store/cell_key.hh"

namespace etc::store {

/** The record schema this build reads and writes. */
constexpr unsigned SCHEMA_VERSION = 1;

/**
 * Thrown when a record is malformed, truncated, from an unsupported
 * schema version, or does not match the requested key.
 */
class StoreFormatError : public std::runtime_error
{
  public:
    explicit StoreFormatError(const std::string &msg)
        : std::runtime_error("result-store schema v" +
                             std::to_string(SCHEMA_VERSION) + ": " + msg)
    {}
};

/** One persisted shard: a cell's results over trials [lo, hi). */
struct ShardRecord
{
    CellKey key;
    unsigned lo = 0;
    unsigned hi = 0;
    core::CellSummary summary;
};

/** One decoded complete cell record: its key plus summary. */
struct CellRecord
{
    CellKey key;
    core::CellSummary summary;
};

/** @return the memory-model name used in keys. */
const char *memoryModelName(sim::MemoryModel model);

class JsonValue;

/**
 * Encode @p key as the record header's single-line key object (the
 * "mode"/"policy" member layout documented above). The secondary
 * index journal and manifest embed the same bytes, so a key decoded
 * from any of the three re-encodes identically.
 */
std::string encodeCellKeyObject(const CellKey &key);

/** Decode a key object; throws JsonError on missing/mistyped members
 *  and std::invalid_argument on malformed hex literals. */
CellKey decodeCellKeyObject(const JsonValue &object);

/** Encode a complete cell record (JSONL text, newline-terminated). */
std::string encodeCellRecord(const CellKey &key,
                             const core::CellSummary &summary);

/** Encode a shard record covering trials [lo, hi). */
std::string encodeShardRecord(const CellKey &key, unsigned lo,
                              unsigned hi,
                              const core::CellSummary &summary);

/**
 * Decode a cell record.
 *
 * @param text     the record file's contents
 * @param expected if non-null, the record's key must match it
 * @throws StoreFormatError on any malformation, truncation, schema
 *         mismatch, or key mismatch
 */
core::CellSummary decodeCellRecord(const std::string &text,
                                   const CellKey *expected);

/**
 * Decode a cell record keeping its stored key (for callers that only
 * know the on-disk fingerprint, e.g. the campaign service's
 * GET /v1/cells/<key>); same validation as decodeCellRecord().
 */
CellRecord decodeCellRecordWithKey(const std::string &text,
                                   const CellKey *expected);

/** Decode a shard record; same validation as decodeCellRecord(). */
ShardRecord decodeShardRecord(const std::string &text,
                              const CellKey *expected);

/**
 * Merge shard summaries into the full cell summary.
 *
 * Requires the shards to tile [0, key.trials) exactly (contiguous,
 * non-overlapping, complete); throws StoreFormatError otherwise.
 * Counters sum exactly and fidelity vectors concatenate in trial
 * order, so the merged summary is bit-identical to the summary of an
 * uninterrupted monolithic run.
 */
core::CellSummary mergeShardSummaries(const CellKey &key,
                                      std::vector<ShardRecord> shards);

/**
 * Reduce shard records to a maximal prefix-tiling subset: sorted by
 * range, dropping shards that overlap the already-covered prefix
 * (leftovers of an incompatible split). The result may still have
 * gaps; callers compute the missing ranges or report them.
 */
std::vector<ShardRecord> selectPrefixTiling(
    std::vector<ShardRecord> shards);

} // namespace etc::store

#endif // ETC_STORE_RECORD_HH
