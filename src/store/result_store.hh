/**
 * @file
 * Content-addressed on-disk cache of campaign results.
 *
 * Layout under the root directory:
 *
 *   <root>/cells/<fingerprint>.jsonl          complete cell records
 *   <root>/shards/<fingerprint>/<lo>-<hi>.jsonl   partial shards
 *   <root>/tmp/                                staging for atomic writes
 *   <root>/index/                              secondary index (index.hh)
 *
 * Every cell/shard write (and shard drop) also appends one line to
 * the secondary index journal, so query and coverage surfaces can
 * enumerate the archive without scanning record bodies.
 *
 * Records are addressed by the CellKey fingerprint, so equal work is
 * deduplicated across runs, drivers, and machines sharing a cache
 * directory. Writes land in tmp/ and are renamed into place, so a
 * killed campaign never leaves a half-written record where a reader
 * could find it; whatever shards were completed before the kill are
 * intact and a later run resumes from them.
 *
 * Corrupt, truncated, or schema-mismatched entries are reported via
 * warn() and treated as cache misses (the cell is recomputed); they
 * never crash and never serve wrong data, because every record carries
 * its full key and is validated against the requested one on load.
 *
 * Concurrent writers: any number of processes (or threads, each with
 * its own ResultStore instance) may race on the same cell. Every
 * write stages into a unique tmp/ file (pid + per-process counter)
 * and rename()s it into place, so readers only ever observe a
 * complete record, and -- because a cell is a pure function of its
 * key -- every racing writer produces identical bytes: whichever
 * rename lands last simply replaces the record with itself. A single
 * ResultStore *instance* is not internally synchronized (its traffic
 * counters are plain fields); give each thread its own instance over
 * the shared root, exactly as separate processes would.
 */

#ifndef ETC_STORE_RESULT_STORE_HH
#define ETC_STORE_RESULT_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/record.hh"

namespace etc::store {

class ResultStore
{
  public:
    /** Open (creating lazily on first write) the cache at @p root. */
    explicit ResultStore(std::string root);

    const std::string &root() const { return root_; }

    /** @return true if a complete record for @p key exists. */
    bool hasCell(const CellKey &key) const;

    /**
     * Load the complete cell record for @p key.
     *
     * @return the stored summary, or nullopt if absent or unreadable
     *         (unreadable entries warn and count as misses).
     */
    std::optional<core::CellSummary> loadCell(const CellKey &key);

    /**
     * Persist a complete cell record (atomic rename into place).
     * Safe against concurrent writers of the same key: each stages
     * into a unique tmp file, and all of them write identical bytes,
     * so the losing rename is a no-op overwrite (see the file
     * comment).
     */
    void storeCell(const CellKey &key,
                   const core::CellSummary &summary);

    /** @return true if the shard [lo, hi) of @p key is stored. */
    bool hasShard(const CellKey &key, unsigned lo, unsigned hi) const;

    /**
     * Load exactly the shard [lo, hi) of @p key (a single file read,
     * unlike loadShards()). Absent or unreadable records return
     * nullopt (unreadable ones warn).
     */
    std::optional<ShardRecord> loadShard(const CellKey &key,
                                         unsigned lo, unsigned hi);

    /** Persist one shard record (atomic rename into place; same
     *  concurrent-writer guarantee as storeCell()). */
    void storeShard(const CellKey &key, unsigned lo, unsigned hi,
                    const core::CellSummary &summary);

    /**
     * Load every readable shard of @p key, sorted by trial range.
     * Unreadable shard files warn and are skipped.
     */
    std::vector<ShardRecord> loadShards(const CellKey &key);

    /** Delete all shards of @p key (after promotion to a cell). */
    void dropShards(const CellKey &key);

    /** What ingestRecord() accepted. */
    struct IngestOutcome
    {
        bool cellRecord = false; //!< a complete cell (vs a shard)
        bool stored = false;     //!< false: skipped, cell already
                                 //!< complete (nothing to add)
        CellKey key;
        unsigned lo = 0; //!< shard trial range (shard records only)
        unsigned hi = 0;
    };

    /**
     * Ingest a record pushed over the wire (POST /v1/shards): decode
     * and fully validate @p text (shard or complete-cell kind), then
     * write the received bytes verbatim to the record's
     * content-addressed path. Verbatim, because a cell is a pure
     * function of its key: the pushing worker's bytes are identical
     * to what a local run would have written, so raced ingests and
     * local computes overwrite each other with themselves. A shard
     * whose cell record already exists is skipped (stored = false) --
     * it would only orphan a file next to the promoted cell.
     *
     * @throws StoreFormatError on malformed, truncated, or
     *         unrecognized records (nothing is written).
     */
    IngestOutcome ingestRecord(const std::string &text);

    /**
     * Load a complete cell record by its on-disk fingerprint (the
     * 16-hex-digit CellKey::fingerprint() address), returning the
     * stored key alongside the summary. Used by readers that never
     * built the key themselves, e.g. the campaign service's
     * GET /v1/cells/<key>. Absent or unreadable records return
     * nullopt (unreadable ones warn), exactly like loadCell().
     */
    std::optional<CellRecord> loadCellByFingerprint(
        const std::string &fingerprint);

    /** @return true if a complete record exists at @p fingerprint
     *  (existence only -- no decode; callers validate the hex). */
    bool hasCellByFingerprint(const std::string &fingerprint) const;

    /** Cache-traffic counters (reset never; read for reporting). */
    struct Stats
    {
        uint64_t cellHits = 0;     //!< loadCell found a valid record
        uint64_t cellMisses = 0;   //!< loadCell found nothing usable
        uint64_t cellsStored = 0;  //!< storeCell writes
        uint64_t shardsLoaded = 0; //!< valid shard records read
        uint64_t shardsStored = 0; //!< storeShard writes
    };

    const Stats &stats() const { return stats_; }

  private:
    std::string cellPath(const CellKey &key) const;
    std::string shardDir(const CellKey &key) const;
    void writeAtomically(const std::string &path,
                         const std::string &contents);

    std::string root_;
    Stats stats_;
};

} // namespace etc::store

#endif // ETC_STORE_RESULT_STORE_HH
