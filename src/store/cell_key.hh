/**
 * @file
 * CellKey: the canonical identity of one campaign cell.
 *
 * PR 1 made every cell a pure function of a small key -- trial t draws
 * its randomness from Rng::forStream(seed, t), so the cell's entire
 * result is determined by (program, injection policy, error count,
 * trial count, master seed, budget factor, memory model). Thread count
 * and checkpoint interval are deliberately NOT part of the key:
 * results are bit-identical across both (see CampaignRunner), so a
 * record computed at any parallelism serves every future request.
 *
 * The program and its policy-specific injectable bitmap are folded
 * into a single content hash, which makes the key content-addressed:
 * any change to a workload's code, baked-in input, or the protection
 * analysis produces a different key and can never alias a stale
 * record. Non-legacy policies additionally fold their descriptor hash
 * in (the bitmap alone cannot distinguish, say, single-flip from
 * burst errors over the same target set); the two legacy policies
 * omit it, keeping their canonical form -- and therefore their
 * on-disk fingerprints -- byte-stable with every record written
 * before the policy layer existed.
 */

#ifndef ETC_STORE_CELL_KEY_HH
#define ETC_STORE_CELL_KEY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace etc::store {

/** Canonical identity of one campaign cell. */
struct CellKey
{
    std::string workload;    //!< workload name ("gsm", ...)
    std::string policy;      //!< injection policy name ("protected",
                             //!< "control-only", ...); serialized as
                             //!< "mode" for legacy byte-stability
    unsigned errors = 0;     //!< bit flips per trial
    unsigned trials = 0;     //!< trials in the cell
    uint64_t seed = 0;       //!< study master seed
    double budgetFactor = 0; //!< timeout factor over the golden length
    std::string memoryModel; //!< "lenient" | "strict"
    std::string programHash; //!< content hash of program + injectable
    std::string policyHash;  //!< policy descriptor hash ("0x...");
                             //!< empty for the two legacy policies

    /**
     * @return the canonical single-line text form; two keys identify
     *         the same cell iff their canonical forms are equal.
     */
    std::string canonical() const;

    /**
     * @return the 16-hex-digit fingerprint of canonical(), used as
     *         the on-disk record address.
     */
    std::string fingerprint() const;

    bool
    operator==(const CellKey &other) const
    {
        return canonical() == other.canonical();
    }
};

/** FNV-1a 64-bit over @p data, continuing from @p hash. */
uint64_t fnv1a(const void *data, size_t size,
               uint64_t hash = 0xcbf29ce484222325ull);

/** @return @p value as a "0x..." lower-case hex literal. */
std::string hexU64(uint64_t value);

/** Parse a "0x..." hex literal; throws std::invalid_argument. */
uint64_t parseHexU64(const std::string &text);

/** @return the IEEE-754 bit pattern of @p value (for exact codecs). */
uint64_t doubleBits(double value);

/** @return the double whose IEEE-754 bit pattern is @p bits. */
double doubleFromBits(uint64_t bits);

/**
 * Content hash of a program plus its injectable-instruction bitmap:
 * every instruction's fixed binary encoding, every data chunk
 * (address + bytes), the entry point, and the bitmap.
 */
std::string fingerprintProgram(const assembly::Program &program,
                               const std::vector<bool> &injectable);

} // namespace etc::store

#endif // ETC_STORE_CELL_KEY_HH
