#include "store/record.hh"

#include <algorithm>
#include <cstdio>

#include "store/json.hh"

namespace etc::store {

namespace {

/** Human-readable double mirror (ignored on decode; bits win). */
std::string
readableDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
encodeBody(const std::string &headerLine,
           const core::CellSummary &summary)
{
    std::string out = headerLine + "\n";

    JsonObjectWriter summaryLine;
    summaryLine.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "summary")
        .field("trials", uint64_t{summary.trials})
        .field("completed", uint64_t{summary.completed})
        .field("crashed", uint64_t{summary.crashed})
        .field("timed_out", uint64_t{summary.timedOut})
        .field("total_instructions", summary.totalInstructions);
    // Optional like the key's "policy" member: emitted only when the
    // static-prune fast path synthesized trials, so prune-off records
    // stay byte-stable with every earlier schema-1 writer.
    if (summary.trialsPruned)
        summaryLine.field("trials_pruned", summary.trialsPruned);
    summaryLine
        .field("wall_seconds_bits", hexU64(doubleBits(summary.wallSeconds)))
        .field("fidelities", uint64_t{summary.fidelities.size()});
    out += summaryLine.str() + "\n";

    for (const auto &score : summary.fidelities) {
        JsonObjectWriter line;
        line.field("schema", uint64_t{SCHEMA_VERSION})
            .field("kind", "fidelity")
            .field("bits", hexU64(doubleBits(score.value)))
            .field("value", readableDouble(score.value))
            .field("acceptable", score.acceptable)
            .field("unit", score.unit);
        out += line.str() + "\n";
    }

    // The trailer carries the line count (truncation detection) and
    // an FNV-1a checksum of every preceding byte (single-bit payload
    // corruption detection -- e.g. a flipped character inside a
    // string field would otherwise decode to silently wrong data).
    JsonObjectWriter end;
    end.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "end")
        .field("lines", uint64_t{summary.fidelities.size() + 3})
        .field("fnv", hexU64(fnv1a(out.data(), out.size())));
    out += end.str() + "\n";
    return out;
}

/** Split @p text into lines, requiring a trailing newline. */
std::vector<std::string>
splitLines(const std::string &text)
{
    if (text.empty())
        throw StoreFormatError("empty record");
    if (text.back() != '\n')
        throw StoreFormatError(
            "truncated record (missing final newline)");
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/** Parse one record line, enforcing the schema version first. */
JsonValue
parseRecordLine(const std::string &line, size_t index)
{
    JsonValue value;
    try {
        value = parseJson(line);
    } catch (const JsonError &error) {
        throw StoreFormatError("line " + std::to_string(index + 1) +
                               ": " + error.what());
    }
    if (!value.isObject())
        throw StoreFormatError("line " + std::to_string(index + 1) +
                               ": record is not a JSON object");
    const JsonValue *schema = value.find("schema");
    if (!schema)
        throw StoreFormatError("line " + std::to_string(index + 1) +
                               ": record has no schema version");
    uint64_t version;
    try {
        version = schema->asU64();
    } catch (const JsonError &) {
        throw StoreFormatError("line " + std::to_string(index + 1) +
                               ": bad schema version");
    }
    if (version != SCHEMA_VERSION)
        throw StoreFormatError(
            "unsupported record schema version " +
            std::to_string(version) + " (this build supports " +
            std::to_string(SCHEMA_VERSION) + ")");
    return value;
}

struct DecodedRecord
{
    CellKey key;
    unsigned lo = 0;
    unsigned hi = 0;
    core::CellSummary summary;
};

DecodedRecord
decodeRecord(const std::string &text, const char *expectedKind,
             const CellKey *expected)
{
    auto lines = splitLines(text);
    try {
        if (lines.size() < 3)
            throw StoreFormatError("record has fewer than 3 lines");

        JsonValue header = parseRecordLine(lines[0], 0);
        std::string kind = header.at("kind").asString();
        if (kind != expectedKind)
            throw StoreFormatError("expected a '" +
                                   std::string(expectedKind) +
                                   "' record, found '" + kind + "'");
        DecodedRecord record;
        record.key = decodeCellKeyObject(header.at("key"));
        if (header.at("fingerprint").asString() !=
            record.key.fingerprint())
            throw StoreFormatError(
                "header fingerprint does not match its key");
        if (expected && !(record.key == *expected))
            throw StoreFormatError(
                "record key mismatch: stored " +
                record.key.canonical() + ", requested " +
                expected->canonical());
        if (kind == "shard") {
            record.lo = header.at("lo").asU32();
            record.hi = header.at("hi").asU32();
            if (record.lo >= record.hi ||
                record.hi > record.key.trials)
                throw StoreFormatError(
                    "bad shard range [" + std::to_string(record.lo) +
                    ", " + std::to_string(record.hi) + ") for " +
                    std::to_string(record.key.trials) + " trials");
        }

        JsonValue summaryLine = parseRecordLine(lines[1], 1);
        if (summaryLine.at("kind").asString() != "summary")
            throw StoreFormatError("second line is not the summary");
        core::CellSummary &summary = record.summary;
        summary.errors = record.key.errors;
        // The policy name is taken as stored, not validated against
        // the registry: records are self-describing, and a store may
        // hold cells produced under policies this process never
        // registered. Key matching above already prevents aliasing.
        summary.policy = record.key.policy;
        summary.trials = summaryLine.at("trials").asU32();
        summary.completed = summaryLine.at("completed").asU32();
        summary.crashed = summaryLine.at("crashed").asU32();
        summary.timedOut = summaryLine.at("timed_out").asU32();
        summary.totalInstructions =
            summaryLine.at("total_instructions").asU64();
        // Optional: absent in prune-off records (and everything
        // written before static pruning existed).
        if (const JsonValue *pruned = summaryLine.find("trials_pruned"))
            summary.trialsPruned = pruned->asU64();
        summary.wallSeconds = doubleFromBits(
            parseHexU64(summaryLine.at("wall_seconds_bits").asString()));
        uint64_t fidelityCount = summaryLine.at("fidelities").asU64();

        unsigned expectTrials = kind == "shard"
                                    ? record.hi - record.lo
                                    : record.key.trials;
        if (summary.trials != expectTrials)
            throw StoreFormatError(
                "summary covers " + std::to_string(summary.trials) +
                " trials, record implies " +
                std::to_string(expectTrials));
        if (uint64_t{summary.completed} + summary.crashed +
                summary.timedOut != summary.trials)
            throw StoreFormatError("outcome tallies do not sum to the "
                                   "trial count");
        if (fidelityCount != summary.completed)
            throw StoreFormatError(
                "fidelity count does not match completed trials");
        if (lines.size() != fidelityCount + 3)
            throw StoreFormatError(
                "truncated record: expected " +
                std::to_string(fidelityCount + 3) + " lines, found " +
                std::to_string(lines.size()));

        summary.fidelities.reserve(fidelityCount);
        for (uint64_t i = 0; i < fidelityCount; ++i) {
            JsonValue line = parseRecordLine(lines[2 + i], 2 + i);
            if (line.at("kind").asString() != "fidelity")
                throw StoreFormatError(
                    "line " + std::to_string(3 + i) +
                    ": expected a fidelity record");
            workloads::FidelityScore score;
            score.value =
                doubleFromBits(parseHexU64(line.at("bits").asString()));
            score.acceptable = line.at("acceptable").asBool();
            score.unit = line.at("unit").asString();
            summary.fidelities.push_back(std::move(score));
        }

        JsonValue end = parseRecordLine(lines.back(), lines.size() - 1);
        if (end.at("kind").asString() != "end" ||
            end.at("lines").asU64() != lines.size())
            throw StoreFormatError("bad end-of-record trailer");
        size_t bodySize = text.size() - (lines.back().size() + 1);
        if (parseHexU64(end.at("fnv").asString()) !=
            fnv1a(text.data(), bodySize))
            throw StoreFormatError(
                "record checksum mismatch (corrupted contents)");
        return record;
    } catch (const JsonError &error) {
        // A structurally valid line with a missing/mistyped member.
        throw StoreFormatError(error.what());
    } catch (const std::invalid_argument &error) {
        // A malformed hex literal (seed, bits, ...).
        throw StoreFormatError(error.what());
    }
}

} // namespace

const char *
memoryModelName(sim::MemoryModel model)
{
    return model == sim::MemoryModel::Strict ? "strict" : "lenient";
}

std::string
encodeCellKeyObject(const CellKey &key)
{
    JsonObjectWriter writer;
    writer.field("workload", key.workload)
        .field("mode", key.policy)
        .field("errors", uint64_t{key.errors})
        .field("trials", uint64_t{key.trials})
        .field("seed", hexU64(key.seed))
        .field("budget_bits", hexU64(doubleBits(key.budgetFactor)))
        .field("memory_model", key.memoryModel)
        .field("program", key.programHash);
    // Only non-legacy policies carry a descriptor hash; records of
    // the legacy pair keep the exact pre-policy byte layout.
    if (!key.policyHash.empty())
        writer.field("policy", key.policyHash);
    return writer.str();
}

CellKey
decodeCellKeyObject(const JsonValue &object)
{
    CellKey key;
    key.workload = object.at("workload").asString();
    key.policy = object.at("mode").asString();
    key.errors = object.at("errors").asU32();
    key.trials = object.at("trials").asU32();
    key.seed = parseHexU64(object.at("seed").asString());
    key.budgetFactor =
        doubleFromBits(parseHexU64(object.at("budget_bits").asString()));
    key.memoryModel = object.at("memory_model").asString();
    key.programHash = object.at("program").asString();
    // Optional: absent in records written before the policy layer
    // (and in every legacy-policy record since).
    if (const JsonValue *hash = object.find("policy"))
        key.policyHash = hash->asString();
    return key;
}

std::string
encodeCellRecord(const CellKey &key, const core::CellSummary &summary)
{
    JsonObjectWriter header;
    header.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "cell")
        .field("fingerprint", key.fingerprint())
        .rawField("key", encodeCellKeyObject(key));
    return encodeBody(header.str(), summary);
}

std::string
encodeShardRecord(const CellKey &key, unsigned lo, unsigned hi,
                  const core::CellSummary &summary)
{
    JsonObjectWriter header;
    header.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "shard")
        .field("fingerprint", key.fingerprint())
        .field("lo", uint64_t{lo})
        .field("hi", uint64_t{hi})
        .rawField("key", encodeCellKeyObject(key));
    return encodeBody(header.str(), summary);
}

core::CellSummary
decodeCellRecord(const std::string &text, const CellKey *expected)
{
    return decodeRecord(text, "cell", expected).summary;
}

CellRecord
decodeCellRecordWithKey(const std::string &text, const CellKey *expected)
{
    DecodedRecord decoded = decodeRecord(text, "cell", expected);
    return CellRecord{std::move(decoded.key), std::move(decoded.summary)};
}

ShardRecord
decodeShardRecord(const std::string &text, const CellKey *expected)
{
    DecodedRecord decoded = decodeRecord(text, "shard", expected);
    return ShardRecord{std::move(decoded.key), decoded.lo, decoded.hi,
                       std::move(decoded.summary)};
}

std::vector<ShardRecord>
selectPrefixTiling(std::vector<ShardRecord> shards)
{
    std::sort(shards.begin(), shards.end(),
              [](const ShardRecord &a, const ShardRecord &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    std::vector<ShardRecord> kept;
    unsigned covered = 0;
    for (auto &shard : shards) {
        if (shard.lo < covered)
            continue;
        covered = shard.hi;
        kept.push_back(std::move(shard));
    }
    return kept;
}

core::CellSummary
mergeShardSummaries(const CellKey &key, std::vector<ShardRecord> shards)
{
    std::sort(shards.begin(), shards.end(),
              [](const ShardRecord &a, const ShardRecord &b) {
                  return a.lo < b.lo;
              });
    unsigned covered = 0;
    for (const auto &shard : shards) {
        if (shard.lo != covered)
            throw StoreFormatError(
                "shards do not tile the cell: trials [" +
                std::to_string(covered) + ", " +
                std::to_string(shard.lo) + ") are missing");
        covered = shard.hi;
    }
    if (covered != key.trials)
        throw StoreFormatError(
            "shards do not tile the cell: trials [" +
            std::to_string(covered) + ", " +
            std::to_string(key.trials) + ") are missing");

    core::CellSummary merged;
    merged.errors = key.errors;
    merged.policy = key.policy;
    merged.trials = key.trials;
    for (const auto &shard : shards) {
        merged.completed += shard.summary.completed;
        merged.crashed += shard.summary.crashed;
        merged.timedOut += shard.summary.timedOut;
        merged.trialsPruned += shard.summary.trialsPruned;
        merged.totalInstructions += shard.summary.totalInstructions;
        merged.wallSeconds += shard.summary.wallSeconds;
        merged.fidelities.insert(merged.fidelities.end(),
                                 shard.summary.fidelities.begin(),
                                 shard.summary.fidelities.end());
    }
    return merged;
}

} // namespace etc::store
