/**
 * @file
 * Persistent secondary index over the result store.
 *
 * The content-addressed store answers "give me cell <fingerprint>" in
 * one file read, but answers "what do we have for workload X?" only by
 * scanning and decoding every record. The index inverts that: a small
 * sidecar under <root>/index/ maps every stored fingerprint back to
 * its full CellKey (workload x policy x errors x seed x trials x
 * program hash) plus its completeness state, so query engines and
 * coverage reports enumerate the archive without touching record
 * bodies.
 *
 * Layout:
 *
 *   <root>/index/journal.jsonl    append-only write-ahead entries
 *   <root>/index/manifest.jsonl   compacted snapshot (sorted, sealed)
 *   <root>/index/quarantine/      corrupt records moved by rebuild
 *
 * Writers (ResultStore::storeCell/storeShard/dropShards) append one
 * self-checksummed line to the journal per mutation -- a single
 * O_APPEND write(), so any number of processes or threads may race on
 * the same journal and readers at worst skip a torn final line.
 * Readers fold the journal over the manifest; compact() folds
 * everything into a fresh manifest and truncates the journal.
 *
 * Determinism contract: the manifest encoding carries no timestamps,
 * entries sort by fingerprint, and the fold rules mirror what a full
 * rescan of cells/ and shards/ observes, so an incrementally
 * maintained index and a from-scratch rebuild() produce byte-identical
 * manifests (pinned by index_test.cc). compact() and rebuild() must
 * not race concurrent writers (appends between snapshot and journal
 * truncation would be lost); the scheduler and query paths only ever
 * load().
 *
 * Like every record surface, corruption is reported and tolerated,
 * never fatal: torn journal lines are skipped and counted, a corrupt
 * manifest is ignored (rebuild() restores it), and rebuild() reports
 * -- and optionally quarantines -- undecodable record files instead
 * of crashing.
 */

#ifndef ETC_STORE_INDEX_HH
#define ETC_STORE_INDEX_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "store/record.hh"

namespace etc::store {

/** One indexed fingerprint: its key and completeness state. */
struct IndexEntry
{
    CellKey key;
    bool complete = false; //!< a full cell record exists
    /** Shard trial ranges [lo, hi) on disk (empty when complete). */
    std::set<std::pair<unsigned, unsigned>> shardRanges;
};

/** Index health for /v1/healthz and `etc_lab stats`. */
struct IndexHealth
{
    uint64_t cells = 0;          //!< complete cells indexed
    uint64_t shardSets = 0;      //!< partial (shard-only) cells
    uint64_t shardRanges = 0;    //!< shard ranges across all sets
    uint64_t journalEntries = 0; //!< entries folded over the manifest
    uint64_t journalCorrupt = 0; //!< torn/garbled journal lines
    bool manifestPresent = false;
    /** Shard directories whose fingerprint already has a complete
     *  cell (leftovers of an interrupted promotion). */
    uint64_t orphanedShards = 0;
};

/** What a full-scan rebuild found (counts plus offending paths). */
struct RebuildReport
{
    uint64_t cells = 0;
    uint64_t shardSets = 0;
    std::vector<std::string> orphanedShards; //!< shard files shadowed
                                             //!< by a complete cell
    std::vector<std::string> corruptRecords; //!< undecodable files
    uint64_t quarantined = 0; //!< corrupt files moved aside
};

/**
 * The secondary index over one store root. Instances are snapshots:
 * load() reads manifest + journal once; call it again to refresh.
 * Not internally synchronized -- use one instance per thread, like
 * ResultStore.
 */
class StoreIndex
{
  public:
    explicit StoreIndex(std::string root);

    const std::string &root() const { return root_; }

    /// @name Writer side (stateless, any thread/process)
    /// One self-checksummed O_APPEND line per call; never throws --
    /// an unwritable journal warns and the index goes stale until the
    /// next rebuild (the store itself stays correct regardless).
    /// @{
    static void journalCell(const std::string &root, const CellKey &key);
    static void journalShard(const std::string &root, const CellKey &key,
                             unsigned lo, unsigned hi);
    static void journalDropShards(const std::string &root,
                                  const CellKey &key);
    /// @}

    /** Read manifest + journal into memory (fold rules above). */
    void load();

    /** Indexed fingerprints in sorted order (after load()). */
    const std::map<std::string, IndexEntry> &entries() const
    {
        return entries_;
    }

    /** @return true if @p fingerprint has a complete cell indexed. */
    bool hasCell(const std::string &fingerprint) const;

    /** Health snapshot (orphanedShards is a fresh directory scan). */
    IndexHealth health() const;

    /**
     * Fold the loaded state into a fresh manifest (atomic rename) and
     * truncate the journal. Callers must guarantee no concurrent
     * writers (see the file comment).
     */
    void compact();

    /**
     * Rebuild from a full scan of cells/ and shards/, replacing the
     * loaded state, then compact(). Corrupt record files are reported
     * and, when @p quarantine is set, moved under index/quarantine/
     * (mirroring their store-relative path); valid shard files whose
     * cell is already complete are reported as orphans and left in
     * place. Same no-concurrent-writers contract as compact().
     */
    RebuildReport rebuild(bool quarantine = false);

    /** The canonical manifest bytes of the loaded state. */
    std::string encodeManifest() const;

  private:
    void setGauges() const;

    std::string root_;
    std::map<std::string, IndexEntry> entries_;
    uint64_t journalEntries_ = 0;
    uint64_t journalCorrupt_ = 0;
    bool manifestPresent_ = false;
};

} // namespace etc::store

#endif // ETC_STORE_INDEX_HH
