#include "store/result_store.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "store/index.hh"
#include "store/json.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"

namespace etc::store {

namespace fs = std::filesystem;

namespace {

/** Process-wide store metrics; per-instance Stats stay authoritative
 *  for orchestration decisions, these feed /v1/metricz. */
struct StoreMetrics
{
    telemetry::Counter &cellHits = telemetry::counter(
        "etc_store_cache_hits_total",
        "Cell records served from the result store");
    telemetry::Counter &cellMisses = telemetry::counter(
        "etc_store_cache_misses_total",
        "Cell lookups that missed the result store");
    telemetry::Counter &cellsStored = telemetry::counter(
        "etc_store_cells_stored_total",
        "Cell records written to the result store");
    telemetry::Counter &shardsLoaded = telemetry::counter(
        "etc_store_shards_loaded_total",
        "Shard records read back from the result store");
    telemetry::Counter &shardsStored = telemetry::counter(
        "etc_store_shards_stored_total",
        "Shard records written to the result store");
    telemetry::Counter &bytesRead = telemetry::counter(
        "etc_store_bytes_read_total",
        "Bytes read from result-store files");
    telemetry::Counter &bytesWritten = telemetry::counter(
        "etc_store_bytes_written_total",
        "Bytes written to result-store files");
    telemetry::Counter &corruptRecords = telemetry::counter(
        "etc_store_corrupt_records_total",
        "Records rejected by the corruption-detecting codec");
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics metrics;
    return metrics;
}

/** Read a whole file; nullopt if it does not exist or is unreadable. */
std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    std::string result = contents.str();
    storeMetrics().bytesRead.add(result.size());
    return result;
}

} // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        fatal("ResultStore: empty cache directory");
}

std::string
ResultStore::cellPath(const CellKey &key) const
{
    return (fs::path(root_) / "cells" / (key.fingerprint() + ".jsonl"))
        .string();
}

std::string
ResultStore::shardDir(const CellKey &key) const
{
    return (fs::path(root_) / "shards" / key.fingerprint()).string();
}

void
ResultStore::writeAtomically(const std::string &path,
                             const std::string &contents)
{
    fs::path target(path);
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    fs::path tmpDir = fs::path(root_) / "tmp";
    fs::create_directories(tmpDir, ec);

    // Unique staging name (pid + per-process counter): concurrent
    // processes sharing a cache must never stage into the same file,
    // and rename() makes whichever finishes last win -- both write
    // identical bytes for the same key anyway.
    static std::atomic<uint64_t> counter{0};
    fs::path tmp = tmpDir / (target.filename().string() + "." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(counter.fetch_add(1)) +
                             ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << contents;
        out.flush();
        if (!out)
            fatal("result store: cannot write ", tmp.string());
    }
    fs::rename(tmp, target, ec);
    if (ec)
        fatal("result store: cannot move ", tmp.string(), " to ", path,
              ": ", ec.message());
    storeMetrics().bytesWritten.add(contents.size());
}

bool
ResultStore::hasCell(const CellKey &key) const
{
    std::error_code ec;
    return fs::exists(cellPath(key), ec);
}

std::optional<core::CellSummary>
ResultStore::loadCell(const CellKey &key)
{
    auto contents = slurp(cellPath(key));
    if (!contents) {
        ++stats_.cellMisses;
        storeMetrics().cellMisses.add();
        return std::nullopt;
    }
    try {
        auto summary = decodeCellRecord(*contents, &key);
        ++stats_.cellHits;
        storeMetrics().cellHits.add();
        return summary;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable cell record ",
             cellPath(key), ": ", error.what());
        ++stats_.cellMisses;
        storeMetrics().cellMisses.add();
        storeMetrics().corruptRecords.add();
        return std::nullopt;
    }
}

void
ResultStore::storeCell(const CellKey &key,
                       const core::CellSummary &summary)
{
    writeAtomically(cellPath(key), encodeCellRecord(key, summary));
    ++stats_.cellsStored;
    storeMetrics().cellsStored.add();
    StoreIndex::journalCell(root_, key);
}

std::optional<CellRecord>
ResultStore::loadCellByFingerprint(const std::string &fingerprint)
{
    fs::path path =
        fs::path(root_) / "cells" / (fingerprint + ".jsonl");
    auto contents = slurp(path);
    if (!contents) {
        ++stats_.cellMisses;
        storeMetrics().cellMisses.add();
        return std::nullopt;
    }
    try {
        auto record = decodeCellRecordWithKey(*contents, nullptr);
        if (record.key.fingerprint() != fingerprint)
            throw StoreFormatError(
                "record fingerprint does not match its file name");
        ++stats_.cellHits;
        storeMetrics().cellHits.add();
        return record;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable cell record ",
             path.string(), ": ", error.what());
        ++stats_.cellMisses;
        storeMetrics().cellMisses.add();
        storeMetrics().corruptRecords.add();
        return std::nullopt;
    }
}

bool
ResultStore::hasCellByFingerprint(
    const std::string &fingerprint) const
{
    std::error_code ec;
    return fs::exists(
        fs::path(root_) / "cells" / (fingerprint + ".jsonl"), ec);
}

bool
ResultStore::hasShard(const CellKey &key, unsigned lo, unsigned hi) const
{
    std::error_code ec;
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    return fs::exists(path, ec);
}

std::optional<ShardRecord>
ResultStore::loadShard(const CellKey &key, unsigned lo, unsigned hi)
{
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    auto contents = slurp(path);
    if (!contents)
        return std::nullopt;
    try {
        auto shard = decodeShardRecord(*contents, &key);
        if (shard.lo != lo || shard.hi != hi)
            throw StoreFormatError(
                "shard file name does not match its record range [" +
                std::to_string(shard.lo) + ", " +
                std::to_string(shard.hi) + ")");
        ++stats_.shardsLoaded;
        storeMetrics().shardsLoaded.add();
        return shard;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable shard ",
             path.string(), ": ", error.what());
        storeMetrics().corruptRecords.add();
        return std::nullopt;
    }
}

void
ResultStore::storeShard(const CellKey &key, unsigned lo, unsigned hi,
                        const core::CellSummary &summary)
{
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    writeAtomically(path.string(), encodeShardRecord(key, lo, hi,
                                                     summary));
    ++stats_.shardsStored;
    storeMetrics().shardsStored.add();
    StoreIndex::journalShard(root_, key, lo, hi);
}

std::vector<ShardRecord>
ResultStore::loadShards(const CellKey &key)
{
    std::vector<ShardRecord> shards;
    std::error_code ec;
    fs::directory_iterator it(shardDir(key), ec);
    if (ec)
        return shards;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        auto contents = slurp(entry.path());
        if (!contents)
            continue;
        try {
            shards.push_back(decodeShardRecord(*contents, &key));
            ++stats_.shardsLoaded;
            storeMetrics().shardsLoaded.add();
        } catch (const StoreFormatError &error) {
            warn("result store: ignoring unreadable shard ",
                 entry.path().string(), ": ", error.what());
            storeMetrics().corruptRecords.add();
        }
    }
    std::sort(shards.begin(), shards.end(),
              [](const ShardRecord &a, const ShardRecord &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    return shards;
}

ResultStore::IngestOutcome
ResultStore::ingestRecord(const std::string &text)
{
    // Peek the header's kind before dispatching to the strict
    // decoder, so a cell pushed to a shard path (or vice versa) gets
    // a precise error instead of a kind-mismatch from the wrong
    // decoder.
    std::string kind;
    try {
        size_t newline = text.find('\n');
        auto header = parseJson(text.substr(
            0, newline == std::string::npos ? text.size() : newline));
        kind = header.at("kind").asString();
    } catch (const JsonError &error) {
        throw StoreFormatError(
            std::string("unreadable record header: ") + error.what());
    }

    IngestOutcome outcome;
    if (kind == "shard") {
        ShardRecord record = decodeShardRecord(text, nullptr);
        outcome.key = record.key;
        outcome.lo = record.lo;
        outcome.hi = record.hi;
        if (hasCell(record.key))
            return outcome; // promoted already; skip the orphan
        fs::path path = fs::path(shardDir(record.key)) /
                        (std::to_string(record.lo) + "-" +
                         std::to_string(record.hi) + ".jsonl");
        writeAtomically(path.string(), text);
        ++stats_.shardsStored;
        storeMetrics().shardsStored.add();
        StoreIndex::journalShard(root_, record.key, record.lo,
                                 record.hi);
        outcome.stored = true;
        return outcome;
    }
    if (kind == "cell") {
        CellRecord record = decodeCellRecordWithKey(text, nullptr);
        outcome.cellRecord = true;
        outcome.key = record.key;
        if (hasCell(record.key))
            return outcome; // identical bytes are already in place
        writeAtomically(cellPath(record.key), text);
        ++stats_.cellsStored;
        storeMetrics().cellsStored.add();
        StoreIndex::journalCell(root_, record.key);
        outcome.stored = true;
        return outcome;
    }
    throw StoreFormatError("cannot ingest record kind '" + kind +
                           "' (expected shard or cell)");
}

void
ResultStore::dropShards(const CellKey &key)
{
    std::error_code ec;
    fs::remove_all(shardDir(key), ec);
    StoreIndex::journalDropShards(root_, key);
}

} // namespace etc::store
