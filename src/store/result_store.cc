#include "store/result_store.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/logging.hh"

namespace etc::store {

namespace fs = std::filesystem;

namespace {

/** Read a whole file; nullopt if it does not exist or is unreadable. */
std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return contents.str();
}

} // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        fatal("ResultStore: empty cache directory");
}

std::string
ResultStore::cellPath(const CellKey &key) const
{
    return (fs::path(root_) / "cells" / (key.fingerprint() + ".jsonl"))
        .string();
}

std::string
ResultStore::shardDir(const CellKey &key) const
{
    return (fs::path(root_) / "shards" / key.fingerprint()).string();
}

void
ResultStore::writeAtomically(const std::string &path,
                             const std::string &contents)
{
    fs::path target(path);
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    fs::path tmpDir = fs::path(root_) / "tmp";
    fs::create_directories(tmpDir, ec);

    // Unique staging name (pid + per-process counter): concurrent
    // processes sharing a cache must never stage into the same file,
    // and rename() makes whichever finishes last win -- both write
    // identical bytes for the same key anyway.
    static std::atomic<uint64_t> counter{0};
    fs::path tmp = tmpDir / (target.filename().string() + "." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(counter.fetch_add(1)) +
                             ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << contents;
        out.flush();
        if (!out)
            fatal("result store: cannot write ", tmp.string());
    }
    fs::rename(tmp, target, ec);
    if (ec)
        fatal("result store: cannot move ", tmp.string(), " to ", path,
              ": ", ec.message());
}

bool
ResultStore::hasCell(const CellKey &key) const
{
    std::error_code ec;
    return fs::exists(cellPath(key), ec);
}

std::optional<core::CellSummary>
ResultStore::loadCell(const CellKey &key)
{
    auto contents = slurp(cellPath(key));
    if (!contents) {
        ++stats_.cellMisses;
        return std::nullopt;
    }
    try {
        auto summary = decodeCellRecord(*contents, &key);
        ++stats_.cellHits;
        return summary;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable cell record ",
             cellPath(key), ": ", error.what());
        ++stats_.cellMisses;
        return std::nullopt;
    }
}

void
ResultStore::storeCell(const CellKey &key,
                       const core::CellSummary &summary)
{
    writeAtomically(cellPath(key), encodeCellRecord(key, summary));
    ++stats_.cellsStored;
}

std::optional<CellRecord>
ResultStore::loadCellByFingerprint(const std::string &fingerprint)
{
    fs::path path =
        fs::path(root_) / "cells" / (fingerprint + ".jsonl");
    auto contents = slurp(path);
    if (!contents) {
        ++stats_.cellMisses;
        return std::nullopt;
    }
    try {
        auto record = decodeCellRecordWithKey(*contents, nullptr);
        if (record.key.fingerprint() != fingerprint)
            throw StoreFormatError(
                "record fingerprint does not match its file name");
        ++stats_.cellHits;
        return record;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable cell record ",
             path.string(), ": ", error.what());
        ++stats_.cellMisses;
        return std::nullopt;
    }
}

bool
ResultStore::hasShard(const CellKey &key, unsigned lo, unsigned hi) const
{
    std::error_code ec;
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    return fs::exists(path, ec);
}

std::optional<ShardRecord>
ResultStore::loadShard(const CellKey &key, unsigned lo, unsigned hi)
{
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    auto contents = slurp(path);
    if (!contents)
        return std::nullopt;
    try {
        auto shard = decodeShardRecord(*contents, &key);
        if (shard.lo != lo || shard.hi != hi)
            throw StoreFormatError(
                "shard file name does not match its record range [" +
                std::to_string(shard.lo) + ", " +
                std::to_string(shard.hi) + ")");
        ++stats_.shardsLoaded;
        return shard;
    } catch (const StoreFormatError &error) {
        warn("result store: ignoring unreadable shard ",
             path.string(), ": ", error.what());
        return std::nullopt;
    }
}

void
ResultStore::storeShard(const CellKey &key, unsigned lo, unsigned hi,
                        const core::CellSummary &summary)
{
    fs::path path = fs::path(shardDir(key)) /
                    (std::to_string(lo) + "-" + std::to_string(hi) +
                     ".jsonl");
    writeAtomically(path.string(), encodeShardRecord(key, lo, hi,
                                                     summary));
    ++stats_.shardsStored;
}

std::vector<ShardRecord>
ResultStore::loadShards(const CellKey &key)
{
    std::vector<ShardRecord> shards;
    std::error_code ec;
    fs::directory_iterator it(shardDir(key), ec);
    if (ec)
        return shards;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        auto contents = slurp(entry.path());
        if (!contents)
            continue;
        try {
            shards.push_back(decodeShardRecord(*contents, &key));
            ++stats_.shardsLoaded;
        } catch (const StoreFormatError &error) {
            warn("result store: ignoring unreadable shard ",
                 entry.path().string(), ": ", error.what());
        }
    }
    std::sort(shards.begin(), shards.end(),
              [](const ShardRecord &a, const ShardRecord &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    return shards;
}

void
ResultStore::dropShards(const CellKey &key)
{
    std::error_code ec;
    fs::remove_all(shardDir(key), ec);
}

} // namespace etc::store
