#include "store/index.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <system_error>

#include "store/json.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace etc::store {

namespace fs = std::filesystem;

namespace {

struct IndexMetrics
{
    telemetry::Gauge &cells = telemetry::gauge(
        "etc_index_cells",
        "Complete cells tracked by the secondary index");
    telemetry::Gauge &shardSets = telemetry::gauge(
        "etc_index_shard_sets",
        "Partial (shard-only) cells tracked by the secondary index");
    telemetry::Gauge &journalEntries = telemetry::gauge(
        "etc_index_journal_entries",
        "Index journal entries folded over the manifest (staleness)");
    telemetry::Counter &journalAppends = telemetry::counter(
        "etc_index_journal_appends_total",
        "Lines appended to the index journal");
    telemetry::Counter &journalCorrupt = telemetry::counter(
        "etc_index_journal_corrupt_total",
        "Torn or garbled index journal lines skipped");
    telemetry::Histogram &lookupSeconds = telemetry::histogram(
        "etc_index_lookup_seconds",
        "Wall time to load the index (manifest + journal fold)",
        {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5});
    telemetry::Histogram &scanSeconds = telemetry::histogram(
        "etc_index_scan_seconds",
        "Wall time for a full-scan index rebuild",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120});
};

IndexMetrics &
indexMetrics()
{
    static IndexMetrics metrics;
    return metrics;
}

fs::path
indexDir(const std::string &root)
{
    return fs::path(root) / "index";
}

fs::path
journalPath(const std::string &root)
{
    return indexDir(root) / "journal.jsonl";
}

fs::path
manifestPath(const std::string &root)
{
    return indexDir(root) / "manifest.jsonl";
}

/**
 * Seal @p body (a complete single-line object) by splicing in a
 * trailing "fnv" member computed over the unsealed bytes, and append
 * it to the journal in one O_APPEND write() so concurrent writers
 * never interleave within a line. Never throws: an unwritable journal
 * warns once per call and leaves the index stale (rebuildable).
 */
void
appendJournalLine(const std::string &root, std::string body)
{
    uint64_t checksum = fnv1a(body.data(), body.size());
    body.resize(body.size() - 1); // strip the closing brace
    body += ",\"fnv\":" + jsonQuote(hexU64(checksum)) + "}\n";

    std::error_code ec;
    fs::create_directories(indexDir(root), ec);
    int fd = ::open(journalPath(root).c_str(),
                    O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        warn("store index: cannot append to ",
             journalPath(root).string());
        return;
    }
    ssize_t written = ::write(fd, body.data(), body.size());
    ::close(fd);
    if (written != static_cast<ssize_t>(body.size()))
        warn("store index: short journal append to ",
             journalPath(root).string());
    else
        indexMetrics().journalAppends.add();
}

/**
 * Verify and parse one sealed line (journal entry). Returns false on
 * any malformation -- a torn tail line, garbage, or a checksum
 * mismatch -- without throwing.
 */
bool
unsealLine(const std::string &line, JsonValue &out)
{
    size_t pos = line.rfind(",\"fnv\":\"");
    if (pos == std::string::npos)
        return false;
    std::string body = line.substr(0, pos) + "}";
    try {
        JsonValue value = parseJson(line);
        if (value.at("schema").asU64() != SCHEMA_VERSION)
            return false;
        if (parseHexU64(value.at("fnv").asString()) !=
            fnv1a(body.data(), body.size()))
            return false;
        out = std::move(value);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return contents.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/** Same staging idiom as ResultStore::writeAtomically. */
void
writeAtomically(const std::string &root, const fs::path &target,
                const std::string &contents)
{
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    fs::path tmpDir = fs::path(root) / "tmp";
    fs::create_directories(tmpDir, ec);
    static std::atomic<uint64_t> counter{0};
    fs::path tmp = tmpDir / (target.filename().string() + "." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(counter.fetch_add(1)) +
                             ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << contents;
        out.flush();
        if (!out)
            fatal("store index: cannot write ", tmp.string());
    }
    fs::rename(tmp, target, ec);
    if (ec)
        fatal("store index: cannot move ", tmp.string(), " to ",
              target.string(), ": ", ec.message());
}

} // namespace

StoreIndex::StoreIndex(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        fatal("StoreIndex: empty cache directory");
}

void
StoreIndex::journalCell(const std::string &root, const CellKey &key)
{
    JsonObjectWriter writer;
    writer.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "cell")
        .field("fingerprint", key.fingerprint())
        .rawField("key", encodeCellKeyObject(key));
    appendJournalLine(root, writer.str());
}

void
StoreIndex::journalShard(const std::string &root, const CellKey &key,
                         unsigned lo, unsigned hi)
{
    JsonObjectWriter writer;
    writer.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "shard")
        .field("fingerprint", key.fingerprint())
        .field("lo", uint64_t{lo})
        .field("hi", uint64_t{hi})
        .rawField("key", encodeCellKeyObject(key));
    appendJournalLine(root, writer.str());
}

void
StoreIndex::journalDropShards(const std::string &root,
                              const CellKey &key)
{
    JsonObjectWriter writer;
    writer.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "drop-shards")
        .field("fingerprint", key.fingerprint());
    appendJournalLine(root, writer.str());
}

void
StoreIndex::load()
{
    telemetry::TraceSpan span("index", "load");
    auto start = std::chrono::steady_clock::now();

    entries_.clear();
    journalEntries_ = 0;
    journalCorrupt_ = 0;
    manifestPresent_ = false;

    // Manifest first: the compacted base. A corrupt manifest is
    // dropped wholesale (a partial base could never match a rebuild);
    // the journal alone may still recover recent writes, and
    // rebuild() restores the rest.
    if (auto contents = slurp(manifestPath(root_))) {
        try {
            std::vector<std::string> lines = splitLines(*contents);
            if (lines.empty())
                throw StoreFormatError("empty manifest");
            JsonValue trailer = parseJson(lines.back());
            if (trailer.at("schema").asU64() != SCHEMA_VERSION ||
                trailer.at("kind").asString() != "end" ||
                trailer.at("lines").asU64() != lines.size() - 1)
                throw StoreFormatError("bad manifest trailer");
            size_t bodySize =
                contents->size() - (lines.back().size() + 1);
            if (parseHexU64(trailer.at("fnv").asString()) !=
                fnv1a(contents->data(), bodySize))
                throw StoreFormatError("manifest checksum mismatch");
            for (size_t i = 0; i + 1 < lines.size(); ++i) {
                JsonValue line = parseJson(lines[i]);
                if (line.at("schema").asU64() != SCHEMA_VERSION)
                    throw StoreFormatError("manifest schema mismatch");
                std::string kind = line.at("kind").asString();
                if (kind == "index")
                    continue; // header: counts are derivable
                IndexEntry entry;
                entry.key = decodeCellKeyObject(line.at("key"));
                if (kind == "cell") {
                    entry.complete = true;
                } else if (kind == "shards") {
                    for (const JsonValue &range :
                         line.at("ranges").elements)
                        entry.shardRanges.emplace(
                            range.elements.at(0).asU32(),
                            range.elements.at(1).asU32());
                } else {
                    throw StoreFormatError(
                        "unknown manifest entry kind " + kind);
                }
                entries_[line.at("fingerprint").asString()] =
                    std::move(entry);
            }
            manifestPresent_ = true;
        } catch (const std::exception &error) {
            warn("store index: ignoring corrupt manifest ",
                 manifestPath(root_).string(), ": ", error.what());
            entries_.clear();
        }
    }

    // Fold the journal on top. These rules mirror what a rescan of
    // the store observes, keeping incremental == rebuild:
    //   cell        -> complete entry; any shard ranges are gone
    //   shard       -> range added unless the cell is complete
    //   drop-shards -> a shard-only entry disappears entirely
    if (auto contents = slurp(journalPath(root_))) {
        for (const std::string &line : splitLines(*contents)) {
            if (line.empty())
                continue;
            JsonValue value;
            if (!unsealLine(line, value)) {
                ++journalCorrupt_;
                indexMetrics().journalCorrupt.add();
                continue;
            }
            try {
                ++journalEntries_;
                std::string kind = value.at("kind").asString();
                std::string fingerprint =
                    value.at("fingerprint").asString();
                if (kind == "cell") {
                    IndexEntry &entry = entries_[fingerprint];
                    entry.key = decodeCellKeyObject(value.at("key"));
                    entry.complete = true;
                    entry.shardRanges.clear();
                } else if (kind == "shard") {
                    IndexEntry &entry = entries_[fingerprint];
                    if (!entry.complete) {
                        entry.key =
                            decodeCellKeyObject(value.at("key"));
                        entry.shardRanges.emplace(
                            value.at("lo").asU32(),
                            value.at("hi").asU32());
                    }
                } else if (kind == "drop-shards") {
                    auto it = entries_.find(fingerprint);
                    if (it != entries_.end() && !it->second.complete)
                        entries_.erase(it);
                } else {
                    --journalEntries_;
                    ++journalCorrupt_;
                    indexMetrics().journalCorrupt.add();
                }
            } catch (const std::exception &) {
                --journalEntries_;
                ++journalCorrupt_;
                indexMetrics().journalCorrupt.add();
            }
        }
    }

    setGauges();
    indexMetrics().lookupSeconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
}

bool
StoreIndex::hasCell(const std::string &fingerprint) const
{
    auto it = entries_.find(fingerprint);
    return it != entries_.end() && it->second.complete;
}

IndexHealth
StoreIndex::health() const
{
    IndexHealth health;
    for (const auto &[fingerprint, entry] : entries_) {
        if (entry.complete)
            ++health.cells;
        else
            ++health.shardSets;
        health.shardRanges += entry.shardRanges.size();
    }
    health.journalEntries = journalEntries_;
    health.journalCorrupt = journalCorrupt_;
    health.manifestPresent = manifestPresent_;

    std::error_code ec;
    fs::directory_iterator it(fs::path(root_) / "shards", ec);
    if (!ec) {
        for (const auto &dir : it) {
            if (!dir.is_directory(ec))
                continue;
            if (hasCell(dir.path().filename().string()))
                ++health.orphanedShards;
        }
    }
    return health;
}

std::string
StoreIndex::encodeManifest() const
{
    uint64_t cells = 0, shardSets = 0;
    for (const auto &[fingerprint, entry] : entries_) {
        (void)fingerprint;
        entry.complete ? ++cells : ++shardSets;
    }

    std::string body;
    {
        JsonObjectWriter header;
        header.field("schema", uint64_t{SCHEMA_VERSION})
            .field("kind", "index")
            .field("cells", cells)
            .field("shardSets", shardSets);
        body = header.str() + "\n";
    }
    uint64_t lines = 1;
    for (const auto &[fingerprint, entry] : entries_) {
        JsonObjectWriter writer;
        writer.field("schema", uint64_t{SCHEMA_VERSION})
            .field("kind", entry.complete ? "cell" : "shards")
            .field("fingerprint", fingerprint);
        if (!entry.complete) {
            std::string ranges = "[";
            for (const auto &[lo, hi] : entry.shardRanges) {
                if (ranges.size() > 1)
                    ranges += ',';
                ranges += '[';
                ranges += std::to_string(lo);
                ranges += ',';
                ranges += std::to_string(hi);
                ranges += ']';
            }
            ranges += "]";
            writer.rawField("ranges", ranges);
        }
        writer.rawField("key", encodeCellKeyObject(entry.key));
        body += writer.str() + "\n";
        ++lines;
    }
    JsonObjectWriter trailer;
    trailer.field("schema", uint64_t{SCHEMA_VERSION})
        .field("kind", "end")
        .field("lines", lines)
        .field("fnv", hexU64(fnv1a(body.data(), body.size())));
    body += trailer.str() + "\n";
    return body;
}

void
StoreIndex::compact()
{
    telemetry::TraceSpan span("index", "compact");
    writeAtomically(root_, manifestPath(root_), encodeManifest());
    std::error_code ec;
    fs::create_directories(indexDir(root_), ec);
    std::ofstream truncate(journalPath(root_),
                           std::ios::binary | std::ios::trunc);
    journalEntries_ = 0;
    journalCorrupt_ = 0;
    manifestPresent_ = true;
    setGauges();
}

RebuildReport
StoreIndex::rebuild(bool quarantine)
{
    telemetry::TraceSpan span("index", "rebuild");
    auto start = std::chrono::steady_clock::now();

    RebuildReport report;
    entries_.clear();
    journalEntries_ = 0;
    journalCorrupt_ = 0;

    auto quarantineFile = [&](const fs::path &path,
                              const fs::path &relative) {
        report.corruptRecords.push_back(path.string());
        if (!quarantine)
            return;
        fs::path target = indexDir(root_) / "quarantine" / relative;
        std::error_code ec;
        fs::create_directories(target.parent_path(), ec);
        fs::rename(path, target, ec);
        if (ec)
            warn("store index: cannot quarantine ", path.string(),
                 ": ", ec.message());
        else
            ++report.quarantined;
    };

    std::error_code ec;
    fs::directory_iterator cellIt(fs::path(root_) / "cells", ec);
    if (!ec) {
        for (const auto &file : cellIt) {
            if (!file.is_regular_file(ec))
                continue;
            auto contents = slurp(file.path());
            if (!contents)
                continue;
            try {
                CellRecord record =
                    decodeCellRecordWithKey(*contents, nullptr);
                std::string fingerprint = record.key.fingerprint();
                if (fingerprint + ".jsonl" !=
                    file.path().filename().string())
                    throw StoreFormatError("record fingerprint does "
                                           "not match its file name");
                IndexEntry &entry = entries_[fingerprint];
                entry.key = std::move(record.key);
                entry.complete = true;
            } catch (const StoreFormatError &) {
                quarantineFile(file.path(),
                               fs::path("cells") /
                                   file.path().filename());
            }
        }
    }

    fs::directory_iterator shardIt(fs::path(root_) / "shards", ec);
    if (!ec) {
        for (const auto &dir : shardIt) {
            if (!dir.is_directory(ec))
                continue;
            std::string fingerprint = dir.path().filename().string();
            bool shadowed = hasCell(fingerprint);
            fs::directory_iterator fileIt(dir.path(), ec);
            if (ec)
                continue;
            for (const auto &file : fileIt) {
                if (!file.is_regular_file(ec))
                    continue;
                auto contents = slurp(file.path());
                if (!contents)
                    continue;
                try {
                    ShardRecord shard =
                        decodeShardRecord(*contents, nullptr);
                    if (shard.key.fingerprint() != fingerprint)
                        throw StoreFormatError(
                            "shard key does not match its directory");
                    if (shadowed) {
                        // Valid but already superseded by a complete
                        // cell: an interrupted promotion's leftovers.
                        report.orphanedShards.push_back(
                            file.path().string());
                        continue;
                    }
                    IndexEntry &entry = entries_[fingerprint];
                    entry.key = std::move(shard.key);
                    entry.shardRanges.emplace(shard.lo, shard.hi);
                } catch (const StoreFormatError &) {
                    quarantineFile(file.path(),
                                   fs::path("shards") / fingerprint /
                                       file.path().filename());
                }
            }
        }
    }

    for (const auto &[fingerprint, entry] : entries_) {
        (void)fingerprint;
        entry.complete ? ++report.cells : ++report.shardSets;
    }
    compact();
    indexMetrics().scanSeconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    return report;
}

void
StoreIndex::setGauges() const
{
    int64_t cells = 0, shardSets = 0;
    for (const auto &[fingerprint, entry] : entries_) {
        (void)fingerprint;
        entry.complete ? ++cells : ++shardSets;
    }
    indexMetrics().cells.set(cells);
    indexMetrics().shardSets.set(shardSets);
    indexMetrics().journalEntries.set(
        static_cast<int64_t>(journalEntries_));
}

} // namespace etc::store
