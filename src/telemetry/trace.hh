/**
 * @file
 * Lightweight span tracer emitting Chrome Trace Event Format records
 * as JSONL: one complete-event object (`"ph":"X"`) per line. Load a
 * trace in Perfetto (ui.perfetto.dev) or chrome://tracing after
 * wrapping the lines in a JSON array, e.g.:
 *
 *     jq -s . campaign.trace.jsonl > campaign.trace.json
 *
 * Enabled by `--trace-out FILE` on `etc_lab run/serve` and the bench
 * drivers. When disabled (the default), a span costs one relaxed
 * atomic load -- cheap enough for per-trial spans on the campaign
 * fast paths. When enabled, events buffer in memory and flush on
 * close (and periodically), serialized under one mutex.
 *
 * Tracing is observation only: it never feeds an RNG draw or a cache
 * key, so campaign tallies and fidelity bits are bit-identical with
 * tracing on or off (pinned by gang_determinism_test.cc).
 */

#ifndef ETC_TELEMETRY_TRACE_HH
#define ETC_TELEMETRY_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace etc::telemetry {

class Tracer
{
  public:
    static Tracer &instance();

    /** Start writing spans to @p path (truncating). FatalError when
     *  the file cannot be created. */
    void open(const std::string &path);

    /** Flush buffered events and stop tracing (idempotent). */
    void close();

    /** @return true when spans should be recorded (relaxed load). */
    bool
    enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since the tracer singleton was created. */
    uint64_t nowMicros() const;

    /**
     * Emit one complete event ("ph":"X"). @p argsJson, when nonempty,
     * is a pre-rendered JSON object (e.g. `{"trial":17}`). No-op when
     * tracing is disabled.
     */
    void emitComplete(const char *category, const char *name,
                      uint64_t startMicros, uint64_t durationMicros,
                      const std::string &argsJson = {});

    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

  private:
    Tracer();

    /** Stable small integer for the calling thread (caller holds
     *  mutex_). */
    unsigned threadId();

    std::atomic<bool> enabled_{false};
    std::mutex mutex_;
    std::string path_;
    std::string buffer_;
    std::map<std::thread::id, unsigned> threadIds_;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII complete-event span. Construction samples the start time only
 * when tracing is enabled; destruction emits the event. Callers build
 * @p argsJson only behind an enabled() check to keep the disabled
 * path allocation-free:
 *
 *     TraceSpan span("engine", "trial");
 *     if (span.active())
 *         span.setArgs("{\"trial\":" + std::to_string(t) + "}");
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, const char *name)
        : category_(category), name_(name),
          active_(Tracer::instance().enabled())
    {
        if (active_)
            startMicros_ = Tracer::instance().nowMicros();
    }

    ~TraceSpan()
    {
        if (!active_)
            return;
        Tracer &tracer = Tracer::instance();
        tracer.emitComplete(category_, name_, startMicros_,
                            tracer.nowMicros() - startMicros_, args_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    bool active() const { return active_; }

    /** Attach a pre-rendered JSON args object to the event. */
    void setArgs(std::string argsJson) { args_ = std::move(argsJson); }

  private:
    const char *category_;
    const char *name_;
    std::string args_;
    uint64_t startMicros_ = 0;
    bool active_;
};

} // namespace etc::telemetry

#endif // ETC_TELEMETRY_TRACE_HH
