#include "telemetry/trace.hh"

#include <fstream>
#include <utility>

#include "support/logging.hh"

namespace etc::telemetry {

namespace {

/** Flush threshold: keeps memory bounded on long campaigns without
 *  issuing a write syscall per span. */
constexpr size_t FLUSH_BYTES = 1 << 18;

/** Minimal JSON string escaping for category/name/args passthrough. */
std::string
jsonEscape(const char *text)
{
    std::string out;
    for (const char *p = text; *p; ++p) {
        switch (*p) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += *p; break;
        }
    }
    return out;
}

void
appendToFile(const std::string &path, const std::string &data,
             bool truncate)
{
    std::ofstream stream(path, truncate ? std::ios::trunc
                                        : std::ios::app);
    if (!stream)
        fatal("trace: cannot open '", path, "' for writing");
    stream << data;
    if (!stream)
        fatal("trace: write to '", path, "' failed");
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer()
{
    close();
}

uint64_t
Tracer::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Tracer::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
    buffer_.clear();
    threadIds_.clear();
    appendToFile(path_, "", /*truncate=*/true);
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    enabled_.store(false, std::memory_order_relaxed);
    if (!buffer_.empty())
        appendToFile(path_, buffer_, /*truncate=*/false);
    buffer_.clear();
}

unsigned
Tracer::threadId()
{
    auto [it, inserted] = threadIds_.try_emplace(
        std::this_thread::get_id(),
        static_cast<unsigned>(threadIds_.size()));
    (void)inserted;
    return it->second;
}

void
Tracer::emitComplete(const char *category, const char *name,
                     uint64_t startMicros, uint64_t durationMicros,
                     const std::string &argsJson)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    buffer_ += "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
               std::to_string(threadId()) + ",\"ts\":" +
               std::to_string(startMicros) + ",\"dur\":" +
               std::to_string(durationMicros) + ",\"cat\":\"" +
               jsonEscape(category) + "\",\"name\":\"" +
               jsonEscape(name) + "\"";
    if (!argsJson.empty())
        buffer_ += ",\"args\":" + argsJson;
    buffer_ += "}\n";
    if (buffer_.size() >= FLUSH_BYTES) {
        appendToFile(path_, buffer_, /*truncate=*/false);
        buffer_.clear();
    }
}

} // namespace etc::telemetry
