#include "telemetry/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "support/logging.hh"

namespace etc::telemetry {

namespace {

/** %.17g: shortest round-trippable rendering for sums and bounds. */
std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** Bucket bounds render compactly (they are human-chosen constants). */
std::string
formatBound(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

void
atomicAddDouble(std::atomic<double> &target, double delta) noexcept
{
    // CAS loop instead of C++20 fetch_add(double): identical
    // semantics, no dependence on libstdc++ floating-atomic support.
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

/** One registered (family, labels) series. */
struct Series
{
    std::string family;
    std::string labels; //!< rendered label body, "" for none
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/**
 * The process-wide registry. Lookup/registration is mutex-guarded
 * (cold: call sites cache the returned reference in a static);
 * increments on the returned metrics never touch the registry again.
 */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    Registry() { processEpoch(); } //!< pin the uptime epoch early

    Series &
    lookup(const std::string &name, const std::string &labels,
           MetricKind kind)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::string key = name + "\x1f" + labels;
        auto it = index_.find(key);
        if (it != index_.end()) {
            Series &series = *entries_[it->second];
            if (series.kind != kind)
                panic("telemetry: metric '", name,
                      "' registered as both ", kindName(series.kind),
                      " and ", kindName(kind));
            return series;
        }
        auto series = std::make_unique<Series>();
        series->family = name;
        series->labels = labels;
        series->kind = kind;
        index_[key] = entries_.size();
        entries_.push_back(std::move(series));
        return *entries_.back();
    }

    std::string
    render()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Group families in first-registration order: exposition
        // format requires every sample of a family to sit under one
        // # HELP/# TYPE header, but labeled series register lazily in
        // arbitrary interleavings.
        std::vector<std::string> familyOrder;
        std::map<std::string, std::vector<const Series *>> families;
        for (const auto &series : entries_) {
            auto [it, inserted] = families.try_emplace(series->family);
            if (inserted)
                familyOrder.push_back(series->family);
            it->second.push_back(series.get());
        }

        std::string out;
        for (const auto &family : familyOrder) {
            const auto &group = families[family];
            const std::string &help = [&]() -> const std::string & {
                for (const Series *series : group)
                    if (!series->help.empty())
                        return series->help;
                return group.front()->help;
            }();
            out += "# HELP " + family + " " + help + "\n";
            out += "# TYPE " + family + " " +
                   kindName(group.front()->kind) + "\n";
            for (const Series *series : group)
                renderSeries(out, *series);
        }
        return out;
    }

  private:
    static void
    renderSeries(std::string &out, const Series &series)
    {
        std::string suffix = series.labels.empty()
                                 ? std::string()
                                 : "{" + series.labels + "}";
        switch (series.kind) {
          case MetricKind::Counter:
            out += series.family + suffix + " " +
                   std::to_string(series.counter->value()) + "\n";
            return;
          case MetricKind::Gauge:
            out += series.family + suffix + " " +
                   std::to_string(series.gauge->value()) + "\n";
            return;
          case MetricKind::Histogram:
            break;
        }
        const Histogram &histogram = *series.histogram;
        auto counts = histogram.bucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < histogram.bounds().size(); ++i) {
            cumulative += counts[i];
            out += series.family + "_bucket{le=\"" +
                   formatBound(histogram.bounds()[i]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += series.family + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += series.family + "_sum " +
               formatDouble(histogram.sum()) + "\n";
        out += series.family + "_count " +
               std::to_string(cumulative) + "\n";
    }

    std::mutex mutex_;
    std::vector<std::unique_ptr<Series>> entries_;
    std::map<std::string, size_t> index_;
};

} // namespace

unsigned
shardSlot()
{
    static std::atomic<unsigned> nextThread{0};
    thread_local const unsigned slot =
        nextThread.fetch_add(1, std::memory_order_relaxed) %
        METRIC_SHARDS;
    return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(METRIC_SHARDS)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        panic("telemetry: histogram bounds must be ascending");
    for (auto &shard : shards_)
        shard.buckets =
            std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void
Histogram::observe(double value) noexcept
{
    // First bound >= value (le is inclusive); past-the-end = +Inf.
    size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    Shard &shard = shards_[shardSlot()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(shard.sum, value);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(bounds_.size() + 1, 0);
    for (const auto &shard : shards_)
        for (size_t i = 0; i < counts.size(); ++i)
            counts[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
    return counts;
}

uint64_t
Histogram::count() const noexcept
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        for (const auto &bucket : shard.buckets)
            total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const noexcept
{
    double total = 0.0;
    for (const auto &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

Counter &
counter(const std::string &name, const std::string &help)
{
    return counter(name, std::string(), help);
}

Counter &
counter(const std::string &name, const std::string &labels,
        const std::string &help)
{
    Series &series =
        Registry::instance().lookup(name, labels, MetricKind::Counter);
    if (!series.counter) {
        series.help = help;
        series.counter = std::make_unique<Counter>();
    }
    return *series.counter;
}

Gauge &
gauge(const std::string &name, const std::string &help)
{
    return gauge(name, std::string(), help);
}

Gauge &
gauge(const std::string &name, const std::string &labels,
      const std::string &help)
{
    Series &series =
        Registry::instance().lookup(name, labels, MetricKind::Gauge);
    if (!series.gauge) {
        series.help = help;
        series.gauge = std::make_unique<Gauge>();
    }
    return *series.gauge;
}

Histogram &
histogram(const std::string &name, const std::string &help,
          std::vector<double> bounds)
{
    // Construct before registering: the bounds check may panic, and a
    // registered series must never be left without its metric.
    auto made = std::make_unique<Histogram>(std::move(bounds));
    Series &series = Registry::instance().lookup(
        name, std::string(), MetricKind::Histogram);
    if (!series.histogram) {
        series.help = help;
        series.histogram = std::move(made);
    }
    return *series.histogram;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c; break;
        }
    }
    return out;
}

double
uptimeSeconds()
{
    std::chrono::duration<double> up =
        std::chrono::steady_clock::now() - processEpoch();
    return up.count();
}

const char *
versionString()
{
    // Tracks the PR sequence growing this reproduction.
    return "0.8.0";
}

std::string
buildFlags()
{
    std::string flags = std::string("compiler=") + __VERSION__;
#ifdef __OPTIMIZE__
    flags += ",optimized=yes";
#else
    flags += ",optimized=no";
#endif
#if defined(__GNUC__) && !defined(__clang__)
    flags += ",dispatch=threaded";
#else
    flags += ",dispatch=switch";
#endif
    return flags;
}

std::string
renderPrometheus()
{
    // Built-in process metrics, refreshed at scrape time.
    static Gauge &uptime = gauge(
        "etc_uptime_milliseconds",
        "Milliseconds since telemetry initialization (process start)");
    static Gauge &build = gauge(
        "etc_build_info",
        "version=\"" + std::string(versionString()) + "\",flags=\"" +
            escapeLabelValue(buildFlags()) + "\"",
        "Constant 1; version and build description in the labels");
    uptime.set(static_cast<int64_t>(uptimeSeconds() * 1000.0));
    build.set(1);
    return Registry::instance().render();
}

} // namespace etc::telemetry
