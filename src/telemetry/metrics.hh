/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms, exposed in Prometheus text exposition format via
 * renderPrometheus() (GET /v1/metricz serves exactly those bytes).
 *
 * Hot-path contract: increments are wait-free. Every counter and
 * histogram is sharded into METRIC_SHARDS cache-line-aligned atomic
 * slots; a thread picks its slot once (thread_local, round-robin) and
 * then only ever issues relaxed fetch_adds on it, so the gang and
 * checkpoint fast paths are not perturbed by contention. Scrapes merge
 * the shards -- they see a consistent-enough snapshot (each shard is
 * read atomically; a scrape racing an increment may be one tick
 * behind, never corrupt).
 *
 * Telemetry is observation only, carried as a hard constraint from
 * PRs 1-7: nothing here enters CellKey/cache identity or any RNG
 * draw, so tallies and fidelity bits are bit-identical with metrics
 * compiled in, scraped, or ignored (telemetry_test.cc and
 * gang_determinism_test.cc pin this).
 *
 * Registration is idempotent and returns stable references:
 *
 *   static auto &trials =
 *       telemetry::counter("etc_trials_simulated_total",
 *                          "Trials executed by a simulator");
 *   trials.add();
 *
 * Labeled series of one family (e.g. HTTP requests by endpoint and
 * status) register under the same name with distinct label strings;
 * the renderer groups them under one # HELP/# TYPE header.
 */

#ifndef ETC_TELEMETRY_METRICS_HH
#define ETC_TELEMETRY_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace etc::telemetry {

/** Shard slots per metric (power of two; ~max useful concurrency). */
constexpr unsigned METRIC_SHARDS = 16;

/** @return this thread's stable shard slot in [0, METRIC_SHARDS). */
unsigned shardSlot();

/** Monotonic counter (renders as TYPE counter). */
class Counter
{
  public:
    /** Wait-free, relaxed; safe from any thread. */
    void
    add(uint64_t n = 1) noexcept
    {
        shards_[shardSlot()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merge the shards (scrape side). */
    uint64_t
    value() const noexcept
    {
        uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> value{0};
    };
    std::array<Shard, METRIC_SHARDS> shards_{};
};

/** Point-in-time value (renders as TYPE gauge). Gauges are set/adjust
 *  operations on one atomic -- they are updated at bookkeeping
 *  frequency (queue transitions), never in simulation hot loops. */
class Gauge
{
  public:
    void
    set(int64_t value) noexcept
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram (renders as TYPE histogram: cumulative
 * <name>_bucket{le=...} series plus <name>_sum and <name>_count).
 * Bucket upper bounds are fixed at registration; observations are
 * wait-free sharded relaxed adds like Counter's.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value) noexcept;

    /** Ascending upper bounds; the +Inf bucket is implicit. */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket (non-cumulative) counts, bounds().size() + 1 long;
     *  the last entry is the +Inf overflow bucket. */
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const noexcept;
    double sum() const noexcept;

  private:
    std::vector<double> bounds_;

    struct alignas(64) Shard
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<double> sum{0.0};
    };
    std::vector<Shard> shards_;
};

/// @name Registry
/// Idempotent lookup-or-create; returned references stay valid for
/// the process lifetime. A (name, labels) pair always maps to the
/// same object; registering one name as two different metric kinds
/// panics (a programming error).
/// @{

Counter &counter(const std::string &name, const std::string &help);

/** Labeled series of family @p name; @p labels is the rendered label
 *  body, e.g. `endpoint="/v1/jobs",status="200"`. */
Counter &counter(const std::string &name, const std::string &labels,
                 const std::string &help);

Gauge &gauge(const std::string &name, const std::string &help);

Gauge &gauge(const std::string &name, const std::string &labels,
             const std::string &help);

/** @p bounds must be ascending; passing different bounds for an
 *  already-registered histogram keeps the original's. */
Histogram &histogram(const std::string &name, const std::string &help,
                     std::vector<double> bounds);
/// @}

/** Escape a label value (backslash, double quote, newline). */
std::string escapeLabelValue(const std::string &value);

/**
 * Render every registered metric in Prometheus text exposition format
 * (version 0.0.4): families grouped under one # HELP + # TYPE header,
 * histograms expanded to cumulative buckets + sum + count. Also
 * refreshes the built-in process metrics (etc_uptime_milliseconds,
 * etc_build_info).
 */
std::string renderPrometheus();

/** Seconds since telemetry initialization (~process start). */
double uptimeSeconds();

/** The reproduction's version string (also in etc_build_info). */
const char *versionString();

/** Human-readable build description: compiler, optimization,
 *  interpreter dispatch strategy. */
std::string buildFlags();

} // namespace etc::telemetry

#endif // ETC_TELEMETRY_METRICS_HH
