#include "sim/checkpoint.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace etc::sim {

void
CheckpointStore::capture(const Machine &machine, Memory &memory,
                         uint64_t instructions, uint64_t injectableRetired,
                         size_t outputLength)
{
    if (!checkpoints_.empty()) {
        const Checkpoint &prev = checkpoints_.back();
        if (instructions < prev.instructions ||
            injectableRetired < prev.injectableRetired)
            panic("CheckpointStore: non-monotonic capture");
    }
    if (bytesUsed_ >= maxBytes_) {
        if (!capReported_) {
            capReported_ = true;
            warn("CheckpointStore: storage cap (", maxBytes_ >> 20,
                 " MiB) reached after ", checkpoints_.size(),
                 " checkpoints; later trials replay from the last one");
        }
        return;
    }

    // Copy the pages written since the previous capture, then merge
    // the (sorted) delta into the cumulative index, new copies taking
    // precedence over superseded ones.
    std::vector<std::pair<uint32_t, const uint8_t *>> delta;
    for (uint32_t pageNumber : memory.drainDirtyPages()) {
        const uint8_t *data = memory.pageData(pageNumber);
        if (!data)
            panic("CheckpointStore: dirty page 0x", std::hex, pageNumber,
                  " not allocated");
        auto copy = std::make_unique<uint8_t[]>(Memory::PAGE_SIZE);
        std::memcpy(copy.get(), data, Memory::PAGE_SIZE);
        delta.emplace_back(pageNumber, copy.get());
        pageStorage_.push_back(std::move(copy));
        bytesUsed_ += Memory::PAGE_SIZE;
    }
    if (!delta.empty()) {
        std::vector<std::pair<uint32_t, const uint8_t *>> merged;
        merged.reserve(latest_.size() + delta.size());
        auto a = latest_.begin();
        auto b = delta.begin();
        while (a != latest_.end() && b != delta.end()) {
            if (a->first < b->first)
                merged.push_back(*a++);
            else if (b->first < a->first)
                merged.push_back(*b++);
            else {
                merged.push_back(*b++); // delta supersedes
                ++a;
            }
        }
        merged.insert(merged.end(), a, latest_.end());
        merged.insert(merged.end(), b, delta.end());
        latest_.swap(merged);
    }

    Checkpoint checkpoint;
    checkpoint.machine = machine;
    checkpoint.instructions = instructions;
    checkpoint.injectableRetired = injectableRetired;
    checkpoint.outputLength = outputLength;
    checkpoint.pages = latest_;
    bytesUsed_ += checkpoint.pages.size() *
                  sizeof(std::pair<uint32_t, const uint8_t *>);
    checkpoints_.push_back(std::move(checkpoint));
}

const Checkpoint *
CheckpointStore::findForInjectable(uint64_t site) const
{
    // Captures are monotonic in injectableRetired: binary-search the
    // last checkpoint taken before the site's injectable retire.
    auto it = std::upper_bound(
        checkpoints_.begin(), checkpoints_.end(), site,
        [](uint64_t value, const Checkpoint &c) {
            return value < c.injectableRetired;
        });
    if (it == checkpoints_.begin())
        return nullptr;
    return &*std::prev(it);
}

CheckpointRecorder::CheckpointRecorder(const std::vector<bool> &injectable,
                                       uint64_t interval,
                                       const Simulator &simulator,
                                       CheckpointStore &store)
    : injectable_(injectable), interval_(interval), simulator_(simulator),
      store_(store), untilCapture_(interval)
{
    if (interval_ == 0)
        panic("CheckpointRecorder: interval must be positive");
}

void
CheckpointRecorder::onRetire(uint32_t staticIdx,
                             const isa::Instruction &ins, Machine &machine,
                             Memory &memory)
{
    ++instructions_;
    if (staticIdx < injectable_.size() && injectable_[staticIdx])
        ++injectableRetired_;
    if (--untilCapture_ == 0) {
        untilCapture_ = interval_;
        // HALT retires without publishing a next PC, so a snapshot
        // there would not be resumable -- and nothing needs it: the
        // run is over.
        if (ins.op != isa::Opcode::HALT)
            store_.capture(machine, memory, instructions_,
                           injectableRetired_,
                           simulator_.output().size());
    }
}

} // namespace etc::sim
