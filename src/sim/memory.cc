#include "sim/memory.hh"

#include <cstring>

#include "support/logging.hh"

namespace etc::sim {

Memory::Memory(uint32_t dataBase, uint32_t dataLimit, MemoryModel model)
    : model_(model), dataBase_(dataBase),
      dataLimit_(dataLimit + HEAP_SLACK),
      stackBase_(assembly::STACK_TOP + 4 - assembly::STACK_SIZE),
      stackLimit_(assembly::STACK_TOP + 4)
{
}

void
Memory::loadData(const std::vector<assembly::DataChunk> &chunks)
{
    for (const auto &chunk : chunks)
        hostWriteBlock(chunk.addr, chunk.bytes);
}

void
Memory::clear()
{
    pages_.clear();
}

bool
Memory::inBounds(uint32_t addr, uint32_t len) const
{
    uint64_t end = uint64_t{addr} + len;
    if (addr >= dataBase_ && end <= dataLimit_)
        return true;
    if (addr >= stackBase_ && end <= stackLimit_)
        return true;
    return false;
}

uint8_t *
Memory::pagePtr(uint32_t addr)
{
    uint32_t pageNum = addr >> PAGE_BITS;
    auto it = pages_.find(pageNum);
    if (it == pages_.end()) {
        auto page = std::make_unique<uint8_t[]>(PAGE_SIZE);
        std::memset(page.get(), 0, PAGE_SIZE);
        it = pages_.emplace(pageNum, std::move(page)).first;
    }
    return it->second.get() + (addr & (PAGE_SIZE - 1));
}

// The read/write helpers share the same shape: alignment always traps;
// an out-of-region access either faults (Strict) or degrades to a
// zero read / dropped write (Lenient).

MemStatus
Memory::read32(uint32_t addr, uint32_t &value)
{
    if (addr & 3)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 4)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    // A 4-byte aligned access never crosses a page boundary.
    std::memcpy(&value, pagePtr(addr), 4);
    return MemStatus::Ok;
}

MemStatus
Memory::read16(uint32_t addr, uint16_t &value)
{
    if (addr & 1)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 2)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    std::memcpy(&value, pagePtr(addr), 2);
    return MemStatus::Ok;
}

MemStatus
Memory::read8(uint32_t addr, uint8_t &value)
{
    if (!inBounds(addr, 1)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    value = *pagePtr(addr);
    return MemStatus::Ok;
}

MemStatus
Memory::write32(uint32_t addr, uint32_t value)
{
    if (addr & 3)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 4)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    std::memcpy(pagePtr(addr), &value, 4);
    return MemStatus::Ok;
}

MemStatus
Memory::write16(uint32_t addr, uint16_t value)
{
    if (addr & 1)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 2)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    std::memcpy(pagePtr(addr), &value, 2);
    return MemStatus::Ok;
}

MemStatus
Memory::write8(uint32_t addr, uint8_t value)
{
    if (!inBounds(addr, 1)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    *pagePtr(addr) = value;
    return MemStatus::Ok;
}

uint32_t
Memory::hostRead32(uint32_t addr)
{
    if (!inBounds(addr, 4) || (addr & 3))
        panic("hostRead32: bad address 0x", std::hex, addr);
    uint32_t value = 0;
    std::memcpy(&value, pagePtr(addr), 4);
    return value;
}

uint8_t
Memory::hostRead8(uint32_t addr)
{
    if (!inBounds(addr, 1))
        panic("hostRead8: bad address 0x", std::hex, addr);
    return *pagePtr(addr);
}

void
Memory::hostWrite32(uint32_t addr, uint32_t value)
{
    if (!inBounds(addr, 4) || (addr & 3))
        panic("hostWrite32: bad address 0x", std::hex, addr);
    std::memcpy(pagePtr(addr), &value, 4);
}

void
Memory::hostWrite8(uint32_t addr, uint8_t value)
{
    if (!inBounds(addr, 1))
        panic("hostWrite8: bad address 0x", std::hex, addr);
    *pagePtr(addr) = value;
}

std::vector<uint8_t>
Memory::hostReadBlock(uint32_t addr, uint32_t len)
{
    std::vector<uint8_t> out(len);
    for (uint32_t i = 0; i < len; ++i)
        out[i] = hostRead8(addr + i);
    return out;
}

void
Memory::hostWriteBlock(uint32_t addr, const std::vector<uint8_t> &bytes)
{
    for (uint32_t i = 0; i < bytes.size(); ++i)
        hostWrite8(addr + static_cast<uint32_t>(i), bytes[i]);
}

} // namespace etc::sim
