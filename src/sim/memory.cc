#include "sim/memory.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace etc::sim {

Memory::Memory(uint32_t dataBase, uint32_t dataLimit, MemoryModel model)
    : model_(model), dataBase_(dataBase),
      dataLimit_(dataLimit + HEAP_SLACK),
      stackBase_(assembly::STACK_TOP + 4 - assembly::STACK_SIZE),
      stackLimit_(assembly::STACK_TOP + 4)
{
    initSegment(data_, dataBase_, dataLimit_);
    initSegment(stack_, stackBase_, stackLimit_);
}

void
Memory::initSegment(Segment &seg, uint32_t base, uint32_t limit)
{
    seg.firstPage = base >> PAGE_BITS;
    uint32_t lastPage = (limit - 1) >> PAGE_BITS;
    seg.pages.resize(lastPage - seg.firstPage + 1);
    seg.dirty.assign(seg.pages.size(), 0);
}

void
Memory::loadData(const std::vector<assembly::DataChunk> &chunks)
{
    for (const auto &chunk : chunks)
        hostWriteBlock(chunk.addr, chunk.bytes);
}

void
Memory::clear()
{
    for (Segment *seg : {&data_, &stack_}) {
        for (auto &slot : seg->pages)
            if (slot)
                std::memset(slot.get(), 0, PAGE_SIZE);
        std::fill(seg->dirty.begin(), seg->dirty.end(), uint8_t{0});
        // The zeroed state diverges from any baseline snapshot with no
        // dirty record of it; keeping the snapshot would make a later
        // revertToBaseline() silently wrong.
        seg->baseline.clear();
    }
    dirtyList_.clear();
    hasBaseline_ = false;
}

bool
Memory::inBounds(uint32_t addr, uint32_t len) const
{
    uint64_t end = uint64_t{addr} + len;
    if (addr >= dataBase_ && end <= dataLimit_)
        return true;
    if (addr >= stackBase_ && end <= stackLimit_)
        return true;
    return false;
}

uint8_t *
Memory::slotPtr(Segment &seg, uint32_t slot)
{
    auto &page = seg.pages[slot];
    if (!page) {
        page = std::make_unique<uint8_t[]>(PAGE_SIZE);
        std::memset(page.get(), 0, PAGE_SIZE);
    }
    return page.get();
}

uint8_t *
Memory::pagePtr(uint32_t addr)
{
    Segment &seg = segmentFor(addr);
    uint32_t slot = (addr >> PAGE_BITS) - seg.firstPage;
    return slotPtr(seg, slot) + (addr & (PAGE_SIZE - 1));
}

uint8_t *
Memory::pagePtrForWrite(uint32_t addr)
{
    Segment &seg = segmentFor(addr);
    uint32_t slot = (addr >> PAGE_BITS) - seg.firstPage;
    if (!seg.dirty[slot]) {
        seg.dirty[slot] = 1;
        dirtyList_.push_back(addr >> PAGE_BITS);
    }
    return slotPtr(seg, slot) + (addr & (PAGE_SIZE - 1));
}

// The read/write helpers share the same shape: alignment always traps;
// an out-of-region access either faults (Strict) or degrades to a
// zero read / dropped write (Lenient).

MemStatus
Memory::read32(uint32_t addr, uint32_t &value)
{
    if (addr & 3)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 4)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    // A 4-byte aligned access never crosses a page boundary.
    std::memcpy(&value, pagePtr(addr), 4);
    return MemStatus::Ok;
}

MemStatus
Memory::read16(uint32_t addr, uint16_t &value)
{
    if (addr & 1)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 2)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    std::memcpy(&value, pagePtr(addr), 2);
    return MemStatus::Ok;
}

MemStatus
Memory::read8(uint32_t addr, uint8_t &value)
{
    if (!inBounds(addr, 1)) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    value = *pagePtr(addr);
    return MemStatus::Ok;
}

MemStatus
Memory::write32(uint32_t addr, uint32_t value)
{
    if (addr & 3)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 4)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    std::memcpy(pagePtrForWrite(addr), &value, 4);
    return MemStatus::Ok;
}

MemStatus
Memory::write16(uint32_t addr, uint16_t value)
{
    if (addr & 1)
        return MemStatus::Misaligned;
    if (!inBounds(addr, 2)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    std::memcpy(pagePtrForWrite(addr), &value, 2);
    return MemStatus::Ok;
}

MemStatus
Memory::write8(uint32_t addr, uint8_t value)
{
    if (!inBounds(addr, 1)) {
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok;
    }
    *pagePtrForWrite(addr) = value;
    return MemStatus::Ok;
}

uint32_t
Memory::hostRead32(uint32_t addr)
{
    if (!inBounds(addr, 4) || (addr & 3))
        panic("hostRead32: bad address 0x", std::hex, addr);
    uint32_t value = 0;
    std::memcpy(&value, pagePtr(addr), 4);
    return value;
}

uint8_t
Memory::hostRead8(uint32_t addr)
{
    if (!inBounds(addr, 1))
        panic("hostRead8: bad address 0x", std::hex, addr);
    return *pagePtr(addr);
}

void
Memory::hostWrite32(uint32_t addr, uint32_t value)
{
    if (!inBounds(addr, 4) || (addr & 3))
        panic("hostWrite32: bad address 0x", std::hex, addr);
    std::memcpy(pagePtrForWrite(addr), &value, 4);
}

void
Memory::hostWrite8(uint32_t addr, uint8_t value)
{
    if (!inBounds(addr, 1))
        panic("hostWrite8: bad address 0x", std::hex, addr);
    *pagePtrForWrite(addr) = value;
}

std::vector<uint8_t>
Memory::hostReadBlock(uint32_t addr, uint32_t len)
{
    std::vector<uint8_t> out(len);
    if (len == 0)
        return out;
    if (!inBounds(addr, len))
        panic("hostReadBlock: bad range 0x", std::hex, addr, "+", len);
    uint32_t offset = 0;
    while (offset < len) {
        uint32_t a = addr + offset;
        uint32_t chunk = std::min(PAGE_SIZE - (a & (PAGE_SIZE - 1)),
                                  len - offset);
        std::memcpy(out.data() + offset, pagePtr(a), chunk);
        offset += chunk;
    }
    return out;
}

void
Memory::hostWriteBlock(uint32_t addr, const std::vector<uint8_t> &bytes)
{
    auto len = static_cast<uint32_t>(bytes.size());
    if (len == 0)
        return;
    if (!inBounds(addr, len))
        panic("hostWriteBlock: bad range 0x", std::hex, addr, "+", len);
    uint32_t offset = 0;
    while (offset < len) {
        uint32_t a = addr + offset;
        uint32_t chunk = std::min(PAGE_SIZE - (a & (PAGE_SIZE - 1)),
                                  len - offset);
        std::memcpy(pagePtrForWrite(a), bytes.data() + offset, chunk);
        offset += chunk;
    }
}

void
Memory::resetDirtyTracking()
{
    for (uint32_t pageNumber : dirtyList_) {
        Segment *seg = segmentForPage(pageNumber);
        seg->dirty[pageNumber - seg->firstPage] = 0;
    }
    dirtyList_.clear();
}

std::vector<uint32_t>
Memory::drainDirtyPages()
{
    std::sort(dirtyList_.begin(), dirtyList_.end());
    for (uint32_t pageNumber : dirtyList_) {
        Segment *seg = segmentForPage(pageNumber);
        seg->dirty[pageNumber - seg->firstPage] = 0;
    }
    std::vector<uint32_t> out;
    out.swap(dirtyList_);
    return out;
}

Memory::Segment *
Memory::segmentForPage(uint32_t pageNumber)
{
    Segment &seg = pageNumber >= stack_.firstPage ? stack_ : data_;
    uint32_t slot = pageNumber - seg.firstPage;
    if (pageNumber < seg.firstPage || slot >= seg.pages.size())
        return nullptr;
    return &seg;
}

const Memory::Segment *
Memory::segmentForPage(uint32_t pageNumber) const
{
    return const_cast<Memory *>(this)->segmentForPage(pageNumber);
}

const uint8_t *
Memory::pageData(uint32_t pageNumber) const
{
    const Segment *seg = segmentForPage(pageNumber);
    if (!seg)
        return nullptr;
    return seg->pages[pageNumber - seg->firstPage].get();
}

void
Memory::setBaseline()
{
    for (Segment *seg : {&data_, &stack_}) {
        seg->baseline.clear();
        seg->baseline.resize(seg->pages.size());
        for (size_t i = 0; i < seg->pages.size(); ++i) {
            if (!seg->pages[i])
                continue;
            auto copy = std::make_unique<uint8_t[]>(PAGE_SIZE);
            std::memcpy(copy.get(), seg->pages[i].get(), PAGE_SIZE);
            seg->baseline[i] = std::move(copy);
        }
    }
    resetDirtyTracking();
    hasBaseline_ = true;
}

size_t
Memory::revertToBaseline(const std::vector<uint32_t> &skip)
{
    if (!hasBaseline_)
        panic("revertToBaseline: no baseline snapshot");
    size_t reverted = 0;
    for (uint32_t pageNumber : dirtyList_) {
        Segment *seg = segmentForPage(pageNumber);
        uint32_t slot = pageNumber - seg->firstPage;
        seg->dirty[slot] = 0;
        if (std::binary_search(skip.begin(), skip.end(), pageNumber))
            continue;
        uint8_t *page = slotPtr(*seg, slot);
        if (seg->baseline[slot])
            std::memcpy(page, seg->baseline[slot].get(), PAGE_SIZE);
        else
            std::memset(page, 0, PAGE_SIZE);
        ++reverted;
    }
    dirtyList_.clear();
    return reverted;
}

void
Memory::setPage(uint32_t pageNumber, const uint8_t *bytes)
{
    Segment *seg = segmentForPage(pageNumber);
    if (!seg)
        panic("setPage: page 0x", std::hex, pageNumber,
              " outside both segments");
    uint32_t slot = pageNumber - seg->firstPage;
    std::memcpy(slotPtr(*seg, slot), bytes, PAGE_SIZE);
    if (!seg->dirty[slot]) {
        seg->dirty[slot] = 1;
        dirtyList_.push_back(pageNumber);
    }
}

} // namespace etc::sim
