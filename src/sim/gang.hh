/**
 * @file
 * Gang interpreter: N fault-injection trials executed in lockstep from
 * one shared checkpoint restore.
 *
 * Every Monte-Carlo trial of a cell replays the same golden
 * instruction stream except for a handful of flipped bits, so the
 * per-trial work of the checkpointed fast path (sim/simulator.hh +
 * fault/campaign.cc) is dominated by re-fetching and re-decoding the
 * very same instructions once per trial. The GangSimulator instead
 * keeps a structure-of-arrays machine state for N trial "lanes" --
 * per-lane register files laid out register-major
 * (regs[reg * stride + lane], so one instruction's reads/writes walk
 * contiguous, vectorizable columns) and per-lane copy-on-write page
 * overlays over the shared restored checkpoint image -- and runs one
 * fetch/decode feeding N executes.
 *
 * Golden-lane aliasing: the gang owns one extra internal lane, the
 * *golden lane* (slot index width()), which replays the unperturbed
 * golden stream. Every trial lane starts as a zero-cost alias of it:
 * until a lane's first bit flip its architectural state is golden by
 * definition, so aliases are not executed at all. A lane materializes
 * (forks registers + the COW page table; O(registers + page-table
 * pointers), no page copies) the first time the campaign asks for its
 * machine proxy -- i.e. right before its first flip. The golden lane
 * retires from the execute set once no aliases remain.
 *
 * Divergence and the active-lane mask: all in-gang lanes share one
 * program counter. After every control-transfer step (and after every
 * pause, since a flip may corrupt a lane's next PC) the gang
 * reconciles: the pack PC is the golden lane's next PC while it is
 * live, afterwards the majority next PC over the active lanes (ties
 * break to the PC of the lowest-index lane holding it). Lanes whose
 * next PC differs are *evicted* with a full state snapshot (registers,
 * divergent PC, overlay pages, output tail, shared instruction /
 * injectable-retire counters). Lanes whose fault manifests without
 * changing control flow (a flipped data register, a corrupted store)
 * simply keep executing in the gang -- that is the common case and the
 * entire speedup.
 *
 * Drain semantics (bit-identity by construction): an evicted lane's
 * snapshot is exactly the architectural state the scalar interpreter
 * would hold at the same retire boundary, because up to that boundary
 * the lane executed the identical instruction sequence with identical
 * per-lane operands under identical memory semantics. The campaign
 * therefore rehydrates a scalar Simulator from the gang's checkpoint
 * plus the lane's overlay pages/registers/output tail and finishes the
 * trial through the ordinary Simulator::runUntilInjectable() site
 * loop. Gang results are bit-identical to the scalar fast path --
 * same statuses, instruction counts, injected counts, and output
 * bytes -- for every gang width, which tests/gang_determinism_test.cc
 * pins across widths x threads x checkpointing x pruning.
 *
 * Non-divergent exits are terminal inside the gang: per-lane faults
 * (memory fault, div-by-zero, output overflow) and gang-wide ends
 * (HALT, fall-off-the-end completion, bad pack jump, budget timeout)
 * produce final RunResults directly, mirroring the scalar
 * interpreter's ordering exactly (bounds check before budget check,
 * the faulting instruction counted, completion dominating a pause).
 *
 * Lifetime: LaneExit::pages points into the gang's page pool and the
 * restored base Memory; both stay valid until the next reset(), so
 * callers must drain exits before starting the next gang.
 */

#ifndef ETC_SIM_GANG_HH
#define ETC_SIM_GANG_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "asm/program.hh"
#include "isa/registers.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"
#include "sim/outcome.hh"
#include "sim/simulator.hh"

namespace etc::sim {

/**
 * Lockstep interpreter over N trial lanes + 1 internal golden lane.
 * reset() + runUntilInjectable() may be called repeatedly; page
 * storage is pooled across gangs.
 */
class GangSimulator
{
  public:
    /** Hard cap on trial lanes per gang. */
    static constexpr unsigned MAX_LANES = 64;

    /** How one lane left the gang. */
    enum class ExitKind : uint8_t
    {
        Finished, //!< run is final (completed / faulted / timed out)
        Diverged, //!< control diverged: drain through the scalar path
    };

    /** Snapshot of a lane at the moment it left the gang. */
    struct LaneExit
    {
        unsigned lane = 0;
        ExitKind kind = ExitKind::Finished;

        /** Final result (Finished exits only). */
        RunResult run;

        /** Architectural state at the divergence boundary (PC = the
         *  lane's own, divergent next PC). Diverged exits only. */
        Machine machine;

        /**
         * Pages where the lane's view differs from the restored base
         * image: (flat page number, PAGE_SIZE bytes), ascending.
         * Pointers are owned by the gang / base memory and valid until
         * the next reset(). Diverged exits only.
         */
        std::vector<std::pair<uint32_t, const uint8_t *>> pages;

        /** Output bytes the lane emitted since the gang started (the
         *  full stream is the checkpoint prefix + this tail). */
        std::vector<uint8_t> outputTail;

        /** Total dynamic instructions at exit (incl. restored prefix). */
        uint64_t instructions = 0;

        /** Total injectable retires at exit (incl. restored prefix). */
        uint64_t injectableRetired = 0;
    };

    /**
     * Machine-shaped proxy for one lane, compatible with
     * fault::flipResultT. `pc` aliases the lane's own next-PC slot, so
     * a control flip marks the lane for divergence reconciliation.
     */
    class LaneMachine
    {
      public:
        uint32_t &pc;

        uint32_t
        readFlat(isa::RegId reg) const
        {
            return gang_.laneReadFlat(lane_, reg);
        }

        void
        writeFlat(isa::RegId reg, uint32_t value)
        {
            gang_.laneWriteFlat(lane_, reg, value);
        }

        /** Integer-register read (flat ids < NUM_INT_REGS). */
        uint32_t
        readInt(isa::RegId reg) const
        {
            return gang_.laneReadFlat(lane_, reg);
        }

      private:
        friend class GangSimulator;
        LaneMachine(GangSimulator &gang, unsigned lane, uint32_t &pcRef)
            : pc(pcRef), gang_(gang), lane_(lane)
        {
        }
        GangSimulator &gang_;
        unsigned lane_;
    };

    /** Memory-shaped proxy for one lane (checked guest accesses over
     *  the lane's COW overlay), compatible with fault::flipResultT. */
    class LaneMemory
    {
      public:
        MemStatus
        read8(uint32_t addr, uint8_t &value)
        {
            return gang_.laneRead(lane_, addr, value);
        }
        MemStatus
        read16(uint32_t addr, uint16_t &value)
        {
            return gang_.laneRead(lane_, addr, value);
        }
        MemStatus
        read32(uint32_t addr, uint32_t &value)
        {
            return gang_.laneRead(lane_, addr, value);
        }
        MemStatus
        write8(uint32_t addr, uint8_t value)
        {
            return gang_.laneWrite(lane_, addr, value);
        }
        MemStatus
        write16(uint32_t addr, uint16_t value)
        {
            return gang_.laneWrite(lane_, addr, value);
        }
        MemStatus
        write32(uint32_t addr, uint32_t value)
        {
            return gang_.laneWrite(lane_, addr, value);
        }

      private:
        friend class GangSimulator;
        LaneMemory(GangSimulator &gang, unsigned lane)
            : gang_(gang), lane_(lane)
        {
        }
        GangSimulator &gang_;
        unsigned lane_;
    };

    /**
     * @param program  the workload program (not owned)
     * @param model    out-of-region memory policy (must match the
     *                 campaign's scalar simulators)
     * @param maxWidth largest lane count reset() will be called with
     *                 (1..MAX_LANES)
     */
    GangSimulator(const assembly::Program &program, MemoryModel model,
                  unsigned maxWidth);

    /**
     * Start a new gang of @p lanes trial lanes from the shared state
     * in @p machine / @p base (a Simulator right after restoreFrom()
     * or fastReset()). All lanes begin as aliases of the golden lane.
     *
     * @param machine           restored architectural state
     * @param base              restored memory image (referenced, not
     *                          copied; must outlive the gang run)
     * @param lanes             trial lanes (1..maxWidth)
     * @param instructions      dynamic instructions already retired
     *                          (the checkpoint's count)
     * @param injectableRetired injectable retires already counted
     * @param outputPrefixLength bytes of golden output already emitted
     */
    void reset(const Machine &machine, const Memory &base,
               unsigned lanes, uint64_t instructions,
               uint64_t injectableRetired, size_t outputPrefixLength);

    /**
     * Run the gang until @p count more injectable instructions retire
     * (0 = no quota), every lane has left the gang, or the shared
     * budget expires. Mirrors Simulator::runUntilInjectable(): on
     * quota the result is Paused with faultPc = the static index of
     * the just-retired injectable instruction and the caller applies
     * flips through the lane proxies; any other status means the gang
     * is drained (all lanes are in takeExits()).
     *
     * @param count           injectable retires before pausing
     * @param injectable      static injectable-instruction byte mask
     * @param maxInstructions total dynamic budget (absolute, like the
     *                        scalar path's; must be nonzero)
     */
    RunResult runUntilInjectable(uint64_t count,
                                 const ByteMask &injectable,
                                 uint64_t maxInstructions);

    /** @return true while @p lane (alias or active) is still executing
     *         in the gang; false once it has an exit record. */
    bool
    laneInGang(unsigned lane) const
    {
        return laneState_[lane] != LaneState::Exited;
    }

    /** @return total injectable retires of the pack stream so far. */
    uint64_t injectableRetired() const { return injectableRetired_; }

    /**
     * Lane proxy for fault::flipResultT. Materializes an aliased lane
     * (its first flip is what makes it diverge from golden). Only
     * valid while the gang is paused and the lane is in the gang.
     */
    LaneMachine laneMachine(unsigned lane);

    /** Memory proxy for fault::flipResultT (materializes too). */
    LaneMemory laneMemory(unsigned lane);

    /** Drain the accumulated exit records (any order of eviction). */
    std::vector<LaneExit>
    takeExits()
    {
        return std::move(exits_);
    }

  private:
    enum class LaneState : uint8_t
    {
        Alias,  //!< identical to golden; not executed
        Active, //!< materialized, executing in the gang
        Exited, //!< has a LaneExit record
    };

    /// @name Per-lane register/PC access (slot = lane or golden slot)
    /// @{
    uint32_t
    reg(unsigned slot, unsigned flatReg) const
    {
        return regs_[flatReg * stride_ + slot];
    }
    uint32_t &
    reg(unsigned slot, unsigned flatReg)
    {
        return regs_[flatReg * stride_ + slot];
    }
    uint32_t laneReadFlat(unsigned lane, isa::RegId r) const;
    void laneWriteFlat(unsigned lane, isa::RegId r, uint32_t value);
    /// @}

    /// @name Per-lane COW memory (mirrors Memory's checked accesses)
    /// @{
    bool
    inBounds(uint32_t addr, uint32_t len) const
    {
        uint64_t end = uint64_t{addr} + len;
        return (addr >= dataBase_ && end <= dataLimit_) ||
               (addr >= stackBase_ && end <= stackLimit_);
    }
    unsigned
    pageIndex(uint32_t addr) const
    {
        uint32_t page = addr >> Memory::PAGE_BITS;
        return addr >= stackBase_
                   ? dataPageCount_ + (page - stackFirstPage_)
                   : page - dataFirstPage_;
    }
    uint32_t
    flatPageNumber(unsigned index) const
    {
        return index < dataPageCount_
                   ? dataFirstPage_ + index
                   : stackFirstPage_ + (index - dataPageCount_);
    }
    uint8_t *pageForWrite(unsigned slot, unsigned index);
    template <typename T>
    MemStatus laneRead(unsigned slot, uint32_t addr, T &value);
    template <typename T>
    MemStatus laneWrite(unsigned slot, uint32_t addr, T value);
    uint8_t *allocPage();
    /// @}

    /** Fork @p lane off the golden lane (registers + page table). */
    void materialize(unsigned lane);

    /** Remove @p slot from the execute set. */
    void removeFromExec(unsigned slot);

    /** Evict @p lane with a divergence snapshot. */
    void evictDiverged(unsigned lane);

    /** Record a terminal result for @p lane and drop it. */
    void exitFinished(unsigned lane, RunStatus status, uint32_t faultPc);

    /** Terminal result for every lane still in the gang (incl. aliases). */
    void finishAll(RunStatus status, uint32_t faultPc);

    /** Settle per-lane next PCs: pick the pack PC, evict the rest. */
    void reconcile();

    /** Retire the golden lane once no aliases remain. */
    void maybeDropGolden();

    /** Execute one instruction on every execute-set slot.
     *  @return true if the program halted (gang fully drained). */
    bool executeStep(const isa::Instruction &ins, uint32_t thisPc);

    const assembly::Program &program_;
    MemoryModel model_;
    unsigned width_;  //!< max trial lanes; golden slot index
    unsigned stride_; //!< width_ + 1 (register-major column stride)
    unsigned lanes_ = 0;

    /// @name Segment geometry (copied from the base Memory at reset)
    /// @{
    uint32_t dataBase_ = 0, dataLimit_ = 0;
    uint32_t stackBase_ = 0, stackLimit_ = 0;
    uint32_t dataFirstPage_ = 0, stackFirstPage_ = 0;
    unsigned dataPageCount_ = 0, pageCount_ = 0;
    /// @}

    /** Register columns: regs_[reg * stride_ + slot], flat reg ids. */
    std::vector<uint32_t> regs_;

    /** Per-slot next PC; authoritative after control steps/flips. */
    std::vector<uint32_t> lanePc_;

    /** Shared pack PC (all in-gang lanes, between control steps). */
    uint32_t pc_ = 0;

    /** Base image page pointers (nullptr = zero page), flat index. */
    std::vector<const uint8_t *> baseTable_;

    /** Per-slot page tables: tables_[slot * pageCount_ + index]. */
    std::vector<uint8_t *> tables_;

    /** 1 = slot exclusively owns the page (in-place writes allowed). */
    std::vector<uint8_t> own_;

    /** COW page pool (reused across gangs). */
    std::vector<std::unique_ptr<uint8_t[]>> pageStorage_;
    std::vector<uint8_t *> freePages_;

    /** Per-slot output tails (bytes since the gang started). */
    std::vector<std::vector<uint8_t>> outputs_;
    size_t outputPrefix_ = 0;

    std::vector<LaneState> laneState_;
    std::vector<uint8_t> execList_; //!< ascending slots; golden last
    bool goldenLive_ = false;
    unsigned aliasCount_ = 0;

    uint64_t instructions_ = 0;
    uint64_t injectableRetired_ = 0;

    /// @name Pause bookkeeping (see reconcile())
    /// @{
    bool pausePending_ = false;    //!< flips may have perturbed PCs
    bool lastStepControl_ = false; //!< paused step was a control xfer
    std::vector<uint8_t> touched_; //!< lanes given a machine proxy
    /// @}

    std::vector<LaneExit> exits_;
};

} // namespace etc::sim

#endif // ETC_SIM_GANG_HH
