/**
 * @file
 * Sparse byte-addressed memory with two fault models.
 *
 * Two regions are backed: the static data segment (plus a heap slack
 * area after it) and the stack. Misaligned word/halfword accesses
 * always trap (MIPS semantics -- one of the realistic crash vectors
 * for corrupted address arithmetic). Out-of-region accesses depend on
 * the model:
 *
 *  - MemoryModel::Lenient (default): reads return 0 and writes are
 *    dropped, like SimpleScalar's zero-filled functional memory on
 *    which the paper ran. Corrupted data addresses then produce
 *    garbage *data*, not crashes -- the behaviour behind the paper's
 *    near-zero with-protection failure rates.
 *  - MemoryModel::Strict: out-of-region accesses fault. Our ablation
 *    for a bounds-checking (MMU-enforcing) platform.
 */

#ifndef ETC_SIM_MEMORY_HH
#define ETC_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asm/program.hh"

namespace etc::sim {

/** Result of a guest memory access. */
enum class MemStatus : uint8_t
{
    Ok,
    OutOfBounds,
    Misaligned,
};

/** Out-of-region access policy. */
enum class MemoryModel : uint8_t
{
    Lenient, //!< zero-filled reads, dropped writes (SimpleScalar-like)
    Strict,  //!< out-of-region accesses fault
};

/**
 * Paged sparse memory with two backed segments (data + stack).
 */
class Memory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    /** Extra valid bytes past the static data (acts as a small heap). */
    static constexpr uint32_t HEAP_SLACK = 1u << 20;

    /**
     * @param dataBase  first valid data address
     * @param dataLimit one past the last initialized data byte
     * @param model     out-of-region access policy
     */
    Memory(uint32_t dataBase, uint32_t dataLimit,
           MemoryModel model = MemoryModel::Lenient);

    /** @return the active out-of-region policy. */
    MemoryModel model() const { return model_; }

    /** Load a program's initial data segment. */
    void loadData(const std::vector<assembly::DataChunk> &chunks);

    /** Drop all contents (pages are freed). */
    void clear();

    /// @name Guest accesses (bounds- and alignment-checked)
    /// @{
    MemStatus read32(uint32_t addr, uint32_t &value);
    MemStatus read16(uint32_t addr, uint16_t &value);
    MemStatus read8(uint32_t addr, uint8_t &value);
    MemStatus write32(uint32_t addr, uint32_t value);
    MemStatus write16(uint32_t addr, uint16_t value);
    MemStatus write8(uint32_t addr, uint8_t value);
    /// @}

    /// @name Host accesses (for harness setup/extraction; panic on OOB)
    /// @{
    uint32_t hostRead32(uint32_t addr);
    uint8_t hostRead8(uint32_t addr);
    void hostWrite32(uint32_t addr, uint32_t value);
    void hostWrite8(uint32_t addr, uint8_t value);
    std::vector<uint8_t> hostReadBlock(uint32_t addr, uint32_t len);
    void hostWriteBlock(uint32_t addr, const std::vector<uint8_t> &bytes);
    /// @}

    /** @return true if [addr, addr+len) lies entirely in a valid segment. */
    bool inBounds(uint32_t addr, uint32_t len) const;

  private:
    uint8_t *pagePtr(uint32_t addr);

    MemoryModel model_;
    uint32_t dataBase_;
    uint32_t dataLimit_; //!< end of valid data region (incl. heap slack)
    uint32_t stackBase_;
    uint32_t stackLimit_;
    std::unordered_map<uint32_t, std::unique_ptr<uint8_t[]>> pages_;
};

} // namespace etc::sim

#endif // ETC_SIM_MEMORY_HH
