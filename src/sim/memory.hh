/**
 * @file
 * Sparse byte-addressed memory with two fault models.
 *
 * Two regions are backed: the static data segment (plus a heap slack
 * area after it) and the stack. Misaligned word/halfword accesses
 * always trap (MIPS semantics -- one of the realistic crash vectors
 * for corrupted address arithmetic). Out-of-region accesses depend on
 * the model:
 *
 *  - MemoryModel::Lenient (default): reads return 0 and writes are
 *    dropped, like SimpleScalar's zero-filled functional memory on
 *    which the paper ran. Corrupted data addresses then produce
 *    garbage *data*, not crashes -- the behaviour behind the paper's
 *    near-zero with-protection failure rates.
 *  - MemoryModel::Strict: out-of-region accesses fault. Our ablation
 *    for a bounds-checking (MMU-enforcing) platform.
 *
 * Pages live in a flat two-level table: each of the two segments owns
 * a dense vector of lazily allocated page slots, so a guest access is
 * one compare (which segment) plus one array index, and a whole-memory
 * walk (clear, checkpoint snapshot/restore) is a linear scan. clear()
 * zeroes and *reuses* allocated pages instead of freeing them, so the
 * per-trial reset of a Monte-Carlo campaign does no allocator work.
 *
 * For checkpointing, the table tracks which pages have been written
 * since the last drainDirtyPages() call; CheckpointStore turns those
 * into page-granular deltas between checkpoints.
 */

#ifndef ETC_SIM_MEMORY_HH
#define ETC_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "asm/program.hh"

namespace etc::sim {

/** Result of a guest memory access. */
enum class MemStatus : uint8_t
{
    Ok,
    OutOfBounds,
    Misaligned,
};

/** Out-of-region access policy. */
enum class MemoryModel : uint8_t
{
    Lenient, //!< zero-filled reads, dropped writes (SimpleScalar-like)
    Strict,  //!< out-of-region accesses fault
};

/**
 * Paged sparse memory with two backed segments (data + stack).
 */
class Memory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    /** Extra valid bytes past the static data (acts as a small heap). */
    static constexpr uint32_t HEAP_SLACK = 1u << 20;

    /**
     * @param dataBase  first valid data address
     * @param dataLimit one past the last initialized data byte
     * @param model     out-of-region access policy
     */
    Memory(uint32_t dataBase, uint32_t dataLimit,
           MemoryModel model = MemoryModel::Lenient);

    /** @return the active out-of-region policy. */
    MemoryModel model() const { return model_; }

    /** Load a program's initial data segment. */
    void loadData(const std::vector<assembly::DataChunk> &chunks);

    /** Zero all contents (allocated pages are kept and reused). Any
     *  baseline snapshot is dropped: the zeroed state no longer
     *  matches it, so a later revert must re-establish one. */
    void clear();

    /// @name Guest accesses (bounds- and alignment-checked)
    /// @{
    MemStatus read32(uint32_t addr, uint32_t &value);
    MemStatus read16(uint32_t addr, uint16_t &value);
    MemStatus read8(uint32_t addr, uint8_t &value);
    MemStatus write32(uint32_t addr, uint32_t value);
    MemStatus write16(uint32_t addr, uint16_t value);
    MemStatus write8(uint32_t addr, uint8_t value);
    /// @}

    /// @name Host accesses (for harness setup/extraction; panic on OOB)
    /// @{
    uint32_t hostRead32(uint32_t addr);
    uint8_t hostRead8(uint32_t addr);
    void hostWrite32(uint32_t addr, uint32_t value);
    void hostWrite8(uint32_t addr, uint8_t value);
    std::vector<uint8_t> hostReadBlock(uint32_t addr, uint32_t len);
    void hostWriteBlock(uint32_t addr, const std::vector<uint8_t> &bytes);
    /// @}

    /// @name Page-level snapshot interface (checkpointing)
    /// @{
    /**
     * Forget all dirty-page records: the current contents become the
     * snapshot baseline. Call after the initial data load, before the
     * profiled run whose deltas a CheckpointStore captures.
     */
    void resetDirtyTracking();

    /**
     * @return the flat page numbers (addr >> PAGE_BITS) written since
     *         the last drain (or resetDirtyTracking), ascending. The
     *         records are cleared.
     */
    std::vector<uint32_t> drainDirtyPages();

    /**
     * @return a read-only view of one whole page, or nullptr if the
     *         page was never touched (reads as zeroes) or lies outside
     *         both segments.
     */
    const uint8_t *pageData(uint32_t pageNumber) const;

    /** Overwrite one whole page (PAGE_SIZE bytes; panics if outside
     *  both segments). Used to restore checkpoint snapshots. */
    void setPage(uint32_t pageNumber, const uint8_t *bytes);

    /**
     * Snapshot the current contents as the revert target and clear the
     * dirty records. Campaign trials snapshot the post-reset image
     * once, then rewind with revertToBaseline() instead of a full
     * clear()+reload.
     */
    void setBaseline();

    /** @return true once setBaseline() has been called. */
    bool hasBaseline() const { return hasBaseline_; }

    /**
     * Rewind every page written since the last revert (or
     * setBaseline()) to its baseline contents -- O(pages actually
     * touched), the fast per-trial reset. Pages listed in @p skip
     * (sorted flat page numbers) are left as-is and their dirty flags
     * cleared; callers pass the pages they are about to overwrite
     * anyway (checkpoint restore). Panics without a baseline.
     *
     * @return the number of pages actually copied/zeroed back (dirty
     *         and not skipped) -- telemetry only.
     */
    size_t revertToBaseline(const std::vector<uint32_t> &skip = {});
    /// @}

    /** @return true if [addr, addr+len) lies entirely in a valid segment. */
    bool inBounds(uint32_t addr, uint32_t len) const;

    /// @name Segment geometry (gang lanes mirror the bounds checks)
    /// @{
    uint32_t dataBase() const { return dataBase_; }
    uint32_t dataLimit() const { return dataLimit_; }
    uint32_t stackBase() const { return stackBase_; }
    uint32_t stackLimit() const { return stackLimit_; }
    /// @}

  private:
    /** One segment's dense page-slot array (second table level). */
    struct Segment
    {
        uint32_t firstPage = 0; //!< flat page number of the first slot
        std::vector<std::unique_ptr<uint8_t[]>> pages;
        std::vector<uint8_t> dirty; //!< parallel to pages
        std::vector<std::unique_ptr<uint8_t[]>> baseline; //!< revert image
    };

    void initSegment(Segment &seg, uint32_t base, uint32_t limit);

    /** @return the segment backing in-bounds address @p addr. */
    Segment &
    segmentFor(uint32_t addr)
    {
        return addr >= stackBase_ ? stack_ : data_;
    }

    Segment *segmentForPage(uint32_t pageNumber);
    const Segment *segmentForPage(uint32_t pageNumber) const;

    uint8_t *slotPtr(Segment &seg, uint32_t slot);
    uint8_t *pagePtr(uint32_t addr);
    uint8_t *pagePtrForWrite(uint32_t addr);

    MemoryModel model_;
    uint32_t dataBase_;
    uint32_t dataLimit_; //!< end of valid data region (incl. heap slack)
    uint32_t stackBase_;
    uint32_t stackLimit_;
    Segment data_;
    Segment stack_;
    std::vector<uint32_t> dirtyList_; //!< flat page numbers, unsorted
    bool hasBaseline_ = false;
};

} // namespace etc::sim

#endif // ETC_SIM_MEMORY_HH
