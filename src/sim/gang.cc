#include "sim/gang.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/logging.hh"

namespace etc::sim {

using namespace isa;

GangSimulator::GangSimulator(const assembly::Program &program,
                             MemoryModel model, unsigned maxWidth)
    : program_(program), model_(model), width_(maxWidth),
      stride_(maxWidth + 1)
{
    if (maxWidth == 0 || maxWidth > MAX_LANES)
        panic("GangSimulator: bad width ", maxWidth);
    regs_.assign(size_t{NUM_REGS} * stride_, 0);
    lanePc_.assign(stride_, 0);
    outputs_.resize(stride_);
    laneState_.assign(width_, LaneState::Exited);
    execList_.reserve(stride_);
    touched_.reserve(width_);
}

void
GangSimulator::reset(const Machine &machine, const Memory &base,
                     unsigned lanes, uint64_t instructions,
                     uint64_t injectableRetired,
                     size_t outputPrefixLength)
{
    if (lanes == 0 || lanes > width_)
        panic("GangSimulator: bad lane count ", lanes, " (width ",
              width_, ")");
    lanes_ = lanes;

    dataBase_ = base.dataBase();
    dataLimit_ = base.dataLimit();
    stackBase_ = base.stackBase();
    stackLimit_ = base.stackLimit();
    dataFirstPage_ = dataBase_ >> Memory::PAGE_BITS;
    stackFirstPage_ = stackBase_ >> Memory::PAGE_BITS;
    dataPageCount_ = ((dataLimit_ - 1) >> Memory::PAGE_BITS) -
                     dataFirstPage_ + 1;
    unsigned stackPageCount = ((stackLimit_ - 1) >> Memory::PAGE_BITS) -
                              stackFirstPage_ + 1;
    pageCount_ = dataPageCount_ + stackPageCount;

    baseTable_.resize(pageCount_);
    for (unsigned i = 0; i < pageCount_; ++i)
        baseTable_[i] = base.pageData(flatPageNumber(i));

    // Only the golden slot's table is built here; trial lanes get
    // theirs lazily when they materialize.
    tables_.assign(size_t{stride_} * pageCount_, nullptr);
    own_.assign(size_t{stride_} * pageCount_, 0);
    freePages_.clear();
    freePages_.reserve(pageStorage_.size());
    for (auto &page : pageStorage_)
        freePages_.push_back(page.get());

    const unsigned g = width_;
    for (unsigned r = 0; r < NUM_REGS; ++r)
        reg(g, r) = machine.readFlat(static_cast<RegId>(r));
    lanePc_[g] = machine.pc;
    // Base pages are never written through the table (writes go
    // through pageForWrite, which clones un-owned pages first).
    for (unsigned i = 0; i < pageCount_; ++i)
        tables_[size_t{g} * pageCount_ + i] =
            const_cast<uint8_t *>(baseTable_[i]);
    for (auto &out : outputs_)
        out.clear();

    laneState_.assign(width_, LaneState::Exited);
    for (unsigned l = 0; l < lanes_; ++l)
        laneState_[l] = LaneState::Alias;
    aliasCount_ = lanes_;
    goldenLive_ = true;
    execList_.clear();
    execList_.push_back(static_cast<uint8_t>(g));

    pc_ = machine.pc;
    instructions_ = instructions;
    injectableRetired_ = injectableRetired;
    outputPrefix_ = outputPrefixLength;
    pausePending_ = false;
    lastStepControl_ = false;
    touched_.clear();
    exits_.clear();
}

uint8_t *
GangSimulator::allocPage()
{
    if (freePages_.empty()) {
        pageStorage_.push_back(
            std::make_unique<uint8_t[]>(Memory::PAGE_SIZE));
        freePages_.push_back(pageStorage_.back().get());
    }
    uint8_t *page = freePages_.back();
    freePages_.pop_back();
    return page;
}

uint8_t *
GangSimulator::pageForWrite(unsigned slot, unsigned index)
{
    size_t at = size_t{slot} * pageCount_ + index;
    if (!own_[at]) {
        uint8_t *fresh = allocPage();
        if (tables_[at])
            std::memcpy(fresh, tables_[at], Memory::PAGE_SIZE);
        else
            std::memset(fresh, 0, Memory::PAGE_SIZE);
        tables_[at] = fresh;
        own_[at] = 1;
    }
    return tables_[at];
}

template <typename T>
MemStatus
GangSimulator::laneRead(unsigned slot, uint32_t addr, T &value)
{
    // Mirrors Memory::readN exactly: alignment first, then bounds
    // (lenient out-of-region reads yield 0), then the page walk.
    if (sizeof(T) > 1 && (addr & (sizeof(T) - 1)))
        return MemStatus::Misaligned;
    if (!inBounds(addr, sizeof(T))) {
        if (model_ == MemoryModel::Strict)
            return MemStatus::OutOfBounds;
        value = 0;
        return MemStatus::Ok;
    }
    const uint8_t *page =
        tables_[size_t{slot} * pageCount_ + pageIndex(addr)];
    if (page)
        std::memcpy(&value, page + (addr & (Memory::PAGE_SIZE - 1)),
                    sizeof(T));
    else
        value = 0; // untouched page reads as zeroes
    return MemStatus::Ok;
}

template <typename T>
MemStatus
GangSimulator::laneWrite(unsigned slot, uint32_t addr, T value)
{
    if (sizeof(T) > 1 && (addr & (sizeof(T) - 1)))
        return MemStatus::Misaligned;
    if (!inBounds(addr, sizeof(T)))
        return model_ == MemoryModel::Strict ? MemStatus::OutOfBounds
                                             : MemStatus::Ok; // dropped
    uint8_t *page = pageForWrite(slot, pageIndex(addr));
    std::memcpy(page + (addr & (Memory::PAGE_SIZE - 1)), &value,
                sizeof(T));
    return MemStatus::Ok;
}

// The lane proxies (used from fault/campaign.cc via flipResultT) need
// out-of-line copies of the access templates.
template MemStatus GangSimulator::laneRead<uint8_t>(unsigned, uint32_t,
                                                    uint8_t &);
template MemStatus GangSimulator::laneRead<uint16_t>(unsigned, uint32_t,
                                                     uint16_t &);
template MemStatus GangSimulator::laneRead<uint32_t>(unsigned, uint32_t,
                                                     uint32_t &);
template MemStatus GangSimulator::laneWrite<uint8_t>(unsigned, uint32_t,
                                                     uint8_t);
template MemStatus GangSimulator::laneWrite<uint16_t>(unsigned, uint32_t,
                                                      uint16_t);
template MemStatus GangSimulator::laneWrite<uint32_t>(unsigned, uint32_t,
                                                      uint32_t);

uint32_t
GangSimulator::laneReadFlat(unsigned lane, RegId r) const
{
    // Storage is already flat (fcc at FP_FLAG_REG holds 0/1, $zero
    // holds 0 by the write guards), so this is one indexed load.
    return reg(lane, r);
}

void
GangSimulator::laneWriteFlat(unsigned lane, RegId r, uint32_t value)
{
    // Mirrors Machine::writeFlat: $zero writes are discarded, the FP
    // flag keeps only bit 0.
    if (isIntReg(r)) {
        if (r != REG_ZERO)
            reg(lane, r) = value;
    } else if (isFpReg(r)) {
        reg(lane, r) = value;
    } else {
        reg(lane, r) = value & 1;
    }
}

void
GangSimulator::materialize(unsigned lane)
{
    const unsigned g = width_;
    for (unsigned r = 0; r < NUM_REGS; ++r)
        reg(lane, r) = reg(g, r);
    // The lane's next PC is the pack's: after a control step that is
    // golden's computed target, otherwise the shared advanced PC.
    lanePc_[lane] = lastStepControl_ ? lanePc_[g] : pc_;
    // Fork the page table: every page becomes shared, so ownership
    // clears on BOTH sides (the next writer clones again).
    std::memcpy(&tables_[size_t{lane} * pageCount_],
                &tables_[size_t{g} * pageCount_],
                size_t{pageCount_} * sizeof(uint8_t *));
    std::memset(&own_[size_t{lane} * pageCount_], 0, pageCount_);
    std::memset(&own_[size_t{g} * pageCount_], 0, pageCount_);
    outputs_[lane] = outputs_[g];
    laneState_[lane] = LaneState::Active;
    execList_.insert(std::lower_bound(execList_.begin(), execList_.end(),
                                      static_cast<uint8_t>(lane)),
                     static_cast<uint8_t>(lane));
    --aliasCount_;
}

GangSimulator::LaneMachine
GangSimulator::laneMachine(unsigned lane)
{
    if (lane >= lanes_ || laneState_[lane] == LaneState::Exited)
        panic("GangSimulator::laneMachine: lane ", lane,
              " not in gang");
    if (laneState_[lane] == LaneState::Alias)
        materialize(lane);
    else if (!lastStepControl_)
        lanePc_[lane] = pc_; // refresh the (stale) per-lane slot
    touched_.push_back(static_cast<uint8_t>(lane));
    return LaneMachine(*this, lane, lanePc_[lane]);
}

GangSimulator::LaneMemory
GangSimulator::laneMemory(unsigned lane)
{
    if (lane >= lanes_ || laneState_[lane] == LaneState::Exited)
        panic("GangSimulator::laneMemory: lane ", lane, " not in gang");
    if (laneState_[lane] == LaneState::Alias)
        materialize(lane);
    return LaneMemory(*this, lane);
}

void
GangSimulator::removeFromExec(unsigned slot)
{
    execList_.erase(std::find(execList_.begin(), execList_.end(),
                              static_cast<uint8_t>(slot)));
}

void
GangSimulator::evictDiverged(unsigned lane)
{
    LaneExit exit;
    exit.lane = lane;
    exit.kind = ExitKind::Diverged;
    for (unsigned r = 0; r < NUM_REGS; ++r)
        exit.machine.writeFlat(static_cast<RegId>(r), reg(lane, r));
    exit.machine.pc = lanePc_[lane];
    for (unsigned i = 0; i < pageCount_; ++i) {
        const uint8_t *page = tables_[size_t{lane} * pageCount_ + i];
        if (page != baseTable_[i])
            exit.pages.emplace_back(flatPageNumber(i), page);
    }
    exit.outputTail = std::move(outputs_[lane]);
    exit.instructions = instructions_;
    exit.injectableRetired = injectableRetired_;
    exits_.push_back(std::move(exit));
    laneState_[lane] = LaneState::Exited;
    removeFromExec(lane);
}

void
GangSimulator::exitFinished(unsigned lane, RunStatus status,
                            uint32_t faultPc)
{
    bool wasAlias = laneState_[lane] == LaneState::Alias;
    LaneExit exit;
    exit.lane = lane;
    exit.kind = ExitKind::Finished;
    exit.run.status = status;
    exit.run.instructions = instructions_;
    exit.run.faultPc = faultPc;
    if (status == RunStatus::Completed)
        exit.outputTail = wasAlias ? outputs_[width_]
                                   : std::move(outputs_[lane]);
    exit.instructions = instructions_;
    exit.injectableRetired = injectableRetired_;
    exits_.push_back(std::move(exit));
    laneState_[lane] = LaneState::Exited;
    if (wasAlias)
        --aliasCount_;
    else
        removeFromExec(lane);
}

void
GangSimulator::finishAll(RunStatus status, uint32_t faultPc)
{
    for (unsigned l = 0; l < lanes_; ++l)
        if (laneState_[l] != LaneState::Exited)
            exitFinished(l, status, faultPc);
    goldenLive_ = false;
    execList_.clear();
}

void
GangSimulator::maybeDropGolden()
{
    if (goldenLive_ && aliasCount_ == 0) {
        goldenLive_ = false;
        removeFromExec(width_);
    }
}

void
GangSimulator::reconcile()
{
    uint32_t pack;
    if (goldenLive_) {
        // While golden rides along (aliases exist), the pack follows
        // the golden path by definition.
        pack = lanePc_[width_];
    } else {
        // Fast path: everyone agrees (the overwhelmingly common case).
        bool any = false, uniform = true;
        uint32_t first = 0;
        for (unsigned l = 0; l < lanes_; ++l) {
            if (laneState_[l] != LaneState::Active)
                continue;
            if (!any) {
                first = lanePc_[l];
                any = true;
            } else if (lanePc_[l] != first) {
                uniform = false;
                break;
            }
        }
        if (!any)
            return;
        if (uniform) {
            pc_ = first;
            return;
        }
        // Majority next PC; ties break to the PC first seen scanning
        // lanes in ascending index order (deterministic regardless of
        // materialization order).
        pack = first;
        unsigned best = 0;
        for (unsigned l = 0; l < lanes_; ++l) {
            if (laneState_[l] != LaneState::Active)
                continue;
            unsigned votes = 0;
            for (unsigned m = 0; m < lanes_; ++m)
                if (laneState_[m] == LaneState::Active &&
                    lanePc_[m] == lanePc_[l])
                    ++votes;
            if (votes > best) {
                best = votes;
                pack = lanePc_[l];
            }
        }
    }
    for (unsigned l = 0; l < lanes_; ++l)
        if (laneState_[l] == LaneState::Active && lanePc_[l] != pack)
            evictDiverged(l);
    pc_ = pack;
}

bool
GangSimulator::executeStep(const Instruction &ins, uint32_t thisPc)
{
    // Two execution regimes:
    //
    //  * DENSE ops (plain ALU, FP arithmetic, branches, jumps, reg
    //    moves) cannot fault and touch only register columns / next-PC
    //    slots, so they compute over ALL stride_ columns
    //    unconditionally -- branch-free, contiguous, vectorizable.
    //    Dead columns (aliases, exited lanes, a retired golden) get
    //    garbage, which is harmless: materialize() rewrites an alias's
    //    whole column from golden, and exited lanes were snapshotted
    //    at exit. This is what makes a gang step cheaper than N scalar
    //    steps rather than merely batched.
    //
    //  * GATED ops (div/rem, loads/stores, output) can fault or have
    //    per-lane memory/stream side effects, so they run only over
    //    the execute set.
    const unsigned n = static_cast<unsigned>(execList_.size());
    const uint8_t *slots = execList_.data();
    const unsigned all = stride_;
    const uint32_t fall = thisPc + 1;
    uint32_t *pcs = lanePc_.data();
    const uint32_t imm = static_cast<uint32_t>(ins.imm);

    // Register rows are always valid to form (unused operand fields
    // are zero, i.e. $zero's row).
    uint32_t *d = &regs_[size_t{ins.rd} * stride_];
    const uint32_t *a = &regs_[size_t{ins.rs} * stride_];
    const uint32_t *b = &regs_[size_t{ins.rt} * stride_];

    // Faults are recorded during the slot loops and processed after
    // them (evicting mid-loop would edit execList_ under iteration).
    uint8_t faultSlot[MAX_LANES + 1];
    RunStatus faultKind[MAX_LANES + 1];
    unsigned faults = 0;
    auto faultLane = [&](unsigned slot, RunStatus status) {
        faultSlot[faults] = static_cast<uint8_t>(slot);
        faultKind[faults] = status;
        ++faults;
    };

    // Memory ops: lanes almost always agree on the address (a flip
    // rarely lands in an address register), so hoist the alignment /
    // bounds / page-index work out of the lane loop when they do. Any
    // lane disagreeing -- or a uniform address that faults -- drops to
    // the per-lane laneRead/laneWrite path, which reproduces scalar
    // fault semantics exactly.
    auto gatedLoad = [&](auto zero, auto &&writeback) {
        using T = decltype(zero);
        const uint32_t addr0 = a[slots[0]] + imm;
        bool uniform = true;
        for (unsigned i = 1; i < n; ++i)
            uniform &= (a[slots[i]] + imm) == addr0;
        if (uniform && !(sizeof(T) > 1 && (addr0 & (sizeof(T) - 1))) &&
            inBounds(addr0, sizeof(T))) {
            const size_t index = pageIndex(addr0);
            const uint32_t off = addr0 & (Memory::PAGE_SIZE - 1);
            for (unsigned i = 0; i < n; ++i) {
                unsigned s = slots[i];
                const uint8_t *page =
                    tables_[size_t{s} * pageCount_ + index];
                T value{};
                if (page)
                    std::memcpy(&value, page + off, sizeof(T));
                writeback(s, value);
            }
            return;
        }
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            T value{};
            if (laneRead(s, a[s] + imm, value) != MemStatus::Ok) {
                faultLane(s, RunStatus::MemoryFault);
                continue;
            }
            writeback(s, value);
        }
    };
    auto gatedStore = [&](auto narrow) {
        using T = decltype(narrow(uint32_t{}));
        const uint32_t addr0 = a[slots[0]] + imm;
        bool uniform = true;
        for (unsigned i = 1; i < n; ++i)
            uniform &= (a[slots[i]] + imm) == addr0;
        if (uniform && !(sizeof(T) > 1 && (addr0 & (sizeof(T) - 1))) &&
            inBounds(addr0, sizeof(T))) {
            const size_t index = pageIndex(addr0);
            const uint32_t off = addr0 & (Memory::PAGE_SIZE - 1);
            for (unsigned i = 0; i < n; ++i) {
                unsigned s = slots[i];
                uint8_t *page = pageForWrite(s, index);
                T value = narrow(d[s]);
                std::memcpy(page + off, &value, sizeof(T));
            }
            return;
        }
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            if (laneWrite(s, a[s] + imm, narrow(d[s])) != MemStatus::Ok)
                faultLane(s, RunStatus::MemoryFault);
        }
    };

// Dense register write: every column, with the $zero discard hoisted
// out of the loop ($zero as rd skips the whole op -- ALU ops have no
// other architectural effect, exactly like Machine::writeInt).
#define ETC_GANG_DENSE(expr)                                          \
    do {                                                              \
        if (ins.rd != REG_ZERO)                                       \
            for (unsigned s = 0; s < all; ++s)                        \
                d[s] = (expr);                                        \
    } while (0)

// Dense float helpers (columns hold raw bits).
#define ETC_GANG_F(x) std::bit_cast<float>(x)
#define ETC_GANG_BITS(x) std::bit_cast<uint32_t>(x)

    switch (ins.op) {
      case Opcode::ADD: ETC_GANG_DENSE(a[s] + b[s]); break;
      case Opcode::SUB: ETC_GANG_DENSE(a[s] - b[s]); break;
      case Opcode::MUL: ETC_GANG_DENSE(a[s] * b[s]); break;
      case Opcode::DIV:
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            auto den = static_cast<int32_t>(b[s]);
            if (den == 0) {
                faultLane(s, RunStatus::DivByZero);
                continue;
            }
            auto num = static_cast<int32_t>(a[s]);
            if (ins.rd == REG_ZERO)
                continue;
            if (num == std::numeric_limits<int32_t>::min() && den == -1)
                d[s] = static_cast<uint32_t>(num);
            else
                d[s] = static_cast<uint32_t>(num / den);
        }
        break;
      case Opcode::REM:
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            auto den = static_cast<int32_t>(b[s]);
            if (den == 0) {
                faultLane(s, RunStatus::DivByZero);
                continue;
            }
            auto num = static_cast<int32_t>(a[s]);
            if (ins.rd == REG_ZERO)
                continue;
            if (num == std::numeric_limits<int32_t>::min() && den == -1)
                d[s] = 0;
            else
                d[s] = static_cast<uint32_t>(num % den);
        }
        break;
      case Opcode::AND: ETC_GANG_DENSE(a[s] & b[s]); break;
      case Opcode::OR: ETC_GANG_DENSE(a[s] | b[s]); break;
      case Opcode::XOR: ETC_GANG_DENSE(a[s] ^ b[s]); break;
      case Opcode::NOR: ETC_GANG_DENSE(~(a[s] | b[s])); break;
      case Opcode::SLT:
        ETC_GANG_DENSE(static_cast<int32_t>(a[s]) <
                               static_cast<int32_t>(b[s])
                           ? 1
                           : 0);
        break;
      case Opcode::SLTU: ETC_GANG_DENSE(a[s] < b[s] ? 1 : 0); break;
      case Opcode::SLLV: ETC_GANG_DENSE(a[s] << (b[s] & 31)); break;
      case Opcode::SRLV: ETC_GANG_DENSE(a[s] >> (b[s] & 31)); break;
      case Opcode::SRAV:
        ETC_GANG_DENSE(static_cast<uint32_t>(
            static_cast<int32_t>(a[s]) >> (b[s] & 31)));
        break;
      case Opcode::ADDI: ETC_GANG_DENSE(a[s] + imm); break;
      case Opcode::ANDI: ETC_GANG_DENSE(a[s] & imm); break;
      case Opcode::ORI: ETC_GANG_DENSE(a[s] | imm); break;
      case Opcode::XORI: ETC_GANG_DENSE(a[s] ^ imm); break;
      case Opcode::SLTI:
        ETC_GANG_DENSE(static_cast<int32_t>(a[s]) < ins.imm ? 1 : 0);
        break;
      case Opcode::SLTIU: ETC_GANG_DENSE(a[s] < imm ? 1 : 0); break;
      case Opcode::SLL: ETC_GANG_DENSE(a[s] << (ins.imm & 31)); break;
      case Opcode::SRL: ETC_GANG_DENSE(a[s] >> (ins.imm & 31)); break;
      case Opcode::SRA:
        ETC_GANG_DENSE(static_cast<uint32_t>(
            static_cast<int32_t>(a[s]) >> (ins.imm & 31)));
        break;
      case Opcode::LUI: ETC_GANG_DENSE(imm << 16); break;

      case Opcode::LW:
        gatedLoad(uint32_t{}, [&](unsigned s, uint32_t value) {
            if (ins.rd != REG_ZERO)
                d[s] = value;
        });
        break;
      case Opcode::LH:
        gatedLoad(uint16_t{}, [&](unsigned s, uint16_t value) {
            if (ins.rd != REG_ZERO)
                d[s] = static_cast<uint32_t>(static_cast<int32_t>(
                    static_cast<int16_t>(value)));
        });
        break;
      case Opcode::LHU:
        gatedLoad(uint16_t{}, [&](unsigned s, uint16_t value) {
            if (ins.rd != REG_ZERO)
                d[s] = value;
        });
        break;
      case Opcode::LB:
        gatedLoad(uint8_t{}, [&](unsigned s, uint8_t value) {
            if (ins.rd != REG_ZERO)
                d[s] = static_cast<uint32_t>(static_cast<int32_t>(
                    static_cast<int8_t>(value)));
        });
        break;
      case Opcode::LBU:
        gatedLoad(uint8_t{}, [&](unsigned s, uint8_t value) {
            if (ins.rd != REG_ZERO)
                d[s] = value;
        });
        break;
      case Opcode::SW:
        gatedStore([](uint32_t v) { return v; });
        break;
      case Opcode::SH:
        gatedStore([](uint32_t v) { return static_cast<uint16_t>(v); });
        break;
      case Opcode::SB:
        gatedStore([](uint32_t v) { return static_cast<uint8_t>(v); });
        break;

      case Opcode::BEQ:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = a[s] == b[s] ? ins.target : fall;
        break;
      case Opcode::BNE:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = a[s] != b[s] ? ins.target : fall;
        break;
      case Opcode::BLEZ:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = static_cast<int32_t>(a[s]) <= 0 ? ins.target : fall;
        break;
      case Opcode::BGTZ:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = static_cast<int32_t>(a[s]) > 0 ? ins.target : fall;
        break;
      case Opcode::BLTZ:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = static_cast<int32_t>(a[s]) < 0 ? ins.target : fall;
        break;
      case Opcode::BGEZ:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = static_cast<int32_t>(a[s]) >= 0 ? ins.target : fall;
        break;
      case Opcode::J:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = ins.target;
        break;
      case Opcode::JAL: {
        uint32_t *ra = &regs_[size_t{REG_RA} * stride_];
        for (unsigned s = 0; s < all; ++s) {
            ra[s] = fall;
            pcs[s] = ins.target;
        }
        break;
      }
      case Opcode::JR:
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = a[s];
        break;
      case Opcode::JALR:
        // Link write BEFORE the target read, like the scalar
        // interpreter: jalr with rd == rs jumps to the link.
        if (ins.rd != REG_ZERO)
            for (unsigned s = 0; s < all; ++s)
                d[s] = fall;
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = a[s];
        break;

      case Opcode::ADDS:
        ETC_GANG_DENSE(
            ETC_GANG_BITS(ETC_GANG_F(a[s]) + ETC_GANG_F(b[s])));
        break;
      case Opcode::SUBS:
        ETC_GANG_DENSE(
            ETC_GANG_BITS(ETC_GANG_F(a[s]) - ETC_GANG_F(b[s])));
        break;
      case Opcode::MULS:
        ETC_GANG_DENSE(
            ETC_GANG_BITS(ETC_GANG_F(a[s]) * ETC_GANG_F(b[s])));
        break;
      case Opcode::DIVS:
        ETC_GANG_DENSE(
            ETC_GANG_BITS(ETC_GANG_F(a[s]) / ETC_GANG_F(b[s])));
        break;
      case Opcode::ABSS:
        ETC_GANG_DENSE(ETC_GANG_BITS(std::fabs(ETC_GANG_F(a[s]))));
        break;
      case Opcode::NEGS:
        ETC_GANG_DENSE(ETC_GANG_BITS(-ETC_GANG_F(a[s])));
        break;
      case Opcode::MOVS: ETC_GANG_DENSE(a[s]); break;
      case Opcode::SQRTS:
        ETC_GANG_DENSE(ETC_GANG_BITS(std::sqrt(ETC_GANG_F(a[s]))));
        break;
      case Opcode::CVTSW:
        ETC_GANG_DENSE(ETC_GANG_BITS(
            static_cast<float>(static_cast<int32_t>(a[s]))));
        break;
      case Opcode::CVTWS:
        for (unsigned s = 0; s < all; ++s) {
            float value = ETC_GANG_F(a[s]);
            int32_t truncated;
            if (std::isnan(value))
                truncated = 0;
            else if (value >= 2147483648.0f)
                truncated = std::numeric_limits<int32_t>::max();
            else if (value < -2147483648.0f)
                truncated = std::numeric_limits<int32_t>::min();
            else
                truncated = static_cast<int32_t>(value);
            d[s] = static_cast<uint32_t>(truncated);
        }
        break;
      case Opcode::CEQS: {
        uint32_t *fcc = &regs_[size_t{FP_FLAG_REG} * stride_];
        for (unsigned s = 0; s < all; ++s)
            fcc[s] = ETC_GANG_F(a[s]) == ETC_GANG_F(b[s]) ? 1 : 0;
        break;
      }
      case Opcode::CLTS: {
        uint32_t *fcc = &regs_[size_t{FP_FLAG_REG} * stride_];
        for (unsigned s = 0; s < all; ++s)
            fcc[s] = ETC_GANG_F(a[s]) < ETC_GANG_F(b[s]) ? 1 : 0;
        break;
      }
      case Opcode::CLES: {
        uint32_t *fcc = &regs_[size_t{FP_FLAG_REG} * stride_];
        for (unsigned s = 0; s < all; ++s)
            fcc[s] = ETC_GANG_F(a[s]) <= ETC_GANG_F(b[s]) ? 1 : 0;
        break;
      }
      case Opcode::BC1T: {
        const uint32_t *fcc = &regs_[size_t{FP_FLAG_REG} * stride_];
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = fcc[s] != 0 ? ins.target : fall;
        break;
      }
      case Opcode::BC1F: {
        const uint32_t *fcc = &regs_[size_t{FP_FLAG_REG} * stride_];
        for (unsigned s = 0; s < all; ++s)
            pcs[s] = fcc[s] == 0 ? ins.target : fall;
        break;
      }
      case Opcode::LWC1:
        gatedLoad(uint32_t{}, [&](unsigned s, uint32_t value) {
            d[s] = value; // FP destination: no $zero discard
        });
        break;
      case Opcode::SWC1:
        gatedStore([](uint32_t v) { return v; });
        break;
      case Opcode::MTC1:
        for (unsigned s = 0; s < all; ++s)
            d[s] = a[s]; // FP destination: no $zero discard
        break;
      case Opcode::MFC1: ETC_GANG_DENSE(a[s]); break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        // Completion dominates any pause request, exactly like the
        // scalar interpreter; every in-gang lane (aliases included)
        // completes with its own output tail.
        finishAll(RunStatus::Completed, 0);
        return true;
      case Opcode::OUTB:
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            outputs_[s].push_back(static_cast<uint8_t>(a[s]));
            if (outputPrefix_ + outputs_[s].size() >
                Simulator::OUTPUT_CAP)
                faultLane(s, RunStatus::OutputOverflow);
        }
        break;
      case Opcode::OUTW:
        for (unsigned i = 0; i < n; ++i) {
            unsigned s = slots[i];
            uint32_t value = a[s];
            for (int byte = 0; byte < 4; ++byte)
                outputs_[s].push_back(
                    static_cast<uint8_t>(value >> (8 * byte)));
            if (outputPrefix_ + outputs_[s].size() >
                Simulator::OUTPUT_CAP)
                faultLane(s, RunStatus::OutputOverflow);
        }
        break;
    }

#undef ETC_GANG_DENSE
#undef ETC_GANG_F
#undef ETC_GANG_BITS

    for (unsigned i = 0; i < faults; ++i) {
        if (faultSlot[i] == width_)
            panic("GangSimulator: golden lane faulted at pc ", thisPc);
        exitFinished(faultSlot[i], faultKind[i], thisPc);
    }
    return false;
}

RunResult
GangSimulator::runUntilInjectable(uint64_t count,
                                  const ByteMask &injectable,
                                  uint64_t maxInstructions)
{
    if (injectable.size() != program_.size())
        panic("GangSimulator: injectable bitmap size mismatch");
    if (maxInstructions == 0)
        maxInstructions = Simulator::DEFAULT_BUDGET;

    // Settle the PCs a pause's flips may have perturbed: after a
    // control step every active lane's slot is authoritative; after a
    // data step only proxied lanes can have moved off the shared PC.
    if (pausePending_) {
        pausePending_ = false;
        if (lastStepControl_) {
            reconcile();
        } else {
            for (uint8_t lane : touched_)
                if (laneState_[lane] == LaneState::Active &&
                    lanePc_[lane] != pc_)
                    evictDiverged(lane);
        }
        touched_.clear();
    }

    // The alias count only changes between runs (proxy access
    // materializes a lane) or inside finishAll, which returns -- so
    // the golden lane's retirement check needs to run only once here,
    // not per instruction.
    maybeDropGolden();

    RunResult result;
    uint64_t remaining = count;
    const auto codeSize = program_.size();
    const auto *code = program_.code.data();

    for (;;) {
        if (execList_.empty()) {
            // Every lane has an exit record; the gang is drained.
            result.status = RunStatus::Completed;
            result.instructions = instructions_;
            return result;
        }
        if (pc_ >= codeSize) {
            // Mirrors the scalar loop top: falling off the end is
            // completion, anything past it a bad jump.
            finishAll(pc_ == codeSize ? RunStatus::Completed
                                      : RunStatus::BadJump,
                      pc_ == codeSize ? 0 : pc_);
            result.status = RunStatus::Completed;
            result.instructions = instructions_;
            return result;
        }
        if (instructions_ >= maxInstructions) {
            finishAll(RunStatus::Timeout, pc_);
            result.status = RunStatus::Completed;
            result.instructions = instructions_;
            return result;
        }

        const Instruction &ins = code[pc_];
        const uint32_t thisPc = pc_;
        ++instructions_;
        bool halted = executeStep(ins, thisPc);
        bool isInjectable = injectable[thisPc] != 0;
        if (isInjectable)
            ++injectableRetired_;
        if (halted) {
            result.status = RunStatus::Completed;
            result.instructions = instructions_;
            return result;
        }
        bool control = ins.isControl();
        if (!control)
            pc_ = thisPc + 1;
        if (isInjectable && remaining != 0 && --remaining == 0) {
            // Pause BEFORE reconciling: the caller's flips must see
            // (and may change) each lane's own next PC, exactly as the
            // scalar path applies flips after the PC update.
            pausePending_ = true;
            lastStepControl_ = control;
            result.status = RunStatus::Paused;
            result.instructions = instructions_;
            result.faultPc = thisPc;
            return result;
        }
        if (control)
            reconcile();
    }
}

} // namespace etc::sim
