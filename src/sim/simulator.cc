#include "sim/simulator.hh"

#include <cmath>
#include <limits>

#include "sim/checkpoint.hh"
#include "support/logging.hh"
#include "telemetry/metrics.hh"

namespace etc::sim {

using namespace isa;

namespace {

/** Retire policy: forward every retire to an ExecHook (classic path). */
struct HookRetire
{
    ExecHook *hook;

    bool
    operator()(uint32_t staticIdx, const Instruction &ins, Machine &m,
               Memory &mem)
    {
        hook->onRetire(staticIdx, ins, m, mem);
        return false;
    }
};

/** Retire policy: do nothing (plain hookless execution). */
struct NoRetire
{
    bool
    operator()(uint32_t, const Instruction &, Machine &, Memory &)
    {
        return false;
    }
};

/** Retire policy: pause after N injectable instructions retire. */
struct CountInjectable
{
    const uint8_t *injectable;
    uint64_t remaining;

    bool
    operator()(uint32_t staticIdx, const Instruction &, Machine &,
               Memory &)
    {
        return injectable[staticIdx] && --remaining == 0;
    }
};

} // namespace

ByteMask
toByteMask(const std::vector<bool> &bits)
{
    ByteMask mask(bits.size());
    for (size_t i = 0; i < bits.size(); ++i)
        mask[i] = bits[i] ? 1 : 0;
    return mask;
}

Simulator::Simulator(const assembly::Program &program, MemoryModel model)
    : program_(program),
      memory_(assembly::DATA_BASE,
              std::max(program.dataEnd, assembly::DATA_BASE), model)
{
    reset();
}

void
Simulator::reset()
{
    memory_.clear();
    memory_.loadData(program_.data);
    output_.clear();
    initMachine();
}

void
Simulator::fastReset()
{
    revertMemoryToStart();
    output_.clear();
    initMachine();
}

void
Simulator::initMachine()
{
    machine_.reset();
    machine_.pc = program_.entry;
    machine_.writeInt(REG_SP, assembly::STACK_TOP);
    // A return from the entry function jumps one past the end of code,
    // which run() treats as normal completion.
    machine_.writeInt(REG_RA, program_.size());
}

void
Simulator::revertMemoryToStart()
{
    if (memory_.hasBaseline()) {
        memory_.revertToBaseline();
        return;
    }
    memory_.clear();
    memory_.loadData(program_.data);
    memory_.setBaseline();
}

RunResult
Simulator::run(uint64_t maxInstructions, ExecHook *hook)
{
    if (maxInstructions == 0)
        maxInstructions = DEFAULT_BUDGET;
    if (hook) {
        HookRetire policy{hook};
        return runCore(maxInstructions, 0, policy);
    }
    NoRetire policy;
    return runCore(maxInstructions, 0, policy);
}

RunResult
Simulator::runUntilInjectable(uint64_t count,
                              const ByteMask &injectable,
                              uint64_t maxInstructions,
                              uint64_t instructionsSoFar)
{
    if (maxInstructions == 0)
        maxInstructions = DEFAULT_BUDGET;
    if (injectable.size() != program_.size())
        panic("runUntilInjectable: injectable bitmap size mismatch");
    if (count == 0) {
        NoRetire policy;
        return runCore(maxInstructions, instructionsSoFar, policy);
    }
    CountInjectable policy{injectable.data(), count};
    return runCore(maxInstructions, instructionsSoFar, policy);
}

void
Simulator::restoreFrom(const Checkpoint &checkpoint,
                       const std::vector<uint8_t> &goldenOutput)
{
    if (checkpoint.outputLength > goldenOutput.size())
        panic("restoreFrom: checkpoint output longer than golden");
    static auto &restores = telemetry::counter(
        "etc_checkpoint_restores_total",
        "Simulator state restores from a golden-run checkpoint");
    static auto &pagesReverted = telemetry::counter(
        "etc_checkpoint_pages_reverted_total",
        "Dirty pages rewound to baseline during checkpoint restores");
    static auto &pagesApplied = telemetry::counter(
        "etc_checkpoint_pages_applied_total",
        "Checkpoint snapshot pages copied in during restores");
    restores.add();
    if (memory_.hasBaseline()) {
        // Pages the checkpoint is about to overwrite need no revert
        // first; checkpoint.pages is sorted by page number.
        std::vector<uint32_t> overwritten;
        overwritten.reserve(checkpoint.pages.size());
        for (const auto &[pageNumber, bytes] : checkpoint.pages)
            overwritten.push_back(pageNumber);
        pagesReverted.add(memory_.revertToBaseline(overwritten));
    } else {
        revertMemoryToStart();
    }
    pagesApplied.add(checkpoint.pages.size());
    for (const auto &[pageNumber, bytes] : checkpoint.pages)
        memory_.setPage(pageNumber, bytes);
    machine_ = checkpoint.machine;
    output_.assign(goldenOutput.begin(),
                   goldenOutput.begin() +
                       static_cast<ptrdiff_t>(checkpoint.outputLength));
}

/*
 * The interpreter body below is written once, against the ETC_OP /
 * ETC_NEXT macros, and expanded into one of two dispatch strategies:
 *
 *  - Threaded dispatch (GNU C labels-as-values): every handler ends
 *    by retiring the instruction and jumping straight to the next
 *    handler through a label table indexed by opcode. Each opcode
 *    gets its own indirect branch, so the branch predictor learns
 *    per-opcode successor patterns instead of sharing one
 *    unpredictable switch branch across the whole ISA.
 *
 *  - A portable fetch/switch loop, used when the extension is
 *    unavailable.
 *
 * Both expansions retire instructions identically: prologue (PC
 * bounds, budget, fetch) -> execute -> epilogue (publish next PC,
 * run the retire policy). Faults return before the epilogue, so
 * faultPc is the faulting instruction's own PC.
 */

#if defined(__GNUC__) || defined(__clang__)
#define ETC_THREADED_DISPATCH 1
#endif

// Prologue: completion/bad-jump/budget checks, then fetch. Returns
// out of runCore on any terminal condition.
#define ETC_STEP_PROLOGUE()                                                \
    do {                                                                   \
        if (m.pc >= codeSize) {                                            \
            /* Returning from the entry function lands exactly at */       \
            /* codeSize (see reset()); that is a clean completion. */      \
            if (m.pc == codeSize) {                                        \
                result.status = RunStatus::Completed;                      \
                return result;                                             \
            }                                                              \
            return fault(RunStatus::BadJump);                              \
        }                                                                  \
        if (result.instructions >= maxInstructions)                        \
            return fault(RunStatus::Timeout);                              \
        ins = &code[m.pc];                                                 \
        thisPc = m.pc;                                                     \
        nextPc = m.pc + 1;                                                 \
        ++result.instructions;                                             \
    } while (0)

// Epilogue: publish the next PC before the retire policy so a control
// transfer's "result" (the PC) is visible and corruptible.
#define ETC_STEP_EPILOGUE()                                                \
    do {                                                                   \
        m.pc = nextPc;                                                     \
        if (policy(thisPc, *ins, m, memory_)) {                            \
            result.status = RunStatus::Paused;                             \
            result.faultPc = thisPc;                                       \
            return result;                                                 \
        }                                                                  \
    } while (0)

template <typename Policy>
RunResult
Simulator::runCore(uint64_t maxInstructions, uint64_t baseInstructions,
                   Policy &policy)
{
    RunResult result;
    result.instructions = baseInstructions;
    const auto codeSize = program_.size();
    const auto *code = program_.code.data();
    Machine &m = machine_;

    const Instruction *ins = nullptr;
    uint32_t thisPc = 0;
    uint32_t nextPc = 0;

    auto fault = [&](RunStatus status) {
        result.status = status;
        result.faultPc = m.pc;
        return result;
    };

    auto rs = [&] { return m.readInt(ins->rs); };
    auto rt = [&] { return m.readInt(ins->rt); };
    auto srs = [&] { return static_cast<int32_t>(m.readInt(ins->rs)); };
    auto srt = [&] { return static_cast<int32_t>(m.readInt(ins->rt)); };
    auto fs = [&] { return m.readFp(ins->rs - NUM_INT_REGS); };
    auto ft = [&] { return m.readFp(ins->rt - NUM_INT_REGS); };
    auto setRd = [&](uint32_t v) { m.writeInt(ins->rd, v); };
    auto setFd = [&](float v) { m.writeFp(ins->rd - NUM_INT_REGS, v); };

#ifdef ETC_THREADED_DISPATCH
    // One label per opcode, in table order, so Opcode values index
    // the dispatch table directly.
    static const void *const dispatch[] = {
#define ETC_X(mnem, enumName, fmt, cls) &&handle_##enumName,
        ETC_ISA_OPCODE_TABLE(ETC_X)
#undef ETC_X
    };

#define ETC_OP(name) handle_##name:
#define ETC_NEXT                                                           \
    ETC_STEP_EPILOGUE();                                                   \
    ETC_STEP_PROLOGUE();                                                   \
    goto *dispatch[static_cast<unsigned>(ins->op)];

    ETC_STEP_PROLOGUE();
    goto *dispatch[static_cast<unsigned>(ins->op)];
#else

#define ETC_OP(name) case Opcode::name:
#define ETC_NEXT break;

    while (true) {
        ETC_STEP_PROLOGUE();
        switch (ins->op) {
#endif

    ETC_OP(ADD) setRd(rs() + rt()); ETC_NEXT
    ETC_OP(SUB) setRd(rs() - rt()); ETC_NEXT
    ETC_OP(MUL) setRd(rs() * rt()); ETC_NEXT
    ETC_OP(DIV) {
        int32_t den = srt();
        if (den == 0)
            return fault(RunStatus::DivByZero);
        int32_t num = srs();
        // INT_MIN / -1 overflows in C++; MIPS leaves it
        // unpredictable -- define it as wrapping to INT_MIN.
        if (num == std::numeric_limits<int32_t>::min() && den == -1)
            setRd(static_cast<uint32_t>(num));
        else
            setRd(static_cast<uint32_t>(num / den));
    }
    ETC_NEXT
    ETC_OP(REM) {
        int32_t den = srt();
        if (den == 0)
            return fault(RunStatus::DivByZero);
        int32_t num = srs();
        if (num == std::numeric_limits<int32_t>::min() && den == -1)
            setRd(0);
        else
            setRd(static_cast<uint32_t>(num % den));
    }
    ETC_NEXT
    ETC_OP(AND) setRd(rs() & rt()); ETC_NEXT
    ETC_OP(OR) setRd(rs() | rt()); ETC_NEXT
    ETC_OP(XOR) setRd(rs() ^ rt()); ETC_NEXT
    ETC_OP(NOR) setRd(~(rs() | rt())); ETC_NEXT
    ETC_OP(SLT) setRd(srs() < srt() ? 1 : 0); ETC_NEXT
    ETC_OP(SLTU) setRd(rs() < rt() ? 1 : 0); ETC_NEXT
    ETC_OP(SLLV) setRd(rs() << (rt() & 31)); ETC_NEXT
    ETC_OP(SRLV) setRd(rs() >> (rt() & 31)); ETC_NEXT
    ETC_OP(SRAV)
    setRd(static_cast<uint32_t>(srs() >> (rt() & 31)));
    ETC_NEXT
    ETC_OP(ADDI) setRd(rs() + static_cast<uint32_t>(ins->imm)); ETC_NEXT
    ETC_OP(ANDI) setRd(rs() & static_cast<uint32_t>(ins->imm)); ETC_NEXT
    ETC_OP(ORI) setRd(rs() | static_cast<uint32_t>(ins->imm)); ETC_NEXT
    ETC_OP(XORI) setRd(rs() ^ static_cast<uint32_t>(ins->imm)); ETC_NEXT
    ETC_OP(SLTI) setRd(srs() < ins->imm ? 1 : 0); ETC_NEXT
    ETC_OP(SLTIU)
    setRd(rs() < static_cast<uint32_t>(ins->imm) ? 1 : 0);
    ETC_NEXT
    ETC_OP(SLL) setRd(rs() << (ins->imm & 31)); ETC_NEXT
    ETC_OP(SRL) setRd(rs() >> (ins->imm & 31)); ETC_NEXT
    ETC_OP(SRA)
    setRd(static_cast<uint32_t>(srs() >> (ins->imm & 31)));
    ETC_NEXT
    ETC_OP(LUI) setRd(static_cast<uint32_t>(ins->imm) << 16); ETC_NEXT

    ETC_OP(LW) {
        uint32_t value = 0;
        if (memory_.read32(rs() + static_cast<uint32_t>(ins->imm),
                           value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        setRd(value);
    }
    ETC_NEXT
    ETC_OP(LH) {
        uint16_t value = 0;
        if (memory_.read16(rs() + static_cast<uint32_t>(ins->imm),
                           value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        setRd(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int16_t>(value))));
    }
    ETC_NEXT
    ETC_OP(LHU) {
        uint16_t value = 0;
        if (memory_.read16(rs() + static_cast<uint32_t>(ins->imm),
                           value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        setRd(value);
    }
    ETC_NEXT
    ETC_OP(LB) {
        uint8_t value = 0;
        if (memory_.read8(rs() + static_cast<uint32_t>(ins->imm),
                          value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        setRd(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(value))));
    }
    ETC_NEXT
    ETC_OP(LBU) {
        uint8_t value = 0;
        if (memory_.read8(rs() + static_cast<uint32_t>(ins->imm),
                          value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        setRd(value);
    }
    ETC_NEXT
    ETC_OP(SW)
    if (memory_.write32(rs() + static_cast<uint32_t>(ins->imm),
                        m.readInt(ins->rd)) != MemStatus::Ok)
        return fault(RunStatus::MemoryFault);
    ETC_NEXT
    ETC_OP(SH)
    if (memory_.write16(rs() + static_cast<uint32_t>(ins->imm),
                        static_cast<uint16_t>(m.readInt(ins->rd))) !=
        MemStatus::Ok)
        return fault(RunStatus::MemoryFault);
    ETC_NEXT
    ETC_OP(SB)
    if (memory_.write8(rs() + static_cast<uint32_t>(ins->imm),
                       static_cast<uint8_t>(m.readInt(ins->rd))) !=
        MemStatus::Ok)
        return fault(RunStatus::MemoryFault);
    ETC_NEXT

    ETC_OP(BEQ)
    if (rs() == rt())
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BNE)
    if (rs() != rt())
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BLEZ)
    if (srs() <= 0)
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BGTZ)
    if (srs() > 0)
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BLTZ)
    if (srs() < 0)
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BGEZ)
    if (srs() >= 0)
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(J) nextPc = ins->target; ETC_NEXT
    ETC_OP(JAL)
    m.writeInt(REG_RA, thisPc + 1);
    nextPc = ins->target;
    ETC_NEXT
    ETC_OP(JR) nextPc = rs(); ETC_NEXT
    ETC_OP(JALR)
    m.writeInt(ins->rd, thisPc + 1);
    nextPc = rs();
    ETC_NEXT

    ETC_OP(ADDS) setFd(fs() + ft()); ETC_NEXT
    ETC_OP(SUBS) setFd(fs() - ft()); ETC_NEXT
    ETC_OP(MULS) setFd(fs() * ft()); ETC_NEXT
    ETC_OP(DIVS) setFd(fs() / ft()); ETC_NEXT
    ETC_OP(ABSS) setFd(std::fabs(fs())); ETC_NEXT
    ETC_OP(NEGS) setFd(-fs()); ETC_NEXT
    ETC_OP(MOVS) setFd(fs()); ETC_NEXT
    ETC_OP(SQRTS) setFd(std::sqrt(fs())); ETC_NEXT
    ETC_OP(CVTSW)
    setFd(static_cast<float>(
        static_cast<int32_t>(m.readFpBits(ins->rs - NUM_INT_REGS))));
    ETC_NEXT
    ETC_OP(CVTWS) {
        float value = fs();
        int32_t truncated;
        if (std::isnan(value))
            truncated = 0;
        else if (value >= 2147483648.0f)
            truncated = std::numeric_limits<int32_t>::max();
        else if (value < -2147483648.0f)
            truncated = std::numeric_limits<int32_t>::min();
        else
            truncated = static_cast<int32_t>(value);
        m.writeFpBits(ins->rd - NUM_INT_REGS,
                      static_cast<uint32_t>(truncated));
    }
    ETC_NEXT
    ETC_OP(CEQS) m.setFcc(fs() == ft()); ETC_NEXT
    ETC_OP(CLTS) m.setFcc(fs() < ft()); ETC_NEXT
    ETC_OP(CLES) m.setFcc(fs() <= ft()); ETC_NEXT
    ETC_OP(BC1T)
    if (m.fcc())
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(BC1F)
    if (!m.fcc())
        nextPc = ins->target;
    ETC_NEXT
    ETC_OP(LWC1) {
        uint32_t value = 0;
        if (memory_.read32(rs() + static_cast<uint32_t>(ins->imm),
                           value) != MemStatus::Ok)
            return fault(RunStatus::MemoryFault);
        m.writeFpBits(ins->rd - NUM_INT_REGS, value);
    }
    ETC_NEXT
    ETC_OP(SWC1)
    if (memory_.write32(rs() + static_cast<uint32_t>(ins->imm),
                        m.readFpBits(ins->rd - NUM_INT_REGS)) !=
        MemStatus::Ok)
        return fault(RunStatus::MemoryFault);
    ETC_NEXT
    ETC_OP(MTC1) m.writeFpBits(ins->rd - NUM_INT_REGS, rs()); ETC_NEXT
    ETC_OP(MFC1)
    m.writeInt(ins->rd, m.readFpBits(ins->rs - NUM_INT_REGS));
    ETC_NEXT

    ETC_OP(NOP) ETC_NEXT
    ETC_OP(HALT)
    // Completion dominates any pause request (HALT is never
    // injectable, so a counting policy cannot pause here).
    policy(thisPc, *ins, m, memory_);
    result.status = RunStatus::Completed;
    return result;
    ETC_OP(OUTB)
    output_.push_back(static_cast<uint8_t>(rs()));
    if (output_.size() > OUTPUT_CAP)
        return fault(RunStatus::OutputOverflow);
    ETC_NEXT
    ETC_OP(OUTW) {
        uint32_t value = rs();
        for (int b = 0; b < 4; ++b)
            output_.push_back(static_cast<uint8_t>(value >> (8 * b)));
        if (output_.size() > OUTPUT_CAP)
            return fault(RunStatus::OutputOverflow);
    }
    ETC_NEXT

#ifndef ETC_THREADED_DISPATCH
        }
        ETC_STEP_EPILOGUE();
    }
#endif
}

#undef ETC_OP
#undef ETC_NEXT
#undef ETC_STEP_PROLOGUE
#undef ETC_STEP_EPILOGUE

} // namespace etc::sim
