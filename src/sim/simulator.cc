#include "sim/simulator.hh"

#include <cmath>
#include <limits>

#include "sim/checkpoint.hh"
#include "support/logging.hh"

namespace etc::sim {

using namespace isa;

namespace {

/** Retire policy: forward every retire to an ExecHook (classic path). */
struct HookRetire
{
    ExecHook *hook;

    bool
    operator()(uint32_t staticIdx, const Instruction &ins, Machine &m,
               Memory &mem)
    {
        hook->onRetire(staticIdx, ins, m, mem);
        return false;
    }
};

/** Retire policy: do nothing (plain hookless execution). */
struct NoRetire
{
    bool
    operator()(uint32_t, const Instruction &, Machine &, Memory &)
    {
        return false;
    }
};

/** Retire policy: pause after N injectable instructions retire. */
struct CountInjectable
{
    const uint8_t *injectable;
    uint64_t remaining;

    bool
    operator()(uint32_t staticIdx, const Instruction &, Machine &,
               Memory &)
    {
        return injectable[staticIdx] && --remaining == 0;
    }
};

} // namespace

ByteMask
toByteMask(const std::vector<bool> &bits)
{
    ByteMask mask(bits.size());
    for (size_t i = 0; i < bits.size(); ++i)
        mask[i] = bits[i] ? 1 : 0;
    return mask;
}

Simulator::Simulator(const assembly::Program &program, MemoryModel model)
    : program_(program),
      memory_(assembly::DATA_BASE,
              std::max(program.dataEnd, assembly::DATA_BASE), model)
{
    reset();
}

void
Simulator::reset()
{
    memory_.clear();
    memory_.loadData(program_.data);
    output_.clear();
    initMachine();
}

void
Simulator::fastReset()
{
    revertMemoryToStart();
    output_.clear();
    initMachine();
}

void
Simulator::initMachine()
{
    machine_.reset();
    machine_.pc = program_.entry;
    machine_.writeInt(REG_SP, assembly::STACK_TOP);
    // A return from the entry function jumps one past the end of code,
    // which run() treats as normal completion.
    machine_.writeInt(REG_RA, program_.size());
}

void
Simulator::revertMemoryToStart()
{
    if (memory_.hasBaseline()) {
        memory_.revertToBaseline();
        return;
    }
    memory_.clear();
    memory_.loadData(program_.data);
    memory_.setBaseline();
}

RunResult
Simulator::run(uint64_t maxInstructions, ExecHook *hook)
{
    if (maxInstructions == 0)
        maxInstructions = DEFAULT_BUDGET;
    if (hook) {
        HookRetire policy{hook};
        return runCore(maxInstructions, 0, policy);
    }
    NoRetire policy;
    return runCore(maxInstructions, 0, policy);
}

RunResult
Simulator::runUntilInjectable(uint64_t count,
                              const ByteMask &injectable,
                              uint64_t maxInstructions,
                              uint64_t instructionsSoFar)
{
    if (maxInstructions == 0)
        maxInstructions = DEFAULT_BUDGET;
    if (injectable.size() != program_.size())
        panic("runUntilInjectable: injectable bitmap size mismatch");
    if (count == 0) {
        NoRetire policy;
        return runCore(maxInstructions, instructionsSoFar, policy);
    }
    CountInjectable policy{injectable.data(), count};
    return runCore(maxInstructions, instructionsSoFar, policy);
}

void
Simulator::restoreFrom(const Checkpoint &checkpoint,
                       const std::vector<uint8_t> &goldenOutput)
{
    if (checkpoint.outputLength > goldenOutput.size())
        panic("restoreFrom: checkpoint output longer than golden");
    if (memory_.hasBaseline()) {
        // Pages the checkpoint is about to overwrite need no revert
        // first; checkpoint.pages is sorted by page number.
        std::vector<uint32_t> overwritten;
        overwritten.reserve(checkpoint.pages.size());
        for (const auto &[pageNumber, bytes] : checkpoint.pages)
            overwritten.push_back(pageNumber);
        memory_.revertToBaseline(overwritten);
    } else {
        revertMemoryToStart();
    }
    for (const auto &[pageNumber, bytes] : checkpoint.pages)
        memory_.setPage(pageNumber, bytes);
    machine_ = checkpoint.machine;
    output_.assign(goldenOutput.begin(),
                   goldenOutput.begin() +
                       static_cast<ptrdiff_t>(checkpoint.outputLength));
}

template <typename Policy>
RunResult
Simulator::runCore(uint64_t maxInstructions, uint64_t baseInstructions,
                   Policy &policy)
{
    RunResult result;
    result.instructions = baseInstructions;
    const auto codeSize = program_.size();
    const auto *code = program_.code.data();
    Machine &m = machine_;

    auto fault = [&](RunStatus status) {
        result.status = status;
        result.faultPc = m.pc;
        return result;
    };

    while (true) {
        if (m.pc >= codeSize) {
            // Returning from the entry function lands exactly at
            // codeSize (see reset()); that is a clean completion.
            if (m.pc == codeSize) {
                result.status = RunStatus::Completed;
                return result;
            }
            return fault(RunStatus::BadJump);
        }
        if (result.instructions >= maxInstructions)
            return fault(RunStatus::Timeout);

        const Instruction &ins = code[m.pc];
        const uint32_t thisPc = m.pc;
        uint32_t nextPc = m.pc + 1;
        ++result.instructions;

        auto rs = [&] { return m.readInt(ins.rs); };
        auto rt = [&] { return m.readInt(ins.rt); };
        auto srs = [&] { return static_cast<int32_t>(m.readInt(ins.rs)); };
        auto srt = [&] { return static_cast<int32_t>(m.readInt(ins.rt)); };
        auto fs = [&] { return m.readFp(ins.rs - NUM_INT_REGS); };
        auto ft = [&] { return m.readFp(ins.rt - NUM_INT_REGS); };
        auto setRd = [&](uint32_t v) { m.writeInt(ins.rd, v); };
        auto setFd = [&](float v) { m.writeFp(ins.rd - NUM_INT_REGS, v); };

        switch (ins.op) {
          case Opcode::ADD: setRd(rs() + rt()); break;
          case Opcode::SUB: setRd(rs() - rt()); break;
          case Opcode::MUL: setRd(rs() * rt()); break;
          case Opcode::DIV: {
            int32_t den = srt();
            if (den == 0)
                return fault(RunStatus::DivByZero);
            int32_t num = srs();
            // INT_MIN / -1 overflows in C++; MIPS leaves it
            // unpredictable -- define it as wrapping to INT_MIN.
            if (num == std::numeric_limits<int32_t>::min() && den == -1)
                setRd(static_cast<uint32_t>(num));
            else
                setRd(static_cast<uint32_t>(num / den));
            break;
          }
          case Opcode::REM: {
            int32_t den = srt();
            if (den == 0)
                return fault(RunStatus::DivByZero);
            int32_t num = srs();
            if (num == std::numeric_limits<int32_t>::min() && den == -1)
                setRd(0);
            else
                setRd(static_cast<uint32_t>(num % den));
            break;
          }
          case Opcode::AND: setRd(rs() & rt()); break;
          case Opcode::OR: setRd(rs() | rt()); break;
          case Opcode::XOR: setRd(rs() ^ rt()); break;
          case Opcode::NOR: setRd(~(rs() | rt())); break;
          case Opcode::SLT: setRd(srs() < srt() ? 1 : 0); break;
          case Opcode::SLTU: setRd(rs() < rt() ? 1 : 0); break;
          case Opcode::SLLV: setRd(rs() << (rt() & 31)); break;
          case Opcode::SRLV: setRd(rs() >> (rt() & 31)); break;
          case Opcode::SRAV:
            setRd(static_cast<uint32_t>(srs() >> (rt() & 31)));
            break;
          case Opcode::ADDI:
            setRd(rs() + static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::ANDI:
            setRd(rs() & static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::ORI:
            setRd(rs() | static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::XORI:
            setRd(rs() ^ static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::SLTI: setRd(srs() < ins.imm ? 1 : 0); break;
          case Opcode::SLTIU:
            setRd(rs() < static_cast<uint32_t>(ins.imm) ? 1 : 0);
            break;
          case Opcode::SLL: setRd(rs() << (ins.imm & 31)); break;
          case Opcode::SRL: setRd(rs() >> (ins.imm & 31)); break;
          case Opcode::SRA:
            setRd(static_cast<uint32_t>(srs() >> (ins.imm & 31)));
            break;
          case Opcode::LUI:
            setRd(static_cast<uint32_t>(ins.imm) << 16);
            break;

          case Opcode::LW: {
            uint32_t value = 0;
            if (memory_.read32(rs() + static_cast<uint32_t>(ins.imm),
                               value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            setRd(value);
            break;
          }
          case Opcode::LH: {
            uint16_t value = 0;
            if (memory_.read16(rs() + static_cast<uint32_t>(ins.imm),
                               value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            setRd(static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int16_t>(value))));
            break;
          }
          case Opcode::LHU: {
            uint16_t value = 0;
            if (memory_.read16(rs() + static_cast<uint32_t>(ins.imm),
                               value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            setRd(value);
            break;
          }
          case Opcode::LB: {
            uint8_t value = 0;
            if (memory_.read8(rs() + static_cast<uint32_t>(ins.imm),
                              value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            setRd(static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(value))));
            break;
          }
          case Opcode::LBU: {
            uint8_t value = 0;
            if (memory_.read8(rs() + static_cast<uint32_t>(ins.imm),
                              value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            setRd(value);
            break;
          }
          case Opcode::SW:
            if (memory_.write32(rs() + static_cast<uint32_t>(ins.imm),
                                m.readInt(ins.rd)) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            break;
          case Opcode::SH:
            if (memory_.write16(rs() + static_cast<uint32_t>(ins.imm),
                                static_cast<uint16_t>(
                                    m.readInt(ins.rd))) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            break;
          case Opcode::SB:
            if (memory_.write8(rs() + static_cast<uint32_t>(ins.imm),
                               static_cast<uint8_t>(m.readInt(ins.rd))) !=
                MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            break;

          case Opcode::BEQ:
            if (rs() == rt())
                nextPc = ins.target;
            break;
          case Opcode::BNE:
            if (rs() != rt())
                nextPc = ins.target;
            break;
          case Opcode::BLEZ:
            if (srs() <= 0)
                nextPc = ins.target;
            break;
          case Opcode::BGTZ:
            if (srs() > 0)
                nextPc = ins.target;
            break;
          case Opcode::BLTZ:
            if (srs() < 0)
                nextPc = ins.target;
            break;
          case Opcode::BGEZ:
            if (srs() >= 0)
                nextPc = ins.target;
            break;
          case Opcode::J: nextPc = ins.target; break;
          case Opcode::JAL:
            m.writeInt(REG_RA, thisPc + 1);
            nextPc = ins.target;
            break;
          case Opcode::JR: nextPc = rs(); break;
          case Opcode::JALR:
            m.writeInt(ins.rd, thisPc + 1);
            nextPc = rs();
            break;

          case Opcode::ADDS: setFd(fs() + ft()); break;
          case Opcode::SUBS: setFd(fs() - ft()); break;
          case Opcode::MULS: setFd(fs() * ft()); break;
          case Opcode::DIVS: setFd(fs() / ft()); break;
          case Opcode::ABSS: setFd(std::fabs(fs())); break;
          case Opcode::NEGS: setFd(-fs()); break;
          case Opcode::MOVS: setFd(fs()); break;
          case Opcode::SQRTS: setFd(std::sqrt(fs())); break;
          case Opcode::CVTSW:
            setFd(static_cast<float>(static_cast<int32_t>(
                m.readFpBits(ins.rs - NUM_INT_REGS))));
            break;
          case Opcode::CVTWS: {
            float value = fs();
            int32_t truncated;
            if (std::isnan(value))
                truncated = 0;
            else if (value >= 2147483648.0f)
                truncated = std::numeric_limits<int32_t>::max();
            else if (value < -2147483648.0f)
                truncated = std::numeric_limits<int32_t>::min();
            else
                truncated = static_cast<int32_t>(value);
            m.writeFpBits(ins.rd - NUM_INT_REGS,
                          static_cast<uint32_t>(truncated));
            break;
          }
          case Opcode::CEQS: m.setFcc(fs() == ft()); break;
          case Opcode::CLTS: m.setFcc(fs() < ft()); break;
          case Opcode::CLES: m.setFcc(fs() <= ft()); break;
          case Opcode::BC1T:
            if (m.fcc())
                nextPc = ins.target;
            break;
          case Opcode::BC1F:
            if (!m.fcc())
                nextPc = ins.target;
            break;
          case Opcode::LWC1: {
            uint32_t value = 0;
            if (memory_.read32(rs() + static_cast<uint32_t>(ins.imm),
                               value) != MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            m.writeFpBits(ins.rd - NUM_INT_REGS, value);
            break;
          }
          case Opcode::SWC1:
            if (memory_.write32(rs() + static_cast<uint32_t>(ins.imm),
                                m.readFpBits(ins.rd - NUM_INT_REGS)) !=
                MemStatus::Ok)
                return fault(RunStatus::MemoryFault);
            break;
          case Opcode::MTC1:
            m.writeFpBits(ins.rd - NUM_INT_REGS, rs());
            break;
          case Opcode::MFC1:
            m.writeInt(ins.rd, m.readFpBits(ins.rs - NUM_INT_REGS));
            break;

          case Opcode::NOP: break;
          case Opcode::HALT:
            // Completion dominates any pause request (HALT is never
            // injectable, so a counting policy cannot pause here).
            policy(thisPc, ins, m, memory_);
            result.status = RunStatus::Completed;
            return result;
          case Opcode::OUTB:
            output_.push_back(static_cast<uint8_t>(rs()));
            if (output_.size() > OUTPUT_CAP)
                return fault(RunStatus::OutputOverflow);
            break;
          case Opcode::OUTW: {
            uint32_t value = rs();
            for (int b = 0; b < 4; ++b)
                output_.push_back(static_cast<uint8_t>(value >> (8 * b)));
            if (output_.size() > OUTPUT_CAP)
                return fault(RunStatus::OutputOverflow);
            break;
          }
        }

        // Publish the next PC before the retire policy so a control
        // transfer's "result" (the PC) is visible and corruptible.
        m.pc = nextPc;
        if (policy(thisPc, ins, m, memory_)) {
            result.status = RunStatus::Paused;
            result.faultPc = thisPc;
            return result;
        }
    }
}

} // namespace etc::sim
