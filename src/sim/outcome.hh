/**
 * @file
 * Run-outcome classification shared by the simulator, the campaign
 * runner, and the benchmarks.
 *
 * The paper classifies a simulation as a *catastrophic failure* when it
 * crashes or runs "infinitely". We map those onto concrete detector
 * events: memory faults, wild jumps, divide-by-zero, a blown
 * instruction budget, or runaway output.
 */

#ifndef ETC_SIM_OUTCOME_HH
#define ETC_SIM_OUTCOME_HH

#include <cstdint>
#include <string>

namespace etc::sim {

/** Why a run ended. */
enum class RunStatus : uint8_t
{
    Completed,      //!< reached HALT
    MemoryFault,    //!< out-of-bounds or misaligned access
    BadJump,        //!< PC left the code (wild jr / fell off the end)
    DivByZero,      //!< integer divide or remainder by zero
    Timeout,        //!< instruction budget exhausted ("infinite run")
    OutputOverflow, //!< output stream exceeded its cap (runaway loop)

    /**
     * Simulator::runUntilInjectable() hit its injectable-retire quota
     * and handed control back (the machine can resume). Internal to
     * the checkpointed trial driver; never a final campaign outcome.
     */
    Paused,
};

/** @return a short human-readable name for @p status. */
inline const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Completed: return "completed";
      case RunStatus::MemoryFault: return "memory-fault";
      case RunStatus::BadJump: return "bad-jump";
      case RunStatus::DivByZero: return "div-by-zero";
      case RunStatus::Timeout: return "timeout";
      case RunStatus::OutputOverflow: return "output-overflow";
      case RunStatus::Paused: return "paused";
    }
    return "unknown";
}

/** @return true if @p status counts as a catastrophic failure. */
inline bool
isCatastrophic(RunStatus status)
{
    return status != RunStatus::Completed;
}

/** Everything a single simulation run reports back. */
struct RunResult
{
    RunStatus status = RunStatus::Completed;
    uint64_t instructions = 0; //!< dynamic instructions executed
    uint32_t faultPc = 0;      //!< static index where a fault hit

    bool completed() const { return status == RunStatus::Completed; }

    std::string
    toString() const
    {
        std::string out = runStatusName(status);
        out += " after " + std::to_string(instructions) + " instructions";
        if (!completed())
            out += " (pc=" + std::to_string(faultPc) + ")";
        return out;
    }
};

} // namespace etc::sim

#endif // ETC_SIM_OUTCOME_HH
