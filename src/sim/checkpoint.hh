/**
 * @file
 * Checkpointing for fault-injection trial fast-forwarding.
 *
 * Every Monte-Carlo trial replays the golden run bit-for-bit up to its
 * first injection site, so on average half of each trial re-executes
 * work the profiling run already did. A CheckpointRecorder hooked into
 * the golden run captures the full architectural state (registers,
 * memory pages, output length, instruction and injectable-retire
 * counts) every N retired instructions; a trial then restores the
 * nearest checkpoint at-or-before its first injection site and
 * executes only the tail.
 *
 * Memory is captured incrementally: each capture copies only the pages
 * written since the previous one (Memory's dirty tracking), and every
 * Checkpoint holds a cumulative page index -- flat page number to the
 * most recent copy -- so a restore is a single O(touched pages) walk,
 * never a replay of intermediate deltas. Page copies are owned by the
 * CheckpointStore and shared across checkpoints.
 *
 * Determinism: a restored trial retires exactly the instructions the
 * uncheckpointed trial would have retired after that point, so
 * campaign results are bit-identical with checkpointing on or off (see
 * tests/checkpoint_test.cc).
 */

#ifndef ETC_SIM_CHECKPOINT_HH
#define ETC_SIM_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/machine.hh"
#include "sim/simulator.hh"

namespace etc::sim {

/**
 * One snapshot of the golden run, taken right after a retire (PC
 * already points at the next instruction).
 */
struct Checkpoint
{
    Machine machine;

    /** Dynamic instructions retired when the snapshot was taken. */
    uint64_t instructions = 0;

    /** Injectable instructions retired when the snapshot was taken. */
    uint64_t injectableRetired = 0;

    /** Bytes of output emitted when the snapshot was taken. */
    size_t outputLength = 0;

    /**
     * Cumulative page image: (flat page number, PAGE_SIZE bytes) for
     * every page written since the post-load baseline, ascending by
     * page number. Pointers are owned by the recording CheckpointStore.
     */
    std::vector<std::pair<uint32_t, const uint8_t *>> pages;
};

/**
 * Owns the checkpoints of one golden run and their page storage.
 */
class CheckpointStore
{
  public:
    /**
     * Storage cap: once page copies plus index overhead exceed it, no
     * further checkpoints are taken (existing ones stay valid). Keeps
     * pathological write patterns from hoarding memory.
     */
    static constexpr size_t DEFAULT_MAX_BYTES = size_t{256} << 20;

    explicit CheckpointStore(size_t maxBytes = DEFAULT_MAX_BYTES)
        : maxBytes_(maxBytes)
    {
    }

    /**
     * Record a checkpoint of the current state. Drains @p memory's
     * dirty pages, so the caller must have reset dirty tracking at the
     * baseline (post reset()/loadData()) and capture monotonically.
     */
    void capture(const Machine &machine, Memory &memory,
                 uint64_t instructions, uint64_t injectableRetired,
                 size_t outputLength);

    /**
     * @return the latest checkpoint whose injectable-retired count is
     *         <= @p site (i.e. taken strictly before the (site+1)-th
     *         injectable retire, the trial's first flip), or nullptr
     *         if no checkpoint qualifies.
     */
    const Checkpoint *findForInjectable(uint64_t site) const;

    /** @return the number of recorded checkpoints. */
    size_t size() const { return checkpoints_.size(); }

    bool empty() const { return checkpoints_.empty(); }

    /** @return approximate bytes held (page copies + index entries). */
    size_t bytesUsed() const { return bytesUsed_; }

    const Checkpoint &operator[](size_t i) const { return checkpoints_[i]; }

  private:
    size_t maxBytes_;
    size_t bytesUsed_ = 0;
    bool capReported_ = false; //!< warn once when the cap trips
    std::vector<Checkpoint> checkpoints_;
    std::deque<std::unique_ptr<uint8_t[]>> pageStorage_;

    /** Most recent copy of each ever-dirtied page, sorted by page
     *  number; each capture merges its (sorted) dirty delta in. */
    std::vector<std::pair<uint32_t, const uint8_t *>> latest_;
};

/**
 * Retire hook for the golden profiling run: counts total and
 * injectable retires (subsuming InjectableCounter) and captures a
 * checkpoint into a CheckpointStore every @p interval instructions.
 */
class CheckpointRecorder : public ExecHook
{
  public:
    /**
     * @param injectable static injectable-instruction bitmap (must
     *                   match the program the simulator executes)
     * @param interval   retired instructions between captures (> 0)
     * @param simulator  the simulator being profiled (for its output
     *                   length; must outlive this hook)
     * @param store      destination for captured checkpoints
     */
    CheckpointRecorder(const std::vector<bool> &injectable,
                       uint64_t interval, const Simulator &simulator,
                       CheckpointStore &store);

    void onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                  Machine &machine, Memory &memory) override;

    /** @return injectable dynamic instructions retired so far. */
    uint64_t injectableRetired() const { return injectableRetired_; }

  private:
    const std::vector<bool> &injectable_;
    uint64_t interval_;
    const Simulator &simulator_;
    CheckpointStore &store_;
    uint64_t instructions_ = 0;
    uint64_t injectableRetired_ = 0;
    uint64_t untilCapture_;
};

} // namespace etc::sim

#endif // ETC_SIM_CHECKPOINT_HH
