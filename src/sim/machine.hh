/**
 * @file
 * Architectural register state of the simulated machine.
 *
 * FP registers are stored as raw 32-bit patterns so the fault injector
 * can flip any bit of any result uniformly; FP arithmetic bit-casts on
 * use. The FP condition flag occupies the same flat RegId space the
 * analysis uses (isa::FP_FLAG_REG).
 */

#ifndef ETC_SIM_MACHINE_HH
#define ETC_SIM_MACHINE_HH

#include <array>
#include <bit>
#include <cstdint>

#include "isa/registers.hh"
#include "support/logging.hh"

namespace etc::sim {

/**
 * Register file + PC. Plain aggregate; the Simulator owns one.
 */
class Machine
{
  public:
    /** Reset all registers to zero (PC is managed by the Simulator). */
    void
    reset()
    {
        intRegs_.fill(0);
        fpRegs_.fill(0);
        fcc_ = 0;
    }

    /** Read an integer register ($zero always reads 0). */
    uint32_t
    readInt(isa::RegId reg) const
    {
        return intRegs_[reg];
    }

    /** Write an integer register (writes to $zero are discarded). */
    void
    writeInt(isa::RegId reg, uint32_t value)
    {
        if (reg != isa::REG_ZERO)
            intRegs_[reg] = value;
    }

    /** Read an FP register's raw bit pattern. */
    uint32_t
    readFpBits(unsigned fpIndex) const
    {
        return fpRegs_[fpIndex];
    }

    /** Write an FP register's raw bit pattern. */
    void
    writeFpBits(unsigned fpIndex, uint32_t bits)
    {
        fpRegs_[fpIndex] = bits;
    }

    /** Read an FP register as a float. */
    float
    readFp(unsigned fpIndex) const
    {
        return std::bit_cast<float>(fpRegs_[fpIndex]);
    }

    /** Write an FP register from a float. */
    void
    writeFp(unsigned fpIndex, float value)
    {
        fpRegs_[fpIndex] = std::bit_cast<uint32_t>(value);
    }

    /** The FP condition flag (set by c.xx.s, read by bc1t/bc1f). */
    bool fcc() const { return fcc_ != 0; }
    void setFcc(bool value) { fcc_ = value ? 1 : 0; }

    /**
     * Read any register by flat id (used by the injector and tests).
     * For the FP flag the value is 0 or 1.
     */
    uint32_t
    readFlat(isa::RegId reg) const
    {
        if (isa::isIntReg(reg))
            return intRegs_[reg];
        if (isa::isFpReg(reg))
            return fpRegs_[reg - isa::NUM_INT_REGS];
        return fcc_;
    }

    /** Write any register by flat id (injector interface). */
    void
    writeFlat(isa::RegId reg, uint32_t value)
    {
        if (isa::isIntReg(reg)) {
            writeInt(reg, value);
        } else if (isa::isFpReg(reg)) {
            fpRegs_[reg - isa::NUM_INT_REGS] = value;
        } else {
            fcc_ = value & 1;
        }
    }

    /** Full architectural-state equality (checkpoint round-trips). */
    bool
    operator==(const Machine &other) const
    {
        return pc == other.pc && fcc_ == other.fcc_ &&
               intRegs_ == other.intRegs_ && fpRegs_ == other.fpRegs_;
    }

    /** Current program counter (an instruction index). */
    uint32_t pc = 0;

  private:
    std::array<uint32_t, isa::NUM_INT_REGS> intRegs_{};
    std::array<uint32_t, isa::NUM_FP_REGS> fpRegs_{};
    uint32_t fcc_ = 0;
};

} // namespace etc::sim

#endif // ETC_SIM_MACHINE_HH
