/**
 * @file
 * A retire-hook that collects the dynamic-instruction statistics the
 * paper's Table 3 reports: total dynamic instructions, instructions
 * producing a register result, and -- given a static tag bitmap from
 * the analysis -- the number of dynamic instructions eligible to run
 * in a low-reliability environment.
 */

#ifndef ETC_SIM_PROFILER_HH
#define ETC_SIM_PROFILER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.hh"

namespace etc::sim {

/** Aggregated dynamic execution statistics. */
struct DynamicProfile
{
    uint64_t total = 0;          //!< all retired instructions
    uint64_t defBearing = 0;     //!< instructions writing a register
    uint64_t tagged = 0;         //!< retired instructions whose static
                                 //!< index is tagged low-reliability
    uint64_t branches = 0;       //!< conditional branches retired
    uint64_t memoryOps = 0;      //!< loads + stores retired

    /** @return fraction of dynamic instructions that are tagged. */
    double
    taggedFraction() const
    {
        return total ? static_cast<double>(tagged) / total : 0.0;
    }
};

/**
 * ExecHook implementation feeding a DynamicProfile.
 */
class Profiler : public ExecHook
{
  public:
    /**
     * @param tags static tag bitmap (index = static instruction index);
     *             pass an empty vector to skip tag accounting
     */
    explicit Profiler(std::vector<bool> tags = {})
        : tags_(std::move(tags))
    {
    }

    void
    onRetire(uint32_t staticIdx, const isa::Instruction &ins,
             Machine &, Memory &) override
    {
        ++profile_.total;
        if (ins.def())
            ++profile_.defBearing;
        if (ins.isConditionalBranch())
            ++profile_.branches;
        if (ins.isLoad() || ins.isStore())
            ++profile_.memoryOps;
        if (staticIdx < tags_.size() && tags_[staticIdx])
            ++profile_.tagged;
    }

    const DynamicProfile &profile() const { return profile_; }

  private:
    std::vector<bool> tags_;
    DynamicProfile profile_;
};

} // namespace etc::sim

#endif // ETC_SIM_PROFILER_HH
