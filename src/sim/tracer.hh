/**
 * @file
 * Execution tracer: a retire hook that renders an instruction-level
 * trace with destination values -- the tool for post-morteming an
 * injected run ("which flip sent the solver into that parent cycle?").
 *
 * The trace window is bounded (keep the last N records) so tracing a
 * multi-million-instruction run costs memory proportional to the
 * window, not the run.
 */

#ifndef ETC_SIM_TRACER_HH
#define ETC_SIM_TRACER_HH

#include <deque>
#include <ostream>
#include <string>

#include "sim/simulator.hh"

namespace etc::sim {

/** One retired-instruction record. */
struct TraceRecord
{
    uint64_t seq = 0;       //!< dynamic instruction number
    uint32_t staticIdx = 0; //!< instruction index in the program
    isa::Instruction ins;
    bool hasValue = false;  //!< the instruction defined a register
    uint32_t value = 0;     //!< destination value after writeback
    uint32_t nextPc = 0;    //!< pc after the instruction

    /** Render "seq [idx] text -> value" on one line. */
    std::string toString() const;
};

/**
 * Ring-buffer tracer. Compose with another hook (e.g. an Injector)
 * via the `chain` constructor argument so a trial can be traced while
 * faults are injected.
 */
class Tracer : public ExecHook
{
  public:
    /**
     * @param window keep at most this many trailing records
     * @param chain  optional downstream hook invoked first (so the
     *               trace records post-injection values); may be null
     */
    explicit Tracer(size_t window = 64, ExecHook *chain = nullptr)
        : window_(window), chain_(chain)
    {
    }

    void
    onRetire(uint32_t staticIdx, const isa::Instruction &ins,
             Machine &machine, Memory &memory) override
    {
        if (chain_)
            chain_->onRetire(staticIdx, ins, machine, memory);
        TraceRecord record;
        record.seq = seq_++;
        record.staticIdx = staticIdx;
        record.ins = ins;
        if (auto def = ins.def()) {
            record.hasValue = true;
            record.value = machine.readFlat(*def);
        }
        record.nextPc = machine.pc;
        if (records_.size() == window_)
            records_.pop_front();
        records_.push_back(std::move(record));
    }

    /** The retained trailing window, oldest first. */
    const std::deque<TraceRecord> &records() const { return records_; }

    /** Total instructions observed (>= records().size()). */
    uint64_t observed() const { return seq_; }

    /** Print the window, one record per line. */
    void print(std::ostream &os) const;

  private:
    size_t window_;
    ExecHook *chain_;
    uint64_t seq_ = 0;
    std::deque<TraceRecord> records_;
};

} // namespace etc::sim

#endif // ETC_SIM_TRACER_HH
