/**
 * @file
 * The functional simulator: executes a Program on a Machine + Memory,
 * classifying every abnormal event as a RunStatus.
 *
 * There is deliberately no timing model -- the paper's methodology is
 * functional simulation (SimpleScalar) with visibility of each dynamic
 * result. A single retire hook gives the fault injector and the
 * profiler access to every instruction's destination value right after
 * writeback, which is exactly the paper's injection point ("we flip a
 * bit in the result of an instruction").
 */

#ifndef ETC_SIM_SIMULATOR_HH
#define ETC_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"
#include "sim/outcome.hh"

namespace etc::sim {

struct Checkpoint;

/**
 * Byte-per-instruction copy of a static instruction bitmap.
 * std::vector<bool> packs bits, which costs a shift+mask in the
 * interpreter's hottest loop; the fast path tests a plain byte
 * instead. Build once per campaign with toByteMask().
 */
using ByteMask = std::vector<uint8_t>;

/** @return @p bits widened to one byte per instruction. */
ByteMask toByteMask(const std::vector<bool> &bits);

/**
 * Observer invoked after each retired instruction. Implementations may
 * mutate the machine and memory (that is how faults are injected).
 *
 * The hook runs after writeback AND after the PC update, so
 * machine.pc already holds the *result* of a control transfer --
 * flipping it models a corrupted branch outcome, the paper's
 * unprotected-control failure mode.
 */
class ExecHook
{
  public:
    virtual ~ExecHook() = default;

    /**
     * Called once per retired instruction.
     *
     * @param staticIdx the instruction's index in the program
     * @param ins       the retired instruction
     * @param machine   mutable architectural state (pc = next pc)
     * @param memory    mutable memory (stored results live here)
     */
    virtual void onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                          Machine &machine, Memory &memory) = 0;
};

/**
 * Functional executor for one Program. reset() + run() may be called
 * repeatedly; each reset reloads the initial data image.
 */
class Simulator
{
  public:
    /** Output-stream cap; exceeding it ends the run (runaway loop). */
    static constexpr size_t OUTPUT_CAP = 1u << 24;

    /** Default instruction budget if run() is called with 0. */
    static constexpr uint64_t DEFAULT_BUDGET = 1ull << 32;

    /**
     * @param program the program to execute (not owned)
     * @param model   out-of-region memory policy (see memory.hh)
     */
    explicit Simulator(const assembly::Program &program,
                       MemoryModel model = MemoryModel::Lenient);

    /** Reload data, zero registers, point PC at the entry. */
    void reset();

    /**
     * Behaviourally identical to reset(), but memory rewinds via its
     * baseline snapshot (established on first use): O(pages the
     * previous run touched) instead of a full zero + data reload. The
     * per-trial reset of the campaign fast path.
     */
    void fastReset();

    /**
     * Execute until HALT, a fault, or the budget runs out.
     *
     * Without a hook the interpreter takes a hookless fast path (no
     * per-retire virtual dispatch); the architectural behaviour is
     * identical either way.
     *
     * @param maxInstructions dynamic-instruction budget (0 = default)
     * @param hook            optional retire observer (may be null)
     */
    RunResult run(uint64_t maxInstructions = 0, ExecHook *hook = nullptr);

    /**
     * Hookless fast path for checkpointed fault-injection trials:
     * resume from the current machine state and execute until @p count
     * more *injectable* instructions (per @p injectable, indexed by
     * static instruction index) have retired, or the program ends.
     *
     * When the quota is reached the result's status is
     * RunStatus::Paused and its faultPc holds the static index of the
     * just-retired injectable instruction (writeback and PC update
     * already applied), which is exactly the state an ExecHook would
     * observe -- the caller applies the bit flip and calls again.
     * @p count == 0 means "no quota": run to completion.
     *
     * The returned instruction count *includes* @p instructionsSoFar,
     * and the @p maxInstructions timeout applies to that total, so a
     * trial resumed from a checkpoint times out at exactly the same
     * dynamic instruction as an uncheckpointed one.
     *
     * @param count            injectable retires before pausing (0 = none)
     * @param injectable       static injectable-instruction byte mask
     * @param maxInstructions  total dynamic budget (0 = default)
     * @param instructionsSoFar instructions already accounted to this
     *                          run (from a restored checkpoint or a
     *                          previous pause)
     */
    RunResult runUntilInjectable(uint64_t count,
                                 const ByteMask &injectable,
                                 uint64_t maxInstructions = 0,
                                 uint64_t instructionsSoFar = 0);

    /**
     * Restore the machine, memory, and output stream captured in
     * @p checkpoint, as if the program had just executed its first
     * checkpoint.instructions instructions fault-free.
     *
     * @param checkpoint   a checkpoint recorded from *this program*
     * @param goldenOutput the fault-free output stream (the restored
     *                     output is its first outputLength bytes)
     */
    void restoreFrom(const Checkpoint &checkpoint,
                     const std::vector<uint8_t> &goldenOutput);

    Machine &machine() { return machine_; }
    const Machine &machine() const { return machine_; }
    Memory &memory() { return memory_; }
    const assembly::Program &program() const { return program_; }

    /** Bytes emitted through outb/outw during the last run(s). */
    const std::vector<uint8_t> &output() const { return output_; }

    /**
     * Append raw bytes to the output stream. Used when rehydrating a
     * gang lane for its scalar drain: restoreFrom() rebuilds the
     * checkpoint's output prefix and this appends the tail the lane
     * emitted inside the gang.
     */
    void
    appendOutput(const std::vector<uint8_t> &bytes)
    {
        output_.insert(output_.end(), bytes.begin(), bytes.end());
    }

  private:
    /**
     * The interpreter loop, templated on a retire policy so the
     * per-retire callback inlines away: the hooked instantiation
     * dispatches to an ExecHook, the hookless ones do a bitmap test or
     * nothing. @p policy returns true to pause the run (see
     * runUntilInjectable).
     */
    template <typename Policy>
    RunResult runCore(uint64_t maxInstructions, uint64_t baseInstructions,
                      Policy &policy);

    /** Rewind memory to the post-reset image (cheaply if possible). */
    void revertMemoryToStart();

    /** Zero registers, point PC at the entry, init $sp/$ra. */
    void initMachine();

    const assembly::Program &program_;
    Machine machine_;
    Memory memory_;
    std::vector<uint8_t> output_;
};

} // namespace etc::sim

#endif // ETC_SIM_SIMULATOR_HH
