/**
 * @file
 * The functional simulator: executes a Program on a Machine + Memory,
 * classifying every abnormal event as a RunStatus.
 *
 * There is deliberately no timing model -- the paper's methodology is
 * functional simulation (SimpleScalar) with visibility of each dynamic
 * result. A single retire hook gives the fault injector and the
 * profiler access to every instruction's destination value right after
 * writeback, which is exactly the paper's injection point ("we flip a
 * bit in the result of an instruction").
 */

#ifndef ETC_SIM_SIMULATOR_HH
#define ETC_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"
#include "sim/outcome.hh"

namespace etc::sim {

/**
 * Observer invoked after each retired instruction. Implementations may
 * mutate the machine and memory (that is how faults are injected).
 *
 * The hook runs after writeback AND after the PC update, so
 * machine.pc already holds the *result* of a control transfer --
 * flipping it models a corrupted branch outcome, the paper's
 * unprotected-control failure mode.
 */
class ExecHook
{
  public:
    virtual ~ExecHook() = default;

    /**
     * Called once per retired instruction.
     *
     * @param staticIdx the instruction's index in the program
     * @param ins       the retired instruction
     * @param machine   mutable architectural state (pc = next pc)
     * @param memory    mutable memory (stored results live here)
     */
    virtual void onRetire(uint32_t staticIdx, const isa::Instruction &ins,
                          Machine &machine, Memory &memory) = 0;
};

/**
 * Functional executor for one Program. reset() + run() may be called
 * repeatedly; each reset reloads the initial data image.
 */
class Simulator
{
  public:
    /** Output-stream cap; exceeding it ends the run (runaway loop). */
    static constexpr size_t OUTPUT_CAP = 1u << 24;

    /** Default instruction budget if run() is called with 0. */
    static constexpr uint64_t DEFAULT_BUDGET = 1ull << 32;

    /**
     * @param program the program to execute (not owned)
     * @param model   out-of-region memory policy (see memory.hh)
     */
    explicit Simulator(const assembly::Program &program,
                       MemoryModel model = MemoryModel::Lenient);

    /** Reload data, zero registers, point PC at the entry. */
    void reset();

    /**
     * Execute until HALT, a fault, or the budget runs out.
     *
     * @param maxInstructions dynamic-instruction budget (0 = default)
     * @param hook            optional retire observer (may be null)
     */
    RunResult run(uint64_t maxInstructions = 0, ExecHook *hook = nullptr);

    Machine &machine() { return machine_; }
    const Machine &machine() const { return machine_; }
    Memory &memory() { return memory_; }
    const assembly::Program &program() const { return program_; }

    /** Bytes emitted through outb/outw during the last run(s). */
    const std::vector<uint8_t> &output() const { return output_; }

  private:
    const assembly::Program &program_;
    Machine machine_;
    Memory memory_;
    std::vector<uint8_t> output_;
};

} // namespace etc::sim

#endif // ETC_SIM_SIMULATOR_HH
