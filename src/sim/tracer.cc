#include "sim/tracer.hh"

#include <iomanip>
#include <sstream>

namespace etc::sim {

std::string
TraceRecord::toString() const
{
    std::ostringstream oss;
    oss << std::setw(8) << seq << "  [" << std::setw(4) << staticIdx
        << "] " << std::left << std::setw(28) << ins.toString()
        << std::right;
    if (hasValue) {
        oss << " -> 0x" << std::hex << std::setw(8) << std::setfill('0')
            << value << std::setfill(' ') << std::dec;
    } else if (ins.isControl()) {
        oss << " -> pc " << nextPc;
    }
    return oss.str();
}

void
Tracer::print(std::ostream &os) const
{
    if (observed() > records_.size())
        os << "... (" << observed() - records_.size()
           << " earlier instructions elided)\n";
    for (const auto &record : records_)
        os << record.toString() << '\n';
}

} // namespace etc::sim
