/**
 * @file
 * Distributed campaign fabric tests: the lease coordinator's
 * lifecycle bookkeeping (decompose, acquire, heartbeat, expiry,
 * re-issue, idempotent completion, issue-cap failure), and full
 * coordinator + worker-agent fleets over loopback HTTP -- a
 * coordinator-only daemon drained by two in-process WorkerAgents
 * produces figure bytes identical to the offline render, and a
 * vanished worker's lease re-issues, with the ghost's late shard push
 * and completion accepted idempotently (same content-addressed bytes,
 * single store write, job tally unchanged). The vanished worker
 * mirrors the orchestration suite's kill idiom: it simply stops
 * calling, which is indistinguishable from SIGKILL to the
 * coordinator.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "core/study.hh"
#include "service/client.hh"
#include "service/coordinator.hh"
#include "service/http_server.hh"
#include "service/scheduler.hh"
#include "service/service.hh"
#include "service/worker.hh"
#include "store/cell_key.hh"
#include "store/json.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "support/shutdown.hh"

namespace {

using namespace etc;
using service::Coordinator;
using service::CoordinatorConfig;
using service::LeaseBeat;
using service::LeaseCell;

constexpr const char *EXPERIMENT = "smoke-gsm";
constexpr const char *FINGERPRINT = "00000000deadbeef";

LeaseCell
testCell(unsigned trials)
{
    LeaseCell cell;
    cell.fingerprint = FINGERPRINT;
    cell.experiment = EXPERIMENT;
    cell.errors = 1;
    cell.policy = "protected";
    cell.trials = trials;
    return cell;
}

TEST(CoordinatorTest, DecomposesCellsIntoStripeLeases)
{
    Coordinator coordinator(CoordinatorConfig{});
    ASSERT_TRUE(coordinator.registerCell(testCell(16), 4, {}));
    // Re-registering a live fingerprint is a no-op.
    EXPECT_FALSE(coordinator.registerCell(testCell(16), 4, {}));

    auto stats = coordinator.stats();
    EXPECT_EQ(stats.cells, 1u);
    EXPECT_EQ(stats.leasesPending, 4u);
    EXPECT_TRUE(coordinator.hasPendingLeases());

    auto grants = coordinator.acquire("w1", 2);
    ASSERT_EQ(grants.size(), 2u);
    for (unsigned i = 0; i < grants.size(); ++i) {
        const auto &grant = grants[i];
        EXPECT_EQ(grant.id, std::string(FINGERPRINT) + "." +
                                std::to_string(i) + "of4");
        EXPECT_EQ(grant.shardIndex, i);
        EXPECT_EQ(grant.shardCount, 4u);
        EXPECT_EQ(grant.issue, 1u);
        auto [lo, hi] =
            core::ErrorToleranceStudy::shardRange(16, i, 4);
        EXPECT_EQ(grant.lo, lo);
        EXPECT_EQ(grant.hi, hi);
    }
    stats = coordinator.stats();
    EXPECT_EQ(stats.leasesPending, 2u);
    EXPECT_EQ(stats.leasesActive, 2u);
    EXPECT_EQ(stats.issued, 2u);
    EXPECT_EQ(stats.reissued, 0u);
}

TEST(CoordinatorTest, ResumeStripesStartDoneAndCompletionPromotes)
{
    Coordinator coordinator(CoordinatorConfig{});
    // Stripe 0's shard record is already stored (the resume path):
    // only stripe 1 is ever issued.
    ASSERT_TRUE(
        coordinator.registerCell(testCell(8), 2, {true, false}));
    auto grants = coordinator.acquire("w1", 8);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].shardIndex, 1u);

    EXPECT_TRUE(coordinator.complete(grants[0].id, "w1", 4, 0.5));
    auto done = coordinator.takeCompleted();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].cell.fingerprint, FINGERPRINT);
    EXPECT_EQ(done[0].shardCount, 2u);
    EXPECT_EQ(done[0].trialsExecuted, 4u);
    // Claimed exactly once; a second harvest finds nothing.
    EXPECT_TRUE(coordinator.takeCompleted().empty());

    coordinator.finishCell(FINGERPRINT);
    EXPECT_EQ(coordinator.stats().cells, 0u);
}

TEST(CoordinatorTest, HeartbeatExtendsOwnersAndAnswersLostToOthers)
{
    CoordinatorConfig config;
    config.leaseTtlMs = 60000;
    Coordinator coordinator(config);
    ASSERT_TRUE(coordinator.registerCell(testCell(8), 1, {}));
    auto grants = coordinator.acquire("w1", 1);
    ASSERT_EQ(grants.size(), 1u);

    EXPECT_EQ(coordinator.heartbeat(grants[0].id, "w1"),
              LeaseBeat::Active);
    EXPECT_EQ(coordinator.heartbeat(grants[0].id, "somebody-else"),
              LeaseBeat::Lost);
    EXPECT_EQ(coordinator.heartbeat("0123456789abcdef.0of1", "w1"),
              LeaseBeat::Unknown);
    EXPECT_EQ(coordinator.heartbeat("not-a-lease-id", "w1"),
              LeaseBeat::Unknown);
}

TEST(CoordinatorTest, ExpiredLeaseReissuesAndLateCompletionIsIdempotent)
{
    CoordinatorConfig config;
    config.leaseTtlMs = 30;
    Coordinator coordinator(config);
    ASSERT_TRUE(coordinator.registerCell(testCell(8), 1, {}));

    auto first = coordinator.acquire("w1", 1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].issue, 1u);

    // w1 vanishes (no heartbeat); past the deadline the lease
    // re-pends and the next acquirer gets issue 2.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    auto second = coordinator.acquire("w2", 1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].id, first[0].id);
    EXPECT_EQ(second[0].issue, 2u);
    auto stats = coordinator.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.reissued, 1u);

    // The replacement completes; the original's late completion of
    // the same content-addressed range is accepted idempotently --
    // the tally counts the work once.
    EXPECT_TRUE(coordinator.complete(second[0].id, "w2", 8, 1.0));
    EXPECT_TRUE(coordinator.complete(first[0].id, "w1", 8, 1.0));
    auto done = coordinator.takeCompleted();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].trialsExecuted, 8u);
    EXPECT_EQ(coordinator.stats().completed, 1u);
}

TEST(CoordinatorTest, LeaseAtIssueCapFailsItsWholeCell)
{
    CoordinatorConfig config;
    config.maxIssues = 2;
    Coordinator coordinator(config);
    ASSERT_TRUE(coordinator.registerCell(testCell(8), 2, {}));

    // Two worker-reported failures on the same lease: the first
    // re-pends it, the second (at the cap) fails the cell.
    for (unsigned round = 0; round < 2; ++round) {
        auto grants = coordinator.acquire("w1", 1);
        ASSERT_EQ(grants.size(), 1u);
        EXPECT_TRUE(
            coordinator.fail(grants[0].id, "w1", "simulated crash"));
    }
    auto failed = coordinator.takeFailed();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0].first, FINGERPRINT);
    EXPECT_NE(failed[0].second.find("simulated crash"),
              std::string::npos);
    // takeFailed() erases the cell.
    EXPECT_EQ(coordinator.stats().cells, 0u);
}

TEST(CoordinatorTest, ReopenStripesRePendsAClaimedCell)
{
    Coordinator coordinator(CoordinatorConfig{});
    ASSERT_TRUE(coordinator.registerCell(testCell(8), 2, {}));
    auto grants = coordinator.acquire("w1", 2);
    ASSERT_EQ(grants.size(), 2u);
    for (const auto &grant : grants)
        EXPECT_TRUE(coordinator.complete(grant.id, "w1", 4, 0.25));
    ASSERT_EQ(coordinator.takeCompleted().size(), 1u);

    // The promoting worker found stripe 1's shard missing from the
    // store: that stripe re-pends and is re-issued.
    coordinator.reopenStripes(FINGERPRINT, {1});
    EXPECT_TRUE(coordinator.hasPendingLeases());
    auto regrants = coordinator.acquire("w2", 8);
    ASSERT_EQ(regrants.size(), 1u);
    EXPECT_EQ(regrants[0].shardIndex, 1u);
    EXPECT_EQ(regrants[0].issue, 2u);
}

/**
 * Fleet integration fixture: a coordinator-only daemon (zero local
 * executors -- all simulation happens on worker agents) behind a real
 * loopback HttpServer, mirroring the ServiceTest setup.
 */
class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearStopRequest();
        root_ = std::filesystem::temp_directory_path() /
                ("etc_fleet_test_" + std::to_string(::getpid()) +
                 "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        std::filesystem::remove_all(root_);

        service::SchedulerConfig config;
        config.cacheDir = (root_ / "coordinator").string();
        config.workers = 0; // coordinator-only
        config.threads = 2;
        config.chunks = 2;
        config.leaseTtlMs = 400;
        scheduler_ =
            std::make_unique<service::Scheduler>(config);
        serviceFacade_ =
            std::make_unique<service::CampaignService>(*scheduler_);
        server_ = std::make_unique<service::HttpServer>(
            0, [this](const service::HttpRequest &request) {
                return serviceFacade_->handle(request);
            });
        serverThread_ = std::thread([this] { server_->run(50); });
        scheduler_->start();
    }

    void
    TearDown() override
    {
        server_->stop();
        serverThread_.join();
        scheduler_->stop();
        server_.reset();
        serviceFacade_.reset();
        scheduler_.reset();
        std::filesystem::remove_all(root_);
    }

    service::Client
    client()
    {
        return service::Client("127.0.0.1", server_->port());
    }

    service::WorkerConfig
    workerConfig(const std::string &name)
    {
        service::WorkerConfig config;
        config.host = "127.0.0.1";
        config.port = server_->port();
        config.name = name;
        config.cacheDir = (root_ / name).string();
        config.threads = 2;
        config.pollMs = 50;
        return config;
    }

    std::string
    submit(const std::string &body)
    {
        auto response = client().post("/v1/jobs", body);
        EXPECT_EQ(response.status, 202) << response.body;
        return store::parseJson(response.body).at("job").asString();
    }

    std::string
    awaitJob(const std::string &jobId)
    {
        service::Client poller = client();
        for (int i = 0; i < 3000; ++i) {
            auto response = poller.get("/v1/jobs/" + jobId);
            EXPECT_TRUE(response.ok()) << response.body;
            auto state =
                store::parseJson(response.body).at("state").asString();
            if (state == "done" || state == "failed")
                return response.body;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ADD_FAILURE() << "job " << jobId << " never drained";
        return "";
    }

    std::filesystem::path root_;
    std::unique_ptr<service::Scheduler> scheduler_;
    std::unique_ptr<service::CampaignService> serviceFacade_;
    std::unique_ptr<service::HttpServer> server_;
    std::thread serverThread_;
};

TEST_F(FleetTest, TwoWorkerFleetMatchesOfflineRenderByteForByte)
{
    std::string jobId = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");

    service::WorkerAgent w1(workerConfig("w1"));
    service::WorkerAgent w2(workerConfig("w2"));
    w1.start();
    w2.start();

    auto final = store::parseJson(awaitJob(jobId));
    EXPECT_EQ(final.at("state").asString(), "done");
    EXPECT_EQ(final.at("cellsDone").asU64(), 2u);
    // Every trial was simulated somewhere in the fleet, none locally.
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 16u);
    for (const auto &cell : final.at("cells").elements)
        EXPECT_FALSE(cell.at("cached").asBool());

    w1.stop();
    w2.stop();
    EXPECT_GE(w1.summary().leasesCompleted +
                  w2.summary().leasesCompleted,
              4u);

    // The fleet figure is byte-identical to the offline render over
    // the coordinator's cache -- the single-host contract, unchanged.
    auto figure =
        client().get(std::string("/v1/figures/") + EXPERIMENT);
    ASSERT_EQ(figure.status, 200) << figure.body;
    const bench::Experiment *exp = bench::findExperiment(EXPERIMENT);
    ASSERT_NE(exp, nullptr);
    bench::BenchOptions opts;
    opts.cacheDir = (root_ / "coordinator").string();
    store::ResultStore cache(opts.cacheDir);
    auto sweep = bench::loadExperimentFromStore(*exp, opts, cache);
    ASSERT_TRUE(sweep.complete());
    std::ostringstream offline;
    bench::renderExperiment(offline, *exp, sweep.points);
    EXPECT_EQ(figure.body, offline.str());

    // The fleet surface saw the whole campaign: 2 cells x 2 chunks.
    auto fleet = store::parseJson(client().get("/v1/fleet").body);
    EXPECT_GE(fleet.at("leasesCompleted").asU64(), 4u);
    EXPECT_EQ(fleet.at("leasesFailed").asU64(), 0u);
}

TEST_F(FleetTest, VanishedWorkerLeaseReissuesAndGhostPushIsIdempotent)
{
    std::string jobId = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT +
        "\",\"errors\":1,\"policy\":\"protected\"}");

    // Wait for the scheduler to decompose the cell into leases.
    service::Client poller = client();
    for (int i = 0; i < 200; ++i) {
        auto fleet = store::parseJson(poller.get("/v1/fleet").body);
        if (fleet.at("leasesPending").asU64() > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // The "ghost" acquires a lease over HTTP and then vanishes: it
    // never heartbeats, which is exactly what SIGKILL looks like from
    // the coordinator's side.
    store::JsonObjectWriter acquireBody;
    acquireBody.field("worker", "ghost").field("max", uint64_t{1});
    auto acquired =
        poller.post("/v1/leases/acquire", acquireBody.str());
    ASSERT_EQ(acquired.status, 200) << acquired.body;
    auto grants = store::parseJson(acquired.body).at("leases");
    ASSERT_EQ(grants.elements.size(), 1u);
    const auto &grant = grants.elements.front();
    std::string leaseId = grant.at("id").asString();
    unsigned lo = grant.at("lo").asU32();
    unsigned hi = grant.at("hi").asU32();

    // Before dying, the ghost executed its stripe (into its own
    // scratch store) -- the bytes it would have pushed.
    const bench::Experiment *exp = bench::findExperiment(EXPERIMENT);
    ASSERT_NE(exp, nullptr);
    auto workload =
        workloads::createWorkload(exp->workload, exp->scale);
    bench::BenchOptions ghostOpts;
    ghostOpts.threads = 2;
    ghostOpts.cacheDir = (root_ / "ghost").string();
    ghostOpts.seed = store::parseHexU64(grant.at("seed").asString());
    ghostOpts.checkpointInterval =
        grant.at("checkpointInterval").asU64();
    ghostOpts.staticPrune = grant.at("staticPrune").asBool();
    ghostOpts.gangWidth = grant.at("gangWidth").asU32();
    auto ghostConfig = bench::makeStudyConfig(*exp, ghostOpts);
    auto protection =
        core::computeStudyProtection(*workload, ghostConfig);
    unsigned errors = grant.at("errors").asU32();
    std::string policy = grant.at("policy").asString();
    unsigned trials = grant.at("trials").asU32();
    auto key = core::makeCellKey(*workload, protection, ghostConfig,
                                 errors, policy, trials);
    ASSERT_EQ(key.fingerprint(), grant.at("cell").asString());
    core::ErrorToleranceStudy ghostStudy(*workload, ghostConfig);
    auto ghostSummary = ghostStudy.runCellShard(
        errors, policy, trials, grant.at("shardIndex").asU32(),
        grant.at("shardCount").asU32());
    std::string ghostRecord =
        store::encodeShardRecord(key, lo, hi, ghostSummary);

    // Past the TTL the coordinator re-pends the lease; a live worker
    // picks up the re-issue and drains the job.
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
    service::WorkerAgent replacement(workerConfig("replacement"));
    replacement.start();
    auto final = store::parseJson(awaitJob(jobId));
    replacement.stop();
    EXPECT_EQ(final.at("state").asString(), "done");
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 8u);

    auto fleet = store::parseJson(poller.get("/v1/fleet").body);
    EXPECT_GE(fleet.at("leasesExpired").asU64(), 1u);
    EXPECT_GE(fleet.at("leasesReissued").asU64(), 1u);

    // Both workers computed the same content-addressed range: the
    // ghost's record carries identical results to the replacement's.
    // (Every field of the record is deterministic except the
    // wall-clock telemetry the summary line embeds, so compare the
    // decoded content, not the raw file bytes.)
    std::filesystem::path replacementShard =
        std::filesystem::path(workerConfig("replacement").cacheDir) /
        "shards" / key.fingerprint() /
        (std::to_string(lo) + "-" + std::to_string(hi) + ".jsonl");
    ASSERT_TRUE(std::filesystem::exists(replacementShard));
    std::ifstream stream(replacementShard, std::ios::binary);
    std::stringstream replacementBytes;
    replacementBytes << stream.rdbuf();
    auto ghostDecoded = store::decodeShardRecord(ghostRecord, &key);
    auto replacementDecoded =
        store::decodeShardRecord(replacementBytes.str(), &key);
    EXPECT_EQ(ghostDecoded.lo, replacementDecoded.lo);
    EXPECT_EQ(ghostDecoded.hi, replacementDecoded.hi);
    const auto &ghostSum = ghostDecoded.summary;
    const auto &replSum = replacementDecoded.summary;
    EXPECT_EQ(ghostSum.trials, replSum.trials);
    EXPECT_EQ(ghostSum.completed, replSum.completed);
    EXPECT_EQ(ghostSum.crashed, replSum.crashed);
    EXPECT_EQ(ghostSum.timedOut, replSum.timedOut);
    EXPECT_EQ(ghostSum.totalInstructions, replSum.totalInstructions);
    ASSERT_EQ(ghostSum.fidelities.size(), replSum.fidelities.size());
    for (size_t i = 0; i < ghostSum.fidelities.size(); ++i) {
        EXPECT_EQ(ghostSum.fidelities[i].value,
                  replSum.fidelities[i].value);
        EXPECT_EQ(ghostSum.fidelities[i].acceptable,
                  replSum.fidelities[i].acceptable);
    }

    // The ghost's late push is accepted without a second store write
    // (the cell is already promoted), and its late completion answers
    // done -- idempotent, not an error.
    auto pushed = poller.post("/v1/shards", ghostRecord);
    ASSERT_EQ(pushed.status, 200) << pushed.body;
    auto ingest = store::parseJson(pushed.body);
    EXPECT_EQ(ingest.at("kind").asString(), "shard");
    EXPECT_FALSE(ingest.at("stored").asBool());

    store::JsonObjectWriter completeBody;
    completeBody.field("worker", "ghost")
        .field("trialsExecuted", uint64_t{hi - lo})
        .field("wallSeconds", "0.5");
    auto completed = poller.post("/v1/leases/" + leaseId + "/complete",
                                 completeBody.str());
    ASSERT_EQ(completed.status, 200) << completed.body;
    auto lateOutcome = store::parseJson(completed.body);
    EXPECT_EQ(lateOutcome.at("state").asString(), "done");
    EXPECT_TRUE(lateOutcome.at("late").asBool());

    // The ghost's late traffic changed nothing: the job's tally is
    // what the replacement reported.
    auto after = store::parseJson(
        poller.get("/v1/jobs/" + jobId).body);
    EXPECT_EQ(after.at("state").asString(), "done");
    EXPECT_EQ(after.at("trialsExecuted").asU64(), 8u);
}

TEST_F(FleetTest, WarmFleetCacheServesSecondSubmissionWithoutWork)
{
    std::string first = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    service::WorkerAgent agent(workerConfig("warmup"));
    agent.start();
    awaitJob(first);
    agent.stop();

    // The coordinator's store is warm: the re-submitted sweep is
    // served entirely from cache -- no leases, no workers, no trials.
    auto fleetBefore =
        store::parseJson(client().get("/v1/fleet").body);
    uint64_t issuedBefore = fleetBefore.at("leasesIssued").asU64();

    std::string second = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    auto final = store::parseJson(awaitJob(second));
    EXPECT_EQ(final.at("state").asString(), "done");
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 0u);
    for (const auto &cell : final.at("cells").elements)
        EXPECT_TRUE(cell.at("cached").asBool());
    auto fleetAfter =
        store::parseJson(client().get("/v1/fleet").body);
    EXPECT_EQ(fleetAfter.at("leasesIssued").asU64(), issuedBefore);
}

} // namespace
