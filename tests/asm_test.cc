/**
 * @file
 * Unit tests for the assembly layer: the textual assembler, the
 * ProgramBuilder, and Program validation/disassembly.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hh"
#include "asm/builder.hh"
#include "asm/program.hh"
#include "support/logging.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;

// ---- assembler: happy paths ---------------------------------------------

TEST(AssemblerTest, MinimalProgram)
{
    auto prog = assemble(R"(
        .text
        .func main
        main:   li $t0, 42
                halt
        .endfunc
    )");
    ASSERT_EQ(prog.size(), 2u);
    EXPECT_EQ(prog.code[0].op, Opcode::ADDI);
    EXPECT_EQ(prog.code[0].rd, REG_T0);
    EXPECT_EQ(prog.code[0].imm, 42);
    EXPECT_EQ(prog.code[1].op, Opcode::HALT);
    EXPECT_EQ(prog.entry, 0u);
    ASSERT_EQ(prog.functions.size(), 1u);
    EXPECT_EQ(prog.functions[0].name, "main");
}

TEST(AssemblerTest, BranchesResolveLabels)
{
    auto prog = assemble(R"(
        .func main
        main:   li   $t0, 3
        loop:   addi $t0, $t0, -1
                bgtz $t0, loop
                beq  $t0, $zero, done
                nop
        done:   halt
        .endfunc
    )");
    EXPECT_EQ(prog.code[2].target, 1u);  // bgtz -> loop
    EXPECT_EQ(prog.code[3].target, 5u);  // beq -> done
}

TEST(AssemblerTest, DataDirectives)
{
    auto prog = assemble(R"(
        .data
        words:  .word 1, -2, 0x10
        bytes:  .byte 1, 2, 3
        gap:    .space 8
        msg:    .asciiz "hi\n"
        fval:   .float 1.5
        .text
        .func main
        main:   la $t0, words
                lw $t1, 0($t0)
                halt
        .endfunc
    )");
    uint32_t wordsAddr = prog.dataAddress("words");
    EXPECT_EQ(wordsAddr, DATA_BASE);
    EXPECT_EQ(prog.dataAddress("bytes"), wordsAddr + 12);
    // .space aligns to 4; bytes used 3 -> gap at +16.
    EXPECT_EQ(prog.dataAddress("gap"), wordsAddr + 16);
    EXPECT_EQ(prog.dataAddress("msg"), wordsAddr + 24);
    // "hi\n\0" = 4 bytes; float aligns to next word boundary = +28.
    EXPECT_EQ(prog.dataAddress("fval"), wordsAddr + 28);
    // la expands to an addi with the absolute address.
    EXPECT_EQ(prog.code[0].op, Opcode::ADDI);
    EXPECT_EQ(prog.code[0].imm, static_cast<int32_t>(wordsAddr));
}

TEST(AssemblerTest, PseudoExpansions)
{
    auto prog = assemble(R"(
        .func main
        main:   move $t0, $t1
                blt  $t0, $t1, out
                bge  $t0, $t1, out
                bgt  $t0, $t1, out
                ble  $t0, $t1, out
        out:    halt
        .endfunc
    )");
    // move = or rd, rs, $zero.
    EXPECT_EQ(prog.code[0].op, Opcode::OR);
    EXPECT_EQ(prog.code[0].rt, REG_ZERO);
    // Each comparison pseudo expands to slt + branch.
    ASSERT_EQ(prog.size(), 10u);
    EXPECT_EQ(prog.code[1].op, Opcode::SLT);
    EXPECT_EQ(prog.code[2].op, Opcode::BNE); // blt branches when set
    EXPECT_EQ(prog.code[4].op, Opcode::BEQ); // bge branches when clear
    // bgt swaps the operands.
    EXPECT_EQ(prog.code[5].rs, REG_T1);
    EXPECT_EQ(prog.code[5].rt, REG_T0);
    // All four target the final halt.
    for (size_t i : {2u, 4u, 6u, 8u})
        EXPECT_EQ(prog.code[i].target, 9u);
}

TEST(AssemblerTest, CommentsAndBlankLines)
{
    auto prog = assemble(R"(
        # full-line comment
        .func main
        main:   li $t0, 1   # trailing comment
                halt
        .endfunc
    )");
    EXPECT_EQ(prog.size(), 2u);
}

TEST(AssemblerTest, FpInstructions)
{
    auto prog = assemble(R"(
        .data
        vals:   .float 2.0, 3.0
        .text
        .func main
        main:   la   $t0, vals
                lwc1 $f1, 0($t0)
                lwc1 $f2, 4($t0)
                add.s $f3, $f1, $f2
                c.lt.s $f1, $f2
                bc1t  yes
                nop
        yes:    mfc1 $v0, $f3
                halt
        .endfunc
    )");
    EXPECT_EQ(prog.code[3].op, Opcode::ADDS);
    EXPECT_EQ(prog.code[3].rd, fpReg(3));
    EXPECT_EQ(prog.code[4].op, Opcode::CLTS);
    EXPECT_EQ(prog.code[5].op, Opcode::BC1T);
    EXPECT_EQ(prog.code[5].target, 7u);
}

TEST(AssemblerTest, CustomEntryFunction)
{
    auto prog = assemble(R"(
        .func helper
        helper: nop
                jr $ra
        .endfunc
        .func start
        start:  halt
        .endfunc
    )",
                         "start");
    EXPECT_EQ(prog.entry, 2u);
}

// ---- assembler: error paths ------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble(".func main\nmain: frob $t0\n.endfunc"),
                 FatalError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(
        assemble(".func main\nmain: add $t0, $t1, $bogus\n.endfunc"),
        FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble(".func main\nmain: add $t0, $t1\n.endfunc"),
                 FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble(R"(
        .func main
        x:  nop
        x:  halt
        .endfunc
    )"),
                 FatalError);
}

TEST(AssemblerErrors, UnknownLabel)
{
    EXPECT_THROW(assemble(".func main\nmain: j nowhere\n.endfunc"),
                 FatalError);
}

TEST(AssemblerErrors, MissingEntry)
{
    EXPECT_THROW(assemble(".func f\nf: halt\n.endfunc"), FatalError);
}

TEST(AssemblerErrors, UnclosedFunction)
{
    EXPECT_THROW(assemble(".func main\nmain: halt\n"), FatalError);
}

TEST(AssemblerErrors, InstructionInDataSegment)
{
    EXPECT_THROW(assemble(".data\n add $t0, $t1, $t2\n"), FatalError);
}

TEST(AssemblerErrors, BadInteger)
{
    EXPECT_THROW(assemble(".func main\nmain: li $t0, 12q\n.endfunc"),
                 FatalError);
}

TEST(AssemblerErrors, UnterminatedString)
{
    EXPECT_THROW(assemble(".data\nmsg: .asciiz \"oops\n"), FatalError);
}

// ---- ProgramBuilder ---------------------------------------------------------

TEST(BuilderTest, EmitsAndResolves)
{
    ProgramBuilder b;
    b.dataWords("tbl", {10, 20, 30});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 3);
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);
    b.bgtz(REG_T0, loop);
    b.halt();
    b.endFunction();
    auto prog = b.finish("main");
    ASSERT_EQ(prog.size(), 4u);
    EXPECT_EQ(prog.code[2].target, 1u);
    EXPECT_EQ(prog.dataAddress("tbl"), DATA_BASE);
    ASSERT_EQ(prog.data.size(), 1u);
    EXPECT_EQ(prog.data[0].bytes.size(), 12u);
    EXPECT_EQ(prog.data[0].bytes[4], 20u);
}

TEST(BuilderTest, CallFixupsResolve)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("leaf");
    b.halt();
    b.endFunction();
    b.beginFunction("leaf");
    b.nop();
    b.ret();
    b.endFunction();
    auto prog = b.finish();
    EXPECT_EQ(prog.code[0].op, Opcode::JAL);
    EXPECT_EQ(prog.code[0].target, 2u);
    ASSERT_EQ(prog.functions.size(), 2u);
    EXPECT_EQ(prog.functions[1].begin, 2u);
    EXPECT_EQ(prog.functions[1].end, 4u);
}

TEST(BuilderTest, DataChunksAreContiguousAndAligned)
{
    ProgramBuilder b;
    uint32_t a = b.dataBytes("a", {1, 2, 3});   // 3 bytes
    uint32_t c = b.dataWords("c", {7});          // re-aligned to 4
    EXPECT_EQ(a % 4, 0u);
    EXPECT_EQ(c, a + 4);
    b.beginFunction("main");
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    EXPECT_EQ(prog.dataEnd, c + 4);
}

TEST(BuilderTest, FloatDataRoundTrips)
{
    ProgramBuilder b;
    b.dataFloats("f", {1.5f, -2.25f});
    b.beginFunction("main");
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    const auto &bytes = prog.data[0].bytes;
    float f0, f1;
    std::memcpy(&f0, bytes.data(), 4);
    std::memcpy(&f1, bytes.data() + 4, 4);
    EXPECT_EQ(f0, 1.5f);
    EXPECT_EQ(f1, -2.25f);
}

TEST(BuilderTest, LifLoadsFloatConstant)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.lif(fpReg(2), 3.25f);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    ASSERT_EQ(prog.size(), 3u);
    EXPECT_EQ(prog.code[0].op, Opcode::ADDI);
    EXPECT_EQ(prog.code[0].rd, REG_AT);
    EXPECT_EQ(prog.code[1].op, Opcode::MTC1);
    float f;
    int32_t bits = prog.code[0].imm;
    std::memcpy(&f, &bits, 4);
    EXPECT_EQ(f, 3.25f);
}

TEST(BuilderErrors, UnboundLabel)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto lbl = b.newLabel();
    b.j(lbl);
    b.halt();
    b.endFunction();
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(BuilderErrors, UnknownCallTarget)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("ghost");
    b.halt();
    b.endFunction();
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(BuilderErrors, EmitOutsideFunction)
{
    ProgramBuilder b;
    EXPECT_THROW(b.nop(), FatalError);
}

TEST(BuilderErrors, UnknownDataLabelInLa)
{
    ProgramBuilder b;
    b.beginFunction("main");
    EXPECT_THROW(b.la(REG_T0, "missing"), FatalError);
}

TEST(BuilderErrors, DuplicateFunction)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.halt();
    b.endFunction();
    EXPECT_THROW(b.beginFunction("main"), FatalError);
}

TEST(BuilderErrors, DoubleBindPanics)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto lbl = b.newLabel();
    b.bind(lbl);
    b.nop();
    EXPECT_THROW(b.bind(lbl), PanicError);
}

TEST(BuilderErrors, MissingEntryFunction)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.halt();
    b.endFunction();
    EXPECT_THROW(b.finish("main"), FatalError);
}

// ---- Program -----------------------------------------------------------------

TEST(ProgramTest, FunctionLookup)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("leaf");
    b.halt();
    b.endFunction();
    b.beginFunction("leaf");
    b.ret();
    b.endFunction();
    auto prog = b.finish();
    EXPECT_EQ(prog.functionContaining(0), 0u);
    EXPECT_EQ(prog.functionContaining(2), 1u);
    EXPECT_FALSE(prog.functionContaining(99).has_value());
    EXPECT_EQ(prog.functionByName("leaf"), 1u);
    EXPECT_FALSE(prog.functionByName("nope").has_value());
}

TEST(ProgramTest, ValidateCatchesBadTargets)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    prog.code[0] = make::jmp(Opcode::J, 500);
    EXPECT_THROW(prog.validate(), PanicError);
}

TEST(ProgramTest, DisassemblyMentionsLabelsAndFunctions)
{
    auto prog = assemble(R"(
        .func main
        main:   li $t0, 1
        spot:   halt
        .endfunc
    )");
    std::string listing = prog.disassemble();
    EXPECT_NE(listing.find("function main"), std::string::npos);
    EXPECT_NE(listing.find("spot:"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(ProgramTest, DataAddressUnknownPanics)
{
    Program prog;
    EXPECT_THROW(prog.dataAddress("zip"), PanicError);
}

} // namespace
