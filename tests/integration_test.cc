/**
 * @file
 * Cross-module integration tests: bench-scale golden equivalence for
 * every workload, exhaustive single-bit injection on a known value
 * chain, assembler/builder equivalence, and end-to-end study
 * properties across all seven applications.
 */

#include <gtest/gtest.h>

#include "analysis/control_protection.hh"
#include "asm/assembler.hh"
#include "asm/builder.hh"
#include "isa/encoding.hh"
#include "core/study.hh"
#include "fault/campaign.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"
#include "workloads/adpcm.hh"
#include "workloads/art.hh"
#include "workloads/blowfish.hh"
#include "workloads/gsm.hh"
#include "workloads/mcf.hh"
#include "workloads/mpeg.hh"
#include "workloads/susan.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;

// ---- bench-scale golden equivalence (the paper-scale programs) ---------------

TEST(BenchScaleTest, SusanMatchesReference)
{
    workloads::SusanWorkload w(
        workloads::SusanWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.output(), w.referenceOutput());
}

TEST(BenchScaleTest, AdpcmMatchesReference)
{
    workloads::AdpcmWorkload w(
        workloads::AdpcmWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.output(), w.referenceOutput());
}

TEST(BenchScaleTest, BlowfishMatchesReference)
{
    workloads::BlowfishWorkload w(
        workloads::BlowfishWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.output(), w.referenceOutput());
}

TEST(BenchScaleTest, GsmMatchesReference)
{
    workloads::GsmWorkload w(
        workloads::GsmWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.output(), w.referenceOutput());
}

TEST(BenchScaleTest, MpegMatchesReference)
{
    workloads::MpegWorkload w(
        workloads::MpegWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.output(), w.referenceOutput());
}

TEST(BenchScaleTest, McfSolvesToOptimum)
{
    workloads::McfWorkload w(
        workloads::McfWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    auto solution = w.parseSolution(sim.output());
    auto [flow, cost] = w.referenceOptimum();
    EXPECT_EQ(solution.flow, flow);
    EXPECT_EQ(solution.cost, cost);
    EXPECT_TRUE(w.feasible(solution));
}

TEST(BenchScaleTest, ArtMatchesReference)
{
    workloads::ArtWorkload w(
        workloads::ArtWorkload::scaled(workloads::Scale::Bench));
    sim::Simulator sim(w.program());
    ASSERT_TRUE(sim.run().completed());
    auto got = w.parseRecognition(sim.output());
    auto ref = w.referenceRecognition();
    EXPECT_EQ(got.bestWindow, ref.bestWindow);
    EXPECT_EQ(got.bestTemplate, ref.bestTemplate);
    EXPECT_NEAR(got.confidence, ref.confidence, 1e-4);
}

// ---- exhaustive single-bit injection -------------------------------------------

/**
 * Inject every bit position into the same dynamic site of a known
 * value chain and verify the output shifts by exactly that bit --
 * i.e., the injector corrupts precisely what it claims to.
 */
class BitSweepTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    static Program
    makeProgram()
    {
        ProgramBuilder b;
        b.beginFunction("main");
        b.li(REG_T0, 0);           // 0 (injected here, site 0)
        b.outw(REG_T0);            // 1
        b.halt();                  // 2
        b.endFunction();
        return b.finish();
    }
};

TEST_P(BitSweepTest, OutputFlipsExactlyThatBit)
{
    unsigned bit = GetParam();
    auto prog = makeProgram();
    std::vector<bool> injectable(prog.size(), false);
    injectable[0] = true;

    fault::InjectionPlan plan;
    plan.sites = {0};
    plan.masks = {uint32_t{1} << bit};
    fault::Injector injector(injectable, plan);
    sim::Simulator sim(prog);
    ASSERT_TRUE(sim.run(0, &injector).completed());
    ASSERT_EQ(injector.injectedCount(), 1u);
    uint32_t word = 0;
    for (int i = 0; i < 4; ++i)
        word |= static_cast<uint32_t>(sim.output()[i]) << (8 * i);
    EXPECT_EQ(word, uint32_t{1} << bit);
}

INSTANTIATE_TEST_SUITE_P(AllBits, BitSweepTest,
                         ::testing::Range(0u, 32u));

// ---- assembler/builder equivalence -----------------------------------------------

TEST(EquivalenceTest, AssemblerAndBuilderProduceSamePrograms)
{
    // The same loop written both ways must produce instruction-
    // identical programs (and therefore identical analyses and runs).
    auto fromText = assemble(R"(
        .data
        tbl:    .word 3, 1, 4, 1, 5
        .text
        .func main
        main:   la   $t0, tbl
                addi $t1, $t0, 20
                li   $t2, 0
        loop:   lw   $t3, 0($t0)
                add  $t2, $t2, $t3
                addi $t0, $t0, 4
                blt  $t0, $t1, loop
                outw $t2
                halt
        .endfunc
    )");

    ProgramBuilder b;
    b.dataWords("tbl", {3, 1, 4, 1, 5});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.la(REG_T0, "tbl");
    b.addi(REG_T1, REG_T0, 20);
    b.li(REG_T2, 0);
    b.bind(loop);
    b.lw(REG_T3, 0, REG_T0);
    b.add(REG_T2, REG_T2, REG_T3);
    b.addi(REG_T0, REG_T0, 4);
    b.blt(REG_T0, REG_T1, loop);
    b.outw(REG_T2);
    b.halt();
    b.endFunction();
    auto fromBuilder = b.finish();

    ASSERT_EQ(fromText.code.size(), fromBuilder.code.size());
    for (size_t i = 0; i < fromText.code.size(); ++i)
        EXPECT_EQ(fromText.code[i], fromBuilder.code[i]) << "at " << i;

    sim::Simulator a(fromText), c(fromBuilder);
    ASSERT_TRUE(a.run().completed());
    ASSERT_TRUE(c.run().completed());
    EXPECT_EQ(a.output(), c.output());

    auto analysisA = analysis::computeControlProtection(
        fromText, analysis::ProtectionConfig{});
    auto analysisC = analysis::computeControlProtection(
        fromBuilder, analysis::ProtectionConfig{});
    EXPECT_EQ(analysisA.tagged, analysisC.tagged);
}

// ---- study properties across all workloads ----------------------------------------

class AllStudiesTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllStudiesTest, ZeroErrorsIsAlwaysGolden)
{
    auto workload =
        workloads::createWorkload(GetParam(), workloads::Scale::Test);
    core::StudyConfig config;
    config.trials = 5;
    core::ErrorToleranceStudy study(*workload, config);
    for (auto mode : {core::ProtectionMode::Protected,
                      core::ProtectionMode::Unprotected}) {
        auto cell = study.runCell(0, mode);
        EXPECT_EQ(cell.completed, cell.trials) << GetParam();
        EXPECT_EQ(cell.acceptableRate(), 1.0) << GetParam();
    }
}

TEST_P(AllStudiesTest, ProtectionNeverHurts)
{
    auto workload =
        workloads::createWorkload(GetParam(), workloads::Scale::Test);
    core::StudyConfig config;
    config.trials = 15;
    core::ErrorToleranceStudy study(*workload, config);
    auto prot = study.runCell(10, core::ProtectionMode::Protected);
    auto unprot = study.runCell(10, core::ProtectionMode::Unprotected);
    // With 15 seeded trials the protected failure rate never exceeds
    // the unprotected one on any workload (deterministic by seed).
    EXPECT_LE(prot.failureRate(), unprot.failureRate()) << GetParam();
}

TEST_P(AllStudiesTest, TaggedDynamicNeverExceedsDefBearing)
{
    auto workload =
        workloads::createWorkload(GetParam(), workloads::Scale::Test);
    core::StudyConfig config;
    core::ErrorToleranceStudy study(*workload, config);
    const auto &profile = study.profile();
    EXPECT_LE(profile.tagged, profile.defBearing) << GetParam();
    EXPECT_LE(profile.defBearing, profile.total) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, AllStudiesTest,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---- binary round-trip execution equivalence ----------------------------------------

TEST(EquivalenceTest, EncodedProgramsExecuteIdentically)
{
    // Encoding every instruction to its 64-bit form and decoding it
    // back must preserve execution exactly -- for every workload.
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        assembly::Program decoded = workload->program();
        for (auto &ins : decoded.code) {
            auto roundTripped = isa::decode(isa::encode(ins));
            ASSERT_TRUE(roundTripped.has_value()) << name;
            ins = *roundTripped;
        }
        decoded.validate();
        sim::Simulator original(workload->program());
        sim::Simulator rebuilt(decoded);
        ASSERT_TRUE(original.run().completed()) << name;
        ASSERT_TRUE(rebuilt.run().completed()) << name;
        EXPECT_EQ(original.output(), rebuilt.output()) << name;
    }
}

// ---- campaign vs. paper-style two-pass consistency --------------------------------

TEST(ConsistencyTest, InjectableDynamicCountMatchesProfiler)
{
    auto workload =
        workloads::createWorkload("susan", workloads::Scale::Test);
    auto protection = analysis::computeControlProtection(
        workload->program(), [&] {
            analysis::ProtectionConfig c;
            c.eligibleFunctions = workload->eligibleFunctions();
            return c;
        }());
    fault::CampaignRunner runner(
        workload->program(),
        fault::injectableWithProtection(workload->program(),
                                        protection.tagged));
    sim::Simulator sim(workload->program());
    sim::Profiler profiler(protection.tagged);
    ASSERT_TRUE(sim.run(0, &profiler).completed());
    EXPECT_EQ(runner.injectableDynamicCount(),
              profiler.profile().tagged);
    EXPECT_EQ(runner.goldenOutput(), sim.output());
}

TEST(ConsistencyTest, StrictAndLenientAgreeOnCleanRuns)
{
    // Without faults, the memory model must not change behaviour: the
    // workloads never access out-of-region memory themselves.
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        sim::Simulator lenient(workload->program(),
                               sim::MemoryModel::Lenient);
        sim::Simulator strict(workload->program(),
                              sim::MemoryModel::Strict);
        ASSERT_TRUE(lenient.run().completed()) << name;
        ASSERT_TRUE(strict.run().completed()) << name;
        EXPECT_EQ(lenient.output(), strict.output()) << name;
    }
}

} // namespace
