/**
 * @file
 * Bit-identity contract of the gang interpreter: campaign results on
 * the batched lockstep fast path are byte-identical to the scalar
 * path for every gang width x thread count x checkpoint setting x
 * static-prune setting -- the gang, like checkpointing and pruning,
 * is a pure acceleration, never a result change. Diverged lanes drain
 * through the scalar Simulator, so even the worst case (every lane
 * diverges at its first fault) must reproduce scalar bits exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "fault/policy.hh"
#include "sim/gang.hh"
#include "store/cell_key.hh"
#include "telemetry/trace.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::fault;

constexpr unsigned TRIALS = 40;

CampaignConfig
cellConfig(unsigned gangWidth, unsigned threads, unsigned errors = 1)
{
    CampaignConfig config;
    config.trials = TRIALS;
    config.errors = errors;
    config.seed = 0x6a76;
    config.threads = threads;
    config.gangWidth = gangWidth;
    return config;
}

/** Every observable bit must match, including per-trial records. */
void
expectIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.trialsPruned, b.trialsPruned);
    EXPECT_EQ(a.trialInstructions.count(), b.trialInstructions.count());
    EXPECT_DOUBLE_EQ(a.trialInstructions.mean(),
                     b.trialInstructions.mean());
    EXPECT_DOUBLE_EQ(a.trialInstructions.stdDev(),
                     b.trialInstructions.stdDev());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].run.status, b.outcomes[i].run.status)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].run.instructions,
                  b.outcomes[i].run.instructions)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].injected, b.outcomes[i].injected)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output)
            << "trial " << i;
    }
}

/** One workload's runner grid: {checkpoint on, off} x {prune off, on}. */
struct RunnerGrid
{
    std::unique_ptr<workloads::Workload> workload;
    std::vector<bool> injectable;

    /** [checkpointing ? 1 : 0][staticPrune ? 1 : 0] */
    std::unique_ptr<CampaignRunner> runners[2][2];

    explicit RunnerGrid(const std::string &name,
                        const std::string &policyName =
                            UNPROTECTED_POLICY)
    {
        workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        injectable = injectableWithoutProtection(workload->program());
        const InjectionPolicy &policy =
            resolveInjectionPolicy(policyName);
        for (int ckpt = 0; ckpt < 2; ++ckpt)
            for (int prune = 0; prune < 2; ++prune)
                runners[ckpt][prune] = std::make_unique<CampaignRunner>(
                    workload->program(), injectable,
                    sim::MemoryModel::Lenient,
                    ckpt ? CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL
                         : 0,
                    policy.resultKinds, policy.bitModel, prune != 0);
    }

    CampaignRunner &runner(bool ckpt, bool prune)
    {
        return *runners[ckpt ? 1 : 0][prune ? 1 : 0];
    }
};

TEST(GangDeterminismTest, BitIdenticalAcrossWidthsThreadsCheckpointPrune)
{
    // The ISSUE's acceptance sweep: gang widths {0,1,4,8} x threads
    // {1,4} x checkpoint {on,off} x static-prune {off,on} on two
    // workloads, one of them divergence-heavy (mpeg's control faults
    // split gangs constantly). Every cell must be byte-identical to
    // the scalar checkpoint-on baseline (checkpointing itself is
    // bit-invariant by the checkpoint_test contract).
    for (const char *name : {"mpeg", "susan"}) {
        RunnerGrid grid(name);
        auto baseline = grid.runner(true, false).run(cellConfig(0, 1));
        for (unsigned width : {0u, 1u, 4u, 8u}) {
            for (unsigned threads : {1u, 4u}) {
                for (bool ckpt : {true, false}) {
                    for (bool prune : {false, true}) {
                        auto result = grid.runner(ckpt, prune)
                                          .run(cellConfig(width,
                                                          threads));
                        SCOPED_TRACE(std::string(name) + " width=" +
                                     std::to_string(width) +
                                     " threads=" +
                                     std::to_string(threads) +
                                     " ckpt=" + (ckpt ? "on" : "off") +
                                     " prune=" +
                                     (prune ? "on" : "off"));
                        // Pruned trial counts legitimately differ
                        // between prune on/off; everything else must
                        // not.
                        auto expected = baseline;
                        expected.trialsPruned = result.trialsPruned;
                        expectIdentical(expected, result);
                    }
                }
            }
        }
    }
}

TEST(GangDeterminismTest, ShardMergeIdentity)
{
    // Gangs regroup arbitrarily at shard boundaries (a stripe's
    // trials gang among themselves only); the merged shards must
    // still equal the monolithic scalar cell bit for bit.
    RunnerGrid grid("mpeg");
    auto &runner = grid.runner(true, false);
    auto whole = runner.run(cellConfig(0, 1));
    auto config = cellConfig(8, 2);
    std::vector<CampaignResult> shards;
    shards.push_back(runner.runRange(config, 0, 17));
    shards.push_back(runner.runRange(config, 17, TRIALS));
    expectIdentical(whole,
                    CampaignRunner::mergeShards(std::move(shards)));
}

TEST(GangDeterminismTest, EveryLaneDivergesDrainsToScalarBits)
{
    // Worst case by construction: the control-only policy flips only
    // control-transfer results, so every injected trial diverges from
    // the pack at its first fault and the whole gang drains through
    // the scalar Simulator. The drain must reproduce scalar bits.
    RunnerGrid grid("mpeg", "control-only");
    auto scalar = grid.runner(true, false).run(cellConfig(0, 1));
    for (unsigned width : {4u, 8u}) {
        auto ganged =
            grid.runner(true, false).run(cellConfig(width, 1));
        expectIdentical(scalar, ganged);
    }
}

TEST(GangDeterminismTest, TracingIsObservationOnly)
{
    // PR 8 acceptance: telemetry never feeds an RNG draw or a cache
    // key, so a campaign traced via --trace-out must reproduce the
    // untraced bits exactly -- across threads {1,4} x gang widths
    // {0,8}, where per-trial, gang, and drain-lane spans all fire.
    RunnerGrid grid("mpeg");
    auto &runner = grid.runner(true, false);
    auto untraced = runner.run(cellConfig(0, 1));

    auto tracePath =
        std::filesystem::temp_directory_path() /
        ("etc_gang_trace_" +
         std::to_string(
             ::testing::UnitTest::GetInstance()->random_seed()) +
         ".jsonl");
    telemetry::Tracer::instance().open(tracePath.string());
    std::vector<CampaignResult> traced;
    for (unsigned threads : {1u, 4u})
        for (unsigned width : {0u, 8u})
            traced.push_back(runner.run(cellConfig(width, threads)));
    telemetry::Tracer::instance().close();

    for (const auto &result : traced)
        expectIdentical(untraced, result);

    // The trace itself materialized as nonempty JSONL.
    EXPECT_GT(std::filesystem::file_size(tracePath), 0u);
    std::filesystem::remove(tracePath);
}

TEST(GangDeterminismTest, WidthResolution)
{
    EXPECT_EQ(CampaignRunner::resolveGangWidth(GANG_WIDTH_AUTO),
              DEFAULT_GANG_WIDTH);
    EXPECT_EQ(CampaignRunner::resolveGangWidth(0), 0u);
    EXPECT_EQ(CampaignRunner::resolveGangWidth(5), 5u);
    EXPECT_EQ(CampaignRunner::resolveGangWidth(
                  sim::GangSimulator::MAX_LANES + 7),
              sim::GangSimulator::MAX_LANES);
}

TEST(GangDeterminismTest, StudyCellsAndKeysInvariantAcrossWidths)
{
    // End-to-end through the study layer: summaries, per-trial
    // fidelity bits, and store cache keys -- the figures' and result
    // store's inputs -- are identical for every gang width (the width,
    // like the thread count, is deliberately not part of the key).
    auto workload =
        workloads::createWorkload("mpeg", workloads::Scale::Test);
    core::StudyConfig scalarConfig;
    scalarConfig.trials = 24;
    scalarConfig.gangWidth = 0;
    core::StudyConfig gangConfig = scalarConfig;
    gangConfig.gangWidth = 4;
    gangConfig.threads = 4;

    EXPECT_EQ(core::makeCellKey(
                  *workload,
                  core::computeStudyProtection(*workload, scalarConfig),
                  scalarConfig, 1, fault::UNPROTECTED_POLICY, 24)
                  .fingerprint(),
              core::makeCellKey(
                  *workload,
                  core::computeStudyProtection(*workload, gangConfig),
                  gangConfig, 1, fault::UNPROTECTED_POLICY, 24)
                  .fingerprint());

    core::ErrorToleranceStudy scalar(*workload, scalarConfig);
    core::ErrorToleranceStudy gang(*workload, gangConfig);
    auto a = scalar.runCell(1, fault::UNPROTECTED_POLICY);
    auto b = gang.runCell(1, fault::UNPROTECTED_POLICY);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i)
        EXPECT_DOUBLE_EQ(a.fidelities[i].value, b.fidelities[i].value);
}

} // namespace
