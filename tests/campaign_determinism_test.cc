/**
 * @file
 * Determinism contract of the parallel campaign engine: a campaign
 * cell's outcome tallies and per-trial records are bit-identical for
 * every thread count, because trial t draws its randomness from the
 * counter-based stream Rng::forStream(seed, t) and writes only its own
 * outcome slot.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "asm/builder.hh"
#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "fault/trial_pool.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::fault;

/** A small data loop: sums a table, streams the total. */
Program
sumProgram()
{
    ProgramBuilder b;
    b.dataWords("tbl", {1, 2, 3, 4, 5, 6, 7, 8});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.la(REG_T0, "tbl");
    b.addi(REG_T1, REG_T0, 32);
    b.li(REG_T2, 0);
    b.bind(loop);
    b.lw(REG_T3, 0, REG_T0);
    b.add(REG_T2, REG_T2, REG_T3);
    b.addi(REG_T0, REG_T0, 4);
    b.blt(REG_T0, REG_T1, loop);
    b.outw(REG_T2);
    b.halt();
    b.endFunction();
    return b.finish();
}

CampaignConfig
cellConfig(unsigned threads)
{
    CampaignConfig config;
    config.trials = 48;
    config.errors = 3;
    config.seed = 0xd5eed;
    config.threads = threads;
    return config;
}

void
expectIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.trialInstructions.count(), b.trialInstructions.count());
    EXPECT_DOUBLE_EQ(a.trialInstructions.mean(),
                     b.trialInstructions.mean());
    EXPECT_DOUBLE_EQ(a.trialInstructions.stdDev(),
                     b.trialInstructions.stdDev());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].run.status, b.outcomes[i].run.status)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].run.instructions,
                  b.outcomes[i].run.instructions)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].injected, b.outcomes[i].injected)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output)
            << "trial " << i;
    }
}

TEST(CampaignDeterminismTest, IdenticalTalliesAcrossThreadCounts)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    auto serial = runner.run(cellConfig(1));
    auto two = runner.run(cellConfig(2));
    auto eight = runner.run(cellConfig(8));
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

TEST(CampaignDeterminismTest, AllCoresMatchesSerial)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    // threads = 0 resolves to the machine's full core count.
    expectIdentical(runner.run(cellConfig(1)), runner.run(cellConfig(0)));
}

TEST(CampaignDeterminismTest, RerunningACellIsReproducible)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    expectIdentical(runner.run(cellConfig(8)), runner.run(cellConfig(8)));
}

TEST(CampaignDeterminismTest, ObserverFiresOncePerTrialWhenParallel)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    auto config = cellConfig(8);
    unsigned calls = 0;
    runner.run(config, [&](const TrialOutcome &) { ++calls; });
    EXPECT_EQ(calls, config.trials);
}

TEST(CampaignDeterminismTest, StudyCellIdenticalAcrossThreadCounts)
{
    auto workload = workloads::createWorkload("adpcm",
                                              workloads::Scale::Test);
    core::StudyConfig serialConfig;
    serialConfig.trials = 16;
    core::StudyConfig parallelConfig = serialConfig;
    parallelConfig.threads = 8;

    core::ErrorToleranceStudy serial(*workload, serialConfig);
    core::ErrorToleranceStudy parallel(*workload, parallelConfig);
    auto a = serial.runCell(5, core::ProtectionMode::Protected);
    auto b = parallel.runCell(5, core::ProtectionMode::Protected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i)
        EXPECT_DOUBLE_EQ(a.fidelities[i].value, b.fidelities[i].value);
}

// ---- trial-range sharding -------------------------------------------------

/**
 * Shards {1/1, 2, 4} of a cell must merge to tallies and per-trial
 * records bit-identical to the monolithic cell, on two workloads --
 * the contract the persistent result store's resume path rests on.
 */
void
expectShardsMergeToMonolith(const assembly::Program &prog,
                            const CampaignConfig &config)
{
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    auto whole = runner.run(config);

    for (unsigned splits : {1u, 2u, 4u}) {
        std::vector<CampaignResult> shards;
        for (unsigned s = 0; s < splits; ++s) {
            uint64_t lo = uint64_t{config.trials} * s / splits;
            uint64_t hi = uint64_t{config.trials} * (s + 1) / splits;
            shards.push_back(runner.runRange(config, lo, hi));
            EXPECT_EQ(shards.back().firstTrial, lo);
            EXPECT_EQ(shards.back().trials, hi - lo);
        }
        auto merged = CampaignRunner::mergeShards(std::move(shards));
        expectIdentical(whole, merged);
    }
}

TEST(CampaignDeterminismTest, ShardsMergeToMonolithicCell)
{
    auto config = cellConfig(2);
    expectShardsMergeToMonolith(sumProgram(), config);

    auto adpcm = workloads::createWorkload("adpcm",
                                           workloads::Scale::Test);
    expectShardsMergeToMonolith(adpcm->program(), config);
}

TEST(CampaignDeterminismTest, ShardsMergeAcrossThreadCounts)
{
    // Shards computed at different thread counts still merge to the
    // serial monolith: sharding composes with thread invariance.
    auto gsm = workloads::createWorkload("gsm", workloads::Scale::Test);
    CampaignRunner runner(gsm->program(),
                          injectableWithoutProtection(gsm->program()));
    auto whole = runner.run(cellConfig(1));

    std::vector<CampaignResult> shards;
    shards.push_back(runner.runRange(cellConfig(4), 0, 17));
    shards.push_back(runner.runRange(cellConfig(1), 17, 20));
    shards.push_back(runner.runRange(cellConfig(0), 20, 48));
    expectIdentical(whole, CampaignRunner::mergeShards(std::move(shards)));
}

TEST(CampaignDeterminismTest, EmptyAndFullRangesAreWellFormed)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    auto config = cellConfig(1);

    auto empty = runner.runRange(config, 7, 7);
    EXPECT_EQ(empty.trials, 0u);
    EXPECT_EQ(empty.outcomes.size(), 0u);

    auto full = runner.runRange(config, 0, config.trials);
    expectIdentical(runner.run(config), full);

    EXPECT_THROW(runner.runRange(config, 8, 4), PanicError);
    EXPECT_THROW(runner.runRange(config, 0, config.trials + 1),
                 PanicError);
}

TEST(CampaignDeterminismTest, MergeRejectsGapsAndOverlaps)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    auto config = cellConfig(1);

    // gap: [0,10) + [20,48)
    {
        std::vector<CampaignResult> shards;
        shards.push_back(runner.runRange(config, 0, 10));
        shards.push_back(runner.runRange(config, 20, 48));
        EXPECT_THROW(CampaignRunner::mergeShards(std::move(shards)),
                     PanicError);
    }
    // overlap: [0,30) + [20,48)
    {
        std::vector<CampaignResult> shards;
        shards.push_back(runner.runRange(config, 0, 30));
        shards.push_back(runner.runRange(config, 20, 48));
        EXPECT_THROW(CampaignRunner::mergeShards(std::move(shards)),
                     PanicError);
    }
}

// ---- the primitives the engine's contract rests on -----------------------

TEST(CampaignDeterminismTest, StreamRngIsAPureFunctionOfSeedAndIndex)
{
    Rng a = Rng::forStream(42, 7);
    Rng b = Rng::forStream(42, 7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next64(), b.next64());

    // Adjacent streams and adjacent seeds must decorrelate.
    Rng c = Rng::forStream(42, 8);
    Rng d = Rng::forStream(43, 7);
    int sameC = 0, sameD = 0;
    Rng base = Rng::forStream(42, 7);
    for (int i = 0; i < 64; ++i) {
        uint64_t r = base.next64();
        if (r == c.next64())
            ++sameC;
        if (r == d.next64())
            ++sameD;
    }
    EXPECT_LT(sameC, 2);
    EXPECT_LT(sameD, 2);
}

TEST(CampaignDeterminismTest, TallyMergeIsOrderInsensitive)
{
    OutcomeTally a{3, 1, 0};
    OutcomeTally b{5, 0, 2};
    OutcomeTally ab = a;
    ab.merge(b);
    OutcomeTally ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.completed, ba.completed);
    EXPECT_EQ(ab.crashed, ba.crashed);
    EXPECT_EQ(ab.timedOut, ba.timedOut);
    EXPECT_EQ(ab.total(), 11u);
    EXPECT_DOUBLE_EQ(ab.failureRate(), 3.0 / 11.0);
}

TEST(CampaignDeterminismTest, RunningStatMergeMatchesSerialFeed)
{
    std::vector<double> sample = {1.0, 2.5, -3.0, 7.75, 0.5, 4.25};
    RunningStat whole;
    for (double v : sample)
        whole.add(v);
    RunningStat left, right;
    for (size_t i = 0; i < sample.size(); ++i)
        (i < 3 ? left : right).add(sample[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.stdDev(), whole.stdDev(), 1e-12);
    EXPECT_NEAR(whole.mean(), mean(sample), 1e-12);
    EXPECT_NEAR(whole.stdDev(), sampleStdDev(sample), 1e-12);
}

TEST(CampaignDeterminismTest, TrialPoolCoversEveryIndexExactlyOnce)
{
    constexpr uint64_t TRIALS = 1000;
    std::vector<std::atomic<unsigned>> hits(TRIALS);
    unsigned workers = TrialPool::resolveWorkers(8, TRIALS);
    TrialPool::run(workers, TRIALS, [&](uint64_t t, unsigned w) {
        EXPECT_LT(w, workers);
        hits[t].fetch_add(1);
    });
    for (uint64_t t = 0; t < TRIALS; ++t)
        EXPECT_EQ(hits[t].load(), 1u) << "trial " << t;
}

TEST(CampaignDeterminismTest, TrialPoolPropagatesExceptions)
{
    EXPECT_THROW(TrialPool::run(4, 100,
                                [&](uint64_t t, unsigned) {
                                    if (t == 17)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(CampaignDeterminismTest, ResolveWorkersClamps)
{
    EXPECT_EQ(TrialPool::resolveWorkers(8, 3), 3u);
    EXPECT_EQ(TrialPool::resolveWorkers(1, 100), 1u);
    EXPECT_GE(TrialPool::resolveWorkers(0, 100), 1u);
    EXPECT_EQ(TrialPool::resolveWorkers(4, 0), 1u);
}

} // namespace
