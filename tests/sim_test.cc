/**
 * @file
 * Unit tests for the functional simulator: per-opcode semantics
 * (parameterized), memory models, fault classification, hooks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <cstring>
#include <sstream>

#include "asm/assembler.hh"
#include "asm/builder.hh"
#include "sim/memory.hh"
#include "fault/injection.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"
#include "sim/tracer.hh"
#include "support/logging.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::sim;

/** Run a tiny builder program and return the simulator for checks. */
Program
makeProgram(const std::function<void(ProgramBuilder &)> &body)
{
    ProgramBuilder b;
    b.beginFunction("main");
    body(b);
    b.halt();
    b.endFunction();
    return b.finish();
}

// ---- integer ALU semantics (table-driven, parameterized) -------------------

struct AluCase
{
    Opcode op;
    int32_t a;
    int32_t b;
    int32_t expected;
};

class IntAluTest : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(IntAluTest, ComputesExpected)
{
    const AluCase &c = GetParam();
    auto prog = makeProgram([&](ProgramBuilder &b) {
        b.li(REG_T1, c.a);
        b.li(REG_T2, c.b);
        b.emit(make::r3(c.op, REG_T0, REG_T1, REG_T2));
    });
    Simulator sim(prog);
    auto result = sim.run();
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(static_cast<int32_t>(sim.machine().readInt(REG_T0)),
              c.expected)
        << mnemonic(c.op) << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntAluTest,
    ::testing::Values(
        AluCase{Opcode::ADD, 2, 3, 5},
        AluCase{Opcode::ADD, 0x7fffffff, 1, INT32_MIN}, // wraps
        AluCase{Opcode::SUB, 2, 3, -1},
        AluCase{Opcode::SUB, INT32_MIN, 1, 0x7fffffff},
        AluCase{Opcode::MUL, -4, 3, -12},
        AluCase{Opcode::MUL, 0x10000, 0x10000, 0}, // low 32 bits
        AluCase{Opcode::DIV, 7, 2, 3},
        AluCase{Opcode::DIV, -7, 2, -3},  // truncates toward zero
        AluCase{Opcode::DIV, INT32_MIN, -1, INT32_MIN},
        AluCase{Opcode::REM, 7, 2, 1},
        AluCase{Opcode::REM, -7, 2, -1},
        AluCase{Opcode::REM, INT32_MIN, -1, 0}));

INSTANTIATE_TEST_SUITE_P(
    Logic, IntAluTest,
    ::testing::Values(
        AluCase{Opcode::AND, 0x0ff0, 0x00ff, 0x00f0},
        AluCase{Opcode::OR, 0x0ff0, 0x00ff, 0x0fff},
        AluCase{Opcode::XOR, 0x0ff0, 0x00ff, 0x0f0f},
        AluCase{Opcode::NOR, 0, 0, -1},
        AluCase{Opcode::NOR, -1, 0, 0},
        AluCase{Opcode::SLT, -1, 1, 1},
        AluCase{Opcode::SLT, 1, -1, 0},
        AluCase{Opcode::SLT, 3, 3, 0},
        AluCase{Opcode::SLTU, -1, 1, 0}, // 0xffffffff unsigned
        AluCase{Opcode::SLTU, 1, -1, 1},
        AluCase{Opcode::SLLV, 1, 5, 32},
        AluCase{Opcode::SLLV, 1, 33, 2},  // shift amount masked
        AluCase{Opcode::SRLV, -1, 28, 0xf},
        AluCase{Opcode::SRAV, -16, 2, -4}));

// Immediate forms.
struct ImmCase
{
    Opcode op;
    int32_t a;
    int32_t imm;
    int32_t expected;
};

class ImmAluTest : public ::testing::TestWithParam<ImmCase>
{
};

TEST_P(ImmAluTest, ComputesExpected)
{
    const ImmCase &c = GetParam();
    auto prog = makeProgram([&](ProgramBuilder &b) {
        b.li(REG_T1, c.a);
        b.emit(make::r2i(c.op, REG_T0, REG_T1, c.imm));
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(static_cast<int32_t>(sim.machine().readInt(REG_T0)),
              c.expected)
        << mnemonic(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    Immediates, ImmAluTest,
    ::testing::Values(
        ImmCase{Opcode::ADDI, 10, -3, 7},
        ImmCase{Opcode::ANDI, 0xff, 0x0f, 0x0f},
        ImmCase{Opcode::ORI, 0xf0, 0x0f, 0xff},
        ImmCase{Opcode::XORI, 0xff, 0x0f, 0xf0},
        ImmCase{Opcode::SLTI, -5, 0, 1},
        ImmCase{Opcode::SLTI, 5, 0, 0},
        ImmCase{Opcode::SLL, 3, 4, 48},
        ImmCase{Opcode::SRL, -1, 28, 0xf},
        ImmCase{Opcode::SRA, -64, 3, -8}));

TEST(SimulatorTest, LuiShifts)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.emit(make::ri(Opcode::LUI, REG_T0, 0x1234));
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T0), 0x12340000u);
}

TEST(SimulatorTest, ZeroRegisterIsImmutable)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_ZERO, 55);
        b.move(REG_T0, REG_ZERO);
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T0), 0u);
}

// ---- traps ---------------------------------------------------------------

TEST(SimulatorTest, DivideByZeroTraps)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, 5);
        b.li(REG_T2, 0);
        b.div(REG_T0, REG_T1, REG_T2);
    });
    Simulator sim(prog);
    auto result = sim.run();
    EXPECT_EQ(result.status, RunStatus::DivByZero);
    EXPECT_TRUE(isCatastrophic(result.status));
    EXPECT_EQ(result.faultPc, 2u);
}

TEST(SimulatorTest, RemainderByZeroTraps)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, 5);
        b.li(REG_T2, 0);
        b.rem(REG_T0, REG_T1, REG_T2);
    });
    Simulator sim(prog);
    EXPECT_EQ(sim.run().status, RunStatus::DivByZero);
}

TEST(SimulatorTest, TimeoutOnInfiniteLoop)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.bind(loop);
    b.j(loop);
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    auto result = sim.run(1000);
    EXPECT_EQ(result.status, RunStatus::Timeout);
    EXPECT_EQ(result.instructions, 1000u);
}

TEST(SimulatorTest, WildJumpIsBadJump)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T0, 123456);
        b.jr(REG_T0);
    });
    Simulator sim(prog);
    EXPECT_EQ(sim.run().status, RunStatus::BadJump);
}

TEST(SimulatorTest, ReturnFromEntryCompletes)
{
    // main returning via $ra (initialized to code size) is a clean exit.
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_V0, 9);
    b.ret();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    EXPECT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_V0), 9u);
}

TEST(SimulatorTest, MisalignedWordAccessTraps)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, static_cast<int32_t>(DATA_BASE + 2));
        b.lw(REG_T0, 0, REG_T1);
    });
    Simulator sim(prog);
    EXPECT_EQ(sim.run().status, RunStatus::MemoryFault);
}

TEST(SimulatorTest, MisalignedHalfAccessTraps)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, static_cast<int32_t>(DATA_BASE + 1));
        b.sh(REG_T0, 0, REG_T1);
    });
    Simulator sim(prog);
    EXPECT_EQ(sim.run().status, RunStatus::MemoryFault);
}

TEST(SimulatorTest, LenientModelZeroFillsWildReads)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, 0x00001000); // far outside both regions
        b.lw(REG_T0, 0, REG_T1);
        b.li(REG_T2, 77);
        b.sw(REG_T2, 0, REG_T1);  // dropped
        b.lw(REG_T3, 0, REG_T1);  // still zero
    });
    Simulator sim(prog, MemoryModel::Lenient);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T0), 0u);
    EXPECT_EQ(sim.machine().readInt(REG_T3), 0u);
}

TEST(SimulatorTest, StrictModelFaultsWildReads)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T1, 0x00001000);
        b.lw(REG_T0, 0, REG_T1);
    });
    Simulator sim(prog, MemoryModel::Strict);
    EXPECT_EQ(sim.run().status, RunStatus::MemoryFault);
}

// ---- memory semantics -------------------------------------------------------

TEST(SimulatorTest, LoadStoreWidths)
{
    ProgramBuilder b;
    b.dataWords("buf", {0, 0, 0, 0});
    b.beginFunction("main");
    b.la(REG_T9, "buf");
    b.li(REG_T0, -2);                 // 0xfffffffe
    b.sw(REG_T0, 0, REG_T9);
    b.lw(REG_T1, 0, REG_T9);          // -2
    b.li(REG_T0, 0x8001);
    b.sh(REG_T0, 4, REG_T9);
    b.lh(REG_T2, 4, REG_T9);          // sign-extends to 0xffff8001
    b.lhu(REG_T3, 4, REG_T9);         // zero-extends
    b.li(REG_T0, 0x80);
    b.sb(REG_T0, 8, REG_T9);
    b.lb(REG_T4, 8, REG_T9);          // -128
    b.lbu(REG_T5, 8, REG_T9);         // 128
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    const auto &m = sim.machine();
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T1)), -2);
    EXPECT_EQ(m.readInt(REG_T2), 0xffff8001u);
    EXPECT_EQ(m.readInt(REG_T3), 0x8001u);
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T4)), -128);
    EXPECT_EQ(m.readInt(REG_T5), 128u);
}

TEST(SimulatorTest, DataSegmentLoadedAtReset)
{
    ProgramBuilder b;
    b.dataWords("vals", {111, 222});
    b.beginFunction("main");
    b.la(REG_T9, "vals");
    b.lw(REG_T0, 4, REG_T9);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T0), 222u);
    // Mutate memory, reset, verify the image is restored.
    sim.memory().hostWrite32(prog.dataAddress("vals") + 4, 999);
    sim.reset();
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T0), 222u);
}

TEST(SimulatorTest, StackIsUsable)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.addi(REG_SP, REG_SP, -8);
        b.li(REG_T0, 321);
        b.sw(REG_T0, 0, REG_SP);
        b.lw(REG_T1, 0, REG_SP);
        b.addi(REG_SP, REG_SP, 8);
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_T1), 321u);
}

// ---- control flow ------------------------------------------------------------

struct BranchCase
{
    Opcode op;
    int32_t a;
    int32_t b;
    bool taken;
};

class BranchTest : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(BranchTest, TakenOrNot)
{
    const BranchCase &c = GetParam();
    ProgramBuilder b;
    b.beginFunction("main");
    auto target = b.newLabel();
    b.li(REG_T1, c.a);
    b.li(REG_T2, c.b);
    if (format(c.op) == Format::Br2)
        b.emit(make::br2(c.op, REG_T1, REG_T2, 0));
    else
        b.emit(make::br1(c.op, REG_T1, 0));
    // Patch the target via the label mechanism: emit a fall-through
    // marker, then the target.
    b.li(REG_V0, 1);    // fall-through path
    b.halt();
    b.bind(target);
    b.li(REG_V0, 2);    // taken path
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    // Fix the branch target manually (we bypassed emitBranch).
    prog.code[2].target = 5;
    prog.validate();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_V0), c.taken ? 2u : 1u)
        << mnemonic(c.op) << " " << c.a << " " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, BranchTest,
    ::testing::Values(
        BranchCase{Opcode::BEQ, 4, 4, true},
        BranchCase{Opcode::BEQ, 4, 5, false},
        BranchCase{Opcode::BNE, 4, 5, true},
        BranchCase{Opcode::BNE, 4, 4, false},
        BranchCase{Opcode::BLEZ, 0, 0, true},
        BranchCase{Opcode::BLEZ, -3, 0, true},
        BranchCase{Opcode::BLEZ, 1, 0, false},
        BranchCase{Opcode::BGTZ, 1, 0, true},
        BranchCase{Opcode::BGTZ, 0, 0, false},
        BranchCase{Opcode::BLTZ, -1, 0, true},
        BranchCase{Opcode::BLTZ, 0, 0, false},
        BranchCase{Opcode::BGEZ, 0, 0, true},
        BranchCase{Opcode::BGEZ, -1, 0, false}));

TEST(SimulatorTest, CallAndReturnLinkage)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("triple");
    b.move(REG_S0, REG_V0);
    b.halt();
    b.endFunction();
    b.beginFunction("triple");
    b.li(REG_T0, 3);
    b.li(REG_T1, 9);
    b.mul(REG_V0, REG_T0, REG_T1);
    b.ret();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_S0), 27u);
}

TEST(SimulatorTest, JalrLinksAndJumps)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 4);             // address of the 'leaf' first instr
    b.emit(make::jalr(REG_T7, REG_T0));
    b.move(REG_S0, REG_V0);
    b.halt();
    b.endFunction();
    b.beginFunction("leaf");
    b.li(REG_V0, 5);
    b.jr(REG_T7);
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_S0), 5u);
}

// ---- floating point -----------------------------------------------------------

TEST(SimulatorTest, FpArithmetic)
{
    ProgramBuilder b;
    b.dataFloats("v", {2.5f, 4.0f});
    b.beginFunction("main");
    b.la(REG_T9, "v");
    b.lwc1(fpReg(1), 0, REG_T9);
    b.lwc1(fpReg(2), 4, REG_T9);
    b.adds(fpReg(3), fpReg(1), fpReg(2));   // 6.5
    b.subs(fpReg(4), fpReg(1), fpReg(2));   // -1.5
    b.muls(fpReg(5), fpReg(1), fpReg(2));   // 10
    b.divs(fpReg(6), fpReg(2), fpReg(1));   // 1.6
    b.abss(fpReg(7), fpReg(4));             // 1.5
    b.negs(fpReg(8), fpReg(1));             // -2.5
    b.sqrts(fpReg(9), fpReg(2));            // 2
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    const auto &m = sim.machine();
    EXPECT_FLOAT_EQ(m.readFp(3), 6.5f);
    EXPECT_FLOAT_EQ(m.readFp(4), -1.5f);
    EXPECT_FLOAT_EQ(m.readFp(5), 10.0f);
    EXPECT_FLOAT_EQ(m.readFp(6), 1.6f);
    EXPECT_FLOAT_EQ(m.readFp(7), 1.5f);
    EXPECT_FLOAT_EQ(m.readFp(8), -2.5f);
    EXPECT_FLOAT_EQ(m.readFp(9), 2.0f);
}

TEST(SimulatorTest, FpConversions)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T0, -7);
        b.mtc1(REG_T0, fpReg(1));
        b.cvtsw(fpReg(2), fpReg(1));     // int bits -> float -7.0
        b.cvtws(fpReg(3), fpReg(2));     // back to int -7
        b.mfc1(REG_T1, fpReg(3));
        b.lif(fpReg(4), 3.9f);
        b.cvtws(fpReg(5), fpReg(4));     // truncates to 3
        b.mfc1(REG_T2, fpReg(5));
        b.lif(fpReg(6), -3.9f);
        b.cvtws(fpReg(7), fpReg(6));     // truncates to -3
        b.mfc1(REG_T3, fpReg(7));
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    const auto &m = sim.machine();
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T1)), -7);
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T2)), 3);
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T3)), -3);
}

TEST(SimulatorTest, FpConversionEdgeCases)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.lif(fpReg(1), std::numeric_limits<float>::quiet_NaN());
        b.cvtws(fpReg(2), fpReg(1));
        b.mfc1(REG_T0, fpReg(2));        // NaN -> 0
        b.lif(fpReg(3), 3e9f);
        b.cvtws(fpReg(4), fpReg(3));
        b.mfc1(REG_T1, fpReg(4));        // saturates to INT_MAX
        b.lif(fpReg(5), -3e9f);
        b.cvtws(fpReg(6), fpReg(5));
        b.mfc1(REG_T2, fpReg(6));        // saturates to INT_MIN
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    const auto &m = sim.machine();
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T0)), 0);
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T1)), INT32_MAX);
    EXPECT_EQ(static_cast<int32_t>(m.readInt(REG_T2)), INT32_MIN);
}

TEST(SimulatorTest, FpComparesAndBranches)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto taken = b.newLabel();
    b.lif(fpReg(1), 1.0f);
    b.lif(fpReg(2), 2.0f);
    b.clts(fpReg(1), fpReg(2));
    b.bc1t(taken);
    b.li(REG_V0, 1);
    b.halt();
    b.bind(taken);
    b.li(REG_V0, 2);
    b.ceqs(fpReg(1), fpReg(1));
    b.bc1f(taken); // not taken: 1.0 == 1.0
    b.cles(fpReg(2), fpReg(1));
    b.bc1t(taken); // not taken: 2.0 > 1.0
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    EXPECT_EQ(sim.machine().readInt(REG_V0), 2u);
}

// ---- output stream --------------------------------------------------------------

TEST(SimulatorTest, OutputStream)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T0, 0x41);
        b.outb(REG_T0);
        b.li(REG_T1, 0x03020100);
        b.outw(REG_T1);
    });
    Simulator sim(prog);
    ASSERT_TRUE(sim.run().completed());
    ASSERT_EQ(sim.output().size(), 5u);
    EXPECT_EQ(sim.output()[0], 0x41);
    EXPECT_EQ(sim.output()[1], 0x00);
    EXPECT_EQ(sim.output()[4], 0x03);
}

// ---- hooks & profiler --------------------------------------------------------------

TEST(ProfilerTest, CountsClasses)
{
    ProgramBuilder b;
    b.dataWords("w", {5});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 3);                  // ALU (def)
    b.bind(loop);
    b.la(REG_T9, "w");                // ALU
    b.lw(REG_T1, 0, REG_T9);          // load
    b.sw(REG_T1, 0, REG_T9);          // store
    b.addi(REG_T0, REG_T0, -1);       // ALU
    b.bgtz(REG_T0, loop);             // branch
    b.halt();
    b.endFunction();
    auto prog = b.finish();

    std::vector<bool> tags(prog.size(), false);
    tags[2] = true; // the lw
    Simulator sim(prog);
    Profiler profiler(tags);
    auto result = sim.run(0, &profiler);
    ASSERT_TRUE(result.completed());
    const auto &p = profiler.profile();
    EXPECT_EQ(p.total, result.instructions);
    EXPECT_EQ(p.branches, 3u);        // 3 loop iterations
    EXPECT_EQ(p.memoryOps, 6u);       // lw+sw per iteration
    EXPECT_EQ(p.tagged, 3u);          // the lw retired 3 times
    EXPECT_GT(p.defBearing, 0u);
    EXPECT_GT(p.taggedFraction(), 0.0);
}

TEST(HookTest, HookSeesPcAfterUpdate)
{
    // The hook must observe the *next* pc (a branch's result).
    struct PcRecorder : ExecHook
    {
        std::vector<uint32_t> pcs;
        void
        onRetire(uint32_t, const Instruction &, Machine &m,
                 Memory &) override
        {
            pcs.push_back(m.pc);
        }
    };
    ProgramBuilder b;
    b.beginFunction("main");
    auto skip = b.newLabel();
    b.j(skip);
    b.nop();
    b.bind(skip);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    PcRecorder recorder;
    ASSERT_TRUE(sim.run(0, &recorder).completed());
    ASSERT_EQ(recorder.pcs.size(), 2u); // j + halt
    EXPECT_EQ(recorder.pcs[0], 2u);     // jump's result skipped the nop
}

// ---- tracer -----------------------------------------------------------------------

TEST(TracerTest, RecordsWindowedTrace)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 4);                 // 0
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);      // 1
    b.bgtz(REG_T0, loop);            // 2
    b.halt();                        // 3
    b.endFunction();
    auto prog = b.finish();
    Simulator sim(prog);
    Tracer tracer(3);
    auto result = sim.run(0, &tracer);
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(tracer.observed(), result.instructions);
    ASSERT_EQ(tracer.records().size(), 3u); // window bound
    // The last record is the halt; the one before it the final bgtz.
    EXPECT_EQ(tracer.records().back().ins.op, Opcode::HALT);
    const auto &branch = tracer.records()[1];
    EXPECT_EQ(branch.ins.op, Opcode::BGTZ);
    EXPECT_EQ(branch.nextPc, 3u); // not taken on the last iteration
    std::ostringstream oss;
    tracer.print(oss);
    EXPECT_NE(oss.str().find("elided"), std::string::npos);
    EXPECT_NE(oss.str().find("halt"), std::string::npos);
}

TEST(TracerTest, RecordsPostWritebackValues)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T0, 7);
        b.sll(REG_T0, REG_T0, 2);
    });
    Simulator sim(prog);
    Tracer tracer(8);
    ASSERT_TRUE(sim.run(0, &tracer).completed());
    ASSERT_GE(tracer.records().size(), 2u);
    EXPECT_TRUE(tracer.records()[0].hasValue);
    EXPECT_EQ(tracer.records()[0].value, 7u);
    EXPECT_EQ(tracer.records()[1].value, 28u);
}

TEST(TracerTest, ChainsToInjectorAndSeesFlippedValue)
{
    auto prog = makeProgram([](ProgramBuilder &b) {
        b.li(REG_T0, 0);
    });
    std::vector<bool> injectable(prog.size(), false);
    injectable[0] = true;
    etc::fault::InjectionPlan plan;
    plan.sites = {0};
    plan.masks = {1u << 5};
    etc::fault::Injector injector(injectable, plan);
    Simulator sim(prog);
    Tracer tracer(8, &injector);
    ASSERT_TRUE(sim.run(0, &tracer).completed());
    // The tracer runs after the chained injector, so it records the
    // corrupted value.
    EXPECT_EQ(tracer.records()[0].value, 32u);
}

// ---- memory unit ------------------------------------------------------------------

TEST(MemoryTest, HostAccessOutOfRangePanics)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    EXPECT_THROW(mem.hostRead32(0x100), PanicError);
    EXPECT_THROW(mem.hostWrite8(0x100, 1), PanicError);
}

TEST(MemoryTest, BlockRoundTrip)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
    mem.hostWriteBlock(DATA_BASE, bytes);
    EXPECT_EQ(mem.hostReadBlock(DATA_BASE, 5), bytes);
}

TEST(MemoryTest, InBoundsRegions)
{
    Memory mem(DATA_BASE, DATA_BASE + 100);
    EXPECT_TRUE(mem.inBounds(DATA_BASE, 4));
    EXPECT_TRUE(mem.inBounds(DATA_BASE + 100, 4)); // heap slack
    EXPECT_FALSE(mem.inBounds(0, 4));
    EXPECT_TRUE(mem.inBounds(STACK_TOP - 8, 8));
    EXPECT_FALSE(mem.inBounds(0xffffffff, 4));
}

TEST(MemoryTest, ClearDropsContents)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    mem.hostWrite32(DATA_BASE, 42);
    mem.clear();
    EXPECT_EQ(mem.hostRead32(DATA_BASE), 0u);
}

} // namespace
