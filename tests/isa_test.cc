/**
 * @file
 * Unit tests for the ISA layer: registers, opcode traits, instruction
 * uses/defs, binary encoding.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/opcodes.hh"
#include "asm/assembler.hh"
#include "isa/registers.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace {

using namespace etc;
using namespace etc::isa;

// ---- registers ------------------------------------------------------------

class RegRoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RegRoundTripTest, NameParsesBack)
{
    auto reg = static_cast<RegId>(GetParam());
    std::string name = regName(reg);
    auto parsed = parseReg(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, reg);
}

INSTANTIATE_TEST_SUITE_P(AllRegisters, RegRoundTripTest,
                         ::testing::Range(0, int{NUM_REGS}));

TEST(RegisterTest, NumericNamesParse)
{
    EXPECT_EQ(parseReg("$0"), REG_ZERO);
    EXPECT_EQ(parseReg("$31"), REG_RA);
    EXPECT_EQ(parseReg("8"), REG_T0);
}

TEST(RegisterTest, FpNamesParse)
{
    EXPECT_EQ(parseReg("$f0"), fpReg(0));
    EXPECT_EQ(parseReg("$f31"), fpReg(31));
    EXPECT_EQ(parseReg("$fcc"), FP_FLAG_REG);
}

TEST(RegisterTest, BadNamesRejected)
{
    EXPECT_FALSE(parseReg("").has_value());
    EXPECT_FALSE(parseReg("$t99").has_value());
    EXPECT_FALSE(parseReg("$32").has_value());
    EXPECT_FALSE(parseReg("$f32").has_value());
    EXPECT_FALSE(parseReg("$fx").has_value());
    EXPECT_FALSE(parseReg("banana").has_value());
}

TEST(RegisterTest, Classification)
{
    EXPECT_TRUE(isIntReg(REG_ZERO));
    EXPECT_TRUE(isIntReg(REG_RA));
    EXPECT_FALSE(isIntReg(fpReg(0)));
    EXPECT_TRUE(isFpReg(fpReg(0)));
    EXPECT_TRUE(isFpReg(fpReg(31)));
    EXPECT_FALSE(isFpReg(FP_FLAG_REG));
}

// ---- opcode traits ----------------------------------------------------------

class OpcodeTraitsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeTraitsTest, MnemonicRoundTrips)
{
    auto op = static_cast<Opcode>(GetParam());
    auto back = opcodeFromMnemonic(mnemonic(op));
    ASSERT_TRUE(back.has_value()) << mnemonic(op);
    EXPECT_EQ(*back, op);
}

TEST_P(OpcodeTraitsTest, ClassAndFormatConsistent)
{
    auto op = static_cast<Opcode>(GetParam());
    InstrClass cls = instrClass(op);
    Format fmt = format(op);
    // Control transfers must have control-flavoured formats.
    if (cls == InstrClass::Branch) {
        EXPECT_TRUE(fmt == Format::Br1 || fmt == Format::Br2 ||
                    fmt == Format::FBr);
    }
    if (cls == InstrClass::Load || cls == InstrClass::Store) {
        EXPECT_TRUE(fmt == Format::Mem || fmt == Format::FMem);
    }
    // ALU instructions always define a register.
    if (isAluClass(cls)) {
        Instruction ins;
        ins.op = op;
        ins.rd = (fmt == Format::F3 || fmt == Format::F2)
                     ? fpReg(1)
                     : RegId{REG_T0};
        EXPECT_TRUE(ins.def().has_value()) << mnemonic(op);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeTraitsTest,
                         ::testing::Range(0, int{NUM_OPCODES}));

TEST(OpcodeTest, UnknownMnemonicRejected)
{
    EXPECT_FALSE(opcodeFromMnemonic("frobnicate").has_value());
}

TEST(OpcodeTest, ControlTransferClassification)
{
    EXPECT_TRUE(isControlTransfer(Opcode::BEQ));
    EXPECT_TRUE(isControlTransfer(Opcode::J));
    EXPECT_TRUE(isControlTransfer(Opcode::JAL));
    EXPECT_TRUE(isControlTransfer(Opcode::JR));
    EXPECT_TRUE(isControlTransfer(Opcode::BC1T));
    EXPECT_FALSE(isControlTransfer(Opcode::ADD));
    EXPECT_FALSE(isControlTransfer(Opcode::LW));
    EXPECT_FALSE(isControlTransfer(Opcode::HALT));
}

// ---- uses/defs ----------------------------------------------------------------

TEST(UsesDefsTest, R3)
{
    auto ins = make::r3(Opcode::ADD, REG_T0, REG_T1, REG_T2);
    EXPECT_EQ(ins.def(), REG_T0);
    EXPECT_TRUE(ins.uses().contains(REG_T1));
    EXPECT_TRUE(ins.uses().contains(REG_T2));
    EXPECT_EQ(ins.uses().size(), 2u);
}

TEST(UsesDefsTest, LoadDefinesDataUsesBase)
{
    auto ins = make::mem(Opcode::LW, REG_T0, REG_SP, 8);
    EXPECT_EQ(ins.def(), REG_T0);
    ASSERT_EQ(ins.uses().size(), 1u);
    EXPECT_EQ(ins.uses()[0], REG_SP);
    EXPECT_EQ(ins.addressUse(), REG_SP);
    EXPECT_TRUE(ins.isLoad());
    EXPECT_FALSE(ins.isStore());
}

TEST(UsesDefsTest, StoreUsesDataAndBase)
{
    auto ins = make::mem(Opcode::SW, REG_T0, REG_SP, 8);
    EXPECT_FALSE(ins.def().has_value());
    EXPECT_TRUE(ins.uses().contains(REG_T0));
    EXPECT_TRUE(ins.uses().contains(REG_SP));
    EXPECT_TRUE(ins.isStore());
}

TEST(UsesDefsTest, Branches)
{
    auto beq = make::br2(Opcode::BEQ, REG_T0, REG_T1, 5);
    EXPECT_FALSE(beq.def().has_value());
    EXPECT_EQ(beq.uses().size(), 2u);
    EXPECT_TRUE(beq.isConditionalBranch());

    auto bltz = make::br1(Opcode::BLTZ, REG_T3, 9);
    EXPECT_EQ(bltz.uses().size(), 1u);
    EXPECT_EQ(bltz.uses()[0], REG_T3);
}

TEST(UsesDefsTest, CallsAndReturns)
{
    auto jal = make::jmp(Opcode::JAL, 10);
    EXPECT_EQ(jal.def(), REG_RA);
    EXPECT_TRUE(jal.uses().empty());

    auto jr = make::jr(REG_RA);
    EXPECT_FALSE(jr.def().has_value());
    EXPECT_TRUE(jr.uses().contains(REG_RA));

    auto jalr = make::jalr(REG_T9, REG_T8);
    EXPECT_EQ(jalr.def(), REG_T9);
    EXPECT_TRUE(jalr.uses().contains(REG_T8));
}

TEST(UsesDefsTest, FpCompareDefinesFlag)
{
    Instruction ins;
    ins.op = Opcode::CLTS;
    ins.rs = fpReg(1);
    ins.rt = fpReg(2);
    EXPECT_EQ(ins.def(), FP_FLAG_REG);
    EXPECT_TRUE(ins.uses().contains(fpReg(1)));
    EXPECT_TRUE(ins.uses().contains(fpReg(2)));
}

TEST(UsesDefsTest, FpBranchUsesFlag)
{
    Instruction ins;
    ins.op = Opcode::BC1T;
    ins.target = 3;
    EXPECT_FALSE(ins.def().has_value());
    EXPECT_TRUE(ins.uses().contains(FP_FLAG_REG));
}

TEST(UsesDefsTest, MoveBetweenFiles)
{
    Instruction toFp;
    toFp.op = Opcode::MTC1;
    toFp.rd = fpReg(3);
    toFp.rs = REG_T1;
    EXPECT_EQ(toFp.def(), fpReg(3));
    EXPECT_TRUE(toFp.uses().contains(REG_T1));

    Instruction fromFp;
    fromFp.op = Opcode::MFC1;
    fromFp.rd = REG_T2;
    fromFp.rs = fpReg(4);
    EXPECT_EQ(fromFp.def(), REG_T2);
    EXPECT_TRUE(fromFp.uses().contains(fpReg(4)));
}

TEST(UsesDefsTest, SystemOpsAreInert)
{
    EXPECT_FALSE(make::nop().def().has_value());
    EXPECT_TRUE(make::nop().uses().empty());
    EXPECT_FALSE(make::halt().def().has_value());
    auto outb = make::r1(Opcode::OUTB, REG_T5);
    EXPECT_FALSE(outb.def().has_value());
    EXPECT_TRUE(outb.uses().contains(REG_T5));
}

// ---- encoding --------------------------------------------------------------

TEST(EncodingTest, RoundTripRepresentatives)
{
    std::vector<Instruction> cases = {
        make::r3(Opcode::ADD, REG_T0, REG_T1, REG_T2),
        make::r2i(Opcode::ADDI, REG_S0, REG_ZERO, -12345),
        make::ri(Opcode::LUI, REG_A0, 0x7fff),
        make::mem(Opcode::LW, REG_T3, REG_SP, -64),
        make::mem(Opcode::SB, REG_T4, REG_GP, 255),
        make::br2(Opcode::BNE, REG_T0, REG_T1, 777),
        make::br1(Opcode::BGEZ, REG_S3, 3),
        make::jmp(Opcode::J, 12345),
        make::jmp(Opcode::JAL, 1),
        make::jr(REG_RA),
        make::jalr(REG_T9, REG_T8),
        make::nop(),
        make::halt(),
        make::r1(Opcode::OUTW, REG_V0),
    };
    for (const auto &ins : cases) {
        auto decoded = decode(encode(ins));
        ASSERT_TRUE(decoded.has_value()) << ins.toString();
        EXPECT_EQ(*decoded, ins) << ins.toString();
    }
}

TEST(EncodingTest, RoundTripFuzz)
{
    Rng rng(0xc0de);
    for (int i = 0; i < 2000; ++i) {
        Instruction ins;
        ins.op = static_cast<Opcode>(rng.below(NUM_OPCODES));
        ins.rd = static_cast<RegId>(rng.below(NUM_REGS));
        ins.rs = static_cast<RegId>(rng.below(NUM_REGS));
        ins.rt = static_cast<RegId>(rng.below(NUM_REGS));
        if (ins.isControl() || format(ins.op) == Format::FBr)
            ins.target = rng.next32();
        else
            ins.imm = static_cast<int32_t>(rng.next32());
        auto decoded = decode(encode(ins));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, ins);
    }
}

TEST(EncodingTest, RejectsBadOpcode)
{
    uint64_t word = uint64_t{0xff} << 56;
    EXPECT_FALSE(decode(word).has_value());
}

TEST(EncodingTest, RejectsBadRegister)
{
    // Valid opcode, register field 200 (out of range).
    uint64_t word = uint64_t{200} << 48;
    EXPECT_FALSE(decode(word).has_value());
}

/**
 * Property: for EVERY opcode, toString() emits text the assembler
 * parses back to the identical instruction. Control transfers print
 * absolute instruction indices, which the assembler accepts as
 * numeric branch targets alongside label syntax.
 */
class ToStringRoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ToStringRoundTripTest, ReassemblesIdentically)
{
    auto op = static_cast<Opcode>(GetParam());

    // Control transfers target instruction 1 -- the halt below.
    Instruction ins;
    ins.op = op;
    switch (format(op)) {
      case Format::R3:
        ins = make::r3(op, REG_T0, REG_T1, REG_T2);
        break;
      case Format::R2I:
        ins = make::r2i(op, REG_T3, REG_T4, -42);
        break;
      case Format::RI:
        ins = make::ri(op, REG_T5, 77);
        break;
      case Format::Mem:
        ins = make::mem(op, REG_T6, REG_SP, 16);
        break;
      case Format::R1:
        ins = make::r1(op, REG_A0);
        break;
      case Format::Br2:
        ins = make::br2(op, REG_T0, REG_T1, 1);
        break;
      case Format::Br1:
        ins = make::br1(op, REG_S3, 1);
        break;
      case Format::Jmp:
      case Format::FBr:
        ins.target = 1;
        break;
      case Format::JmpR:
        ins.rs = REG_RA;
        break;
      case Format::JmpLR:
        ins.rd = REG_T9;
        ins.rs = REG_T8;
        break;
      case Format::F3:
        ins = make::r3(op, fpReg(1), fpReg(2), fpReg(3));
        break;
      case Format::F2:
        ins.rd = fpReg(4);
        ins.rs = fpReg(5);
        break;
      case Format::FCmp:
        ins.rs = fpReg(6);
        ins.rt = fpReg(7);
        break;
      case Format::FMem:
        ins = make::mem(op, fpReg(8), REG_GP, 8);
        break;
      case Format::MoveToFp:
        ins.rd = fpReg(9);
        ins.rs = REG_T7;
        break;
      case Format::MoveFromFp:
        ins.rd = REG_T8;
        ins.rs = fpReg(10);
        break;
      case Format::None:
        break;
    }

    std::string source = std::string(".func main\nmain: ") +
                         ins.toString() + "\n halt\n.endfunc\n";
    auto prog = etc::assembly::assemble(source);
    ASSERT_EQ(prog.size(), 2u) << ins.toString();
    EXPECT_EQ(prog.code[0], ins) << ins.toString();
}

TEST(ToStringRoundTripTest, NumericTargetsMatchLabelSyntax)
{
    // "beq ..., 2" and "beq ..., skip" with skip bound at index 2 must
    // assemble to the same instruction.
    auto numeric = etc::assembly::assemble(
        ".func main\nmain: beq $t0, $t1, 2\n nop\nskip: halt\n"
        ".endfunc\n");
    auto labeled = etc::assembly::assemble(
        ".func main\nmain: beq $t0, $t1, skip\n nop\nskip: halt\n"
        ".endfunc\n");
    EXPECT_EQ(numeric.code[0], labeled.code[0]);
}

TEST(ToStringRoundTripTest, OutOfRangeNumericTargetRejected)
{
    EXPECT_THROW(etc::assembly::assemble(
                     ".func main\nmain: j 99\n halt\n.endfunc\n"),
                 PanicError);
}

TEST(ToStringRoundTripTest, LeadingZeroTargetsParseAsDecimal)
{
    // "010" must be decimal ten-with-leading-zeros, never octal.
    auto prog = etc::assembly::assemble(
        ".func main\nmain: beq $t0, $t1, 002\n nop\n halt\n"
        ".endfunc\n");
    EXPECT_EQ(prog.code[0].target, 2u);
}

TEST(ToStringRoundTripTest, NumericCodeLabelsRejected)
{
    // A label spelled "5:" would be ambiguous with absolute targets.
    EXPECT_THROW(etc::assembly::assemble(
                     ".func main\nmain: nop\n5: halt\n.endfunc\n"),
                 FatalError);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, ToStringRoundTripTest,
                         ::testing::Range(0, int{NUM_OPCODES}));

TEST(ToStringTest, ReadableForms)
{
    EXPECT_EQ(make::r3(Opcode::ADD, REG_T0, REG_T1, REG_T2).toString(),
              "add $t0, $t1, $t2");
    EXPECT_EQ(make::mem(Opcode::LW, REG_T0, REG_SP, 4).toString(),
              "lw $t0, 4($sp)");
    EXPECT_EQ(make::br2(Opcode::BEQ, REG_A0, REG_ZERO, 7).toString(),
              "beq $a0, $zero, 7");
    EXPECT_EQ(make::halt().toString(), "halt");
}

} // namespace
